"""Integration tests asserting the paper's headline claims hold in the
simulator (scaled-down configurations).

These are the load-bearing end-to-end checks: if a refactor breaks the
physics (spin latency vs slice, ATC's advantage, non-interference with
non-parallel apps), these fail.
"""

import pytest

from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.scenarios import run_slice_sweep, run_small_mix, run_type_a
from repro.metrics.summary import mean, pearson
from repro.sim.units import SEC


@pytest.fixture(scope="module")
def sweep():
    """One shared CR slice sweep for lu (the paper's Fig. 5 core)."""
    return run_slice_sweep("lu", [30, 6, 1, 0.3], n_nodes=2, rounds=2, warmup_rounds=1)


def test_shorter_slices_reduce_spin_latency(sweep):
    spins = [row["avg_spin_ns"] for row in sweep["rows"]]
    assert spins == sorted(spins, reverse=True), spins


def test_shorter_slices_improve_parallel_performance(sweep):
    rounds = [row["mean_round_ns"] for row in sweep["rows"]]
    assert rounds[-1] < rounds[0] / 3  # >= 3x faster at 0.3 ms than 30 ms


def test_spin_latency_correlates_with_performance(sweep):
    """Section II-B: Pearson correlation between spinlock latency and
    execution time above 0.9 across the slice sweep."""
    spins = [row["avg_spin_ns"] for row in sweep["rows"]]
    rounds = [row["mean_round_ns"] for row in sweep["rows"]]
    assert pearson(spins, rounds) > 0.9


def test_shorter_slices_increase_context_switches(sweep):
    ctx = [row["context_switches"] for row in sweep["rows"]]
    assert ctx[-1] > 2 * ctx[0]


@pytest.fixture(scope="module")
def typea_lu():
    out = {}
    for sched in ("CR", "ATC", "CS", "BS"):
        out[sched] = run_type_a("lu", sched, n_nodes=2, rounds=2, warmup_rounds=1)
    return out


def test_atc_beats_credit_significantly(typea_lu):
    """Headline claim: 1.5-10x gain over CR for parallel applications."""
    ratio = typea_lu["CR"]["mean_round_ns"] / typea_lu["ATC"]["mean_round_ns"]
    assert 1.5 <= ratio, f"ATC gain only {ratio:.2f}x"


def test_atc_beats_all_other_approaches(typea_lu):
    atc = typea_lu["ATC"]["mean_round_ns"]
    for other in ("CR", "CS", "BS"):
        assert atc < typea_lu[other]["mean_round_ns"], other


def test_atc_reduces_spin_latency(typea_lu):
    assert typea_lu["ATC"]["avg_spin_ns"] < typea_lu["CR"]["avg_spin_ns"] / 2


def test_atc_converges_to_min_threshold():
    world = CloudWorld(WorldConfig(n_nodes=2, scheduler="ATC", seed=0))
    apps = []
    for k in range(4):
        vc = world.virtual_cluster(2, name=f"vc{k}")
        apps.append(world.add_npb("lu", vc.vms, rounds=None, warmup_rounds=0))
    world.run(horizon_ns=3 * SEC)
    par_slices = {vm.slice_ns for vm in world.vms if vm.is_parallel}
    sched = world.vmms[0].scheduler
    assert par_slices == {sched.controller.cfg.min_threshold_ns}


def test_atc_host_uniformity():
    """Algorithm 2: all parallel VMs on a host share one (minimum) slice."""
    world = CloudWorld(WorldConfig(n_nodes=2, scheduler="ATC", seed=0))
    vc0 = world.virtual_cluster(2, name="fine")
    vc1 = world.virtual_cluster(2, name="coarse")
    world.add_npb("lu", vc0.vms, rounds=None, warmup_rounds=0)  # fine grain
    world.add_npb("is", vc1.vms, rounds=None, warmup_rounds=0)  # coarse grain
    world.run(horizon_ns=2 * SEC)
    for node_vms in ([vm for vm in world.vms if vm.node.index == i and vm.is_parallel] for i in range(2)):
        assert len({vm.slice_ns for vm in node_vms}) == 1


class TestNonParallelImpact:
    """Section IV-C: ATC(30ms) leaves non-parallel apps ~unaffected,
    while CS hurts latency-sensitive and CPU-bound apps."""

    @pytest.fixture(scope="class")
    def mix(self):
        out = {}
        for sched in ("CR", "CS", "ATC"):
            out[sched] = run_small_mix(sched, horizon_s=4.0)
        return out

    def test_cs_hurts_ping(self, mix):
        assert mix["CS"]["ping_mean_rtt_ns"] > 1.5 * mix["CR"]["ping_mean_rtt_ns"]

    def test_cs_hurts_sphinx3(self, mix):
        assert mix["CS"]["sphinx3_mean_run_ns"] > 1.05 * mix["CR"]["sphinx3_mean_run_ns"]

    def test_atc_default_preserves_cpu_app(self, mix):
        ratio = mix["ATC"]["sphinx3_mean_run_ns"] / mix["CR"]["sphinx3_mean_run_ns"]
        assert ratio < 1.15

    def test_atc_default_preserves_disk_app(self, mix):
        ratio = mix["ATC"]["bonnie_throughput_Bps"] / mix["CR"]["bonnie_throughput_Bps"]
        assert ratio > 0.8

    def test_atc_accelerates_parallel_in_mix(self, mix):
        assert (
            mix["ATC"]["parallel_mean_round_ns"]
            < 0.7 * mix["CR"]["parallel_mean_round_ns"]
        )
