"""Live migration & rebalancing (repro.migration): engine, policies, identity."""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.scenarios import run_migration_rebalance
from repro.hypervisor.vm import VCPUState
from repro.migration import (
    MigrationConfig,
    MigrationParams,
    parallel_census,
    policy_names,
)
from repro.migration.engine import MIB
from repro.sim.units import MSEC, SEC

from tests.conftest import add_guest_vm, make_node_world

#: Small image so unit-test migrations finish in tens of simulated ms.
SMALL = MigrationParams(mem_bytes=2 * MIB)


def _world(n_nodes=2, policy="none", params=SMALL, **kw):
    cfg = MigrationConfig(policy=policy, control_every=1, params=params)
    return CloudWorld(WorldConfig(n_nodes=n_nodes, migration=cfg, **kw))


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
def test_config_dict_round_trip():
    cfg = MigrationConfig(policy="demix", control_every=3, max_concurrent=2,
                          cooldown_ns=250 * MSEC, params=SMALL)
    assert MigrationConfig.from_dict(cfg.to_dict()) == cfg
    assert cfg.to_dict()["params"]["mem_bytes"] == 2 * MIB


def test_unknown_policy_rejected_at_world_construction():
    with pytest.raises(ValueError, match="unknown migration policy"):
        _world(policy="bogus")
    assert policy_names() == ["consolidate", "demix", "evacuate"]


# ----------------------------------------------------------------------
# Engine mechanics: pre-copy, handoff, downtime conservation
# ----------------------------------------------------------------------
def test_precopy_migration_re_homes_the_vm():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    assert eng.start(vm, 1)
    assert w._node_vm_load == [1, 1]  # destination slot reserved up front
    w.run(horizon_ns=1 * SEC)

    assert eng.completed == 1 and eng.aborted == 0
    assert vm.node is w.cluster.nodes[1]
    assert vm not in w.vmms[0].vms and vm in w.vmms[1].vms
    assert w._node_vm_load == [0, 1]
    assert not vm.paused and vm.pause_depth == 0
    n_pcpus = len(w.cluster.nodes[1].pcpus)
    assert [v.rq for v in vm.vcpus] == [i % n_pcpus for i in range(len(vm.vcpus))]
    assert eng.violations == []


def test_dirty_residue_drives_extra_precopy_rounds():
    # A tight stop threshold forces a second (small) copy round.
    params = MigrationParams(mem_bytes=2 * MIB, stop_copy_threshold_bytes=64 * 1024)
    w = _world(params=params)
    vm = w.new_vm(name="g0", node_idx=0)
    w.migration_engine.start(vm, 1)
    w.run(horizon_ns=1 * SEC)
    assert w.migration_engine.completed == 1
    assert w.migration_engine.precopy_rounds >= 2
    # Everything sent: the full image, plus at least one dirty residue pass.
    assert w.migration_engine.bytes_copied > 2 * MIB


def test_round_cap_forces_stop_and_copy():
    # The guest dirties faster than the link copies: never converges, so
    # the round cap bounds pre-copy and the residue rides the blackout.
    params = MigrationParams(mem_bytes=2 * MIB, dirty_bytes_per_s=1024 * MIB,
                             max_precopy_rounds=3)
    w = _world(params=params)
    vm = w.new_vm(name="g0", node_idx=0)
    w.migration_engine.start(vm, 1)
    w.run(horizon_ns=1 * SEC)
    assert w.migration_engine.completed == 1
    assert w.migration_engine.precopy_rounds == 3


def test_downtime_is_conserved_against_pause_intervals():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    eng.start(vm, 1)
    w.run(horizon_ns=1 * SEC)
    assert eng.completed == 1
    intervals = eng.pause_intervals["g0"]
    assert len(intervals) == 1 and intervals[0][1] > intervals[0][0]
    total = sum(b - a for a, b in intervals)
    assert eng.downtime_by_vm["g0"] == total > 0
    # The registry gauge reports the same conserved total.
    snap = w.metrics.snapshot()
    assert snap["migration.downtime_total_ns"] == total
    assert snap["migration.downtime_ns"] == {"g0": total}
    assert snap["migration.completed"] == 1 and snap["migration.in_flight"] == 0


def test_start_rejects_structural_misuse():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    dom0_vm = next(v for v in w.vmms[0].vms if v.is_dom0)
    eng = w.migration_engine
    with pytest.raises(ValueError, match="dom0"):
        eng.start(dom0_vm, 1)
    with pytest.raises(ValueError, match="no node 7"):
        eng.start(vm, 7)
    with pytest.raises(ValueError, match="already on node 0"):
        eng.start(vm, 0)


def test_start_declines_transient_ineligibility():
    w = _world(n_nodes=3, vms_per_node=1)
    vm = w.new_vm(name="g0", node_idx=0)
    w.new_vm(name="g1", node_idx=1)
    eng = w.migration_engine
    assert not eng.start(vm, 1)  # destination full
    w.vmms[0].pause_vm(vm)
    assert not eng.start(vm, 2)  # paused VM cannot be migrated
    w.vmms[0].resume_vm(vm)
    assert eng.start(vm, 2)
    assert not eng.start(vm, 1)  # already in flight
    assert eng.started == 1


def test_dst_crash_aborts_and_releases_reservation():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    eng.start(vm, 1)
    w.run(horizon_ns=5 * MSEC)  # mid pre-copy
    w.vmms[1].crash()
    w.run(horizon_ns=1 * SEC)
    assert eng.completed == 0 and eng.aborted == 1
    assert vm.node is w.cluster.nodes[0]  # still home
    assert w._node_vm_load == [1, 0]  # reservation released
    assert not vm.paused and vm.pause_depth == 0  # blackout pause rolled back
    assert eng.active == {}


def test_timeout_aborts_a_stalled_stream():
    params = MigrationParams(mem_bytes=2 * MIB, abort_timeout_ns=5 * MSEC)
    w = _world(params=params)
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    eng.start(vm, 1)
    w.run(horizon_ns=1 * SEC)
    assert eng.aborted == 1 and eng.completed == 0
    assert vm.node is w.cluster.nodes[0] and w._node_vm_load == [1, 0]


# ----------------------------------------------------------------------
# Pause composition: fault windows x stop-and-copy (PR-4 latch-and-replay)
# ----------------------------------------------------------------------
def test_fault_pause_spanning_migration_holds_until_both_release():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    assert eng.start(vm, 1)
    w.run(horizon_ns=5 * MSEC)  # mid pre-copy
    vm.node.vmm.pause_vm(vm)  # fault window opens on the *source*
    assert vm.paused and vm.pause_depth == 1

    w.run(horizon_ns=1 * SEC)  # migration completes under the fault
    assert eng.completed == 1 and vm.node is w.cluster.nodes[1]
    # Handoff released only the engine's own hold: the fault still pins it.
    assert vm.paused and vm.pause_depth == 1
    vcpu = vm.vcpus[0]
    vcpu.wake()  # latched, not dropped
    assert vcpu.state is VCPUState.BLOCKED and vcpu.wake_pending

    vm.node.vmm.resume_vm(vm)  # fault heals on the *destination* VMM
    assert not vm.paused and vm.pause_depth == 0
    assert not vcpu.wake_pending and vcpu.state is not VCPUState.BLOCKED
    assert eng.violations == []


def test_fault_pause_inside_stop_copy_window_does_not_double_resume():
    w = _world()
    vm = w.new_vm(name="g0", node_idx=0)
    eng = w.migration_engine
    assert eng.start(vm, 1)
    # Step in half-ms increments until the blackout window opens (the
    # window itself is > 1 ms long, so a step cannot jump across it).
    m = eng.active[vm.vmid]
    while m.pause_start_ns is None:
        assert eng.completed == 0
        w.run(horizon_ns=MSEC // 2)
    assert vm.paused  # inside the window
    vm.node.vmm.pause_vm(vm)  # fault lands during the blackout
    assert vm.pause_depth == 2

    w.run(horizon_ns=1 * SEC)
    assert eng.completed == 1 and vm.node is w.cluster.nodes[1]
    assert vm.paused and vm.pause_depth == 1  # engine resume released one hold
    vm.node.vmm.resume_vm(vm)
    assert not vm.paused and vm.pause_depth == 0
    assert eng.violations == []


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_parallel_census_is_per_node_per_cluster():
    w = _world(n_nodes=2)
    w.virtual_cluster(2, name="a", node_indices=[0, 0])
    w.virtual_cluster(1, name="b", node_indices=[0])
    census = parallel_census(w)
    assert list(census) == [0]
    assert [(c, [vm.name for vm in vms]) for c, vms in census[0].items()] == [
        ("a", ["a.vm0", "a.vm1"]),
        ("b", ["b.vm0"]),
    ]


def test_demix_separates_cohosted_clusters():
    w = _world(policy="demix")
    w.virtual_cluster(1, name="a", node_indices=[0])
    w.virtual_cluster(1, name="b", node_indices=[0])
    w.run(horizon_ns=2 * SEC)
    census = parallel_census(w)
    assert all(len(clusters) == 1 for clusters in census.values())
    assert w.migration_engine.completed == 1
    assert w.rebalancer.stats["migrations_requested"] == 1


def test_consolidate_moves_nonparallel_off_parallel_hosts():
    w = _world(policy="consolidate")
    w.virtual_cluster(1, name="a", node_indices=[0])
    np_vm = w.new_vm(name="np0", node_idx=0)
    w.run(horizon_ns=2 * SEC)
    assert np_vm.node is w.cluster.nodes[1]
    assert w.migration_engine.completed == 1


def test_evacuate_drains_a_crashed_node_after_restart():
    from repro.faults import FaultEvent, FaultPlan

    plan = FaultPlan.of([
        FaultEvent("node_crash", at_ns=50 * MSEC, node=0, duration_ns=100 * MSEC),
    ])
    w = _world(policy="evacuate", faults=plan)
    vm = w.new_vm(name="g0", node_idx=0)
    w.run(horizon_ns=2 * SEC)
    assert 0 in w.rebalancer.unhealthy  # sticky even after the restart
    assert vm.node is w.cluster.nodes[1]
    assert w.migration_engine.completed == 1


# ----------------------------------------------------------------------
# SAN007: single residency + stop-and-copy window integrity
# ----------------------------------------------------------------------
def test_san007_flags_stale_residency_after_handoff():
    sim, cluster, vmms = make_node_world(n_nodes=2)
    vm = add_guest_vm(vmms[0])
    san = SimSanitizer(sim, vmms)
    vcpu = vm.vcpus[0]
    vcpu.state = VCPUState.RUNNABLE
    vm.node = cluster.nodes[1]  # handoff the source scheduler never saw
    vmms[0].scheduler.on_wake(vcpu)
    codes = [v.code for v in san.violations]
    assert "SAN007" in codes
    v = next(v for v in san.violations if v.code == "SAN007")
    assert v.context["node"] == 0 and v.context["resident_node"] == 1


def test_engine_reports_window_breaks_through_sanitizer():
    w = _world(sanitize=True)
    w.migration_engine._violate("synthetic break")
    assert [v.code for v in w.sanitizer.violations] == ["SAN007"]
    assert w.migration_engine.violations == []

    w2 = _world()
    w2.migration_engine._violate("no sanitizer attached")
    assert w2.migration_engine.violations == ["no sanitizer attached"]


# ----------------------------------------------------------------------
# Scenario-level acceptance: bit-identity, demixing, sanitized runs
# ----------------------------------------------------------------------
def _cell(policy, **kw):
    return run_migration_rebalance(policy=policy, horizon_s=4.0, seed=0, **kw)


def test_idle_control_plane_is_bit_identical_to_no_subsystem():
    static = _cell("static")
    idle = _cell("none")
    # Same world, same events (count included) — only the subsystem's own
    # bookkeeping keys may differ.
    assert {k for k in static if k not in idle} == set()
    for key in static:
        if key not in ("policy", "migration", "rebalancer"):
            assert idle[key] == static[key], key
    assert idle["events"] == static["events"]
    assert idle["migration"]["started"] == 0
    assert idle["migration"]["downtime_total_ns"] == 0


def test_demix_scenario_separates_clusters_and_conserves_downtime():
    r = _cell("demix", sanitize=True)  # sanitized: SAN007 et al. stay quiet
    assert r["migration"]["completed"] >= 1
    assert r["rebalancer"]["policy"] == "demix"
    # Post-rebalance, no node hosts VMs of two different clusters.
    by_node: dict[int, set] = {}
    for name, node in r["final_nodes"].items():
        if name.startswith("vc"):
            by_node.setdefault(node, set()).add(name.split(".")[0])
    assert all(len(cs) == 1 for cs in by_node.values())
    assert r["migration"]["downtime_total_ns"] == sum(
        r["migration"]["downtime_ns"].values()
    ) > 0


def test_demix_run_is_reproducible():
    assert _cell("demix") == _cell("demix")


# ----------------------------------------------------------------------
# Per-VM footprint scaling (used by DFRS-issued moves)
# ----------------------------------------------------------------------
def test_mem_for_scales_with_vcpu_count():
    from repro.migration.engine import per_vcpu_params

    base = MigrationParams(mem_bytes=64 * MIB)
    assert base.mem_bytes_per_vcpu == 0  # legacy cost model: flat footprint

    p = per_vcpu_params(base, mem_bytes_per_vcpu=8 * MIB)
    cfg = WorldConfig(n_nodes=2, vms_per_node=2, vcpus_per_vm=4,
                      scheduler="CR", seed=0)
    world = CloudWorld(cfg)
    small = world.new_vm(name="small", n_vcpus=1)
    big = world.new_vm(name="big", n_vcpus=4)
    assert base.mem_for(small) == base.mem_for(big) == 64 * MIB
    assert p.mem_for(small) == 64 * MIB + 8 * MIB
    assert p.mem_for(big) == 64 * MIB + 32 * MIB


def test_migration_copies_vcpu_scaled_footprint():
    from repro.migration.engine import MigrationEngine, per_vcpu_params

    cfg = WorldConfig(n_nodes=2, vms_per_node=2, vcpus_per_vm=2,
                      scheduler="CR", seed=0)
    world = CloudWorld(cfg)
    engine = MigrationEngine(world, per_vcpu_params(mem_bytes_per_vcpu=8 * MIB))
    vm = world.new_vm(name="mover", n_vcpus=2)
    assert engine.start(vm, 1)
    m = engine.active[vm.vmid]
    assert m.mem_bytes == engine.params.mem_for(vm)
    assert m.mem_bytes == 64 * MIB + 16 * MIB
