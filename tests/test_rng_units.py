"""Tests for the deterministic RNG and time units."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SimRNG
from repro.sim.units import (
    MSEC,
    SEC,
    USEC,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    s_from_ns,
    us_from_ns,
)


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
def test_unit_constants():
    assert USEC == 1_000
    assert MSEC == 1_000_000
    assert SEC == 1_000_000_000


@pytest.mark.parametrize(
    "fn,val,expected",
    [
        (ns_from_us, 1, 1_000),
        (ns_from_ms, 30, 30 * MSEC),
        (ns_from_ms, 0.3, 300_000),
        (ns_from_s, 2, 2 * SEC),
        (ns_from_us, 0.5, 500),
    ],
)
def test_conversions_to_ns(fn, val, expected):
    out = fn(val)
    assert out == expected
    assert isinstance(out, int)


def test_conversions_from_ns():
    assert ms_from_ns(30 * MSEC) == 30.0
    assert us_from_ns(1500) == 1.5
    assert s_from_ns(SEC) == 1.0


@given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
def test_ms_roundtrip_close(ms):
    assert ms_from_ns(ns_from_ms(ms)) == pytest.approx(ms, rel=1e-6, abs=1e-6)


# ----------------------------------------------------------------------
# RNG
# ----------------------------------------------------------------------
def test_same_seed_same_draws():
    a, b = SimRNG(42), SimRNG(42)
    assert [a.uniform_ns(0, 1000) for _ in range(20)] == [
        b.uniform_ns(0, 1000) for _ in range(20)
    ]


def test_different_seeds_differ():
    a, b = SimRNG(1), SimRNG(2)
    assert [a.uniform_ns(0, 10**9) for _ in range(5)] != [
        b.uniform_ns(0, 10**9) for _ in range(5)
    ]


def test_substream_deterministic():
    a = SimRNG(7).substream(1, 2, 3)
    b = SimRNG(7).substream(1, 2, 3)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_substreams_independent_of_draw_order():
    root = SimRNG(7)
    s1 = root.substream(1)
    _ = [s1.random() for _ in range(100)]  # drain one stream
    s2a = root.substream(2)
    s2b = SimRNG(7).substream(2)
    assert [s2a.random() for _ in range(10)] == [s2b.random() for _ in range(10)]


def test_distinct_substreams_differ():
    root = SimRNG(0)
    assert root.substream(1).random() != root.substream(2).random()


def test_jittered_mean_is_close():
    rng = SimRNG(3)
    draws = [rng.jittered_ns(1_000_000, 0.2) for _ in range(4000)]
    assert np.mean(draws) == pytest.approx(1_000_000, rel=0.05)
    assert all(d >= 1 for d in draws)


def test_jittered_zero_cv_exact():
    rng = SimRNG(3)
    assert rng.jittered_ns(12345, 0.0) == 12345


def test_jittered_nonpositive_mean():
    rng = SimRNG(3)
    assert rng.jittered_ns(0, 0.5) == 0
    assert rng.jittered_ns(-5, 0.5) == 0


def test_exponential_positive_and_mean():
    rng = SimRNG(9)
    draws = [rng.exponential_ns(50_000) for _ in range(4000)]
    assert min(draws) >= 1
    assert np.mean(draws) == pytest.approx(50_000, rel=0.1)


def test_uniform_bounds():
    rng = SimRNG(11)
    draws = [rng.uniform_ns(10, 20) for _ in range(200)]
    assert min(draws) >= 10 and max(draws) <= 20
    assert 10 in draws or 20 in draws or len(set(draws)) > 5


def test_choice_with_probabilities():
    rng = SimRNG(13)
    picks = [rng.choice(["x", "y"], p=[0.9, 0.1]) for _ in range(500)]
    assert picks.count("x") > 350


def test_shuffle_is_permutation():
    rng = SimRNG(17)
    items = list(range(30))
    shuffled = items[:]
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
