"""Static determinism lint: one positive + one suppressed case per rule."""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    PARSE_ERROR_CODE,
    lint_paths,
    lint_source,
    render_json,
    render_text,
    run_lint,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"
REPO_BENCH = Path(__file__).resolve().parent.parent / "benchmarks"
REPO_EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def codes(source: str) -> list[str]:
    return [f.code for f in lint_source(source)]


# ----------------------------------------------------------------------
# RPR001: wall-clock / entropy calls
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "snippet",
    [
        "import time\nt = time.time()\n",
        "import time\nt = time.perf_counter()\n",
        "import time as clock\nt = clock.monotonic_ns()\n",
        "from time import time\nt = time()\n",
        "import random\nr = random.random()\n",
        "import random\nr = random.randint(0, 5)\n",
        "import os\nb = os.urandom(8)\n",
        "import uuid\nu = uuid.uuid4()\n",
        "from datetime import datetime\nd = datetime.now()\n",
        "import datetime\nd = datetime.datetime.utcnow()\n",
        "import numpy as np\nr = np.random.rand(3)\n",
        "import secrets\ns = secrets.token_bytes(4)\n",
    ],
)
def test_entropy_calls_flagged(snippet):
    assert "RPR001" in codes(snippet)


def test_entropy_pragma_suppresses():
    src = "import time\nt = time.time()  # repro: ignore[RPR001]\n"
    assert codes(src) == []


def test_seeded_rng_not_flagged():
    src = (
        "from repro.sim.rng import SimRNG\n"
        "rng = SimRNG(0)\n"
        "x = rng.uniform(0.0, 1.0)\n"
    )
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR002: unseeded RNG construction
# ----------------------------------------------------------------------
def test_unseeded_default_rng_flagged():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert "RPR002" in codes(src)


def test_seeded_default_rng_ok():
    src = "import numpy as np\nrng = np.random.default_rng(42)\n"
    assert "RPR002" not in codes(src)


def test_unseeded_rng_pragma_suppresses():
    src = "import numpy as np\nrng = np.random.default_rng()  # repro: ignore[RPR002]\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR010: id()-based keying/ordering
# ----------------------------------------------------------------------
def test_id_ordering_flagged():
    src = "order = sorted(vcpus, key=lambda v: id(v))\n"
    assert "RPR010" in codes(src)


def test_id_set_comprehension_flagged():
    src = "active = {id(v) for v in vcpus}\n"
    assert "RPR010" in codes(src)


def test_id_pragma_suppresses():
    src = "k = id(v)  # repro: ignore[RPR010]\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR011 / RPR012: set iteration and set.pop
# ----------------------------------------------------------------------
def test_for_over_set_literal_flagged():
    src = "for x in {1, 2, 3}:\n    print(x)\n"
    assert "RPR011" in codes(src)


def test_comprehension_over_set_binding_flagged():
    src = "s = {1, 2}\nout = [x for x in s]\n"
    assert "RPR011" in codes(src)


def test_sorted_set_ok():
    src = "s = {1, 2}\nfor x in sorted(s):\n    print(x)\n"
    assert "RPR011" not in codes(src)


def test_set_iteration_pragma_suppresses():
    src = "s = {1, 2}\nout = [x for x in s]  # repro: ignore[RPR011]\n"
    assert codes(src) == []


def test_set_pop_flagged():
    src = "s = {1, 2}\nx = s.pop()\n"
    assert "RPR012" in codes(src)


def test_list_pop_ok():
    src = "s = [1, 2]\nx = s.pop()\n"
    assert "RPR012" not in codes(src)


def test_set_pop_pragma_suppresses():
    src = "s = {1, 2}\nx = s.pop()  # repro: ignore[RPR012]\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR020: raw time literals
# ----------------------------------------------------------------------
def test_raw_literal_keyword_flagged():
    src = "run(horizon_ns=5_000_000)\n"
    assert "RPR020" in codes(src)


def test_raw_literal_default_flagged():
    src = "def f(slice_ns=30_000_000):\n    pass\n"
    assert "RPR020" in codes(src)


def test_raw_literal_assign_flagged():
    src = "period_ns = 30_000_000\n"
    assert "RPR020" in codes(src)


def test_units_expression_ok():
    src = "from repro.sim.units import MSEC\nperiod_ns = 30 * MSEC\n"
    assert "RPR020" not in codes(src)


def test_small_literal_ok():
    src = "delta_ns = 100\n"
    assert "RPR020" not in codes(src)


def test_non_ns_name_ok():
    src = "count = 5_000_000\n"
    assert "RPR020" not in codes(src)


def test_raw_literal_pragma_suppresses():
    src = "period_ns = 30_000_000  # repro: ignore[RPR020]\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR030 / RPR031: exception hygiene
# ----------------------------------------------------------------------
def test_bare_except_flagged():
    src = "try:\n    f()\nexcept:\n    raise\n"
    assert "RPR030" in codes(src)


def test_swallowed_exception_flagged():
    src = "try:\n    f()\nexcept ValueError:\n    pass\n"
    assert "RPR031" in codes(src)


def test_handled_exception_ok():
    src = "try:\n    f()\nexcept ValueError as e:\n    log(e)\n"
    assert codes(src) == []


def test_bare_except_pragma_suppresses():
    src = "try:\n    f()\nexcept:  # repro: ignore[RPR030]\n    raise\n"
    assert codes(src) == []


# ----------------------------------------------------------------------
# RPR040 / RPR041: same-timestamp hook order dependence
# ----------------------------------------------------------------------
HOOK_PAIR = """
class Controller:
    def _tick_a(self, now):
        self.vm.slice_ns = 1

    def _tick_b(self, now):
        self.vm.slice_ns = 2

    def install(self, vmm):
        vmm.period_hooks.append(self._tick_a)
        vmm.period_hooks.append(self._tick_b)
"""


def test_period_hook_write_overlap_flagged():
    assert "RPR040" in codes(HOOK_PAIR)


def test_disjoint_period_hooks_ok():
    src = HOOK_PAIR.replace("self.vm.slice_ns = 2", "self.vm.period_ns = 2")
    assert "RPR040" not in codes(src)


def test_same_callback_reregistered_ok():
    src = HOOK_PAIR.replace(
        "vmm.period_hooks.append(self._tick_b)",
        "vmm.period_hooks.append(self._tick_a)",
    )
    assert "RPR040" not in codes(src)


def test_same_time_schedule_overlap_flagged():
    src = (
        "def setup(sim, vm):\n"
        "    def a():\n"
        "        vm.credits = 1\n"
        "    def b():\n"
        "        vm.credits = 2\n"
        "    sim.at(1000, a)\n"
        "    sim.at(1000, b)\n"
    )
    assert "RPR040" in codes(src)


def test_different_time_schedules_ok():
    src = (
        "def setup(sim, vm):\n"
        "    def a():\n"
        "        vm.credits = 1\n"
        "    def b():\n"
        "        vm.credits = 2\n"
        "    sim.at(1000, a)\n"
        "    sim.at(2000, b)\n"
    )
    assert "RPR040" not in codes(src)


def test_rpr040_interprocedural_through_self_call():
    src = HOOK_PAIR.replace(
        "self.vm.slice_ns = 1", "self._update()"
    ) + (
        "\n    def _update(self):\n"
        "        self.vm.slice_ns = 3\n"
    )
    assert "RPR040" in codes(src)


def test_rpr040_pragma_suppresses():
    src = HOOK_PAIR.replace(
        "vmm.period_hooks.append(self._tick_b)",
        "vmm.period_hooks.append(self._tick_b)  # repro: ignore[RPR040]",
    )
    assert "RPR040" not in codes(src)


CLOSURE_PAIR = """
def setup(sim, vmm):
    stats = {"n": 0}

    def writer():
        stats.update(n=1)
        vmm.busy = True

    def reader():
        consume(stats)

    sim.at(100, writer)
    sim.at(100, reader)
"""


def test_closure_capture_race_flagged():
    assert "RPR041" in codes(CLOSURE_PAIR)


def test_closure_capture_disjoint_ok():
    src = CLOSURE_PAIR.replace("consume(stats)", "consume(1)")
    assert "RPR041" not in codes(src)


def test_rpr041_pragma_suppresses():
    src = CLOSURE_PAIR.replace(
        "sim.at(100, reader)", "sim.at(100, reader)  # repro: ignore[RPR041]"
    )
    assert "RPR041" not in codes(src)


def test_lambda_callback_resolved():
    src = (
        "def setup(sim, vm):\n"
        "    def a():\n"
        "        vm.credits = 1\n"
        "    sim.at(50, a)\n"
        "    sim.at(50, lambda: setattr_like(vm))\n"
    )
    # the lambda writes nothing the analysis can see: no finding
    assert "RPR040" not in codes(src)


# ----------------------------------------------------------------------
# Pragma semantics
# ----------------------------------------------------------------------
def test_bracketless_pragma_suppresses_everything():
    src = "import time\nt = time.time()  # repro: ignore\n"
    assert codes(src) == []


def test_pragma_with_wrong_code_does_not_suppress():
    src = "import time\nt = time.time()  # repro: ignore[RPR020]\n"
    assert "RPR001" in codes(src)


def test_pragma_multi_code_list():
    src = (
        "import time\n"
        "t = time.time() + id(x)  # repro: ignore[RPR001, RPR010]\n"
    )
    assert codes(src) == []


def test_pragma_multi_code_list_partial():
    """A list naming only one of two co-located findings keeps the other."""
    src = (
        "import time\n"
        "t = time.time() + id(x)  # repro: ignore[RPR001]\n"
    )
    assert codes(src) == ["RPR010"]


def test_pragma_unknown_code_is_inert():
    """Unknown codes in the list are ignored, not an error — and do not
    suppress real findings on the line."""
    src = "import time\nt = time.time()  # repro: ignore[RPR999]\n"
    assert codes(src) == ["RPR001"]


def test_pragma_unknown_plus_matching_code_still_suppresses():
    src = "import time\nt = time.time()  # repro: ignore[RPR999, RPR001]\n"
    assert codes(src) == []


def test_pragma_empty_bracket_is_blanket():
    """``ignore[]`` degrades to a blanket ignore (empty list = no codes
    parsed = same as bracketless)."""
    src = "import time\nt = time.time()  # repro: ignore[]\n"
    assert codes(src) == []


def test_pragma_case_insensitive_codes():
    src = "import time\nt = time.time()  # repro: ignore[rpr001]\n"
    assert codes(src) == []


def test_pragma_on_continuation_line_does_not_suppress():
    """Findings anchor at the expression's *first* line; a pragma on a
    continuation line is on the wrong line and must not suppress."""
    src = (
        "import time\n"
        "t = time.time(\n"
        ")  # repro: ignore[RPR001]\n"
    )
    assert codes(src) == ["RPR001"]


def test_pragma_on_anchor_line_of_multiline_call_suppresses():
    src = (
        "import time\n"
        "t = time.time(  # repro: ignore[RPR001]\n"
        ")\n"
    )
    assert codes(src) == []


# ----------------------------------------------------------------------
# Framework: parse errors, path walking, reporters, CLI driver
# ----------------------------------------------------------------------
def test_parse_error_reported():
    found = lint_source("def f(:\n")
    assert [f.code for f in found] == [PARSE_ERROR_CODE]


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "a.py").write_text("import time\nt = time.time()\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "b.py").write_text("import time\nt = time.time()\n")
    found = lint_paths([tmp_path])
    assert len(found) == 1
    assert found[0].path.endswith("a.py")


def test_reporters():
    found = lint_source("k = id(v)\n", path="x.py")
    text = render_text(found)
    assert "x.py:1:5: RPR010" in text and "1 finding" in text
    data = json.loads(render_json(found))
    assert data["count"] == 1
    assert data["findings"][0]["code"] == "RPR010"


def test_run_lint_exit_codes(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    out = io.StringIO()
    assert run_lint([str(bad)], out=out) == 1
    assert run_lint([str(clean)], out=out) == 0
    assert run_lint([str(tmp_path / "missing.py")], out=out) == 2
    assert run_lint([str(bad)], select=["NOPE99"], out=out) == 2
    # --select narrows the rule set: RPR020-only sees no entropy call.
    assert run_lint([str(bad)], select=["RPR020"], out=out) == 0


def test_repo_tree_is_lint_clean():
    """src/repro, benchmarks and examples must stay free of determinism
    hazards."""
    paths = [REPO_SRC, REPO_BENCH]
    if REPO_EXAMPLES.is_dir():
        paths.append(REPO_EXAMPLES)
    found = lint_paths(paths)
    assert found == [], "\n" + "\n".join(f.format() for f in found)


def test_cli_lint_subcommand(tmp_path, capsys):
    from repro.cli import main

    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    assert "RPR001" in capsys.readouterr().out
    assert main(["lint", str(bad), "--format", "json"]) == 1
    assert json.loads(capsys.readouterr().out)["count"] == 1
    assert main(["lint", "--list-rules"]) == 0
    assert "RPR010" in capsys.readouterr().out
