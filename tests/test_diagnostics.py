"""Tests for the ATC convergence diagnostics."""

import pytest

from repro.core.diagnostics import ConvergenceReport, analyze_slice_trace, settling_time


def test_settling_time_clean_ramp():
    trace = [(10, 30), (20, 24), (30, 18), (40, 18), (50, 18)]
    assert settling_time(trace) == 30


def test_settling_time_with_excursion():
    trace = [(10, 18), (20, 30), (30, 18), (40, 18)]
    assert settling_time(trace) == 30


def test_settling_time_tolerance():
    trace = [(10, 20), (20, 19), (30, 18)]
    assert settling_time(trace, tolerance_ns=2) == 10
    assert settling_time(trace) == 30


def test_settling_time_empty():
    assert settling_time([]) is None


def test_analyze_trace_ramp():
    trace = [(i * 30, s) for i, s in enumerate([30, 30, 24, 18, 12, 6, 6, 6])]
    r = analyze_slice_trace(trace)
    assert r.periods == 8
    assert r.initial_ns == 30
    assert r.final_ns == 6
    assert r.min_ns == 6
    assert r.reversals == 0
    assert r.settled_at_ns == 5 * 30


def test_analyze_trace_oscillation():
    trace = [(i, s) for i, s in enumerate([30, 20, 25, 15, 20, 10])]
    r = analyze_slice_trace(trace)
    assert r.reversals == 4


def test_analyze_trace_empty_raises():
    with pytest.raises(ValueError):
        analyze_slice_trace([])


def test_analyze_real_controller_trace():
    """End to end: the recorded ATC trace is a clean, settling ramp."""
    from repro.experiments.harness import CloudWorld, WorldConfig
    from repro.schedulers.atc_sched import ATCParams
    from repro.sim.units import SEC

    world = CloudWorld(
        WorldConfig(n_nodes=2, scheduler="ATC", seed=0, sched_params=ATCParams(record_series=True))
    )
    for k in range(4):
        vc = world.virtual_cluster(2, name=f"vc{k}")
        world.add_npb("lu", vc.vms, rounds=None, warmup_rounds=0)
    world.run(horizon_ns=2 * SEC)
    ctrl = world.vmms[0].scheduler.controller
    r = analyze_slice_trace(ctrl.slice_history)
    assert r.final_ns == ctrl.cfg.min_threshold_ns
    assert r.settled_at_ns is not None
    assert r.settled_at_ns < 1 * SEC  # converges in under a second
    assert r.reversals <= 2
