"""Event-queue backends: BucketQueue unit behaviour, fire-and-forget
``post_*`` scheduling, and heap-vs-bucket differential bit-identity.

The engine-semantics suite (``test_engine.py``) already runs every
contract test on both backends via the parametrized ``sim`` fixture;
this module covers what that cannot: the calendar queue's internal
epoch/resize machinery, the handle-free ``post_at``/``post_after`` API,
and end-to-end differential runs of a full scenario under each backend.
"""

import pytest

from repro.obs.profiler import SimProfiler
from repro.sim.engine import (
    EVENT_QUEUE_KINDS,
    BucketQueue,
    SimulationError,
    Simulator,
)
from repro.sim.rng import SimRNG


# ----------------------------------------------------------------------
# BucketQueue unit behaviour
# ----------------------------------------------------------------------
def test_bucket_queue_pops_in_time_seq_order():
    q = BucketQueue(width=10, nbuckets=4)
    entries = [(37, 0, "a"), (5, 1, "b"), (5, 2, "c"), (1000, 3, "d"), (37, 4, "e")]
    for e in entries:
        q.push(e)
    assert len(q) == 5
    assert [q.pop() for _ in range(5)] == sorted(entries)
    assert len(q) == 0


def test_bucket_queue_peek_does_not_consume():
    q = BucketQueue(width=10, nbuckets=4)
    q.push((25, 0, "x"))
    assert q.peekentry() == (25, 0, "x")
    assert q.peekentry() == (25, 0, "x")
    assert len(q) == 1
    assert q.pop() == (25, 0, "x")
    assert q.peekentry() is None


def test_bucket_queue_handles_epoch_collisions():
    """Distant epochs hash to the same circular bucket; _advance must pick
    only the entries of the epoch it lands on, keeping the rest queued."""
    q = BucketQueue(width=10, nbuckets=4)
    # epochs 1 and 5 both map to bucket index 1 (nbuckets=4)
    q.push((12, 0, "early"))
    q.push((53, 1, "late"))
    assert q.pop() == (12, 0, "early")
    assert q.pop() == (53, 1, "late")


def test_bucket_queue_sparse_far_future_fallback():
    """An epoch gap wider than the bucket array triggers the direct-min
    fallback instead of scanning forever."""
    q = BucketQueue(width=10, nbuckets=4)
    q.push((10_000_000, 0, "far"))
    q.push((20_000_000, 1, "farther"))
    assert q.pop() == (10_000_000, 0, "far")
    assert q.pop() == (20_000_000, 1, "farther")


def test_bucket_queue_resize_preserves_order():
    """Pushing past 2x nbuckets grows the array; order must survive."""
    q = BucketQueue(width=8, nbuckets=2)
    rng = SimRNG(42)
    entries = [(int(rng.random() * 100_000), i, i) for i in range(200)]
    for e in entries:
        q.push(e)
    assert q._n > 2  # the resize actually happened
    assert [q.pop() for _ in range(len(entries))] == sorted(entries)


def test_bucket_queue_rejects_bad_geometry():
    with pytest.raises(SimulationError):
        BucketQueue(width=0)
    with pytest.raises(SimulationError):
        BucketQueue(nbuckets=3)  # not a power of two
    with pytest.raises(SimulationError):
        BucketQueue(nbuckets=1)


def test_unknown_queue_backend_rejected():
    with pytest.raises(SimulationError):
        Simulator(queue="splay")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_EVENT_QUEUE", "bucket")
    assert Simulator().queue_kind == "bucket"
    monkeypatch.delenv("REPRO_EVENT_QUEUE")
    assert Simulator().queue_kind == "heap"


# ----------------------------------------------------------------------
# Fire-and-forget post_at / post_after
# ----------------------------------------------------------------------
@pytest.mark.parametrize("queue", EVENT_QUEUE_KINDS)
def test_post_at_fires_in_fifo_order_with_at(queue):
    sim = Simulator(queue=queue)
    order = []
    # deliberate same-instant appends asserting at/post_at FIFO interleave
    sim.at(10, lambda: order.append("a"))  # repro: ignore[RPR040,RPR041]
    sim.post_at(10, lambda: order.append("b"))
    sim.at(10, lambda: order.append("c"))  # repro: ignore[RPR040,RPR041]
    sim.post_at(5, lambda: order.append("first"))
    sim.run()
    assert order == ["first", "a", "b", "c"]
    assert sim.events_processed == 4


@pytest.mark.parametrize("queue", EVENT_QUEUE_KINDS)
def test_post_rejects_past_and_negative(queue):
    sim = Simulator(queue=queue)
    sim.at(50, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post_at(10, lambda: None)
    with pytest.raises(SimulationError):
        sim.post_after(-1, lambda: None)


def test_posted_entries_are_invisible_to_live_events(sim):
    sim.at(10, lambda: None, cat="handled")
    sim.post_at(10, lambda: None, cat="posted")
    cats = [ev.cat for ev in sim.live_events()]
    assert cats == ["handled"]
    assert sim.pending() == 2  # but both count as pending work


def test_posted_entries_carry_profiler_category():
    sim = Simulator()
    prof = SimProfiler(sim)
    sim.post_at(10, lambda: None, cat="net")
    sim.post_after(20, lambda: None, cat="net")
    sim.run()
    cats = prof.report()["categories"]
    assert cats["net"]["calls"] == 2


# ----------------------------------------------------------------------
# Profiler depth accounting (regression)
# ----------------------------------------------------------------------
def test_profiler_depth_includes_running_event():
    """Regression: depth was sampled *after* the pop, so a queue that
    peaked at N events reported N-1.  The loop now passes len(queue)+1
    (pending plus the event being executed)."""
    sim = Simulator()
    prof = SimProfiler(sim)
    for i in range(5):
        sim.at(10 * (i + 1), lambda: None, cat="x")
    sim.run()
    assert prof.report()["max_heap_depth"] == 5


def test_profiler_depth_exact_with_posted_entries():
    sim = Simulator()
    prof = SimProfiler(sim)
    sim.post_at(10, lambda: None)
    sim.post_at(20, lambda: None)
    sim.post_at(30, lambda: None)
    sim.run()
    assert prof.report()["max_heap_depth"] == 3


# ----------------------------------------------------------------------
# Differential: both backends are bit-identical
# ----------------------------------------------------------------------
def _churn(queue: str):
    """A cancel-heavy, reschedule-heavy workload driven by a fixed RNG."""
    sim = Simulator(queue=queue)
    rng = SimRNG(7)
    log = []
    handles = []

    def fire(i):
        log.append((sim.now, i))
        if rng.random() < 0.5:
            j = len(handles)
            handles.append(sim.after(int(rng.random() * 5_000), lambda: fire(j)))
        if handles and rng.random() < 0.3:
            handles[int(rng.random() * len(handles))].cancel()

    for i in range(200):
        t = int(rng.random() * 50_000)
        handles.append(sim.at(t, lambda i=i: fire(i)))
        if rng.random() < 0.2:
            sim.post_at(t + 1, lambda i=i: log.append((sim.now, "post", i)))
    sim.run()
    return log, sim.now, sim.events_processed, sim.cancelled_popped


def test_backends_bit_identical_on_churn_workload():
    assert _churn("heap") == _churn("bucket")


def test_backends_bit_identical_on_type_a_cell():
    """Full-scenario differential: a sanitized evaluation-type-A cell must
    produce the identical result dict — every metric *and* the event
    count — on both queue backends."""
    from repro.experiments.scenarios import run_type_a

    kwargs = dict(
        rounds=1, warmup_rounds=0, horizon_s=4.0, seed=0, sanitize=True
    )
    r_heap = run_type_a("is", "ATC", 2, event_queue="heap", **kwargs)
    r_bucket = run_type_a("is", "ATC", 2, event_queue="bucket", **kwargs)
    assert r_heap["events"] > 0
    assert r_heap == r_bucket


def test_world_config_event_queue_reaches_simulator():
    from repro.experiments.harness import CloudWorld, WorldConfig

    world = CloudWorld(WorldConfig(n_nodes=1, event_queue="bucket"))
    assert world.sim.queue_kind == "bucket"
