"""Tests for workload models: BSP specs, NPB table, ParallelApp batch
coordination, peer patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC, USEC
from repro.workloads.base import BSPSpec, ParallelApp, _peer_indices, bsp_rank_program
from repro.workloads.npb import CLASS_SCALES, NPB_NAMES, NPB_SPECS, npb_spec

from tests.conftest import add_guest_vm, make_node_world


# ----------------------------------------------------------------------
# Peer patterns
# ----------------------------------------------------------------------
def test_peers_none_pattern():
    assert _peer_indices("none", 0, 4) == []
    assert _peer_indices("ring", 0, 1) == []


def test_peers_ring():
    assert _peer_indices("ring", 0, 2) == [1]  # left == right deduped
    assert _peer_indices("ring", 1, 4) == [0, 2]
    assert _peer_indices("ring", 0, 4) == [3, 1]


def test_peers_alltoall():
    assert _peer_indices("alltoall", 1, 4) == [0, 2, 3]


def test_peers_unknown_pattern():
    with pytest.raises(ValueError):
        _peer_indices("mesh", 0, 4)


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
def test_npb_table_complete():
    from repro.workloads.npb import NPB_EXTENDED

    assert set(NPB_EXTENDED) == set(NPB_SPECS)
    assert set(NPB_NAMES) <= set(NPB_SPECS)  # the paper's six
    for name, spec in NPB_SPECS.items():
        assert spec.name == name
        assert spec.grain_ns > 0 and spec.supersteps > 0
        assert spec.pattern in ("ring", "alltoall", "none")


def test_npb_sensitivity_ordering():
    """lu/cg have the finest grains (most scheduler-sensitive), is the
    coarsest — the ordering behind the paper's 1.5-10x spread."""
    g = {n: NPB_SPECS[n].grain_ns for n in NPB_NAMES}
    assert g["lu"] <= min(g["sp"], g["bt"], g["mg"], g["is"])
    assert g["is"] == max(g.values())


def test_npb_class_scaling():
    b = npb_spec("lu", "B")
    c = npb_spec("lu", "C")
    a = npb_spec("lu", "A")
    assert c.grain_ns == 2 * b.grain_ns
    assert a.grain_ns == b.grain_ns // 2
    assert c.supersteps > b.supersteps > a.supersteps
    assert npb_spec("lu", "b").grain_ns == b.grain_ns  # case-insensitive


def test_npb_unknown_inputs():
    with pytest.raises(KeyError):
        npb_spec("linpack")
    with pytest.raises(KeyError):
        npb_spec("lu", "D")


def test_spec_scaled_preserves_flags():
    s = npb_spec("is", "C")
    assert s.hard_comm_sync is True
    assert s.pattern == "alltoall"


@given(st.floats(min_value=0.1, max_value=10), st.floats(min_value=0.1, max_value=10))
def test_scaled_positive(gm, sm):
    s = NPB_SPECS["lu"].scaled(gm, sm)
    assert s.grain_ns >= 1 and s.supersteps >= 1


# ----------------------------------------------------------------------
# Program structure
# ----------------------------------------------------------------------
def test_rank0_does_comm_others_do_not():
    spec = BSPSpec("t", grain_ns=MSEC, grain_cv=0, supersteps=4, pattern="ring",
                   msg_bytes=100, comm_every=1, hard_comm_sync=True)

    class FakeVM:
        pass

    vms = [FakeVM(), FakeVM(), FakeVM()]
    from repro.guest.spinlock import SpinBarrier

    bar = SpinBarrier(2)
    rng = SimRNG(0)
    segs0 = list(bsp_rank_program(spec, vms, 0, 0, bar, rng))
    segs1 = list(bsp_rank_program(spec, vms, 0, 1, bar, rng))
    kinds0 = [s[0] for s in segs0]
    kinds1 = [s[0] for s in segs1]
    assert "send" in kinds0 and "recv" in kinds0
    assert "send" not in kinds1 and "recv" not in kinds1
    # hard sync: both ranks see the post-comm barrier
    assert kinds0.count("barrier") == kinds1.count("barrier") == 8


def test_pipelined_program_skips_post_comm_barrier():
    spec = BSPSpec("t", grain_ns=MSEC, grain_cv=0, supersteps=4, pattern="ring",
                   msg_bytes=100, comm_every=1, hard_comm_sync=False)

    class FakeVM:
        pass

    from repro.guest.spinlock import SpinBarrier

    segs = list(bsp_rank_program(spec, [FakeVM(), FakeVM()], 0, 1, SpinBarrier(2), SimRNG(0)))
    assert [s[0] for s in segs].count("barrier") == 4


def test_comm_every_reduces_exchanges():
    spec = BSPSpec("t", grain_ns=MSEC, grain_cv=0, supersteps=6, pattern="ring",
                   msg_bytes=100, comm_every=3)

    class FakeVM:
        pass

    from repro.guest.spinlock import SpinBarrier

    segs = list(bsp_rank_program(spec, [FakeVM(), FakeVM()], 0, 0, SpinBarrier(1), SimRNG(0)))
    assert [s[0] for s in segs].count("send") == 2  # steps 0 and 3


# ----------------------------------------------------------------------
# ParallelApp
# ----------------------------------------------------------------------
def tiny_spec(steps=3):
    return BSPSpec("tiny", grain_ns=200 * USEC, grain_cv=0.0, supersteps=steps,
                   pattern="ring", msg_bytes=256)


def test_parallel_app_runs_rounds_and_records_times():
    sim, cluster, vmms = make_node_world(n_nodes=2, n_pcpus=2)
    vms = [add_guest_vm(vmms[i], 2, is_parallel=True) for i in range(2)]
    app = ParallelApp(sim, tiny_spec(), vms, SimRNG(1), rounds=3, warmup_rounds=1)
    done = []
    app.on_complete = lambda a: done.append(sim.now)
    for vmm in vmms:
        vmm.start()
    app.start()
    sim.run(until=60 * SEC)
    assert app.finished
    assert len(app.round_times) == 3
    assert app.rounds_completed == 4  # 1 warmup + 3 measured
    assert all(t > 0 for t in app.round_times)
    assert app.mean_round_ns == sum(app.round_times) / 3
    assert done


def test_parallel_app_single_vm_no_comm():
    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=2)
    vm = add_guest_vm(vmms[0], 2, is_parallel=True)
    app = ParallelApp(sim, tiny_spec(), [vm], SimRNG(1), rounds=2, warmup_rounds=0)
    vmms[0].start()
    app.start()
    sim.run(until=60 * SEC)
    assert app.finished
    assert cluster.fabric.messages_sent == 0  # no peers -> no comm


def test_parallel_app_requires_kernel():
    sim, cluster, vmms = make_node_world()
    from repro.hypervisor.vm import VM

    vm = VM(vmms[0].node, 1)
    vmms[0].add_vm(vm)
    with pytest.raises(ValueError):
        ParallelApp(sim, tiny_spec(), [vm], SimRNG(0))


def test_parallel_app_procs_per_vm_override():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 4, is_parallel=True)
    app = ParallelApp(sim, tiny_spec(), [vm], SimRNG(0), procs_per_vm=2, rounds=1)
    assert app.n_ranks == 2


def test_parallel_app_background_mode_repeats_forever():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 2, is_parallel=True)
    app = ParallelApp(sim, tiny_spec(1), [vm], SimRNG(0), rounds=None, warmup_rounds=0)
    vmms[0].start()
    app.start()
    sim.run(until=2 * SEC)
    assert not app.finished
    assert app.rounds_completed > 10


def test_mean_round_nan_without_rounds():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 2, is_parallel=True)
    app = ParallelApp(sim, tiny_spec(), [vm], SimRNG(0), rounds=1)
    assert app.mean_round_ns != app.mean_round_ns  # NaN
