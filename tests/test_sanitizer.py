"""Runtime invariant sanitizer: violation detection + bit-identity."""

from __future__ import annotations

import pytest

from repro.analysis.sanitizer import SanitizerViolationError, SimSanitizer, Violation
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.runner import SCENARIOS, RunSpec, _execute_cell
from repro.experiments.scenarios import run_type_a
from repro.hypervisor.vm import VCPUState
from repro.schedulers.atc_sched import ATCScheduler
from repro.sim.engine import Simulator
from repro.sim.units import MSEC

from .conftest import add_guest_vm, make_node_world


def _sanitized_world(scheduler_factory=None):
    sim, cluster, vmms = make_node_world(scheduler_factory=scheduler_factory)
    vm = add_guest_vm(vmms[0], n_vcpus=2)
    san = SimSanitizer(sim, vmms)
    return sim, vmms[0], vm, san


# ----------------------------------------------------------------------
# SAN001: event-time monotonicity
# ----------------------------------------------------------------------
def test_monotonic_trace_violation():
    sim = Simulator()
    san = SimSanitizer(sim, [])
    sim.trace(100, lambda: None)
    sim.trace(50, lambda: None)
    assert [v.code for v in san.violations] == ["SAN001"]
    with pytest.raises(SanitizerViolationError) as exc:
        san.check()
    assert exc.value.violations[0].code == "SAN001"


def test_trace_hook_chains_previous():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, fn: seen.append(t)
    SimSanitizer(sim, [])
    sim.trace(7, lambda: None)
    assert seen == [7]


def test_clean_simulation_records_nothing():
    sim = Simulator()
    san = SimSanitizer(sim, [])
    done = []
    sim.at(10, lambda: done.append(1))
    sim.at(20, lambda: done.append(2))
    sim.run()
    san.check()  # does not raise
    assert done == [1, 2] and san.violations == []


# ----------------------------------------------------------------------
# SAN002: VCPU state machine at scheduler decision points
# ----------------------------------------------------------------------
def test_on_wake_with_running_vcpu_flagged():
    sim, vmm, vm, san = _sanitized_world()
    vcpu = vm.vcpus[0]
    vcpu.state = VCPUState.RUNNING
    # The VMM's own dispatch guard also trips further down the wake path;
    # the sanitizer must have recorded the root cause first.
    with pytest.raises(RuntimeError):
        vmm.scheduler.on_wake(vcpu)
    assert "SAN002" in [v.code for v in san.violations]
    assert san.violations[0].context["where"] == "on_wake"


def test_on_block_with_runnable_vcpu_flagged():
    sim, vmm, vm, san = _sanitized_world()
    vcpu = vm.vcpus[0]
    vcpu.state = VCPUState.RUNNABLE
    vmm.scheduler.on_block(vcpu)
    assert [v.code for v in san.violations] == ["SAN002"]


def test_legal_wake_not_flagged():
    sim, vmm, vm, san = _sanitized_world()
    vcpu = vm.vcpus[0]
    vcpu.state = VCPUState.RUNNABLE
    vmm.scheduler.on_wake(vcpu)
    assert san.violations == []


# ----------------------------------------------------------------------
# SAN003: per-period credit conservation
# ----------------------------------------------------------------------
def test_credit_drift_detected():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], n_vcpus=2)
    sched = vmms[0].scheduler
    real_on_period = sched.on_period

    def corrupted_on_period(now):
        real_on_period(now)
        vm.vcpus[0].credit += 1e9  # inject accounting drift

    sched.on_period = corrupted_on_period
    san = SimSanitizer(sim, vmms)
    for v in vm.vcpus:
        v.state = VCPUState.RUNNABLE
    sched.on_period(0)
    assert "SAN003" in [v.code for v in san.violations]


def test_correct_accounting_passes():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], n_vcpus=2)
    san = SimSanitizer(sim, vmms)
    for v in vm.vcpus:
        v.state = VCPUState.RUNNABLE
        v.period_run_ns = 5 * MSEC
    vmms[0].scheduler.on_period(0)
    assert san.violations == []


# ----------------------------------------------------------------------
# SAN004 / SAN005: ATC slice bounds and latency sign
# ----------------------------------------------------------------------
def _atc_world():
    sim, cluster, vmms = make_node_world(
        scheduler_factory=lambda vmm: ATCScheduler(vmm)
    )
    vm = add_guest_vm(vmms[0], n_vcpus=2, is_parallel=True)
    san = SimSanitizer(sim, vmms)
    return sim, vmms[0], vm, san


def test_atc_slice_out_of_bounds_flagged():
    sim, vmm, vm, san = _atc_world()
    vm.slice_ns = 1  # far below min_threshold_ns
    vmm.period_hooks[-1](0)  # the sanitizer's ATC hook
    assert "SAN004" in [v.code for v in san.violations]


def test_negative_latency_flagged():
    sim, vmm, vm, san = _atc_world()
    st = vmm.scheduler.controller.monitor.state_for(vm)
    st.latencies.append(-5.0)
    vmm.period_hooks[-1](0)
    assert "SAN005" in [v.code for v in san.violations]


def test_atc_slice_within_bounds_ok():
    sim, vmm, vm, san = _atc_world()
    vm.slice_ns = 6 * MSEC
    vmm.period_hooks[-1](0)
    assert san.violations == []


# ----------------------------------------------------------------------
# Violation bookkeeping
# ----------------------------------------------------------------------
def test_max_violations_caps_storage():
    sim = Simulator()
    san = SimSanitizer(sim, [], max_violations=3)
    for i in range(10):
        san.record("SAN001", f"v{i}")
    assert len(san.violations) == 3
    assert san.total_violations == 10


def test_violation_to_dict_roundtrip():
    v = Violation(code="SAN002", time_ns=42, message="m", context={"vcpu": "x"})
    assert v.to_dict() == {
        "code": "SAN002",
        "time_ns": 42,
        "message": "m",
        "context": {"vcpu": "x"},
    }
    assert "SAN002" in v.format() and "@t=42" in v.format()


# ----------------------------------------------------------------------
# Harness / runner integration
# ----------------------------------------------------------------------
def test_world_run_raises_on_violation():
    world = CloudWorld(WorldConfig(n_nodes=1, sanitize=True))
    assert world.sanitizer is not None
    world.sanitizer.record("SAN001", "injected")
    with pytest.raises(SanitizerViolationError):
        world.run(horizon_ns=1 * MSEC)


def test_world_without_sanitize_has_no_sanitizer():
    world = CloudWorld(WorldConfig(n_nodes=1))
    assert world.sanitizer is None


def test_runspec_cache_key_backward_compatible():
    plain = RunSpec("type_a", {"app_name": "is", "scheduler": "CR", "n_nodes": 2})
    sane = RunSpec(
        "type_a", {"app_name": "is", "scheduler": "CR", "n_nodes": 2}, sanitize=True
    )
    assert "sanitize" not in plain.key()
    assert '"sanitize":true' in sane.key()
    assert plain.digest("salt") != sane.digest("salt")
    assert "sanitize" not in plain.to_dict()
    assert sane.to_dict()["sanitize"] is True


def test_execute_cell_reports_violations_without_retry(monkeypatch):
    calls = []

    def boom(**kwargs):
        calls.append(kwargs)
        raise SanitizerViolationError(
            [Violation(code="SAN003", time_ns=9, message="drift")]
        )

    monkeypatch.setitem(SCENARIOS, "boom", boom)
    payload = _execute_cell(RunSpec("boom", {}, sanitize=True), retries=3)
    assert payload["ok"] is False
    assert payload["attempts"] == 1  # deterministic failure: no retry
    assert payload["error"]["type"] == "SanitizerViolationError"
    assert payload["error"]["violations"] == [
        {"code": "SAN003", "time_ns": 9, "message": "drift", "context": {}}
    ]
    assert calls == [{"sanitize": True}]


# ----------------------------------------------------------------------
# Same-seed bit-identity regression (acceptance criterion)
# ----------------------------------------------------------------------
def test_sanitized_run_is_bit_identical():
    plain = run_type_a("is", "ATC", 2, rounds=1, horizon_s=20.0, seed=3)
    sane = run_type_a("is", "ATC", 2, rounds=1, horizon_s=20.0, seed=3, sanitize=True)
    assert plain == sane
