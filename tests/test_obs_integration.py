"""Integration tests for the observability layer: engine hooks, bit-identity,
cache-key folding, and the ``repro trace`` / ``repro perf`` CLI verbs."""

from __future__ import annotations

import json

from repro.cli import main
from repro.experiments.runner import RunSpec, _execute_cell
from repro.experiments.scenarios import run_packet_path_probe, run_type_a
from repro.obs.trace import TraceLog
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# Engine trace hook fires on both execution paths (step and run)
# ----------------------------------------------------------------------
def test_trace_hook_fires_in_step_path():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, fn: seen.append(t)
    sim.at(10, lambda: None)
    sim.at(20, lambda: None)
    assert sim.step() and sim.step()
    assert seen == [10, 20]


def test_trace_hook_fires_in_run_path():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, fn: seen.append(t)
    sim.at(10, lambda: None)
    sim.at(20, lambda: None)
    sim.run()
    assert seen == [10, 20]


# ----------------------------------------------------------------------
# Traced / profiled runs are bit-identical to plain runs
# ----------------------------------------------------------------------
def _type_a(**extra):
    return run_type_a("is", "ATC", 2, rounds=1, warmup_rounds=0,
                      horizon_s=4.0, seed=3, **extra)


def test_traced_type_a_bit_identical():
    plain = _type_a()
    traced = _type_a(trace=True)
    tr = traced.pop("trace")
    assert traced == plain
    # and the trace actually observed the run
    assert tr["total"] > 0
    assert len(tr["by_kind"]) >= 5


def test_profiled_type_a_bit_identical():
    plain = _type_a()
    profiled = _type_a(profile=True)
    prof = profiled.pop("profile")
    assert profiled == plain
    assert prof["events"] > 0 and prof["events_per_sec"] > 0


def test_traced_probe_bit_identical():
    plain = run_packet_path_probe("CR", n_probes=5, horizon_s=5.0)
    traced = run_packet_path_probe("CR", n_probes=5, horizon_s=5.0, trace=True)
    tr = traced.pop("trace")
    assert traced == plain
    assert tr["by_kind"].get("pkt.hop", 0) > 0


def test_trace_capacity_bounds_retained_records():
    traced = _type_a(trace=True, trace_capacity=16)
    tr = traced["trace"]
    assert tr["retained"] == 16
    assert tr["dropped"] == tr["total"] - 16
    assert len(tr["records"]) == 16


# ----------------------------------------------------------------------
# RunSpec cache-key folding (same pattern as sanitize)
# ----------------------------------------------------------------------
def test_runspec_trace_profile_fold_into_key_only_when_set():
    params = {"app_name": "is", "scheduler": "CR", "n_nodes": 2}
    plain = RunSpec("type_a", params)
    assert plain.digest() == RunSpec("type_a", params, trace=False, profile=False).digest()
    traced = RunSpec("type_a", params, trace=True)
    profiled = RunSpec("type_a", params, profile=True)
    assert len({plain.digest(), traced.digest(), profiled.digest()}) == 3
    assert '"trace":true' in traced.key()
    assert "trace" not in plain.key()
    d = traced.to_dict()
    assert d["trace"] is True and "profile" not in d


def test_execute_cell_attaches_trace():
    spec = RunSpec("type_a", {"app_name": "is", "scheduler": "CR", "n_nodes": 2,
                              "rounds": 1, "warmup_rounds": 0, "horizon_s": 4.0},
                   trace=True)
    result = _execute_cell(spec)
    assert result["ok"]
    assert result["value"]["trace"]["total"] > 0


# ----------------------------------------------------------------------
# CLI verbs
# ----------------------------------------------------------------------
def test_trace_command(tmp_path, capsys):
    prefix = tmp_path / "tr"
    rc = main(["trace", "--app", "is", "--scheduler", "ATC", "--slice", "30",
               "--horizon", "4", "--out", str(prefix)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "sched.dispatch" in out and "total" in out

    jsonl = (tmp_path / "tr.jsonl").read_text().splitlines()
    assert jsonl
    kinds = {json.loads(line)["kind"] for line in jsonl}
    assert len(kinds) >= 5
    assert kinds <= set(TraceLog.KINDS)

    doc = json.loads((tmp_path / "tr.trace.json").read_text())
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"B", "E", "M"} <= phases


def test_perf_command_quick(tmp_path, capsys):
    out_dir = tmp_path / "perf"
    rc = main(["perf", "--quick", "--cases", "engine", "--out", str(out_dir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "events/sec" in out or "events per sec" in out
    doc = json.loads((out_dir / "BENCH_perf_engine.json").read_text())
    assert doc["events_per_sec"] > 0 and doc["events"] > 0


def test_perf_command_check_failure(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "cases": {"engine": {"events_per_sec": 1e15}},
    }))
    rc = main(["perf", "--quick", "--cases", "engine",
               "--out", str(tmp_path / "out"), "--check", str(baseline)])
    assert rc == 1
    assert "PERF REGRESSION" in capsys.readouterr().err


def test_perf_command_write_baseline(tmp_path):
    base = tmp_path / "base.json"
    rc = main(["perf", "--quick", "--cases", "engine",
               "--out", str(tmp_path / "out"), "--write-baseline", str(base)])
    assert rc == 0
    doc = json.loads(base.read_text())
    assert doc["version"] == 1 and "engine" in doc["cases"]


def test_perf_command_unknown_case(tmp_path, capsys):
    rc = main(["perf", "--quick", "--cases", "bogus", "--out", str(tmp_path)])
    assert rc == 2
