"""Smoke tests for the per-figure scenario builders (tiny configurations)."""

import math

import pytest

from repro.experiments.reporting import format_normalized, format_table
from repro.experiments.scenarios import (
    run_packet_path_probe,
    run_slice_sweep,
    run_small_mix,
    run_type_a,
    run_type_b,
    run_type_b_mixed,
)


def test_type_a_returns_complete_result():
    r = run_type_a("is", "CR", n_nodes=2, rounds=1, warmup_rounds=0, horizon_s=120)
    assert r["scheduler"] == "CR"
    assert r["app"] == "is"
    assert r["all_done"]
    assert r["mean_round_ns"] > 0
    assert r["rounds_measured"] == 4  # 4 virtual clusters x 1 round
    assert r["cluster"]["busy_ns"] > 0


def test_slice_sweep_rows():
    r = run_slice_sweep("is", [30, 1], n_nodes=2, rounds=1, warmup_rounds=0)
    assert len(r["rows"]) == 2
    for row in r["rows"]:
        assert row["all_done"]
        assert row["mean_round_ns"] > 0
        assert row["context_switches"] > 0
    # shorter slice -> lower spin latency
    assert r["rows"][1]["avg_spin_ns"] < r["rows"][0]["avg_spin_ns"]


def test_small_mix_returns_all_metrics():
    r = run_small_mix("CR", horizon_s=5.0)
    for key in (
        "sphinx3_mean_run_ns",
        "stream_bandwidth_Bps",
        "bonnie_throughput_Bps",
        "ping_mean_rtt_ns",
        "parallel_mean_round_ns",
    ):
        assert math.isfinite(r[key]), key
    assert r["ping_samples"] > 0


def test_small_mix_uniform_slice_mode():
    r = run_small_mix("CR", horizon_s=1.0, uniform_slice_ms=6.0)
    assert r["uniform_slice_ms"] == 6.0
    assert math.isfinite(r["ping_mean_rtt_ns"])


def test_type_b_builds_trace_mix():
    r = run_type_b("CR", n_nodes=4, horizon_s=2.0, seed=3)
    assert r["vcs"], "no virtual clusters built"
    assert all(vc["n_vms"] >= 2 for vc in r["vcs"])
    assert r["independents"]


def test_type_b_mixed_returns_nonparallel_metrics():
    r = run_type_b_mixed("CR", n_nodes=4, horizon_s=2.0, seed=3)
    assert math.isfinite(r["webserver_mean_response_ns"])
    assert math.isfinite(r["ping_mean_rtt_ns"])
    assert math.isfinite(r["gcc_mean_run_ns"])
    assert r["vcs"]


def test_type_b_mixed_admin_slice():
    r = run_type_b_mixed("ATC", n_nodes=4, horizon_s=2.0, seed=3, atc_np_slice_ms=6.0)
    assert r["atc_np_slice_ms"] == 6.0


def test_packet_path_probe_measures_all_hops():
    r = run_packet_path_probe("CR", n_probes=20, horizon_s=3.0)
    assert r["probes"] > 0
    for key in (
        "mean_netback_tx_wait_ns",
        "mean_wire_ns",
        "mean_netback_rx_wait_ns",
        "mean_consume_wait_ns",
        "mean_end_to_end_ns",
    ):
        assert r[key] >= 0, key
    assert r["mean_end_to_end_ns"] >= r["mean_wire_ns"]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "2.500" in out


def test_format_normalized():
    out = format_normalized({"CR": 10.0, "ATC": 2.5})
    assert "0.250" in out and "1.000" in out
