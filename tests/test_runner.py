"""Tests for the parallel sweep runner (repro.experiments.runner)."""

import json

import pytest

from repro.experiments.runner import (
    RunSpec,
    code_salt,
    export_json,
    run_sweep,
    sweep_stats,
)

# Cheap, deterministic cells: each builds its own world + seeded RNG.
CELLS = [
    RunSpec("type_a", dict(app_name="is", scheduler=sched, n_nodes=2,
                           rounds=1, warmup_rounds=0, seed=3))
    for sched in ("CR", "BS", "CS", "ATC")
]


def test_spec_rejects_unknown_scenario():
    with pytest.raises(KeyError):
        RunSpec("no_such_scenario", {})


def test_spec_rejects_unserializable_params():
    with pytest.raises(TypeError):
        RunSpec("type_a", {"app_name": object()})


def test_spec_digest_changes_with_params_and_salt():
    a = RunSpec("type_a", {"app_name": "is", "seed": 0})
    b = RunSpec("type_a", {"app_name": "is", "seed": 1})
    assert a.digest() != b.digest()
    assert a.digest(salt="x") != a.digest(salt="y")
    assert a.digest() == RunSpec("type_a", {"seed": 0, "app_name": "is"}).digest()


def test_default_label_is_informative():
    spec = RunSpec("type_a", {"app_name": "is"})
    assert "type_a" in spec.label and "app_name=is" in spec.label


def test_parallel_results_bit_identical_to_serial(tmp_path):
    serial = run_sweep(CELLS, jobs=1, use_cache=False)
    parallel = run_sweep(CELLS, jobs=4, use_cache=False)
    assert [r.spec.key() for r in serial] == [r.spec.key() for r in parallel]
    for s, p in zip(serial, parallel):
        assert s.ok and p.ok
        assert not s.cached and not p.cached
        assert s.value == p.value  # bit-identical cells, any worker count


def test_cache_hit_on_repeat_and_miss_after_change(tmp_path):
    cache = tmp_path / "cache"
    cold = run_sweep(CELLS[:2], jobs=1, cache_dir=cache)
    assert all(not r.cached for r in cold)
    warm = run_sweep(CELLS[:2], jobs=1, cache_dir=cache)
    assert all(r.cached for r in warm)
    assert [r.value for r in warm] == [r.value for r in cold]
    # Changing any config field is a different cell -> cache miss.
    changed = RunSpec("type_a", dict(CELLS[0].params, seed=4))
    (miss,) = run_sweep([changed], jobs=1, cache_dir=cache)
    assert not miss.cached


def test_warm_cache_skips_simulation_work(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(CELLS[:1], jobs=1, cache_dir=cache)
    (warm,) = run_sweep(CELLS[:1], jobs=1, cache_dir=cache)
    assert warm.cached and warm.wall_s == 0.0 and warm.attempts == 1


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = tmp_path / "cache"
    run_sweep(CELLS[:1], jobs=1, cache_dir=cache)
    for f in cache.glob("*.json"):
        f.write_text("{not json", encoding="utf-8")
    (r,) = run_sweep(CELLS[:1], jobs=1, cache_dir=cache)
    assert r.ok and not r.cached


def test_worker_failure_yields_structured_record(tmp_path):
    bad = RunSpec("slice_sweep", {"app_name": "not-a-kernel", "slice_ms_values": [6]})
    specs = [CELLS[0], bad, CELLS[1]]
    results = run_sweep(specs, jobs=2, use_cache=False)
    assert [r.ok for r in results] == [True, False, True]  # sweep survives
    err = results[1].error
    assert err["type"] == "KeyError"
    assert "not-a-kernel" in err["message"]
    assert "Traceback" in err["traceback"]
    assert err["attempts"] == 2  # one retry before giving up
    # Failures are never cached.
    rerun = run_sweep([bad], jobs=1, cache_dir=tmp_path / "cache")
    assert not rerun[0].ok and not rerun[0].cached


def test_progress_callback_sees_every_cell():
    seen = []
    run_sweep(CELLS[:2], jobs=1, use_cache=False,
              progress=lambda done, total, r: seen.append((done, total, r.ok)))
    assert seen == [(1, 2, True), (2, 2, True)]


def test_sweep_stats_and_export(tmp_path):
    results = run_sweep(CELLS[:2], jobs=1, use_cache=False)
    stats = sweep_stats(results)
    assert stats["cells"] == 2 and stats["ok"] == 2 and stats["failed"] == 0
    assert stats["events"] > 0 and stats["wall_s"] > 0
    out = tmp_path / "sweep.json"
    export_json(results, out)
    payload = json.loads(out.read_text())
    assert payload["code_salt"] == code_salt()
    assert len(payload["results"]) == 2
    assert payload["results"][0]["value"]["scheduler"] == "CR"


def test_cli_jobs_matches_serial(tmp_path, capsys):
    from repro.cli import main

    argv = ["sweep", "--app", "is", "--slices", "30,6", "--no-cache"]
    assert main(argv) == 0
    serial = capsys.readouterr().out
    assert main(argv + ["--jobs", "2"]) == 0
    parallel = capsys.readouterr().out
    assert serial == parallel


def test_cli_json_export_and_cache(tmp_path, monkeypatch, capsys):
    from repro.cli import main

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "results.json"
    argv = ["typea", "--app", "is", "--rounds", "1", "--json", str(out)]
    assert main(argv) == 0
    cold = json.loads(out.read_text())
    assert cold["results"][0]["cached"] is False
    assert main(argv) == 0
    warm = json.loads(out.read_text())
    assert warm["results"][0]["cached"] is True
    assert warm["results"][0]["value"] == cold["results"][0]["value"]
    capsys.readouterr()
