"""Tests for the non-intrusive run-queue-wait monitor (the paper's
future-work variant: no guest instrumentation)."""

import pytest

from repro.core.config import ATCConfig
from repro.core.monitor import SpinLatencyMonitor
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.schedulers.atc_sched import ATCParams
from repro.sim.units import MSEC, SEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def test_config_validates_monitor_mode():
    ATCConfig(monitor_mode="guest")
    ATCConfig(monitor_mode="queuewait")
    with pytest.raises(ValueError):
        ATCConfig(monitor_mode="telepathy")


def test_vmm_accounts_queue_wait():
    from repro.guest.process import compute

    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    vms = [add_guest_vm(vmm, 1, name=f"v{i}") for i in range(2)]
    for vm in vms:
        p = vm.kernel.add_process()

        def hog():
            while True:
                yield compute(10 * MSEC)

        p.load_program(hog())
        p.start()
    vmm.start()
    sim.run(until=300 * MSEC)
    # with two hogs sharing one PCPU, both accumulate run-queue waits
    for vm in vms:
        total, count = vm.drain_period_queue_wait()
        assert count > 0
        assert total > 0
        # and draining resets
        assert vm.drain_period_queue_wait() == (0, 0)


def test_monitor_reads_queue_wait_in_queuewait_mode():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    vm.period_queue_wait_ns = 5 * USEC
    vm.period_queue_waits = 2
    vm.kernel.record_spin_wait(999_999, "lock")  # must be ignored
    mon = SpinLatencyMonitor(ATCConfig(monitor_mode="queuewait"))
    st = mon.end_period(vm, 30 * MSEC)
    assert st.latencies == [2500.0]


def test_nonintrusive_atc_accelerates_like_guest_mode():
    def run(mode):
        params = ATCParams(atc=ATCConfig(monitor_mode=mode))
        world = CloudWorld(WorldConfig(n_nodes=2, scheduler="ATC", seed=0, sched_params=params))
        apps = []
        for k in range(4):
            vc = world.virtual_cluster(2, name=f"vc{k}")
            apps.append(world.add_npb("is", vc.vms, rounds=2, warmup_rounds=1))
        world.run(horizon_ns=120 * SEC)
        assert world.all_apps_done
        slices = {vm.slice_ns for vm in world.vms if vm.is_parallel}
        return sum(a.mean_round_ns for a in apps) / len(apps), slices

    guest_time, guest_slices = run("guest")
    qw_time, qw_slices = run("queuewait")
    # both converge to the minimum threshold and perform comparably
    assert qw_slices == guest_slices == {ATCConfig().min_threshold_ns}
    assert qw_time < 1.3 * guest_time
