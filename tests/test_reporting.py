"""Tests for table rendering and export formats."""

import csv
import io

import pytest

from repro.experiments.reporting import format_normalized, format_table, to_csv, to_markdown


def test_format_table_floats_and_strings():
    out = format_table(["name", "val"], [["a", 1.23456], ["b", 7]])
    assert "1.235" in out
    assert "7" in out


def test_format_table_title_optional():
    out = format_table(["x"], [[1]])
    assert not out.startswith("\n")
    titled = format_table(["x"], [[1]], title="Tbl")
    assert titled.splitlines()[0] == "Tbl"


def test_format_normalized_missing_baseline():
    with pytest.raises(KeyError):
        format_normalized({"ATC": 1.0}, baseline="CR")


def test_to_csv_roundtrip():
    rows = [["a", 1, 2.5], ["b,c", 3, 4.0]]
    out = to_csv(["name", "x", "y"], rows)
    parsed = list(csv.reader(io.StringIO(out)))
    assert parsed[0] == ["name", "x", "y"]
    assert parsed[1] == ["a", "1", "2.5"]
    assert parsed[2] == ["b,c", "3", "4.0"]  # comma survives quoting


def test_to_markdown_shape():
    out = to_markdown(["h1", "h2"], [[1, 2.0]], title="T")
    lines = out.splitlines()
    assert lines[0] == "**T**"
    assert lines[2] == "| h1 | h2 |"
    assert lines[3] == "|---|---|"
    assert lines[4] == "| 1 | 2.000 |"


def test_to_markdown_no_title():
    out = to_markdown(["a"], [[1]])
    assert out.splitlines()[0] == "| a |"


def test_format_normalized_uses_shared_normalization():
    out = format_normalized({"CR": 2.0, "ATC": 1.0})
    assert "0.500" in out and "1.000" in out


def test_format_normalized_missing_baseline_is_descriptive():
    with pytest.raises(KeyError, match="baseline 'CR' missing"):
        format_normalized({"ATC": 1.0}, baseline="CR")


def test_format_normalized_zero_baseline_is_descriptive():
    with pytest.raises(ZeroDivisionError, match="baseline execution time is zero"):
        format_normalized({"CR": 0.0, "ATC": 1.0})
