"""Sweep-runner graceful degradation: watchdogs, timeouts, crash recovery."""

from __future__ import annotations

import json

from repro.experiments.runner import (
    CellTimeoutError,
    RunSpec,
    WorkerCrashError,
    run_sweep,
    salvage_report,
    sweep_stats,
    write_salvage,
)
from repro.sim.units import MSEC

# A cheap healthy cell the degraded sweeps must preserve.
OK = RunSpec("fault_probe", {"mode": "ok", "seed": 5}, label="probe:ok")


# ----------------------------------------------------------------------
# fault_probe scenario (the runner's chaos test double)
# ----------------------------------------------------------------------
def test_fault_probe_ok_is_deterministic():
    (a,) = run_sweep([OK], jobs=1, use_cache=False)
    (b,) = run_sweep([OK], jobs=1, use_cache=False)
    assert a.ok and a.value == b.value
    assert a.value["ticks"] > 0 and a.value["sim_time_ns"] > 0


def test_fault_probe_raise_is_retried_then_reported():
    bad = RunSpec("fault_probe", {"mode": "raise"})
    (r,) = run_sweep([bad], jobs=1, use_cache=False)
    assert not r.ok
    assert r.error["type"] == "RuntimeError"
    assert r.error["attempts"] == 2  # in-worker exception: one retry


# ----------------------------------------------------------------------
# Simulated-time watchdog (RunSpec.max_sim_events / max_sim_ns)
# ----------------------------------------------------------------------
def test_watchdog_event_budget_fails_runaway_without_retry():
    runaway = RunSpec("fault_probe", {"mode": "runaway", "horizon_ms": 50.0},
                      max_sim_events=2000)
    (r,) = run_sweep([runaway], jobs=1, use_cache=False)
    assert not r.ok
    assert r.error["type"] == "WatchdogExceeded"
    assert "event budget" in r.error["message"]
    assert r.error["attempts"] == 1  # deterministic: no retry


def test_watchdog_sim_time_budget():
    runaway = RunSpec("fault_probe", {"mode": "runaway", "horizon_ms": 50.0},
                      max_sim_ns=1 * MSEC)
    (r,) = run_sweep([runaway], jobs=1, use_cache=False)
    assert not r.ok
    assert r.error["type"] == "WatchdogExceeded"
    assert "simulated time" in r.error["message"]


def test_watchdog_within_budget_is_invisible():
    plain = RunSpec("fault_probe", {"mode": "ok", "seed": 5})
    guarded = RunSpec("fault_probe", {"mode": "ok", "seed": 5},
                      max_sim_events=10_000_000)
    (a,) = run_sweep([plain], jobs=1, use_cache=False)
    (b,) = run_sweep([guarded], jobs=1, use_cache=False)
    assert a.ok and b.ok and a.value == b.value


def test_watchdog_folds_into_cache_key_only_when_set():
    plain = RunSpec("fault_probe", {"mode": "ok"})
    guarded = RunSpec("fault_probe", {"mode": "ok"}, max_sim_events=100)
    assert "max_sim_events" not in plain.key()
    assert '"max_sim_events":100' in guarded.key()
    assert plain.digest("s") != guarded.digest("s")
    assert "max_sim_events" not in plain.to_dict()
    assert guarded.to_dict()["max_sim_events"] == 100


# ----------------------------------------------------------------------
# Host-side degradation: cell timeouts and worker crashes
# ----------------------------------------------------------------------
def test_cell_timeout_kills_hang_and_preserves_neighbours():
    hang = RunSpec("fault_probe", {"mode": "hang", "hang_s": 30.0}, label="probe:hang")
    results = run_sweep([OK, hang, OK], jobs=2, use_cache=False, cell_timeout_s=1.5)
    assert [r.ok for r in results] == [True, False, True]
    err = results[1].error
    assert err["type"] == CellTimeoutError.__name__
    assert "host budget" in err["message"]
    assert results[1].attempts == 1  # a hang reproduces: no retry
    stats = sweep_stats(results)
    assert stats["timeouts"] == 1 and stats["ok"] == 2


def test_worker_crash_is_retried_then_reported():
    crash = RunSpec("fault_probe", {"mode": "exit"}, label="probe:exit")
    results = run_sweep([OK, crash, OK], jobs=2, use_cache=False, retries=1)
    assert [r.ok for r in results] == [True, False, True]
    err = results[1].error
    assert err["type"] == WorkerCrashError.__name__
    assert results[1].attempts == 2  # one crash mark, one retry, then fail
    stats = sweep_stats(results)
    assert stats["worker_crashes"] == 1 and stats["ok"] == 2


def test_pool_break_collateral_does_not_fail_innocent_cells():
    """Regression: a dying worker breaks the whole pool, failing every
    concurrent future with it.  Innocent cells caught in the blast were
    burning their retry budget on collateral crash marks; they must be
    retried in isolation and survive, however often the guilty cell
    re-crashes."""
    crash = RunSpec("fault_probe", {"mode": "exit"}, label="probe:exit")
    oks = [
        RunSpec("fault_probe", {"mode": "ok", "seed": s}, label=f"probe:ok{s}")
        for s in range(4)
    ]
    specs = [oks[0], oks[1], crash, oks[2], oks[3]]
    results = run_sweep(specs, jobs=4, use_cache=False, retries=1)
    assert [r.ok for r in results] == [True, True, False, True, True]
    assert results[2].error["type"] == WorkerCrashError.__name__
    assert sweep_stats(results)["worker_crashes"] == 1


def test_crashed_sweep_results_match_clean_run():
    """Healthy cells salvaged from a broken pool are bit-identical to the
    same cells run serially (acceptance criterion)."""
    crash = RunSpec("fault_probe", {"mode": "exit"})
    degraded = run_sweep([OK, crash], jobs=2, use_cache=False)
    (clean,) = run_sweep([OK], jobs=1, use_cache=False)
    salvaged = next(r for r in degraded if r.ok)
    assert salvaged.value == clean.value


# ----------------------------------------------------------------------
# Salvage report
# ----------------------------------------------------------------------
def test_salvage_report_schema_and_partition(tmp_path):
    crash = RunSpec("fault_probe", {"mode": "exit"}, label="probe:exit")
    results = run_sweep([OK, crash], jobs=2, use_cache=False)
    report = salvage_report(results)
    assert report["schema"] == "repro.sweep.salvage/v1"
    assert report["code_salt"]
    assert [h["spec"]["label"] for h in report["healthy"]] == ["probe:ok"]
    assert report["healthy"][0]["value"]["ticks"] > 0
    (failed,) = report["failed"]
    assert failed["spec"]["label"] == "probe:exit"
    assert failed["error"]["type"] == WorkerCrashError.__name__
    assert "value" not in failed  # failed cells carry no payload

    out = write_salvage(results, tmp_path / "salvage.json")
    assert json.loads(out.read_text())["stats"]["worker_crashes"] == 1
