"""Tests for the dom0 split-driver packet path (Fig. 4) and blkback."""

from repro.guest.process import compute, disk, recv_block, send
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def run_message(n_nodes, src_node, dst_node, nbytes=1024):
    """Send one message between two fresh VMs; return the packet."""
    sim, cluster, vmms = make_node_world(n_nodes=n_nodes, n_pcpus=2)
    src = add_guest_vm(vmms[src_node], 1, name="src")
    dst = add_guest_vm(vmms[dst_node], 1, name="dst")
    log = []
    dst.kernel.packet_log = log

    sender = src.kernel.add_process()
    receiver = dst.kernel.add_process()

    def sprog():
        yield compute(10 * USEC)
        yield send(dst, receiver.index, nbytes)

    def rprog():
        yield recv_block(1)

    sender.load_program(sprog())
    receiver.load_program(rprog())
    sender.start()
    receiver.start()
    sim.run(until=100 * MSEC)
    assert len(log) == 1
    return sim, cluster, log[0]


def test_cross_node_packet_traverses_all_hops():
    sim, cluster, pkt = run_message(2, 0, 1)
    # Every hop timestamp is stamped, in order (Fig. 4 steps).
    assert 0 <= pkt.t_send <= pkt.t_netback_tx <= pkt.t_arrive
    assert pkt.t_arrive <= pkt.t_delivered <= pkt.t_consumed
    # the wire added at least the configured latency
    assert pkt.t_arrive - pkt.t_netback_tx >= cluster.fabric.params.latency_ns


def test_same_node_packet_skips_the_wire():
    sim, cluster, pkt = run_message(1, 0, 0)
    assert pkt.t_consumed >= pkt.t_send
    assert cluster.fabric.messages_sent == 0  # dom0 bridge loopback


def test_cross_node_uses_fabric():
    sim, cluster, pkt = run_message(2, 0, 1)
    assert cluster.fabric.messages_sent == 1


def test_dom0_counters():
    sim, cluster, pkt = run_message(2, 0, 1)
    d0 = cluster.nodes[0].vmm.dom0
    d1 = cluster.nodes[1].vmm.dom0
    assert d0.packets_tx == 1
    assert d1.packets_rx == 1


def test_dom0_netback_cost_is_paid():
    sim, cluster, pkt = run_message(2, 0, 1)
    d0 = cluster.nodes[0].vmm.dom0
    # tx processing takes at least the netback cost
    assert pkt.t_netback_tx - pkt.t_send >= d0.params.netback_tx_ns


def test_dom0_blocks_when_idle():
    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=2)
    sim.run(until=5 * MSEC)
    dom0 = vmms[0].dom0
    assert all(v.state.value == 0 for v in dom0.vm.vcpus)  # BLOCKED


def test_disk_request_through_blkback():
    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=2)
    vm = add_guest_vm(vmms[0], 1)
    proc = vm.kernel.add_process()
    done = []

    def prog():
        yield disk(1_000_000)
        yield compute(1 * USEC)
        done.append(True)  # reached only if disk completed and we resumed

    # completion visible via process finishing
    proc.load_program(prog())
    proc.on_done = lambda p: done.append("done")
    proc.start()
    sim.run(until=500 * MSEC)
    assert "done" in done
    assert cluster.nodes[0].disk.requests == 1
    assert cluster.nodes[0].disk.bytes_moved == 1_000_000


def test_many_messages_fifo_delivery():
    sim, cluster, vmms = make_node_world(n_nodes=2, n_pcpus=2)
    src = add_guest_vm(vmms[0], 1, name="src")
    dst = add_guest_vm(vmms[1], 1, name="dst")
    log = []
    dst.kernel.packet_log = log
    sender = src.kernel.add_process()
    receiver = dst.kernel.add_process()

    def sprog():
        for i in range(10):
            yield send(dst, receiver.index, 100, tag=i)

    def rprog():
        yield recv_block(10)

    sender.load_program(sprog())
    receiver.load_program(rprog())
    sender.start()
    receiver.start()
    sim.run(until=100 * MSEC)
    assert [p.tag for p in log] == list(range(10))
    assert receiver.messages_received == 10


def test_dom0_multiple_vcpus_share_queue():
    """Dom0 configured with two VCPUs drains one job queue cooperatively."""
    from repro.cluster.node import NodeParams
    from repro.cluster.topology import build_cluster
    from repro.hypervisor.dom0 import Dom0, Dom0Params
    from repro.hypervisor.vmm import VMM
    from repro.schedulers.credit import CreditScheduler
    from repro.sim.engine import Simulator
    from tests.conftest import add_guest_vm

    sim = Simulator()
    cluster = build_cluster(sim, 2, NodeParams(n_pcpus=2))
    vmms = []
    for node in cluster.nodes:
        vmm = VMM(sim, node, lambda m: CreditScheduler(m))
        Dom0(sim, vmm, cluster.fabric, Dom0Params(n_vcpus=2))
        vmms.append(vmm)
    src = add_guest_vm(vmms[0], 1, name="src")
    dst = add_guest_vm(vmms[1], 1, name="dst")
    sender = src.kernel.add_process()
    receiver = dst.kernel.add_process()

    def sprog():
        for i in range(20):
            yield send(dst, receiver.index, 256, tag=i)

    receiver.load_program(iter([recv_block(20)]))
    sender.load_program(sprog())
    sender.start()
    receiver.start()
    sim.run(until=200 * MSEC)
    assert receiver.done
    assert vmms[0].dom0.packets_tx == 20
    assert vmms[1].dom0.packets_rx == 20
