"""Always-on service layer (repro.service): arrivals, admission, teardown."""

from __future__ import annotations

import json

import pytest

from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.runner import RunSpec, run_sweep
from repro.experiments.scenarios import run_service
from repro.faults.plan import FaultEvent, FaultPlan
from repro.service.admission import admission_names
from repro.service.arrivals import (
    SERVICE_RNG_KEY,
    PoissonArrivals,
    TraceArrivals,
    draw_tenant_shape,
)
from repro.service.service import CloudService, ServiceConfig
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC


def _service_world(n_nodes=1, vms_per_node=2, seed=0, service=None, **kw):
    return CloudWorld(
        WorldConfig(
            n_nodes=n_nodes, vms_per_node=vms_per_node, vcpus_per_vm=4,
            scheduler="ATC", seed=seed, placement="pack", service=service, **kw,
        )
    )


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
def test_config_dict_round_trip():
    cfg = ServiceConfig(
        arrival="trace", admission="migration-aware", rate_per_s=3.5,
        max_tenants=7, trace=({"at_ms": 5.0, "app": "is"},),
        min_vcpus=8, max_vcpus=32, rounds=2, apps=("lu", "cg"),
    )
    assert ServiceConfig.from_dict(cfg.to_dict()) == cfg
    assert cfg.to_dict()["trace"] == [{"at_ms": 5.0, "app": "is"}]


def test_unknown_admission_and_arrival_rejected():
    with pytest.raises(ValueError, match="unknown admission policy"):
        _service_world(service=ServiceConfig(admission="bogus"))
    with pytest.raises(ValueError, match="unknown arrival process"):
        _service_world(service=ServiceConfig(arrival="bogus"))
    assert admission_names() == ["fcfs-queue", "migration-aware", "reject-on-full"]


# ----------------------------------------------------------------------
# Arrival generators: determinism and substream isolation
# ----------------------------------------------------------------------
def test_poisson_arrivals_deterministic_per_seed():
    cfg = ServiceConfig(rate_per_s=4.0, max_tenants=10)

    def timeline():
        rng = SimRNG(42).substream(SERVICE_RNG_KEY)
        arr = PoissonArrivals(cfg, rng)
        out, now = [], 0
        while (nxt := arr.next_arrival(now)) is not None:
            now = nxt[0]
            out.append(now)
        return out

    a, b = timeline(), timeline()
    assert a == b
    assert len(a) == 10
    assert all(t2 > t1 for t1, t2 in zip(a, a[1:]))


def test_idle_poisson_draws_no_rng():
    rng = SimRNG(7).substream(SERVICE_RNG_KEY)
    arr = PoissonArrivals(ServiceConfig(max_tenants=0), rng)
    assert arr.next_arrival(0) is None
    # The generator returned before touching the stream: a fresh copy of
    # the same substream produces the same next value.
    assert rng.exponential_ns(SEC) == SimRNG(7).substream(SERVICE_RNG_KEY).exponential_ns(SEC)


def test_service_substream_isolated_from_workload_streams():
    # Deriving (and draining) the service substream must not perturb the
    # sequential workload substreams of the same parent.
    a = SimRNG(3).substream(1).exponential_ns(SEC)
    parent = SimRNG(3)
    svc = parent.substream(SERVICE_RNG_KEY)
    for _ in range(100):
        svc.exponential_ns(SEC)
    assert parent.substream(1).exponential_ns(SEC) == a


def test_trace_arrivals_replay_in_time_order():
    cfg = ServiceConfig(
        arrival="trace",
        trace=(
            {"at_ms": 20.0, "app": "is", "n_vms": 1},
            {"at_ms": 5.0, "app": "lu", "n_vms": 2},
            {"at_ms": 5.0, "app": "cg", "n_vms": 1},
        ),
    )
    arr = TraceArrivals(cfg)
    seq = []
    now = 0
    while (nxt := arr.next_arrival(now)) is not None:
        now = nxt[0]
        seq.append((now, nxt[1]["app"]))
    # Sorted by at_ms, original order breaking the tie.
    assert seq == [(5 * MSEC, "lu"), (5 * MSEC, "cg"), (20 * MSEC, "is")]


def test_draw_tenant_shape_respects_window_and_pins():
    cfg = ServiceConfig(min_vcpus=8, max_vcpus=16, apps=("lu", "is"), rounds=3)
    rng = SimRNG(0).substream(SERVICE_RNG_KEY)
    for _ in range(50):
        n_vms, app, rounds = draw_tenant_shape(cfg, 4, rng)
        assert n_vms in (2, 4)  # 8 or 16 VCPUs at 4 VCPUs/VM
        assert app in ("lu", "is")
        assert rounds == 3
    # A trace entry pins every field: no draws needed at all.
    pinned = draw_tenant_shape(cfg, 4, rng, {"n_vms": 3, "app": "cg", "rounds": 1})
    assert pinned == (3, "cg", 1)
    with pytest.raises(ValueError, match="no Table I sizes"):
        draw_tenant_shape(ServiceConfig(min_vcpus=9, max_vcpus=10), 4, rng)


# ----------------------------------------------------------------------
# Bit-identity: idle layer and seeded repeats
# ----------------------------------------------------------------------
def test_idle_service_layer_is_event_identical():
    def run(service):
        w = CloudWorld(WorldConfig(n_nodes=2, scheduler="ATC", seed=3, service=service))
        vc = w.virtual_cluster(n_vms=2, name="vc0")
        app = w.add_npb("lu", vc.vms, rounds=2, warmup_rounds=1)
        w.run(horizon_ns=5 * SEC)
        return (w.sim.events_processed, w.sim.now, app.round_times)

    assert run(None) == run(ServiceConfig(max_tenants=0))


def test_seeded_service_run_is_bit_identical():
    kw = dict(admission="fcfs-queue", seed=11, rate_per_s=4.0, max_tenants=4,
              horizon_s=15.0)
    a, b = run_service(**kw), run_service(**kw)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["service"]["submitted"] == 4


def test_service_sweep_parallel_matches_serial():
    spec = RunSpec(
        "service",
        dict(admission="migration-aware", seed=5, rate_per_s=6.0, max_tenants=4,
             horizon_s=12.0),
        label="svc",
    )
    serial = run_sweep([spec], jobs=1, use_cache=False)
    parallel = run_sweep([spec], jobs=2, use_cache=False)
    assert serial[0].ok and parallel[0].ok
    assert json.dumps(serial[0].value, sort_keys=True) == json.dumps(
        parallel[0].value, sort_keys=True
    )


# ----------------------------------------------------------------------
# Admission policies
# ----------------------------------------------------------------------
def _tight_world(admission, trace):
    """1 node x 2 slots: the second 2-VM tenant can never co-run."""
    svc = ServiceConfig(arrival="trace", admission=admission, trace=tuple(trace))
    return _service_world(n_nodes=1, vms_per_node=2, service=svc)


TWO_VM = {"n_vms": 2, "app": "is", "rounds": 1}


def test_reject_on_full_rejects_and_never_queues():
    w = _tight_world(
        "reject-on-full",
        [dict(TWO_VM, at_ms=0.0), dict(TWO_VM, at_ms=1.0), dict(TWO_VM, at_ms=2.0)],
    )
    w.run(horizon_ns=10 * SEC)
    s = w.service.stats
    assert s["admitted"] == 1  # t1/t2 arrive while t0 still holds both slots
    assert s["rejected"] == 2
    assert s["queue_peak"] == 0 and s["queued_now"] == 0
    assert s["departed"] == 1


def test_fcfs_queue_drains_after_departures():
    w = _tight_world(
        "fcfs-queue",
        [dict(TWO_VM, at_ms=0.0), dict(TWO_VM, at_ms=1.0), dict(TWO_VM, at_ms=2.0)],
    )
    w.run(horizon_ns=60 * SEC)
    s = w.service.stats
    assert s["admitted"] == 3 and s["rejected"] == 0
    assert s["queue_peak"] == 2  # t1 and t2 both waited
    assert s["departed"] == 3 and s["queued_now"] == 0
    t1, t2 = s["tenants"][1], s["tenants"][2]
    assert t1["wait_ns"] > 0 and t2["wait_ns"] > 0
    assert t1["admit_ns"] <= t2["admit_ns"]  # FIFO order preserved


def test_slowdown_counts_censored_tenants():
    """Regression: the slowdown mean/max only cover *departed* tenants —
    the stats must say how many admitted tenants were still in flight
    (censored) at snapshot time, not silently fold them in as zeros."""
    w = _tight_world("fcfs-queue", [dict(TWO_VM, at_ms=0.0, rounds=10)])
    w.run(horizon_ns=100 * MSEC)  # admitted, nowhere near done
    s = w.service.stats
    assert s["admitted"] == 1 and s["departed"] == 0
    assert s["slowdown_censored"] == 1
    assert s["slowdown_mean"] == 0.0  # no completed observation yet
    from repro.metrics.collectors import service_registry

    assert service_registry(w.service).snapshot()["slowdown_censored"] == 1
    w.run(horizon_ns=60 * SEC)  # let the tenant finish
    s = w.service.stats
    assert s["departed"] == 1
    assert s["slowdown_censored"] == 0
    assert s["slowdown_mean"] > 0.0


def test_migration_aware_never_mixes_and_kicks_under_pressure():
    # 2 nodes x 2 slots; three 2-VM tenants arrive back to back.  The
    # anti-mix placement spreads t0 one-VM-per-node (the paper-preferred
    # layout for a parallel cluster), so t1 finds no foreign-cluster-free
    # node: it queues, kicks the rebalancer, and only admits after t0
    # departs — tenants never share a host.
    svc = ServiceConfig(
        arrival="trace", admission="migration-aware",
        trace=(dict(TWO_VM, at_ms=0.0), dict(TWO_VM, at_ms=1.0), dict(TWO_VM, at_ms=2.0)),
    )
    from repro.migration.engine import MigrationConfig

    w = _service_world(n_nodes=2, vms_per_node=2, service=svc,
                       migration=MigrationConfig(policy="demix"))
    w.run(horizon_ns=60 * SEC)
    s = w.service.stats
    t0, t1, t2 = s["tenants"]
    assert t0["nodes"] == [0, 1]  # spread, one VM per node
    assert t1["admit_ns"] >= t0["depart_ns"]  # queued until t0 left
    assert t2["admit_ns"] >= t1["depart_ns"]
    assert s["queue_peak"] == 2
    assert s["rebalancer_kicks"] >= 1
    assert w.rebalancer.kicks == s["rebalancer_kicks"]
    assert s["departed"] == 3 and s["rejected"] == 0


# ----------------------------------------------------------------------
# Teardown reclaims everything
# ----------------------------------------------------------------------
def test_departed_tenants_leak_nothing():
    svc = ServiceConfig(
        arrival="trace", admission="fcfs-queue",
        trace=(dict(TWO_VM, at_ms=0.0), {"n_vms": 2, "app": "lu", "rounds": 1, "at_ms": 3.0}),
    )
    w = _service_world(n_nodes=2, vms_per_node=2, service=svc)
    w.run(horizon_ns=60 * SEC)
    assert w.service.departed == 2
    assert w.vms == [] and w.virtual_clusters == []
    assert w._node_vm_load == [0, 0]
    for vmm in w.vmms:
        assert vmm.vms == [vmm.dom0.vm]  # only dom0 remains on the roster
        ls = getattr(vmm.scheduler, "ls_vms", None)
        if ls is not None:
            assert not ls
        for q in getattr(vmm.scheduler, "runqs", []):
            assert not list(q)  # no orphaned tenant VCPUs queued anywhere


def test_teardown_refuses_dom0():
    w = _service_world()
    with pytest.raises(ValueError, match="dom0"):
        w.teardown_vm(w.vmms[0].dom0.vm)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_service_trace_kinds_emitted():
    r = run_service(admission="fcfs-queue", seed=2, rate_per_s=4.0, max_tenants=2,
                    horizon_s=15.0, trace=True)
    by_kind = r["trace"]["by_kind"]
    assert by_kind.get("service.admit", 0) >= 1
    assert by_kind.get("service.depart", 0) >= 1


def test_world_registry_exposes_service_metrics():
    from repro.metrics.collectors import world_registry

    svc = ServiceConfig(arrival="trace", admission="fcfs-queue",
                        trace=(dict(TWO_VM, at_ms=0.0),))
    w = _service_world(n_nodes=1, vms_per_node=2, service=svc)
    w.run(horizon_ns=30 * SEC)
    snap = world_registry(w).snapshot()
    assert snap["service.departed"] == 1
    assert snap["service.submitted"] == 1
    assert snap["service.queued_now"] == 0


# ----------------------------------------------------------------------
# Fault targeting tolerates churn (satellite fix)
# ----------------------------------------------------------------------
def test_vm_pause_on_departed_vm_is_skipped_not_fatal():
    svc = ServiceConfig(arrival="trace", admission="fcfs-queue",
                        trace=(dict(TWO_VM, at_ms=0.0),))
    plan = FaultPlan((
        # Names a VM that never exists -> skip, not KeyError/ValueError.
        FaultEvent(kind="vm_pause", at_ns=1 * MSEC, node=0, vm="ghost",
                   duration_ns=5 * MSEC),
        # Fires long after the only tenant departed: no guest on the node.
        FaultEvent(kind="vm_pause", at_ns=25 * SEC, node=0,
                   duration_ns=5 * MSEC),
    ))
    w = _service_world(n_nodes=1, vms_per_node=2, service=svc, faults=plan)
    w.run(horizon_ns=30 * SEC)
    assert w.service.departed == 1
    stats = w.fault_injector.stats
    assert stats["skipped"] == {"vm_pause": 2}
    assert stats["injected"] == {"vm_pause": 2}  # still counted as fired
