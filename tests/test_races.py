"""Order-dependence race detector (repro.analysis.races).

Covers the engine tie-order plumbing (fifo/reversed on both queue
backends, accounting phase), the SAN008 dynamic tracker (injected
non-commuting pair, causality and phase exclusions, observationality,
clean arm/disarm), the tie-permutation differential, and the
RunSpec.tie_order cache-key fold.
"""

from __future__ import annotations

import pytest

from repro.analysis.races import (
    TieRaceTracker,
    diff_values,
    run_differential,
)
from repro.analysis.sanitizer import SimSanitizer
from repro.experiments.runner import RunSpec
from repro.experiments.scenarios import run_type_a
from repro.guest.spinlock import SpinLock
from repro.sim.engine import ACCOUNTING_CATS, SimulationError, Simulator

SMALL = dict(app_name="ep", scheduler="ATC", n_nodes=1, rounds=1, warmup_rounds=0)


def _tracked(sim: Simulator) -> TieRaceTracker:
    tracker = TieRaceTracker()
    tracker.attach(sim)
    return tracker


# ----------------------------------------------------------------------
# Engine: tie_order semantics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("queue", ["heap", "bucket"])
def test_tie_order_reversed_inverts_within_timestamp_only(queue):
    order: dict[str, list[str]] = {}
    for tie_order in ("fifo", "reversed"):
        sim = Simulator(queue=queue, tie_order=tie_order)
        seen: list[str] = []
        for label in ("a", "b", "c"):
            sim.at(100, lambda label=label: seen.append(label), cat="test")
        sim.at(50, lambda: seen.append("early"), cat="test")
        sim.at(200, lambda: seen.append("late"), cat="test")
        sim.run()
        order[tie_order] = seen
    assert order["fifo"] == ["early", "a", "b", "c", "late"]
    # different timestamps keep their order; only the tie flips
    assert order["reversed"] == ["early", "c", "b", "a", "late"]


def test_tie_order_validation_and_default():
    assert Simulator().tie_order == "fifo"
    assert Simulator(tie_order="reversed").tie_order == "reversed"
    with pytest.raises(SimulationError):
        Simulator(tie_order="shuffled")


@pytest.mark.parametrize("tie_order", ["fifo", "reversed"])
@pytest.mark.parametrize("queue", ["heap", "bucket"])
def test_accounting_phase_runs_first_at_a_timestamp(queue, tie_order):
    """ACCOUNTING_CATS callbacks run before default-phase events at the
    same instant, regardless of insertion order and tie direction."""
    assert "vmm.period" in ACCOUNTING_CATS
    sim = Simulator(queue=queue, tie_order=tie_order)
    seen: list[str] = []
    # same-instant appends on purpose: the accounting phase *is* the
    # explicit ordering RPR040/041 asks for
    sim.at(100, lambda: seen.append("dispatch1"), cat="sched")  # repro: ignore[RPR040,RPR041]
    sim.at(100, lambda: seen.append("tick"), cat="vmm.period")  # repro: ignore[RPR040,RPR041]
    sim.at(100, lambda: seen.append("dispatch2"), cat="sched")  # repro: ignore[RPR040,RPR041]
    sim.run()
    assert seen[0] == "tick"
    assert set(seen[1:]) == {"dispatch1", "dispatch2"}


# ----------------------------------------------------------------------
# Dynamic layer: TieRaceTracker
# ----------------------------------------------------------------------
def test_injected_non_commuting_pair_flagged_san008():
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:

        def writer_a():
            lock.acquisitions = 1

        def writer_b():
            lock.acquisitions = 2

        sim.at(100, writer_a, cat="test")
        # injected race: the static layer catching this exact line is
        # asserted by test_lint.py; here we silence it for the tree pass
        sim.at(100, writer_b, cat="test")  # repro: ignore[RPR040]
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 1
    [v] = tracker.suspects
    assert v.code == SimSanitizer.RACE == "SAN008"
    assert v.time_ns == 100
    assert "acquisitions" in v.message
    assert v.context["kind"] == "W-W"


def test_read_write_overlap_flagged():
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:
        sim.at(100, lambda: setattr(lock, "acquisitions", 1), cat="test")
        sim.at(100, lambda: [lock.acquisitions], cat="test")
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 1
    assert tracker.suspects[0].context["kind"] == "R-W"


def test_commuting_pair_not_flagged():
    sim = Simulator()
    a, b = SpinLock("a"), SpinLock("b")
    tracker = _tracked(sim)
    try:
        sim.at(100, lambda: setattr(a, "acquisitions", 1), cat="test")
        sim.at(100, lambda: setattr(b, "acquisitions", 2), cat="test")
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 0


def test_different_timestamps_not_a_tie_group():
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:
        sim.at(100, lambda: setattr(lock, "acquisitions", 1), cat="test")
        sim.at(101, lambda: setattr(lock, "acquisitions", 2), cat="test")
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 0


def test_zero_delay_causal_chain_excluded():
    """A child scheduled by a same-timestamp parent is ordered after it —
    their overlap is not a race."""
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:

        def grandchild():
            lock.acquisitions = 3

        def child():
            lock.acquisitions = 2
            sim.at(sim.now, grandchild, cat="test")

        def parent():
            lock.acquisitions = 1
            sim.at(sim.now, child, cat="test")

        sim.at(100, parent, cat="test")
        sim.run()
    finally:
        tracker.detach()
    # parent -> child -> grandchild is one zero-delay chain: every pair
    # is transitively ordered, so the triple write overlap is no race.
    assert tracker.total_suspects == 0


def test_sibling_descendants_are_flagged():
    """Two children of one same-timestamp parent are NOT ordered relative
    to each other — a write overlap between them is a real suspect."""
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:

        def child_a():
            lock.acquisitions = 1

        def child_b():
            lock.acquisitions = 2

        def parent():
            sim.at(sim.now, child_a, cat="test")
            sim.at(sim.now, child_b, cat="test")  # repro: ignore[RPR040]

        sim.at(100, parent, cat="test")
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 1


def test_cross_phase_pair_excluded():
    """Accounting-phase vs default-phase at one instant is ordered by the
    engine — a write overlap there is defined behavior, not a race."""
    sim = Simulator()
    lock = SpinLock("shared")
    tracker = _tracked(sim)
    try:
        sim.at(100, lambda: setattr(lock, "acquisitions", 1), cat="vmm.period")
        sim.at(100, lambda: setattr(lock, "acquisitions", 2), cat="sched")
        sim.run()
    finally:
        tracker.detach()
    assert tracker.total_suspects == 0


def test_detach_restores_classes():
    sim = Simulator()
    orig_at = Simulator.at
    tracker = _tracked(sim)
    assert Simulator.at is not orig_at
    assert "__getattribute__" in SpinLock.__dict__
    tracker.detach()
    assert Simulator.at is orig_at
    assert "__getattribute__" not in SpinLock.__dict__
    assert "__setattr__" not in SpinLock.__dict__
    tracker.detach()  # idempotent


def test_only_one_tracker_at_a_time():
    sim = Simulator()
    tracker = _tracked(sim)
    try:
        with pytest.raises(RuntimeError):
            TieRaceTracker().attach(Simulator())
    finally:
        tracker.detach()


def test_tracked_run_is_observational():
    """An armed run returns bit-identical results to a plain run."""
    import repro.sim.engine as engine

    plain = run_type_a(**SMALL, sanitize=True)
    tracker = TieRaceTracker()
    prev = engine.on_simulator_created
    engine.on_simulator_created = tracker.attach
    try:
        tracked = run_type_a(**SMALL, sanitize=True)
    finally:
        engine.on_simulator_created = prev
        tracker.detach()
    assert diff_values(tracked, plain) == []
    assert tracked["events"] == plain["events"]


# ----------------------------------------------------------------------
# Detector fully off: bit-identical, unchanged event counts
# ----------------------------------------------------------------------
def test_detector_off_is_bit_identical():
    default = run_type_a(**SMALL)
    explicit_fifo = run_type_a(**SMALL, tie_order="fifo")
    assert diff_values(default, explicit_fifo) == []
    assert default["events"] == explicit_fifo["events"]


# ----------------------------------------------------------------------
# Tie-permutation differential
# ----------------------------------------------------------------------
def test_diff_values_leaf_paths():
    a = {"x": 1, "rows": [{"t": 2}], "same": "s"}
    b = {"x": 1, "rows": [{"t": 3}], "same": "s"}
    assert diff_values(a, a) == []
    assert diff_values(a, b) == [("rows[0].t", 2, 3)]
    assert diff_values({"k": 1}, {}) == [("k", 1, "<missing>")]
    assert diff_values([1, 2], [1]) == [(".len", 2, 1)]


def test_small_cell_forward_equals_reversed():
    """Regression for the accounting-phase fix: the period tick racing
    same-instant dispatches used to make fifo and reversed runs diverge
    (the tick recomputes vm.slice_ns / refreshes credits; dispatches at
    the same instant read it)."""
    report = run_differential("type_a", dict(SMALL), track=False)
    assert report["identical"], report["confirmed"][:5]


def test_differential_with_tracking_collects_suspects():
    report = run_differential("type_a", dict(SMALL))
    assert report["identical"]
    assert report["groups_checked"] > 0
    # the spin/poll model legitimately produces heuristic suspects
    assert report["suspects_total"] >= 0
    for s in report["suspects"]:
        assert s["code"] == "SAN008"


# ----------------------------------------------------------------------
# RunSpec.tie_order cache-key fold
# ----------------------------------------------------------------------
def test_runspec_tie_order_folds_into_key_only_when_set():
    base = RunSpec("type_a", dict(SMALL))
    explicit = RunSpec("type_a", dict(SMALL), tie_order="reversed")
    assert base.key() != explicit.key()
    assert "tie_order" not in base.to_dict()
    assert explicit.to_dict()["tie_order"] == "reversed"
    # unset tie_order leaves the historical key unchanged
    assert RunSpec("type_a", dict(SMALL), tie_order=None).key() == base.key()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_races_subcommand(capsys):
    from repro.cli import main

    rc = main([
        "races", "type_a", "--app", "ep", "--scheduler", "ATC",
        "--nodes", "1", "--rounds", "1", "--suspects", "0",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "identical" in out
    assert "no confirmed order dependence" in out
