"""Adversarial tenancy layer (repro.workloads.attacks).

Covers the determinism discipline (same-seed bit-identity, serial vs
parallel sweep, forward-vs-reversed tie order), the zero-entropy rule
(attackers draw only from the dedicated ``ATTACK_RNG_KEY`` substream, so
clean runs are unperturbed), the theft accounting (consumed == debited
under exact accounting; ``sched.theft`` never fires), and the inertness
of the hardening knobs at their defaults.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.races import run_differential
from repro.experiments.runner import RunSpec, run_sweep
from repro.experiments.scenarios import run_attack, run_type_a
from repro.schedulers.credit import CreditParams
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC
from repro.workloads.attacks import ATTACK_RNG_KEY

from tests.conftest import add_guest_vm, make_node_world
from tests.test_credit_scheduler import start_hog

ATK = dict(scheduler="CR", hardened=False, attack=True, seed=3, horizon_s=2.0)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
@pytest.mark.parametrize("hardened", [False, True])
def test_same_seed_attack_run_is_bit_identical(hardened):
    kw = dict(ATK, hardened=hardened)
    a, b = run_attack(**kw), run_attack(**kw)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
    assert a["events"] == b["events"]


def test_attack_sweep_parallel_matches_serial():
    spec = RunSpec("attack", dict(ATK), label="atk")
    serial = run_sweep([spec], jobs=1, use_cache=False)
    parallel = run_sweep([spec], jobs=2, use_cache=False)
    assert serial[0].ok and parallel[0].ok
    assert json.dumps(serial[0].value, sort_keys=True) == json.dumps(
        parallel[0].value, sort_keys=True
    )


def test_clean_attack_cell_forward_equals_reversed():
    """Same-timestamp order dependence: with the attack disabled, the
    scenario (tick-sampled accounting, theft counters, attack-VM tenancy)
    must be tie-order clean.  The victim is ``ep`` for the same reason
    the detector's own cells are: the spin-lock guest model is known
    tie-sensitive under contention (a pre-existing property — a plain
    CR cell running ``lu`` shows it with no attack layer at all), so a
    lock-free victim isolates what *this* layer adds.  Attacked cells
    are inherently contended (BOOST wake storms racing dispatches) and
    are covered by the same-seed bit-identity tests instead."""
    report = run_differential(
        "attack",
        dict(ATK, attack=False, horizon_s=1.5, victim_app="ep"),
        track=False,
    )
    assert report["identical"], report["confirmed"][:5]


# ----------------------------------------------------------------------
# Zero-entropy discipline
# ----------------------------------------------------------------------
def test_attack_substream_does_not_perturb_honest_streams():
    """Attackers draw only from ``substream(ATTACK_RNG_KEY, ...)``:
    draining attack entropy leaves every honest substream's sequence
    untouched, so a clean run draws zero attack entropy by construction."""
    honest = SimRNG(7).substream(1, 0).uniform_ns(0, SEC)
    rng = SimRNG(7)
    for stream in range(4):
        atk = rng.substream(ATTACK_RNG_KEY, stream)
        for _ in range(100):
            atk.uniform_ns(0, SEC)
    assert rng.substream(1, 0).uniform_ns(0, SEC) == honest


def test_clean_cells_construct_no_attackers():
    r = run_attack(**dict(ATK, attack=False))
    assert r["attack"] is False
    assert r["thief"]["cycles"] == 0
    assert r["thief"]["cpu_consumed_ns"] == 0
    assert r["thief"]["gain"] == 1.0
    assert r["tickler"]["wakes"] == 0


# ----------------------------------------------------------------------
# Disabled layer: exact accounting, inert knobs
# ----------------------------------------------------------------------
def test_exact_accounting_has_no_theft():
    """With the default (exact) accounting every VM is debited exactly
    what it consumed and ``sched.theft`` never fires."""
    r = run_type_a(app_name="ep", scheduler="CR", n_nodes=1, rounds=1,
                   warmup_rounds=0, trace=True)
    assert r["trace"]["by_kind"].get("sched.theft", 0) == 0

    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vms = [add_guest_vm(vmms[0], 1, name=f"v{i}") for i in range(4)]
    for vm in vms:
        start_hog(vm)
    vmms[0].start()
    sim.run(until=500 * MSEC)
    for vm in vms:
        assert vm.cpu_consumed_ns == vm.cpu_debited_ns
        assert vm.cpu_consumed_ns > 0


def test_hardening_knobs_default_inert():
    p = CreditParams()
    assert not p.tick_accounting and not p.deboost_on_yield
    assert p.boost_rate_limit == 0 and p.tick_phase_ns == 0
    from repro.core.config import ATCConfig

    assert ATCConfig().slice_floor_ns == 0
    # boost_rate_limit=0 must not even touch the per-VM window state.
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vms = [add_guest_vm(vmms[0], 1, name=f"v{i}") for i in range(3)]
    for vm in vms:
        start_hog(vm)
    vmms[0].start()
    sim.run(until=300 * MSEC)
    for vm in vms:
        assert vm.boost_window_idx == -1 and vm.boost_window_wakes == 0


# ----------------------------------------------------------------------
# The attack itself
# ----------------------------------------------------------------------
def test_unhardened_thief_profits_and_hardened_does_not():
    open_cell = run_attack(**ATK)
    hard_cell = run_attack(**dict(ATK, hardened=True))
    assert open_cell["thief"]["gain"] > 1.0
    assert hard_cell["thief"]["gain"] <= 1.1
    assert open_cell["tickler"]["boost_preempts_inflicted"] > 0
