"""Tests for the Eq. 1 Euclidean-metric threshold exploration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.threshold import ThresholdStudy, euclidean_metric, optimal_threshold
from repro.sim.units import ns_from_ms


def test_euclidean_metric_basic():
    assert euclidean_metric([0, 0], [3, 4]) == 5.0
    assert euclidean_metric([1, 2, 3], [1, 2, 3]) == 0.0


def test_euclidean_metric_length_mismatch():
    with pytest.raises(ValueError):
        euclidean_metric([1], [1, 2])


def test_paper_metric_values_reproduce_selection():
    """Feed the paper's printed metrics back through argmin: the paper's
    metric values {0.034, 0.020, 0.018, 0.049, 0.039, 0.069} pick 0.3 ms."""
    slices = [ns_from_ms(s) for s in (0.5, 0.4, 0.3, 0.2, 0.1, 0.03)]
    paper_metrics = dict(zip(slices, (0.034, 0.020, 0.018, 0.049, 0.039, 0.069)))
    best = min(slices, key=lambda s: paper_metrics[s])
    assert best == ns_from_ms(0.3)


def test_optimal_threshold_simple_case():
    # two apps; slice B dominates
    perf = {
        100: [1.0, 0.8],
        200: [0.7, 0.7],
        300: [0.9, 1.0],
    }
    best, metrics = optimal_threshold(perf)
    assert best == 200
    assert metrics[200] == 0.0


def test_optimal_threshold_tie_prefers_longer_slice():
    perf = {100: [0.5], 200: [0.5]}
    best, _ = optimal_threshold(perf)
    assert best == 200  # longer slice = fewer context switches, same perf


def test_optimal_threshold_validates_input():
    with pytest.raises(ValueError):
        optimal_threshold({})
    with pytest.raises(ValueError):
        optimal_threshold({1: [1.0], 2: [1.0, 2.0]})


@given(
    st.dictionaries(
        st.integers(min_value=1, max_value=100),
        st.lists(st.floats(min_value=0.01, max_value=10), min_size=3, max_size=3),
        min_size=1,
        max_size=8,
    )
)
def test_optimal_threshold_properties(perf):
    best, metrics = optimal_threshold(perf)
    assert best in perf
    assert metrics[best] == min(metrics.values())
    assert all(m >= 0 and math.isfinite(m) for m in metrics.values())


def test_threshold_study_end_to_end():
    slices = [100, 200]
    study = ThresholdStudy(slices, ["a", "b"])
    study.record("a", 100, 10.0)
    study.record("a", 200, 20.0)
    study.record("b", 100, 40.0)
    study.record("b", 200, 20.0)
    norm = study.normalized()
    assert norm[100] == [0.5, 1.0]
    assert norm[200] == [1.0, 0.5]
    best, metrics = study.solve()
    assert metrics[100] == pytest.approx(metrics[200])


def test_threshold_study_validates():
    with pytest.raises(ValueError):
        ThresholdStudy([], ["a"])
    study = ThresholdStudy([1], ["a"])
    with pytest.raises(KeyError):
        study.record("zzz", 1, 1.0)
    with pytest.raises(KeyError):
        study.record("a", 999, 1.0)
    with pytest.raises(ValueError):
        study.normalized()  # missing measurements
