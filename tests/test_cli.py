"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_scheduler():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["typea", "--scheduler", "FIFO"])


def test_parser_rejects_unknown_app():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["typea", "--app", "linpack"])


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("CR", "ATC", "lu", "ep", "ft"):
        assert name in out


def test_typea_command(capsys):
    assert main(["typea", "--app", "is", "--scheduler", "CR", "--rounds", "1"]) == 0
    out = capsys.readouterr().out
    assert "Evaluation type A" in out
    assert "is" in out


def test_sweep_command(capsys):
    assert main(["sweep", "--app", "is", "--slices", "30,1"]) == 0
    out = capsys.readouterr().out
    assert "Slice sweep" in out
    assert "30" in out and "1" in out


def test_mix_command(capsys):
    assert main(["mix", "--scheduler", "CR", "--horizon", "2"]) == 0
    out = capsys.readouterr().out
    assert "ping RTT" in out


def test_typeb_command(capsys):
    assert main(["typeb", "--scheduler", "CR", "--nodes", "4", "--horizon", "2"]) == 0
    out = capsys.readouterr().out
    assert "LLNL trace mix" in out


def test_probe_command(capsys):
    assert main(["probe", "--scheduler", "CR", "--probes", "10"]) == 0
    out = capsys.readouterr().out
    assert "end to end" in out


def test_extended_kernels_run():
    """ep (no communication) and ft (all-to-all) run end-to-end."""
    from repro.experiments.scenarios import run_type_a

    for app in ("ep", "ft"):
        r = run_type_a(app, "CR", 2, rounds=1, warmup_rounds=0, horizon_s=120)
        assert r["all_done"], app
    # ep has no messages at all
    r = run_type_a("ep", "CR", 2, rounds=1, warmup_rounds=0, horizon_s=120)
    assert r["cluster"]["messages_sent"] == 0


def test_new_spec_cpu_apps():
    from tests.conftest import add_guest_vm, make_node_world
    from repro.sim.rng import SimRNG
    from repro.sim.units import SEC
    from repro.workloads.nonparallel import CPU_APP_SPECS, CpuApp

    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 2)
    mcf = CpuApp(sim, vm, CPU_APP_SPECS["mcf"], SimRNG(0))
    gobmk = CpuApp(sim, vm, CPU_APP_SPECS["gobmk"], SimRNG(1))
    mcf.start()
    gobmk.start()
    vmms[0].start()
    sim.run(until=2 * SEC)
    assert mcf.run_times and gobmk.run_times
    assert CPU_APP_SPECS["mcf"].cache_sensitivity > CPU_APP_SPECS["gobmk"].cache_sensitivity
