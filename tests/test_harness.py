"""Tests for the CloudWorld experiment facade."""

import pytest

from repro.experiments.harness import CloudWorld, WorldConfig
from repro.metrics.collectors import cluster_stats, node_stats, vm_stats
from repro.sim.units import MSEC, SEC, ns_from_ms


def test_world_wiring_defaults():
    w = CloudWorld()
    assert len(w.vmms) == 2
    assert all(vmm.dom0 is not None for vmm in w.vmms)
    assert w.cluster.n_pcpus == 16
    assert w.config.scheduler == "CR"


def test_new_vm_spreads_across_nodes():
    w = CloudWorld(WorldConfig(n_nodes=2))
    vms = [w.new_vm(name=f"v{i}") for i in range(4)]
    nodes = [vm.node.index for vm in vms]
    assert nodes.count(0) == 2 and nodes.count(1) == 2
    assert all(vm.kernel is not None for vm in vms)


def test_new_vm_capacity_enforced():
    w = CloudWorld(WorldConfig(n_nodes=1, vms_per_node=2))
    w.new_vm()
    w.new_vm()
    with pytest.raises(RuntimeError):
        w.new_vm()
    with pytest.raises(RuntimeError):
        w.new_vm(node_idx=0)


def test_virtual_cluster_spread_one_vm_per_node():
    w = CloudWorld(WorldConfig(n_nodes=4))
    vc = w.virtual_cluster(4, name="vc")
    assert sorted(vm.node.index for vm in vc.vms) == [0, 1, 2, 3]
    assert all(vm.is_parallel for vm in vc.vms)
    assert vc.name == "vc"


def test_virtual_cluster_pack_placement():
    w = CloudWorld(WorldConfig(n_nodes=2, vms_per_node=4))
    vc = w.virtual_cluster(3, placement="pack")
    assert [vm.node.index for vm in vc.vms] == [0, 0, 0]


def test_virtual_cluster_explicit_nodes():
    w = CloudWorld(WorldConfig(n_nodes=3))
    vc = w.virtual_cluster(2, node_indices=[2, 2])
    assert [vm.node.index for vm in vc.vms] == [2, 2]


def test_uniform_slice_applied_to_guests():
    w = CloudWorld(WorldConfig(uniform_slice_ns=ns_from_ms(5)))
    vm = w.new_vm()
    assert vm.slice_ns == ns_from_ms(5)


def test_run_stops_when_tracked_apps_finish():
    w = CloudWorld(WorldConfig(n_nodes=2, seed=1))
    vc = w.virtual_cluster(2)
    app = w.add_npb("is", vc.vms, rounds=1, warmup_rounds=0)
    w.run(horizon_ns=600 * SEC)
    assert app.finished
    assert w.all_apps_done
    assert w.sim.now < 600 * SEC  # stopped early


def test_background_apps_do_not_gate_run():
    w = CloudWorld(WorldConfig(n_nodes=2, seed=1))
    vc = w.virtual_cluster(2)
    bg = w.add_npb("is", vc.vms, rounds=None, warmup_rounds=0)
    w.run(horizon_ns=2 * SEC)
    assert w.sim.now == 2 * SEC
    assert not bg.finished


def test_run_extends_horizon_on_repeat_calls():
    w = CloudWorld(WorldConfig(n_nodes=2))
    w.run(horizon_ns=1 * SEC)
    w.run(horizon_ns=1 * SEC)
    assert w.sim.now == 2 * SEC


def test_same_seed_reproducible():
    def makespan(seed):
        w = CloudWorld(WorldConfig(n_nodes=2, seed=seed))
        vc = w.virtual_cluster(2)
        app = w.add_npb("is", vc.vms, rounds=1, warmup_rounds=0)
        w.run(horizon_ns=600 * SEC)
        return app.round_times

    assert makespan(7) == makespan(7)
    assert makespan(7) != makespan(8)


def test_collectors_over_world():
    w = CloudWorld(WorldConfig(n_nodes=2, seed=0))
    vc = w.virtual_cluster(2)
    w.add_npb("is", vc.vms, rounds=1, warmup_rounds=0)
    w.run(horizon_ns=600 * SEC)
    cs = cluster_stats(w.cluster)
    assert cs["n_nodes"] == 2
    assert cs["busy_ns"] > 0
    assert cs["messages_sent"] > 0
    ns = node_stats(w.cluster.nodes[0])
    assert ns["context_switches"] > 0
    vs = vm_stats(vc.vms[0])
    assert vs["is_parallel"] is True
    assert vs["cpu_ns"] > 0
    assert vs["spin_waits"] >= 0


def test_nonparallel_builders():
    w = CloudWorld(WorldConfig(n_nodes=2, seed=0))
    v1, v2 = w.new_vm(name="a"), w.new_vm(name="b")
    sphinx = w.add_cpu_app("sphinx3", v1)
    stream = w.add_stream(v1)
    bonnie = w.add_bonnie(v2)
    ping = w.add_ping(v1, v2, interval_ns=5 * MSEC)
    web = w.add_webserver(v2, v1)
    w.run(horizon_ns=1 * SEC)
    assert sphinx.run_times
    assert stream.run_times
    assert bonnie.pass_times
    assert ping.rtts
    assert web.response_times


def test_late_tracked_app_starts_and_gates_run():
    """Regression: a tracked app added after start() must run and join the
    completion countdown instead of being silently ignored."""
    w = CloudWorld(WorldConfig(n_nodes=2, seed=1))
    vc1 = w.virtual_cluster(2)
    app1 = w.add_npb("is", vc1.vms, rounds=1, warmup_rounds=0)
    w.run(horizon_ns=600 * SEC)
    assert app1.finished

    vc2 = w.virtual_cluster(2)
    app2 = w.add_npb("is", vc2.vms, rounds=1, warmup_rounds=0)
    t_added = w.sim.now
    w.run(horizon_ns=600 * SEC)
    assert app2.finished
    assert w.all_apps_done
    assert w.sim.now < t_added + 600 * SEC  # countdown stopped the sim early


def test_late_tracked_app_does_not_inherit_stale_countdown():
    """A second add_npb + run() must not end early off app1's completion."""
    w = CloudWorld(WorldConfig(n_nodes=2, seed=1))
    vc1 = w.virtual_cluster(2)
    w.add_npb("is", vc1.vms, rounds=1, warmup_rounds=0)
    w.run(horizon_ns=1 * SEC)  # world is started; app1 may or may not be done

    vc2 = w.virtual_cluster(2)
    app2 = w.add_npb("is", vc2.vms, rounds=2, warmup_rounds=0)
    w.run(horizon_ns=600 * SEC)
    assert app2.finished


def test_late_background_app_starts_immediately():
    """Regression: background workloads registered after start() were never
    started; they must begin producing samples on the next run()."""
    w = CloudWorld(WorldConfig(n_nodes=2, seed=0))
    v1, v2 = w.new_vm(name="a"), w.new_vm(name="b")
    w.run(horizon_ns=1 * SEC)

    sphinx = w.add_cpu_app("sphinx3", v1)
    stream = w.add_stream(v1)
    ping = w.add_ping(v1, v2, interval_ns=5 * MSEC)
    bg = w.add_npb("is", [v2], rounds=None, warmup_rounds=0, procs_per_vm=4)
    w.run(horizon_ns=2 * SEC)
    assert sphinx.run_times
    assert stream.run_times
    assert ping.rtts
    assert bg.round_times
