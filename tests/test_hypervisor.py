"""Tests for VM/VCPU state machines and the VMM dispatch machinery."""

import pytest

from repro.guest.process import compute
from repro.hypervisor.vm import VCPUState, VM
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


class StubRunner:
    """Minimal runner: compute ``work_ns`` then block; records events."""

    cache_sensitivity = 1.0

    def __init__(self, sim, work_ns=None):
        self.sim = sim
        self.work_ns = work_ns
        self.vcpu = None
        self.dispatches = []
        self.preempts = []
        self.overheads = []
        self._ev = None
        self._remaining = work_ns
        self._started = 0
        self.finished_at = None

    def on_dispatch(self, now, overhead_ns):
        self.dispatches.append(now)
        self.overheads.append(overhead_ns)
        if self._remaining is not None:
            self._started = now
            self._ev = self.sim.after(self._remaining + overhead_ns, self._done)

    def on_preempt(self, now):
        self.preempts.append(now)
        if self._ev is not None:
            self._ev.cancel()
            self._remaining = max(0, self._remaining - (now - self._started))
            self._ev = None

    def _done(self):
        self._ev = None
        self._remaining = None
        self.finished_at = self.sim.now
        self.vcpu.block()


def attach_stub(sim, vm, idx=0, work_ns=None):
    r = StubRunner(sim, work_ns)
    vm.vcpus[idx].runner = r
    r.vcpu = vm.vcpus[idx]
    return r


def test_vcpu_initially_blocked(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm, 2)
    assert all(v.state is VCPUState.BLOCKED for v in vm.vcpus)


def test_wake_dispatches_on_idle_pcpu(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    r = attach_stub(sim, vm, work_ns=5 * USEC)
    vm.vcpus[0].wake()
    assert vm.vcpus[0].state is VCPUState.RUNNING
    sim.run()
    assert r.finished_at == 5 * USEC + r.overheads[0]
    assert vm.vcpus[0].state is VCPUState.BLOCKED


def test_block_requires_running(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    attach_stub(sim, vm)
    with pytest.raises(RuntimeError):
        vm.vcpus[0].block()


def test_wake_is_idempotent_when_runnable(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    attach_stub(sim, vm, work_ns=MSEC)
    vm.vcpus[0].wake()
    state = vm.vcpus[0].state
    vm.vcpus[0].wake()  # no-op
    assert vm.vcpus[0].state is state


def test_slice_end_requeues_and_rotates(single_node):
    """Two CPU-hungry VCPUs on one PCPU alternate on slice boundaries."""
    sim, cluster, vmm = single_node
    # one PCPU only: constrain by using node with 2 pcpus but 3 runners so
    # at least two share one queue; simpler: use big work and check both
    # finish interleaved.
    vm1 = VM(vmm.node, 1, name="a")
    vm2 = VM(vmm.node, 1, name="b")
    vm3 = VM(vmm.node, 1, name="c")
    for vm in (vm1, vm2, vm3):
        vmm.add_vm(vm)
    r1 = attach_stub(sim, vm1, work_ns=70 * MSEC)
    r2 = attach_stub(sim, vm2, work_ns=70 * MSEC)
    r3 = attach_stub(sim, vm3, work_ns=70 * MSEC)
    for vm in (vm1, vm2, vm3):
        vm.vcpus[0].wake()
    sim.run(until=500 * MSEC)
    # 3 runners on 2 PCPUs: everyone should finish, with preemptions.
    assert r1.finished_at and r2.finished_at and r3.finished_at
    total_preempts = len(r1.preempts) + len(r2.preempts) + len(r3.preempts)
    assert total_preempts >= 2  # slice ends happened
    # CPU accounting: each consumed at least its work
    for vm, r in ((vm1, r1), (vm2, r2), (vm3, r3)):
        assert vm.vcpus[0].total_run_ns >= 70 * MSEC


def test_context_switch_overhead_charged_once_per_switch(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    r = attach_stub(sim, vm, work_ns=MSEC)
    vm.vcpus[0].wake()
    sim.run()
    # first dispatch on a cold pcpu: ctx switch + full refill
    expected = vmm.node.params.ctx_switch_ns + vmm.node.params.cache.refill_ns
    assert r.overheads[0] == expected


def test_same_vcpu_redispatch_has_no_overhead(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1, name="solo")
    vmm.add_vm(vm)

    # Runner that blocks briefly and resumes on the same (otherwise idle)
    # PCPU: the second dispatch must be free.
    r = attach_stub(sim, vm, work_ns=MSEC)
    vm.vcpus[0].wake()
    sim.run()
    first_overhead = r.overheads[0]
    r._remaining = MSEC
    vm.vcpus[0].wake()
    sim.run()
    assert first_overhead > 0
    assert r.overheads[1] == 0


def test_preempt_mid_slice_preserves_progress(single_node):
    sim, cluster, vmm = single_node
    vm1 = VM(vmm.node, 1, name="w")
    vmm.add_vm(vm1)
    r = attach_stub(sim, vm1, work_ns=10 * MSEC)
    vm1.vcpus[0].wake()
    sim.run(until=4 * MSEC)
    pcpu = vm1.vcpus[0].pcpu
    vmm.preempt(pcpu)
    # With no competitor the VCPU is immediately re-picked, but the
    # preemption was observed by the runner and progress was preserved.
    assert r.preempts == [4 * MSEC]
    assert r._remaining == 6 * MSEC  # 4 ms of wall time consumed
    sim.run()
    # total work time equals requested work plus overheads
    assert r.finished_at is not None
    assert vm1.vcpus[0].total_run_ns >= 10 * MSEC


def test_dispatch_on_busy_pcpu_rejected(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    attach_stub(sim, vm, work_ns=MSEC)
    vm.vcpus[0].wake()
    with pytest.raises(RuntimeError):
        vmm.dispatch(vm.vcpus[0].pcpu)


def test_add_vm_wrong_node_rejected():
    sim, cluster, vmms = make_node_world(n_nodes=2)
    vm = VM(cluster.nodes[0], 1)
    with pytest.raises(ValueError):
        vmms[1].add_vm(vm)


def test_period_tick_runs_hooks(single_node):
    sim, cluster, vmm = single_node
    ticks = []
    vmm.period_hooks.append(lambda now: ticks.append(now))
    vmm.start()
    sim.run(until=100 * MSEC)
    assert ticks == [30 * MSEC, 60 * MSEC, 90 * MSEC]


def test_start_idempotent(single_node):
    sim, cluster, vmm = single_node
    vmm.start()
    vmm.start()
    sim.run(until=35 * MSEC)
    # only one tick chain: next pending tick is exactly one event
    assert sim.pending() == 1


def test_guest_vms_excludes_dom0(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm, 1)
    names = [v.name for v in vmm.guest_vms]
    assert vm.name in names
    assert not any(n.startswith("dom0") for n in names)


def test_vm_admin_slice_and_io_counters(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm, 1)
    vm.count_io_event()
    vm.count_io_event(3)
    assert vm.period_io_events == 4
    assert vm.total_io_events == 4
    assert vm.drain_period_io() == 4
    assert vm.period_io_events == 0
    assert vm.total_io_events == 4


def test_deliver_without_kernel_raises(single_node):
    sim, cluster, vmm = single_node
    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    with pytest.raises(RuntimeError):
        vm.deliver(object())
