"""Deterministic fault injection (repro.faults): plans, mechanics, identity."""

from __future__ import annotations

import json

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.scenarios import run_type_a
from repro.faults import FaultEvent, FaultInjector, FaultPlan, parse_fault_spec
from repro.hypervisor.vm import VCPUState
from repro.obs.trace import TraceLog
from repro.sim.units import MSEC, SEC

from tests.conftest import add_guest_vm, make_node_world
from tests.test_hypervisor import attach_stub


# ----------------------------------------------------------------------
# Plans: synthesis, serialization, validation, CLI spec parsing
# ----------------------------------------------------------------------
def test_synthesize_is_deterministic():
    a = FaultPlan.synthesize(7, 2, 12 * SEC, n_events=5)
    b = FaultPlan.synthesize(7, 2, 12 * SEC, n_events=5)
    assert a == b
    assert len(a.events) == 5
    assert FaultPlan.synthesize(8, 2, 12 * SEC, n_events=5) != a


def test_synthesize_stays_inside_horizon():
    horizon = 12 * SEC
    plan = FaultPlan.synthesize(1, 4, horizon, n_events=20)
    for ev in plan.events:
        assert horizon // 8 <= ev.at_ns <= (horizon * 5) // 8
        assert ev.duration_ns > 0
        assert ev.at_ns + ev.duration_ns <= (horizon * 7) // 8


def test_plan_events_sorted_by_time():
    plan = FaultPlan.of([
        FaultEvent("node_crash", at_ns=30 * MSEC),
        FaultEvent("vm_pause", at_ns=10 * MSEC),
    ])
    assert [e.at_ns for e in plan.events] == [10 * MSEC, 30 * MSEC]
    assert bool(plan) and not bool(FaultPlan())


def test_dict_round_trip_is_compact():
    ev = FaultEvent("nic_degrade", at_ns=5 * MSEC, node=1,
                    duration_ns=2 * MSEC, bw_factor=0.5, drop_prob=0.1)
    d = ev.to_dict()
    # Only the kind, time and non-default fields ride in the dict form.
    assert set(d) == {"kind", "at_ns", "node", "duration_ns", "bw_factor", "drop_prob"}
    plan = FaultPlan.of([ev])
    assert FaultPlan.from_dicts(plan.to_dicts()) == plan
    assert json.loads(json.dumps(plan.to_dicts())) == plan.to_dicts()


@pytest.mark.parametrize("ev", [
    FaultEvent("meteor_strike", at_ns=0),
    FaultEvent("node_crash", at_ns=-1),
    FaultEvent("node_crash", at_ns=0, duration_ns=-1),
    FaultEvent("node_crash", at_ns=0, node=9),
    FaultEvent("nic_degrade", at_ns=0, bw_factor=0.0),
    FaultEvent("nic_degrade", at_ns=0, drop_prob=1.0),
    FaultEvent("pcpu_straggler", at_ns=0, pcpu=99, steal_period_ns=MSEC),
    FaultEvent("pcpu_straggler", at_ns=0, steal_period_ns=0),
])
def test_validate_rejects_bad_events(ev):
    with pytest.raises(ValueError):
        ev.validate(n_nodes=2, n_pcpus=8)


def test_parse_fault_spec_forms(tmp_path):
    assert parse_fault_spec(None, 2, SEC) is None
    assert parse_fault_spec("", 2, SEC) is None
    assert parse_fault_spec("none", 2, SEC) is None

    rnd = parse_fault_spec("random:4:9", 2, 12 * SEC)
    assert rnd == FaultPlan.synthesize(9, 2, 12 * SEC, n_events=4)

    dicts = [{"kind": "node_crash", "at_ns": 5 * MSEC, "duration_ns": MSEC}]
    inline = parse_fault_spec(json.dumps(dicts), 2, SEC)
    assert inline == FaultPlan.from_dicts(dicts)

    path = tmp_path / "plan.json"
    path.write_text(json.dumps(dicts), encoding="utf-8")
    assert parse_fault_spec(str(path), 2, SEC) == inline

    with pytest.raises(ValueError):
        parse_fault_spec("random:1:2:3:4", 2, SEC)


# ----------------------------------------------------------------------
# VMM mechanics: pause latches wakes, crash quiesces, restart replays
# ----------------------------------------------------------------------
def test_pause_latches_wake_and_resume_replays(single_node):
    sim, cluster, vmm = single_node
    from repro.hypervisor.vm import VM

    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    r = attach_stub(sim, vm, work_ns=5 * MSEC)
    vcpu = vm.vcpus[0]
    vcpu.wake()
    sim.run(until=1 * MSEC)

    vmm.pause_vm(vm)
    assert vm.paused and vcpu.state is VCPUState.BLOCKED and vcpu.wake_pending
    vcpu.wake()  # external wake while paused: latched, not dispatched
    assert vcpu.state is VCPUState.BLOCKED
    sim.run(until=20 * MSEC)
    assert r.finished_at is None  # frozen: no progress while paused

    vmm.resume_vm(vm)
    assert not vm.paused and not vcpu.wake_pending
    sim.run()
    assert r.finished_at is not None
    assert vcpu.total_run_ns >= 5 * MSEC


def test_nested_pauses_hold_until_the_last_release(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm)
    vmm.pause_vm(vm)
    vmm.pause_vm(vm)  # second window (overlapping fault, or a migration)
    assert vm.paused and vm.pause_depth == 2
    vmm.resume_vm(vm)
    assert vm.paused and vm.pause_depth == 1  # still one window open
    vmm.resume_vm(vm)
    assert not vm.paused and vm.pause_depth == 0
    vmm.resume_vm(vm)  # extra resume is a no-op, not an underflow
    assert not vm.paused and vm.pause_depth == 0


def test_restart_force_clears_pause_depth(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm)
    vmm.pause_vm(vm)
    vmm.pause_vm(vm)
    vmm.crash()
    vmm.restart()  # a reboot forgets pre-crash administrative pauses
    assert not vm.paused and vm.pause_depth == 0


def test_overlapping_vm_pause_faults_heal_at_the_last():
    plan = FaultPlan.of([
        FaultEvent("vm_pause", at_ns=1 * MSEC, node=0, duration_ns=10 * MSEC),
        FaultEvent("vm_pause", at_ns=2 * MSEC, node=0, duration_ns=2 * MSEC),
    ])
    w = CloudWorld(WorldConfig(n_nodes=2, faults=plan))
    vm = w.new_vm(name="g0", node_idx=0)
    w.run(horizon_ns=6 * MSEC)
    assert vm.paused and vm.pause_depth == 1  # inner healed at t=4ms
    w.run(horizon_ns=10 * MSEC)
    assert not vm.paused and vm.pause_depth == 0  # outer healed at t=11ms
    assert w.fault_injector.stats["healed"] == {"vm_pause": 2}


def test_heal_after_skip_does_not_resume_later_vm():
    """Regression: a ``vm_pause`` whose inject was skipped (no guest
    existed yet) must not heal anything — re-resolving the target at heal
    time used to pick up a VM admitted *after* the skip and decrement a
    pause depth that window never incremented."""
    plan = FaultPlan.of([
        FaultEvent("vm_pause", at_ns=1 * MSEC, node=0, duration_ns=10 * MSEC),
    ])
    w = CloudWorld(WorldConfig(n_nodes=1, faults=plan))
    w.run(horizon_ns=2 * MSEC)  # inject fires with no guest: skipped
    assert w.fault_injector.stats["skipped"] == {"vm_pause": 1}
    # A guest admitted between inject and heal, frozen by its own window
    # (stand-in for a migration stop-and-copy).
    vm = w.new_vm(name="late", node_idx=0)
    vm.node.vmm.pause_vm(vm)
    w.run(horizon_ns=15 * MSEC)  # the skipped fault's heal fires at 11 ms
    assert vm.paused and vm.pause_depth == 1  # untouched by the heal
    stats = w.fault_injector.stats
    assert stats["injected"] == {"vm_pause": 1}
    assert stats["healed"] == {}  # no pause happened, so nothing healed
    assert stats["skipped"] == {"vm_pause": 1}


def test_heal_after_teardown_releases_only_its_own_window():
    """A tenant torn down mid-fault keeps its teardown freeze: the heal
    releases exactly the window it opened at inject time."""
    plan = FaultPlan.of([
        FaultEvent("vm_pause", at_ns=1 * MSEC, node=0, vm="t0",
                   duration_ns=10 * MSEC),
    ])
    w = CloudWorld(WorldConfig(n_nodes=1, faults=plan))
    vm = w.new_vm(name="t0", node_idx=0)
    w.run(horizon_ns=2 * MSEC)
    assert vm.paused and vm.pause_depth == 1
    w.teardown_vm(vm)  # departs while the fault window is still open
    assert vm.pause_depth == 2
    w.run(horizon_ns=15 * MSEC)  # heal releases the fault window only
    assert vm.paused and vm.pause_depth == 1  # teardown freeze holds
    stats = w.fault_injector.stats
    assert stats["healed"] == {"vm_pause": 1}  # a real pause, really healed
    assert stats["skipped"] == {}


def test_crash_quiesces_and_restart_recovers(single_node):
    sim, cluster, vmm = single_node
    from repro.hypervisor.vm import VM

    vm = VM(vmm.node, 1)
    vmm.add_vm(vm)
    r = attach_stub(sim, vm, work_ns=5 * MSEC)
    vm.vcpus[0].wake()
    sim.run(until=1 * MSEC)

    vmm.crash()
    vmm.crash()  # idempotent
    assert vmm.node.crashed
    assert all(v.state is VCPUState.BLOCKED for g in vmm.vms for v in g.vcpus)
    sim.run(until=40 * MSEC)
    # The guest makes zero progress while the node is down.
    assert r.finished_at is None
    assert vm.vcpus[0].state is VCPUState.BLOCKED

    vmm.restart()
    vmm.restart()  # idempotent
    assert not vmm.node.crashed
    sim.run()
    assert r.finished_at is not None


def test_san006_flags_decision_on_crashed_node(single_node):
    sim, cluster, vmm = single_node
    add_guest_vm(vmm, n_vcpus=1)
    san = SimSanitizer(sim, [vmm])
    vmm.crash()
    assert san.violations == []  # the crash itself is clean
    vmm.scheduler.pick_next(vmm.node.pcpus[0])  # leaked decision
    assert "SAN006" in [v.code for v in san.violations]
    assert san.violations[0].context["node"] == vmm.node.index


# ----------------------------------------------------------------------
# Injector: overlap depth, link degradation stack, trace records
# ----------------------------------------------------------------------
def test_overlapping_crash_windows_heal_at_the_last():
    plan = FaultPlan.of([
        FaultEvent("node_crash", at_ns=1 * MSEC, node=0, duration_ns=10 * MSEC),
        FaultEvent("node_crash", at_ns=2 * MSEC, node=0, duration_ns=2 * MSEC),
    ])
    w = CloudWorld(WorldConfig(n_nodes=2, faults=plan))
    node = w.cluster.nodes[0]
    w.run(horizon_ns=6 * MSEC)
    assert node.crashed  # inner window healed at t=4ms, outer still live
    w.run(horizon_ns=10 * MSEC)
    assert not node.crashed  # outer heal at t=11ms restarted the node
    assert w.fault_injector.stats["injected"] == {"node_crash": 2}
    assert w.fault_injector.stats["healed"] == {"node_crash": 2}


def test_nic_degrade_stack_restores_previous_level():
    plan = FaultPlan.of([
        FaultEvent("nic_degrade", at_ns=1 * MSEC, node=0,
                   duration_ns=20 * MSEC, bw_factor=0.5),
        FaultEvent("nic_degrade", at_ns=2 * MSEC, node=0,
                   duration_ns=2 * MSEC, bw_factor=0.25),
    ])
    w = CloudWorld(WorldConfig(n_nodes=2, faults=plan))
    fabric = w.cluster.fabric
    w.run(horizon_ns=3 * MSEC)
    assert fabric._degraded[0][0] == 0.25  # deepest degradation wins
    w.run(horizon_ns=10 * MSEC)
    assert fabric._degraded[0][0] == 0.5  # inner heal falls back, not to clean
    w.run(horizon_ns=30 * MSEC)
    assert 0 not in fabric._degraded  # outer heal restores the link


def test_fault_trace_records_emitted():
    plan = FaultPlan.of([
        FaultEvent("vm_pause", at_ns=1 * MSEC, node=0, duration_ns=2 * MSEC),
    ])
    w = CloudWorld(WorldConfig(n_nodes=2, faults=plan))
    w.new_vm(name="g0", node_idx=0)
    log = TraceLog()
    with log.activate():
        w.run(horizon_ns=5 * MSEC)
    kinds = [r.kind for r in log.records() if r.kind.startswith("fault.")]
    assert kinds == ["fault.inject", "fault.heal"]
    rec = next(r for r in log.records() if r.kind == "fault.inject")
    assert rec.args["fault"] == "vm_pause" and rec.t == 1 * MSEC


def test_injector_rejects_invalid_plan():
    plan = FaultPlan.of([FaultEvent("node_crash", at_ns=0, node=99)])
    with pytest.raises(ValueError):
        CloudWorld(WorldConfig(n_nodes=2, faults=plan))


def test_clean_world_arms_no_fault_hooks():
    w = CloudWorld(WorldConfig(n_nodes=2))
    assert w.fault_injector is None
    assert w.cluster.fabric.drop_rng is None
    assert w.cluster.fabric.crashed_of is None


# ----------------------------------------------------------------------
# Scenario-level acceptance: bit-identity, recovery, packet loss
# ----------------------------------------------------------------------
CRASH_PLAN = [
    {"kind": "node_crash", "at_ns": 100 * MSEC, "node": 1, "duration_ns": 150 * MSEC},
]
LOSSY_PLAN = [
    {"kind": "nic_degrade", "at_ns": 50 * MSEC, "node": 0,
     "duration_ns": 5 * SEC, "bw_factor": 0.5, "drop_prob": 0.2},
]


def _typea(**kw):
    return run_type_a("is", "CR", 2, rounds=2, warmup_rounds=0,
                      horizon_s=60.0, seed=3, **kw)


def test_faulted_run_is_bit_identical():
    r1 = _typea(faults=CRASH_PLAN)
    r2 = _typea(faults=CRASH_PLAN)
    assert r1 == r2


def test_crash_recovery_preserves_completion():
    clean = _typea()
    faulted = _typea(faults=CRASH_PLAN)
    assert faulted["all_done"] and clean["all_done"]
    assert faulted["faults"]["injected"] == {"node_crash": 1}
    assert faulted["faults"]["healed"] == {"node_crash": 1}
    assert "faults" not in clean  # clean results carry no fault key
    assert faulted["mean_round_ns"] != clean["mean_round_ns"]


def test_packet_loss_retransmits_without_losing_messages():
    r = _typea(faults=LOSSY_PLAN)
    assert r["all_done"]
    assert r["faults"]["messages_dropped"] > 0
    assert r["faults"]["retransmits"] >= r["faults"]["messages_dropped"]
    assert r["faults"]["messages_lost"] == 0


def test_sanitized_faulted_run_is_bit_identical():
    plain = _typea(faults=CRASH_PLAN)
    sane = _typea(faults=CRASH_PLAN, sanitize=True)
    assert plain == sane
