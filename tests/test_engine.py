"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import (
    SimulationError,
    Simulator,
    WatchdogExceeded,
    install_watchdog,
)
from repro.sim.units import USEC


def test_initial_state(sim):
    assert sim.now == 0
    assert sim.events_processed == 0
    assert sim.pending() == 0
    assert sim.peek() is None


def test_events_fire_in_time_order(sim):
    order = []
    sim.at(30, lambda: order.append("c"))
    sim.at(10, lambda: order.append("a"))
    sim.at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_fifo_among_simultaneous_events(sim):
    order = []
    for i in range(10):
        sim.at(5, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_after_is_relative(sim):
    sim.at(100, lambda: None)
    sim.run()
    times = []
    sim.after(7, lambda: times.append(sim.now))
    sim.run()
    assert times == [107]


def test_cannot_schedule_in_past(sim):
    sim.at(50, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(10, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_cancel_skips_event(sim):
    fired = []
    ev = sim.at(10, lambda: fired.append(1))
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent(sim):
    ev = sim.at(10, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_clock_exactly(sim):
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(100, lambda: fired.append(100))
    sim.run(until=50)
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.at(50, lambda: fired.append(50))
    sim.run(until=50)
    assert fired == [50]


def test_run_resumes_after_until(sim):
    sim.at(10, lambda: None)
    sim.run(until=5)
    assert sim.now == 5
    sim.run(until=20)
    assert sim.events_processed == 1


def test_stop_halts_loop(sim):
    fired = []
    sim.at(1, lambda: fired.append(1))
    sim.at(2, sim.stop)
    sim.at(3, lambda: fired.append(3))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 3]


def test_max_events(sim):
    for i in range(10):
        sim.at(i, lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4


def test_step_single_event(sim):
    fired = []
    sim.at(5, lambda: fired.append(1))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is False


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.after(5, lambda: order.append("second"))

    sim.at(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_zero_delay_event_fires_at_same_time_later_seq(sim):
    order = []

    def outer():
        sim.after(0, lambda: order.append("inner"))
        order.append("outer")

    sim.at(10, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 10


def test_peek_skips_cancelled(sim):
    ev = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    ev.cancel()
    assert sim.peek() == 9


def test_pending_counts_only_live_events(sim):
    evs = [sim.at(i + 1, lambda: None) for i in range(5)]
    evs[0].cancel()
    evs[3].cancel()
    assert sim.pending() == 3


def test_event_ordering_operator():
    from repro.sim.engine import Event

    a = Event(10, 0, lambda: None)
    b = Event(10, 1, lambda: None)
    c = Event(5, 2, lambda: None)
    assert c < a < b


def test_large_volume_determinism():
    """Two identical simulations process events identically."""

    def build():
        s = Simulator()
        log = []

        def rec(tag):
            log.append((s.now, tag))

        for i in range(1000):
            s.at((i * 37) % 500, lambda i=i: rec(i))
        s.run()
        return log

    assert build() == build()


def test_float_times_coerced_to_int(sim):
    sim.at(10.7, lambda: None)
    assert sim.peek() == 10


def test_max_events_with_until_advances_drained_clock(sim):
    """Regression: max_events exhaustion must still finalize the clock when
    no runnable event at or before ``until`` remains, so repeated
    ``run(until=now+horizon)`` calls compose."""
    for i in range(3):
        sim.at(i * 10, lambda: None)
    sim.run(until=50, max_events=3)
    assert sim.events_processed == 3
    assert sim.now == 50  # drained up to the deadline -> lands on it


def test_max_events_keeps_clock_when_events_remain(sim):
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(20, lambda: fired.append(20))
    sim.run(until=50, max_events=1)
    assert fired == [10]
    assert sim.now == 10  # event at 20 is still runnable; don't skip past it
    sim.run(until=50)
    assert fired == [10, 20]
    assert sim.now == 50


def test_max_events_with_later_events_advances_to_until(sim):
    sim.at(10, lambda: None)
    sim.at(100, lambda: None)
    sim.run(until=50, max_events=1)
    assert sim.now == 50  # only remaining event is beyond the deadline


def test_stop_leaves_clock_at_last_event(sim):
    sim.at(10, sim.stop)
    sim.at(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 10


def test_stop_before_run_is_cleared_on_entry(sim):
    """run() arms a fresh loop: a stale stop() from outside the loop must
    not suppress the next run."""
    fired = []
    sim.stop()
    sim.at(5, lambda: fired.append(1))
    sim.run()
    assert fired == [1]


def test_stop_preserves_fifo_among_simultaneous_events(sim):
    """Stopping mid-timestamp must not reorder the remaining same-time
    events on resume."""
    order = []
    # deliberate same-instant appends: the test asserts the engine's FIFO
    # tie-break, so the "race" RPR040/041 flags is the property under test
    sim.at(10, lambda: order.append("a"))  # repro: ignore[RPR040,RPR041]
    sim.at(10, sim.stop)
    sim.at(10, lambda: order.append("b"))  # repro: ignore[RPR040,RPR041]
    sim.at(10, lambda: order.append("c"))  # repro: ignore[RPR040,RPR041]
    sim.run()
    assert order == ["a"]
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 10


def test_stop_then_run_until_does_not_advance_clock(sim):
    """A stopped run never rounds the clock up to ``until``; the deadline
    only applies to the run that reaches it."""
    sim.at(10, sim.stop)
    sim.run(until=500)
    assert sim.now == 10
    sim.run(until=500)  # queue empty -> drains to the deadline
    assert sim.now == 500


def test_peek_lazily_discards_cancelled_prefix(sim):
    evs = [sim.at(i + 1, lambda: None) for i in range(4)]
    evs[0].cancel()
    evs[1].cancel()
    assert sim.cancelled_popped == 0
    assert sim.peek() == 3  # pops the two cancelled heads
    assert sim.cancelled_popped == 2
    assert sim.peek() == 3  # idempotent: nothing further discarded
    assert sim.cancelled_popped == 2


def test_peek_empty_after_all_cancelled(sim):
    evs = [sim.at(i + 1, lambda: None) for i in range(3)]
    for ev in evs:
        ev.cancel()
    assert sim.peek() is None
    assert sim.cancelled_popped == 3
    assert sim.pending() == 0


def test_cancelled_popped_counts_every_lazy_discard(sim):
    """run()/step()/peek() jointly account for each cancelled event exactly
    once, and none of them executes or bumps events_processed."""
    keep = []
    live = [sim.at(10 * (i + 1), lambda i=i: keep.append(i)) for i in range(3)]
    dead = [sim.at(5 * (i + 1), lambda: keep.append("dead")) for i in range(4)]
    for ev in dead:
        ev.cancel()
    live[1].cancel()
    sim.run()
    assert keep == [0, 2]
    assert sim.events_processed == 2
    assert sim.cancelled_popped == 5


def test_cancel_after_peek_discard_is_harmless(sim):
    ev = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    ev.cancel()
    assert sim.peek() == 9  # ev discarded from the heap here
    ev.cancel()  # handle outlives the heap entry; still idempotent
    sim.run()
    assert sim.events_processed == 1


# ----------------------------------------------------------------------
# install_watchdog: budget enforcement via the trace probe
# ----------------------------------------------------------------------
def test_watchdog_event_budget_raises(sim):
    install_watchdog(sim, max_events=3)
    for i in range(10):
        sim.at(i, lambda: None)
    with pytest.raises(WatchdogExceeded, match="event budget"):
        sim.run()
    assert sim.events_processed == 3


def test_watchdog_sim_time_budget_raises(sim):
    install_watchdog(sim, max_now_ns=100)
    sim.at(50, lambda: None)
    sim.at(200, lambda: None)
    with pytest.raises(WatchdogExceeded, match="simulated time"):
        sim.run()
    assert sim.now == 200  # the offending event is where it fired


def test_watchdog_budget_is_relative_to_install_point(sim):
    for i in range(5):
        sim.at(i, lambda: None)
    sim.run()
    install_watchdog(sim, max_events=3)
    for i in range(5):
        sim.after(1 + i, lambda: None)
    with pytest.raises(WatchdogExceeded):
        sim.run()
    assert sim.events_processed == 8  # 5 before + 3 budgeted after


def test_watchdog_chains_existing_trace_hook(sim):
    seen = []
    sim.trace = lambda t, fn: seen.append(t)
    install_watchdog(sim, max_events=100)
    sim.at(7, lambda: None)
    sim.run()
    assert seen == [7]  # previous probe still fires


def test_watchdog_without_budgets_is_a_no_op(sim):
    probe = sim.trace
    install_watchdog(sim)
    assert sim.trace is probe


def test_watchdog_within_budget_leaves_run_untouched(sim):
    order = []
    for i in range(5):
        sim.at(i, lambda i=i: order.append(i))
    install_watchdog(sim, max_events=50, max_now_ns=1 * USEC)
    sim.run()
    assert order == list(range(5))
