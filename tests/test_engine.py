"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_initial_state(sim):
    assert sim.now == 0
    assert sim.events_processed == 0
    assert sim.pending() == 0
    assert sim.peek() is None


def test_events_fire_in_time_order(sim):
    order = []
    sim.at(30, lambda: order.append("c"))
    sim.at(10, lambda: order.append("a"))
    sim.at(20, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_fifo_among_simultaneous_events(sim):
    order = []
    for i in range(10):
        sim.at(5, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_after_is_relative(sim):
    sim.at(100, lambda: None)
    sim.run()
    times = []
    sim.after(7, lambda: times.append(sim.now))
    sim.run()
    assert times == [107]


def test_cannot_schedule_in_past(sim):
    sim.at(50, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(10, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.after(-1, lambda: None)


def test_cancel_skips_event(sim):
    fired = []
    ev = sim.at(10, lambda: fired.append(1))
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.events_processed == 0


def test_cancel_is_idempotent(sim):
    ev = sim.at(10, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_run_until_stops_clock_exactly(sim):
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(100, lambda: fired.append(100))
    sim.run(until=50)
    assert fired == [10]
    assert sim.now == 50
    sim.run()
    assert fired == [10, 100]


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.at(50, lambda: fired.append(50))
    sim.run(until=50)
    assert fired == [50]


def test_run_resumes_after_until(sim):
    sim.at(10, lambda: None)
    sim.run(until=5)
    assert sim.now == 5
    sim.run(until=20)
    assert sim.events_processed == 1


def test_stop_halts_loop(sim):
    fired = []
    sim.at(1, lambda: fired.append(1))
    sim.at(2, sim.stop)
    sim.at(3, lambda: fired.append(3))
    sim.run()
    assert fired == [1]
    sim.run()
    assert fired == [1, 3]


def test_max_events(sim):
    for i in range(10):
        sim.at(i, lambda: None)
    sim.run(max_events=4)
    assert sim.events_processed == 4


def test_step_single_event(sim):
    fired = []
    sim.at(5, lambda: fired.append(1))
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is False


def test_events_scheduled_during_run_fire(sim):
    order = []

    def first():
        order.append("first")
        sim.after(5, lambda: order.append("second"))

    sim.at(10, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 15


def test_zero_delay_event_fires_at_same_time_later_seq(sim):
    order = []

    def outer():
        sim.after(0, lambda: order.append("inner"))
        order.append("outer")

    sim.at(10, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 10


def test_peek_skips_cancelled(sim):
    ev = sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    ev.cancel()
    assert sim.peek() == 9


def test_pending_counts_only_live_events(sim):
    evs = [sim.at(i + 1, lambda: None) for i in range(5)]
    evs[0].cancel()
    evs[3].cancel()
    assert sim.pending() == 3


def test_event_ordering_operator():
    from repro.sim.engine import Event

    a = Event(10, 0, lambda: None)
    b = Event(10, 1, lambda: None)
    c = Event(5, 2, lambda: None)
    assert c < a < b


def test_large_volume_determinism():
    """Two identical simulations process events identically."""

    def build():
        s = Simulator()
        log = []

        def rec(tag):
            log.append((s.now, tag))

        for i in range(1000):
            s.at((i * 37) % 500, lambda i=i: rec(i))
        s.run()
        return log

    assert build() == build()


def test_float_times_coerced_to_int(sim):
    sim.at(10.7, lambda: None)
    assert sim.peek() == 10


def test_max_events_with_until_advances_drained_clock(sim):
    """Regression: max_events exhaustion must still finalize the clock when
    no runnable event at or before ``until`` remains, so repeated
    ``run(until=now+horizon)`` calls compose."""
    for i in range(3):
        sim.at(i * 10, lambda: None)
    sim.run(until=50, max_events=3)
    assert sim.events_processed == 3
    assert sim.now == 50  # drained up to the deadline -> lands on it


def test_max_events_keeps_clock_when_events_remain(sim):
    fired = []
    sim.at(10, lambda: fired.append(10))
    sim.at(20, lambda: fired.append(20))
    sim.run(until=50, max_events=1)
    assert fired == [10]
    assert sim.now == 10  # event at 20 is still runnable; don't skip past it
    sim.run(until=50)
    assert fired == [10, 20]
    assert sim.now == 50


def test_max_events_with_later_events_advances_to_until(sim):
    sim.at(10, lambda: None)
    sim.at(100, lambda: None)
    sim.run(until=50, max_events=1)
    assert sim.now == 50  # only remaining event is beyond the deadline


def test_stop_leaves_clock_at_last_event(sim):
    sim.at(10, sim.stop)
    sim.at(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 10
