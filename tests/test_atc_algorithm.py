"""Tests for Algorithm 1 (compute_time_slice) — unit cases for every
branch plus property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.atc import ATCVmState, compute_time_slice
from repro.core.config import ATCConfig
from repro.sim.units import MSEC, ns_from_ms

CFG = ATCConfig()  # alpha=6ms, beta=0.3ms, thr=0.3ms, default=30ms
A = CFG.alpha_ns
B = CFG.beta_ns
THR = CFG.min_threshold_ns
DEF = CFG.default_ns


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_defaults_match_paper():
    assert CFG.min_threshold_ns == ns_from_ms(0.3)
    assert CFG.default_ns == 30 * MSEC
    assert CFG.alpha_ns > CFG.beta_ns


@pytest.mark.parametrize(
    "kw",
    [
        dict(alpha_ns=100, beta_ns=200),  # alpha must exceed beta
        dict(min_threshold_ns=0),
        dict(default_ns=1, min_threshold_ns=100),
        dict(trend_policy="bogus"),
    ],
)
def test_config_rejects_invalid(kw):
    with pytest.raises(ValueError):
        ATCConfig(**kw)


# ----------------------------------------------------------------------
# Algorithm 1 branch coverage
# ----------------------------------------------------------------------
def test_rising_latency_shortens_by_alpha():
    ts = compute_time_slice([1000, 1000, 2000], [DEF, DEF, DEF], CFG)
    assert ts == DEF - A


def test_rising_latency_near_threshold_shortens_by_beta():
    cur = THR + B  # alpha step would go below the threshold
    ts = compute_time_slice([1000, 1000, 2000], [cur, cur, cur], CFG)
    assert ts == cur - B
    assert ts >= THR


def test_never_goes_below_min_threshold():
    ts = compute_time_slice([1000, 1000, 2000], [THR, THR, THR], CFG)
    assert ts == THR  # hold: both steps would violate the threshold


def test_flat_latency_holds_slice():
    ts = compute_time_slice([2000, 2000, 2000], [DEF, DEF, DEF], CFG)
    assert ts == DEF


def test_decreasing_latency_without_slice_decrease_holds():
    # falling latency but the slice did NOT shrink: not attributable to us
    ts = compute_time_slice([3000, 2000, 1000], [12 * MSEC, 12 * MSEC, 12 * MSEC], CFG)
    assert ts == 12 * MSEC


def test_paper_policy_keeps_shortening_when_fall_is_caused_by_slice():
    # printed pseudo-code: sustained fall + shrinking slice -> shorten more
    # 6 ms - alpha would hit 0 (< threshold), so the fine beta step applies
    ts = compute_time_slice(
        [3000, 2000, 1000], [18 * MSEC, 12 * MSEC, 6 * MSEC], CFG
    )
    assert ts == 6 * MSEC - B


def test_prose_policy_lengthens_gently_instead():
    cfg = ATCConfig(trend_policy="prose")
    ts = compute_time_slice(
        [3000, 2000, 1000], [18 * MSEC, 12 * MSEC, 6 * MSEC], cfg
    )
    assert ts == 6 * MSEC + cfg.beta_ns


def test_prose_policy_still_shortens_on_rise():
    cfg = ATCConfig(trend_policy="prose")
    ts = compute_time_slice([1000, 1000, 2000], [DEF, DEF, DEF], cfg)
    assert ts == DEF - cfg.alpha_ns


def test_zero_latency_three_periods_restores_default_when_close():
    ts = compute_time_slice([0, 0, 0], [DEF - B, DEF - B, DEF - B], CFG)
    assert ts == DEF


def test_zero_latency_three_periods_steps_up_by_alpha():
    cur = 10 * MSEC
    ts = compute_time_slice([0, 0, 0], [cur, cur, cur], CFG)
    assert ts == cur + A


def test_zero_latency_overrides_trend_branch():
    # all-zero history is also "not rising": restore wins
    ts = compute_time_slice([0, 0, 0], [THR, THR, THR], CFG)
    assert ts == THR + A


def test_partial_zero_latency_does_not_restore():
    ts = compute_time_slice([0, 0, 500], [12 * MSEC] * 3, CFG)
    assert ts == 12 * MSEC - A  # 0 < 500 counts as rising


def test_requires_exactly_three_periods():
    with pytest.raises(ValueError):
        compute_time_slice([1, 2], [DEF, DEF], CFG)
    with pytest.raises(ValueError):
        compute_time_slice([1, 2, 3, 4], [DEF] * 4, CFG)


def test_convergence_from_default_to_threshold():
    """Under persistently rising latency the control law converges onto
    exactly the minimum threshold and stays there."""
    lat = [1.0, 2.0, 3.0]
    slices = [DEF, DEF, DEF]
    seen = []
    for i in range(60):
        nxt = compute_time_slice(lat, slices, CFG)
        seen.append(nxt)
        lat = [lat[1], lat[2], lat[2] + 1.0]
        slices = [slices[1], slices[2], nxt]
    assert seen[-1] == THR
    assert min(seen) >= THR
    # monotone non-increasing trajectory
    assert all(b <= a for a, b in zip(seen, seen[1:]))


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
lat_st = st.lists(st.floats(min_value=0, max_value=1e9), min_size=3, max_size=3)
slice_st = st.lists(
    st.integers(min_value=CFG.min_threshold_ns, max_value=CFG.default_ns),
    min_size=3,
    max_size=3,
)


@given(lat_st, slice_st)
def test_result_respects_threshold_and_default(lats, slices):
    ts = compute_time_slice(lats, slices, CFG)
    assert ts >= CFG.min_threshold_ns
    assert ts <= CFG.default_ns


@given(lat_st, slice_st)
def test_single_step_bounded_by_alpha(lats, slices):
    ts = compute_time_slice(lats, slices, CFG)
    assert abs(ts - slices[-1]) <= CFG.alpha_ns or ts == CFG.default_ns


@given(lat_st, slice_st, st.sampled_from(["paper", "prose"]))
def test_deterministic(lats, slices, policy):
    cfg = ATCConfig(trend_policy=policy)
    assert compute_time_slice(lats, slices, cfg) == compute_time_slice(lats, slices, cfg)


@given(slice_st)
def test_rising_latency_never_lengthens(slices):
    ts = compute_time_slice([1.0, 2.0, 3.0], slices, CFG)
    assert ts <= slices[-1]


@given(slice_st)
def test_zero_latency_never_shortens(slices):
    ts = compute_time_slice([0, 0, 0], slices, CFG)
    assert ts >= slices[-1]


# ----------------------------------------------------------------------
# ATCVmState
# ----------------------------------------------------------------------
def test_state_warmup_keeps_current_slice():
    stt = ATCVmState(CFG)
    assert stt.next_slice() == CFG.default_ns  # no history at all
    stt.observe(100.0, DEF)
    assert stt.next_slice() == DEF
    stt.observe(200.0, DEF)
    assert stt.next_slice() == DEF  # still <3 periods


def test_state_window_rolls():
    stt = ATCVmState(CFG)
    for i in range(10):
        stt.observe(float(i), DEF - i)
    assert stt.latencies == [7.0, 8.0, 9.0]
    assert stt.slices == [DEF - 7, DEF - 8, DEF - 9]


def test_state_applies_algorithm_after_three():
    stt = ATCVmState(CFG)
    stt.observe(100.0, DEF)
    stt.observe(100.0, DEF)
    stt.observe(200.0, DEF)
    assert stt.next_slice() == DEF - A
