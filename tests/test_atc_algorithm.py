"""Tests for Algorithm 1 (compute_time_slice) — unit cases for every
branch plus property-based invariants."""

import pytest
from hypothesis import given, strategies as st

from repro.core.atc import ATCVmState, compute_time_slice
from repro.core.config import ATCConfig
from repro.sim.units import MSEC, ns_from_ms

CFG = ATCConfig()  # alpha=6ms, beta=0.3ms, thr=0.3ms, default=30ms
A = CFG.alpha_ns
B = CFG.beta_ns
THR = CFG.min_threshold_ns
DEF = CFG.default_ns


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_defaults_match_paper():
    assert CFG.min_threshold_ns == ns_from_ms(0.3)
    assert CFG.default_ns == 30 * MSEC
    assert CFG.alpha_ns > CFG.beta_ns


@pytest.mark.parametrize(
    "kw",
    [
        dict(alpha_ns=100, beta_ns=200),  # alpha must exceed beta
        dict(min_threshold_ns=0),
        dict(default_ns=1, min_threshold_ns=100),
        dict(trend_policy="bogus"),
    ],
)
def test_config_rejects_invalid(kw):
    with pytest.raises(ValueError):
        ATCConfig(**kw)


# ----------------------------------------------------------------------
# Algorithm 1 branch coverage
# ----------------------------------------------------------------------
def test_rising_latency_shortens_by_alpha():
    ts = compute_time_slice([1000, 1000, 2000], [DEF, DEF, DEF], CFG)
    assert ts == DEF - A


def test_rising_latency_near_threshold_shortens_by_beta():
    cur = THR + B  # alpha step would go below the threshold
    ts = compute_time_slice([1000, 1000, 2000], [cur, cur, cur], CFG)
    assert ts == cur - B
    assert ts >= THR


def test_never_goes_below_min_threshold():
    ts = compute_time_slice([1000, 1000, 2000], [THR, THR, THR], CFG)
    assert ts == THR  # hold: both steps would violate the threshold


def test_flat_latency_holds_slice():
    ts = compute_time_slice([2000, 2000, 2000], [DEF, DEF, DEF], CFG)
    assert ts == DEF


def test_decreasing_latency_without_slice_decrease_holds():
    # falling latency but the slice did NOT shrink: not attributable to us
    ts = compute_time_slice([3000, 2000, 1000], [12 * MSEC, 12 * MSEC, 12 * MSEC], CFG)
    assert ts == 12 * MSEC


def test_paper_policy_keeps_shortening_when_fall_is_caused_by_slice():
    # printed pseudo-code: sustained fall + shrinking slice -> shorten more
    # 6 ms - alpha would hit 0 (< threshold), so the fine beta step applies
    ts = compute_time_slice(
        [3000, 2000, 1000], [18 * MSEC, 12 * MSEC, 6 * MSEC], CFG
    )
    assert ts == 6 * MSEC - B


def test_prose_policy_lengthens_gently_instead():
    cfg = ATCConfig(trend_policy="prose")
    ts = compute_time_slice(
        [3000, 2000, 1000], [18 * MSEC, 12 * MSEC, 6 * MSEC], cfg
    )
    assert ts == 6 * MSEC + cfg.beta_ns


def test_prose_policy_still_shortens_on_rise():
    cfg = ATCConfig(trend_policy="prose")
    ts = compute_time_slice([1000, 1000, 2000], [DEF, DEF, DEF], cfg)
    assert ts == DEF - cfg.alpha_ns


def test_zero_latency_three_periods_restores_default_when_close():
    ts = compute_time_slice([0, 0, 0], [DEF - B, DEF - B, DEF - B], CFG)
    assert ts == DEF


def test_zero_latency_three_periods_steps_up_by_alpha():
    cur = 10 * MSEC
    ts = compute_time_slice([0, 0, 0], [cur, cur, cur], CFG)
    assert ts == cur + A


def test_zero_latency_overrides_trend_branch():
    # all-zero history is also "not rising": restore wins
    ts = compute_time_slice([0, 0, 0], [THR, THR, THR], CFG)
    assert ts == THR + A


def test_partial_zero_latency_does_not_restore():
    ts = compute_time_slice([0, 0, 500], [12 * MSEC] * 3, CFG)
    assert ts == 12 * MSEC - A  # 0 < 500 counts as rising


def test_requires_exactly_three_periods():
    with pytest.raises(ValueError):
        compute_time_slice([1, 2], [DEF, DEF], CFG)
    with pytest.raises(ValueError):
        compute_time_slice([1, 2, 3, 4], [DEF] * 4, CFG)


def test_convergence_from_default_to_threshold():
    """Under persistently rising latency the control law converges onto
    exactly the minimum threshold and stays there."""
    lat = [1.0, 2.0, 3.0]
    slices = [DEF, DEF, DEF]
    seen = []
    for i in range(60):
        nxt = compute_time_slice(lat, slices, CFG)
        seen.append(nxt)
        lat = [lat[1], lat[2], lat[2] + 1.0]
        slices = [slices[1], slices[2], nxt]
    assert seen[-1] == THR
    assert min(seen) >= THR
    # monotone non-increasing trajectory
    assert all(b <= a for a, b in zip(seen, seen[1:]))


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------
lat_st = st.lists(st.floats(min_value=0, max_value=1e9), min_size=3, max_size=3)
slice_st = st.lists(
    st.integers(min_value=CFG.min_threshold_ns, max_value=CFG.default_ns),
    min_size=3,
    max_size=3,
)


@given(lat_st, slice_st)
def test_result_respects_threshold_and_default(lats, slices):
    ts = compute_time_slice(lats, slices, CFG)
    assert ts >= CFG.min_threshold_ns
    assert ts <= CFG.default_ns


@given(lat_st, slice_st)
def test_single_step_bounded_by_alpha(lats, slices):
    ts = compute_time_slice(lats, slices, CFG)
    assert abs(ts - slices[-1]) <= CFG.alpha_ns or ts == CFG.default_ns


@given(lat_st, slice_st, st.sampled_from(["paper", "prose"]))
def test_deterministic(lats, slices, policy):
    cfg = ATCConfig(trend_policy=policy)
    assert compute_time_slice(lats, slices, cfg) == compute_time_slice(lats, slices, cfg)


@given(slice_st)
def test_rising_latency_never_lengthens(slices):
    ts = compute_time_slice([1.0, 2.0, 3.0], slices, CFG)
    assert ts <= slices[-1]


@given(slice_st)
def test_zero_latency_never_shortens(slices):
    ts = compute_time_slice([0, 0, 0], slices, CFG)
    assert ts >= slices[-1]


# ----------------------------------------------------------------------
# Restore ladder (lines 12-20): every arm reachable, exact convergence
# ----------------------------------------------------------------------
def test_restore_alpha_arm_while_full_step_fits():
    cur = DEF - A
    ts = compute_time_slice([0, 0, 0], [cur] * 3, CFG)
    assert ts == DEF  # exactly one coarse step away


def test_restore_beta_arm_when_alpha_overshoots():
    """Regression: the fine step-up arm used to be unreachable — a slice
    within alpha of DEFAULT (but more than beta away) must step by beta."""
    cur = DEF - A + B
    assert cur + A > DEF and cur + B <= DEF  # squarely in the beta arm
    ts = compute_time_slice([0, 0, 0], [cur] * 3, CFG)
    assert ts == cur + B


def test_restore_lands_exactly_on_default_from_within_beta():
    cur = DEF - B // 2
    ts = compute_time_slice([0, 0, 0], [cur] * 3, CFG)
    assert ts == DEF


def test_restore_clamps_slice_above_default():
    cur = DEF + 5 * MSEC
    ts = compute_time_slice([0, 0, 0], [cur] * 3, CFG)
    assert ts == DEF


@given(st.integers(min_value=THR, max_value=DEF))
def test_restore_ladder_converges_exactly_to_default(start):
    """From any admissible slice, repeated zero-latency periods walk the
    slice monotonically up to exactly DEFAULT, each step bounded by alpha,
    without ever overshooting or stalling."""
    cur = start
    steps = 0
    while cur != DEF:
        nxt = compute_time_slice([0, 0, 0], [cur] * 3, CFG)
        assert cur < nxt <= DEF  # strict progress, no overshoot
        assert nxt - cur <= A
        cur = nxt
        steps += 1
        assert steps <= (DEF - start) // B + 2  # no stall


# Arbitrary-but-valid configs: beta < alpha, 0 < threshold < default, with
# sizes kept small enough that convergence walks stay cheap.
cfg_st = st.builds(
    lambda b, da, thr, dd: ATCConfig(
        beta_ns=b, alpha_ns=b + da, min_threshold_ns=thr, default_ns=thr + dd
    ),
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=500),
    st.integers(min_value=1, max_value=1000),
    st.integers(min_value=1, max_value=1000),
)


@given(cfg_st, st.floats(min_value=0.0, max_value=1.0))
def test_restore_ladder_converges_for_any_config(cfg, frac):
    lo, hi = cfg.min_threshold_ns, cfg.default_ns
    cur = lo + round(frac * (hi - lo))
    for _ in range((hi - lo) // cfg.beta_ns + 2):
        if cur == hi:
            break
        nxt = compute_time_slice([0, 0, 0], [cur] * 3, cfg)
        assert cur < nxt <= hi
        assert nxt - cur <= cfg.alpha_ns
        cur = nxt
    assert cur == hi


@given(cfg_st, st.floats(min_value=0.0, max_value=1.0))
def test_shorten_and_restore_ladders_are_mirrors(cfg, frac):
    """One restore step from ``ts`` then one shorten step never undershoots
    the threshold, and both laws stay inside [threshold, default]."""
    lo, hi = cfg.min_threshold_ns, cfg.default_ns
    ts = lo + round(frac * (hi - lo))
    up = compute_time_slice([0, 0, 0], [ts] * 3, cfg)
    down = compute_time_slice([1.0, 1.0, 2.0], [up] * 3, cfg)
    assert lo <= down <= up <= hi


# ----------------------------------------------------------------------
# ATCVmState
# ----------------------------------------------------------------------
def test_state_warmup_keeps_current_slice():
    stt = ATCVmState(CFG)
    assert stt.next_slice() == CFG.default_ns  # no history at all
    stt.observe(100.0, DEF)
    assert stt.next_slice() == DEF
    stt.observe(200.0, DEF)
    assert stt.next_slice() == DEF  # still <3 periods


def test_state_window_rolls():
    stt = ATCVmState(CFG)
    for i in range(10):
        stt.observe(float(i), DEF - i)
    assert stt.latencies == [7.0, 8.0, 9.0]
    assert stt.slices == [DEF - 7, DEF - 8, DEF - 9]


def test_state_applies_algorithm_after_three():
    stt = ATCVmState(CFG)
    stt.observe(100.0, DEF)
    stt.observe(100.0, DEF)
    stt.observe(200.0, DEF)
    assert stt.next_slice() == DEF - A
