"""Tests for the Credit scheduler model (CR)."""

from repro.guest.process import compute
from repro.hypervisor.vm import VCPUState, VM
from repro.schedulers.base import PRIO_BOOST, PRIO_OVER, PRIO_UNDER
from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def spin_forever():
    while True:
        yield compute(10 * MSEC)


def start_hog(vm, n=None):
    for i in range(n if n is not None else len(vm.vcpus)):
        p = vm.kernel.add_process()
        p.load_program(spin_forever())
        p.start()


def test_default_slice_is_30ms():
    assert CreditParams().slice_ns == 30 * MSEC


def test_slice_for_per_vm_override(single_node):
    sim, cluster, vmm = single_node
    vm = add_guest_vm(vmm, 1)
    sched = vmm.scheduler
    assert sched.slice_for(vm.vcpus[0]) == 30 * MSEC
    vm.slice_ns = 5 * MSEC
    assert sched.slice_for(vm.vcpus[0]) == 5 * MSEC


def test_wake_prefers_idle_pcpu(single_node):
    sim, cluster, vmm = single_node
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    start_hog(a)
    start_hog(b)
    # both should be running immediately on the two idle pcpus
    assert a.vcpus[0].state is VCPUState.RUNNING
    assert b.vcpus[0].state is VCPUState.RUNNING
    assert a.vcpus[0].pcpu is not b.vcpus[0].pcpu


def test_timesharing_is_fair_between_equal_vms():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    start_hog(a)
    start_hog(b)
    vmm.start()
    sim.run(until=2_000 * MSEC)
    ta = a.vcpus[0].total_run_ns
    tb = b.vcpus[0].total_run_ns
    assert abs(ta - tb) / max(ta, tb) < 0.15
    # and they alternated on slice boundaries
    assert cluster.nodes[0].pcpus[0].context_switches > 30


def test_weighted_share():
    # Credit enforces weights through UNDER/OVER priority, which is only
    # re-evaluated on slice boundaries — use a slice finer than the
    # accounting period (as Xen's 10 ms ticks do) to observe it.
    sim, cluster, vmms = make_node_world(
        n_pcpus=1,
        scheduler_factory=lambda vmm: CreditScheduler(
            vmm, CreditParams(slice_ns=5 * MSEC)
        ),
    )
    vmm = vmms[0]
    a = VM(vmm.node, 1, name="heavy", weight=3.0)
    vmm.add_vm(a)
    from repro.guest.kernel import GuestKernel

    GuestKernel(sim, a)
    b = add_guest_vm(vmm, 1, name="light")
    start_hog(a)
    start_hog(b)
    vmm.start()
    sim.run(until=3_000 * MSEC)
    ta = a.vcpus[0].total_run_ns
    tb = b.vcpus[0].total_run_ns
    # 3:1 weights -> clearly more CPU for the heavy VM
    assert ta > 1.5 * tb


def test_boost_wake_preempts_after_ratelimit():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    hog = add_guest_vm(vmm, 1, name="hog")
    lat = add_guest_vm(vmm, 1, name="lat")
    start_hog(hog)

    from repro.guest.process import sleep

    wake_delays = []

    def latprog():
        while True:
            yield sleep(50 * MSEC)
            t0 = sim.now

            def rec(now, t0=t0):
                wake_delays.append(now - t0)

            from repro.guest.process import call

            yield compute(100 * USEC)
            yield call(rec)

    p = lat.kernel.add_process()
    p.load_program(latprog())
    p.start()
    vmm.start()
    sim.run(until=1_000 * MSEC)
    assert wake_delays, "latency-sensitive VM never ran"
    # mostly-idle VM keeps credit -> BOOST -> preempts within the
    # ratelimit (1 ms) + its own compute (0.1 ms) + switch costs
    avg = sum(wake_delays) / len(wake_delays)
    assert avg < 2 * MSEC


def test_busy_vcpus_lose_boost():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1)
    start_hog(vm)
    vmm.start()
    sim.run(until=200 * MSEC)
    sched = vmm.scheduler
    # a CPU-hog that consumed far more than its fair share has negative
    # effective credit
    assert sched._effective_credit(vm.vcpus[0]) <= 0


def test_work_stealing_balances_queues():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vmm = vmms[0]
    vms = [add_guest_vm(vmm, 1, name=f"v{i}") for i in range(4)]
    for vm in vms:
        start_hog(vm)
    vmm.start()
    sim.run(until=1_000 * MSEC)
    # both pcpus should have done real work
    busies = [p.busy_ns for p in cluster.nodes[0].pcpus]
    assert min(busies) > 0.7 * max(busies)
    # and every VM made progress
    runs = [vm.vcpus[0].total_run_ns for vm in vms]
    assert min(runs) > 0.5 * max(runs)


def test_priorities_order_under_over():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    sched = vmm.scheduler
    vm = add_guest_vm(vmm, 2)
    v0, v1 = vm.vcpus
    v0.credit = 1000.0
    v1.credit = -1000.0
    assert sched._credit_prio(v0) == PRIO_UNDER
    assert sched._credit_prio(v1) == PRIO_OVER
    assert PRIO_BOOST < PRIO_UNDER < PRIO_OVER


def test_pop_best_prefers_boost():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    sched = vmms[0].scheduler
    vm = add_guest_vm(vmms[0], 3)
    a, b, c = vm.vcpus
    a.prio, b.prio, c.prio = PRIO_OVER, PRIO_BOOST, PRIO_UNDER
    q = sched.runqs[0]
    for v in (a, b, c):
        q.append(v)
        v.queued = True
    picked = sched._pop_best(q)
    assert picked is b
    assert sched._pop_best(q) is c
    assert sched._pop_best(q) is a
    assert sched._pop_best(q) is None


def _contended_pair():
    """One PCPU, a running hog, and an idle latency VM ready to wake."""
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    hog = add_guest_vm(vmm, 1, name="hog")
    lat = add_guest_vm(vmm, 1, name="lat")
    start_hog(hog)
    vmm.start()
    sim.run(until=100 * USEC)  # hog is mid-slice, well inside the ratelimit
    assert hog.vcpus[0].state is VCPUState.RUNNING
    lat.vcpus[0].credit = 1000.0  # positive effective credit -> BOOST wake
    return sim, vmm, hog, lat


def test_ratelimit_deferral_counts_tickle():
    """Path 1: a higher-priority wake inside the ratelimit window defers."""
    sim, vmm, hog, lat = _contended_pair()
    sched = vmm.scheduler
    cur = hog.vcpus[0]
    cur.prio = PRIO_UNDER  # plain running priority; BOOST wake outranks it
    before_def = sched.stat_deferred_tickles
    before_pre = sched.stat_wake_preemptions
    lat.vcpus[0].wake()
    assert sched.stat_deferred_tickles == before_def + 1
    assert sched.stat_wake_preemptions == before_pre  # not an instant preempt
    assert any(
        ev.cat == "sched.tickle" for ev in sim.live_events()
    ), "deferred tickle must be scheduled"


def test_boost_protection_deferral_counts_tickle():
    """Path 2 (regression): a wake blocked only by the runner's transient
    BOOST protection is a deferred tickle too — the branch used to skip
    the ``stat_deferred_tickles`` increment."""
    sim, vmm, hog, lat = _contended_pair()
    sched = vmm.scheduler
    cur = hog.vcpus[0]
    cur.prio = PRIO_BOOST  # protected until the next tick...
    cur.credit = -1000.0  # ...but OVER on credits once deboosted
    before_def = sched.stat_deferred_tickles
    before_pre = sched.stat_wake_preemptions
    lat.vcpus[0].wake()  # BOOST wake: equal now, higher after the tick
    assert sched.stat_deferred_tickles == before_def + 1
    assert sched.stat_wake_preemptions == before_pre
    assert any(
        ev.cat == "sched.tickle" for ev in sim.live_events()
    ), "deferred tickle must be scheduled"


def test_repeated_wakes_coalesce_into_one_tickle():
    """Regression: every deferred wake against the same dispatch used to
    schedule a fresh ``_ratelimit_fire`` and bump ``stat_deferred_tickles``,
    inflating the event queue with dead tickles and double-counting the
    deferral.  Now they coalesce into the single pending tickle."""
    sim, vmm, hog, lat = _contended_pair()
    sched = vmm.scheduler
    cur = hog.vcpus[0]
    cur.prio = PRIO_UNDER
    before_def = sched.stat_deferred_tickles
    lat.vcpus[0].wake()
    extra = add_guest_vm(vmm, 2, name="extra")
    for v in extra.vcpus:
        v.credit = 1000.0
        v.wake()  # same dispatch, same (or later) re-check time
    assert sched.stat_deferred_tickles == before_def + 1
    tickles = [ev for ev in sim.live_events() if ev.cat == "sched.tickle"]
    assert len(tickles) == 1, "wakes against one dispatch share one tickle"


def test_earlier_recheck_replaces_pending_tickle():
    """A ratelimit-path wake needing an earlier fire than a pending
    tick-boundary re-check replaces (not delays) the queued tickle."""
    sim, vmm, hog, lat = _contended_pair()
    sched = vmm.scheduler
    cur = hog.vcpus[0]
    cur.prio = PRIO_BOOST  # path 2 first: re-check at the next tick
    cur.credit = -1000.0
    lat.vcpus[0].wake()
    (t1,) = [ev for ev in sim.live_events() if ev.cat == "sched.tickle"]
    cur.prio = PRIO_UNDER  # now a path-1 wake wants the ratelimit expiry
    extra = add_guest_vm(vmm, 1, name="extra")
    extra.vcpus[0].credit = 1000.0
    extra.vcpus[0].wake()
    live = [ev for ev in sim.live_events() if ev.cat == "sched.tickle"]
    assert len(live) == 1
    assert live[0].time < t1.time, "replacement must fire earlier"
    assert sched.stat_deferred_tickles >= 1


def test_deboost_boundary_on_tick_dispatch():
    """Boundary regression: a BOOST dispatch starting exactly on an
    accounting tick is protected for exactly one tick window — judged at
    its credit priority from ``run_start + tick`` on, not
    ``run_start + 2 * tick``."""
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    sched = vmms[0].scheduler
    vm = add_guest_vm(vmms[0], 1)
    v = vm.vcpus[0]
    v.prio = PRIO_BOOST
    v.credit = -1000.0  # OVER once protection lapses
    pcpu = cluster.nodes[0].pcpus[0]
    pcpu.current = v
    tick = sched.params.tick_ns
    pcpu.run_start_ns = 7 * tick  # dispatched exactly on the boundary
    assert sched._next_tick_after(7 * tick) == 8 * tick
    sim.now = 7 * tick
    assert sched._running_prio(pcpu) == PRIO_BOOST
    sim.now = 8 * tick - 1  # last instant of the dispatch's tick window
    assert sched._running_prio(pcpu) == PRIO_BOOST
    sim.now = 8 * tick  # one tick after dispatch: deboosted
    assert sched._running_prio(pcpu) == PRIO_OVER


def test_deboost_boundary_mid_tick_dispatch():
    """A mid-window dispatch deboosts at the next *global* tick (Xen's
    periodic timer), i.e. after less than one full tick of protection."""
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    sched = vmms[0].scheduler
    vm = add_guest_vm(vmms[0], 1)
    v = vm.vcpus[0]
    v.prio = PRIO_BOOST
    v.credit = -1000.0
    pcpu = cluster.nodes[0].pcpus[0]
    pcpu.current = v
    tick = sched.params.tick_ns
    pcpu.run_start_ns = 7 * tick + tick // 3
    sim.now = 8 * tick - 1  # same window as the dispatch
    assert sched._running_prio(pcpu) == PRIO_BOOST
    sim.now = 8 * tick  # global boundary, < one tick after dispatch
    assert sched._running_prio(pcpu) == PRIO_OVER


def test_noop_fire_does_not_recount_same_dispatch():
    """Regression: a deferred tickle whose waiter was withdrawn (VM pause,
    work stealing) fires as a no-op and clears the pending slot; a later
    wake against the *same* dispatch coalesces into a fresh tickle but
    must not bump ``stat_deferred_tickles`` a second time."""
    sim, vmm, hog, lat = _contended_pair()
    sched = vmm.scheduler
    cur = hog.vcpus[0]
    cur.prio = PRIO_UNDER
    pcpu = cur.pcpu
    before = sched.stat_deferred_tickles
    lat.vcpus[0].wake()
    assert sched.stat_deferred_tickles == before + 1
    # Withdraw the waiter (as a VM pause would), then let the pending
    # tickle fire as a no-op.
    sched.remove_queued(lat.vcpus[0])
    lat.vcpus[0].state = VCPUState.BLOCKED
    sched._ratelimit_fire(pcpu, cur, pcpu.run_start_ns)
    assert pcpu.index not in sched._pending_tickles
    assert pcpu.current is cur  # dispatch survived the no-op fire
    # A new deferred wake against the same (PCPU, dispatch): one fresh
    # pending tickle, zero additional deferral counts.
    extra = add_guest_vm(vmm, 1, name="extra2")
    extra.vcpus[0].credit = 1000.0
    extra.vcpus[0].wake()
    assert sched.stat_deferred_tickles == before + 1
    assert pcpu.index in sched._pending_tickles


def test_scheduler_statistics_counters():
    """The introspection counters move under a contended workload."""
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vmm = vmms[0]
    sched = vmm.scheduler
    hogs = [add_guest_vm(vmm, 1, name=f"h{i}") for i in range(3)]
    for vm in hogs:
        start_hog(vm)
    lat = add_guest_vm(vmm, 1, name="lat")

    from repro.guest.process import call, sleep

    def latprog():
        while True:
            yield sleep(3 * MSEC)
            yield compute(50 * USEC)

    p = lat.kernel.add_process()
    p.load_program(latprog())
    p.start()
    vmm.start()
    sim.run(until=1_000 * MSEC)
    assert sched.stat_boost_wakes > 0
    assert sched.stat_wake_preemptions + sched.stat_deferred_tickles > 0
    assert sched.stat_steals >= 0  # stealing depends on queue imbalance


# ----------------------------------------------------------------------
# credit_cap_periods clamp boundaries (driven through on_period directly)
# ----------------------------------------------------------------------
def _boundary_world(credit_cap_periods=1.0, n_pcpus=2):
    sim, cluster, vmms = make_node_world(
        n_pcpus=n_pcpus,
        scheduler_factory=lambda vmm: CreditScheduler(
            vmm, CreditParams(credit_cap_periods=credit_cap_periods)
        ),
    )
    return sim, vmms[0]


def _mark_active(vm):
    # ``on_period`` treats a VCPU as active when it is non-BLOCKED or ran
    # this period; flag the latter without running the simulator.
    for v in vm.vcpus:
        v.period_run_ns = 1


def test_credit_clamps_to_exactly_plus_cap():
    sim, vmm = _boundary_world(credit_cap_periods=1.0)
    vm = add_guest_vm(vmm, 1, name="solo")
    _mark_active(vm)
    v = vm.vcpus[0]
    cap = 1.0 * vmm.period_ns * len(vmm.node.pcpus)
    # Credit already at the clamp: a full idle-period share may not push
    # it past +cap (the whole point of the clamp — no unbounded hoarding).
    v.credit = cap
    vmm.scheduler.on_period(0)
    assert v.credit == cap


def test_credit_floors_at_exactly_minus_cap():
    sim, vmm = _boundary_world(credit_cap_periods=0.5)
    vm = add_guest_vm(vmm, 1, name="hog")
    _mark_active(vm)
    v = vm.vcpus[0]
    cap = 0.5 * vmm.period_ns * len(vmm.node.pcpus)
    # Charged far beyond anything the share can repay: debt floors at
    # -cap instead of going arbitrarily negative.
    v.credit = 0.0
    v.period_charged_ns = int(10 * cap)
    vmm.scheduler.on_period(0)
    assert v.credit == -cap


def test_credit_conserved_exactly_when_unclamped():
    sim, vmm = _boundary_world(credit_cap_periods=100.0)  # clamp out of reach
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    for vm in (a, b):
        _mark_active(vm)
    va, vb = a.vcpus[0], b.vcpus[0]
    va.credit, vb.credit = 123.0, -456.0
    va.period_charged_ns, vb.period_charged_ns = 7 * MSEC, 11 * MSEC
    before = va.credit + vb.credit
    charged = va.period_charged_ns + vb.period_charged_ns
    capacity = vmm.period_ns * len(vmm.node.pcpus)
    vmm.scheduler.on_period(0)
    # Shares sum to exactly one period of capacity, so total credit moves
    # by capacity minus what was charged — nothing leaks.
    assert (va.credit + vb.credit) - before == capacity - charged


def test_staged_weight_change_governs_same_boundary_shares():
    # A cluster-scope weight update staged mid-period must be applied at
    # the TOP of on_period, so the very boundary that follows it already
    # splits credit by the new weights (3:1), not the old ones (1:1).
    sim, vmm = _boundary_world(credit_cap_periods=100.0)
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    for vm in (a, b):
        _mark_active(vm)
    va, vb = a.vcpus[0], b.vcpus[0]
    vmm.scheduler.set_vm_weight(a, 3.0)
    assert a.weight == 1.0  # staged, not yet applied
    capacity = vmm.period_ns * len(vmm.node.pcpus)
    vmm.scheduler.on_period(0)
    assert a.weight == 3.0
    assert va.credit == capacity * 0.75
    assert vb.credit == capacity * 0.25


def test_clamp_boundary_tracks_mid_run_weight_change():
    # With the clamp in reach, the boundary after a weight bump clamps the
    # heavier VM at exactly +cap while the lighter one keeps its smaller
    # share — the clamp is per-VCPU, not pre-weighting.
    sim, vmm = _boundary_world(credit_cap_periods=0.25)
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    for vm in (a, b):
        _mark_active(vm)
    va, vb = a.vcpus[0], b.vcpus[0]
    cap = 0.25 * vmm.period_ns * len(vmm.node.pcpus)
    capacity = vmm.period_ns * len(vmm.node.pcpus)
    vmm.scheduler.set_vm_weight(a, 3.0)
    vmm.scheduler.on_period(0)
    assert va.credit == cap  # 0.75 * capacity clamped down to +cap
    assert vb.credit == capacity * 0.25  # exactly at the clamp boundary
    vmm.scheduler.on_period(vmm.period_ns)
    # Second boundary: both already at/above the clamp; neither exceeds it.
    assert va.credit == cap
    assert vb.credit == cap
