"""Tests for LLNL trace synthesis (Table I), placement, and metrics."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.summary import geomean, mean, normalize_map, normalized, pearson
from repro.sim.rng import SimRNG
from repro.virtcluster.cluster import VirtualCluster
from repro.virtcluster.placement import (
    PLACEMENTS,
    pack_placement,
    place,
    placement_names,
    spread_placement,
)
from repro.workloads.traces import ATLAS_TABLE1, paper_vc_mix, synthesize_vc_mix


# ----------------------------------------------------------------------
# Table I / trace synthesis
# ----------------------------------------------------------------------
def test_table1_matches_paper():
    assert ATLAS_TABLE1[8] == 0.314
    assert ATLAS_TABLE1[16] == 0.126
    assert ATLAS_TABLE1[256] == 0.045
    # "others" = 28.3% is not a size class
    assert abs(sum(ATLAS_TABLE1.values()) + 0.283 - 1.0) < 1e-9


def test_paper_mix_is_the_section_ivb2_configuration():
    mix = paper_vc_mix()
    assert mix.vcpus_per_vm == 8
    assert mix.total_vms == 128
    assert mix.independent_vms == 30
    assert sorted(mix.cluster_sizes_vcpus, reverse=True) == [
        256, 128, 128, 64, 64, 64, 32, 16, 16, 16,
    ]
    assert len(mix.cluster_sizes_vms) == 10
    # The paper says "ninety" VMs build the clusters, but its own sizes
    # sum to 784 VCPUs = 98 VMs (and 98 + 30 independents = 128, matching
    # the stated platform) — the printed "ninety" is a truncation.
    assert sum(mix.cluster_sizes_vms) == 98


def test_synthesize_respects_budget_and_sizes():
    rng = SimRNG(5)
    mix = synthesize_vc_mix(32, 8, rng, min_vcpus=16, max_vcpus=128)
    assert mix.total_vms == 32
    assert all(s >= 2 for s in mix.cluster_sizes_vms)
    assert mix.independent_vms >= 0
    # sorted largest first
    sizes = list(mix.cluster_sizes_vms)
    assert sizes == sorted(sizes, reverse=True)


def test_synthesize_deterministic_per_seed():
    a = synthesize_vc_mix(64, 8, SimRNG(9))
    b = synthesize_vc_mix(64, 8, SimRNG(9))
    assert a == b


def test_synthesize_validates():
    with pytest.raises(ValueError):
        synthesize_vc_mix(1, 8, SimRNG(0))
    with pytest.raises(ValueError):
        synthesize_vc_mix(64, 8, SimRNG(0), min_vcpus=1000, max_vcpus=2000)


@settings(max_examples=30)
@given(st.integers(min_value=8, max_value=200), st.integers(min_value=1, max_value=100))
def test_synthesize_property(total, seed):
    mix = synthesize_vc_mix(total, 8, SimRNG(seed))
    assert mix.total_vms == total
    assert sum(mix.cluster_sizes_vms) + mix.independent_vms == total


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
def test_spread_round_robins():
    load = [0, 0, 0]
    assert spread_placement(6, load, 4) == [0, 1, 2, 0, 1, 2]
    assert load == [2, 2, 2]


def test_spread_prefers_least_loaded():
    load = [3, 0, 1]
    assert spread_placement(2, load, 4) == [1, 1]


def test_spread_capacity_error():
    load = [4, 4]
    with pytest.raises(RuntimeError):
        spread_placement(1, load, 4)


def test_pack_fills_in_order():
    load = [0, 0]
    assert pack_placement(5, load, 4) == [0, 0, 0, 0, 1]


def test_pack_capacity_error():
    with pytest.raises(RuntimeError):
        pack_placement(9, [0, 0], 4)


def test_place_is_pure_and_returns_new_loads():
    loads = [1, 0, 2]
    assignment, new_loads = place("spread", 2, loads, 4)
    assert assignment == [1, 0]
    assert new_loads == [2, 1, 2]
    assert loads == [1, 0, 2]  # inputs untouched


def test_wrappers_still_mutate_in_place():
    load = [0, 0]
    assert pack_placement(3, load, 4) == [0, 0, 0]
    assert load == [3, 0]


def test_striped_walks_cyclically_from_load_offset():
    assert place("striped", 4, [0, 0, 0], 2)[0] == [0, 1, 2, 0]
    # Total load 2 -> the walk starts at node 2 and wraps.
    assert place("striped", 3, [1, 1, 0], 2)[0] == [2, 0, 1]
    # Full nodes are skipped, not errors, until everything is full.
    assert place("striped", 2, [2, 0, 0], 2)[0] == [2, 1]
    with pytest.raises(RuntimeError):
        place("striped", 1, [2, 2], 2)


def test_random_placement_is_reproducible_per_spec():
    a, _ = place("random:7", 6, [0, 0, 0], 4)
    b, _ = place("random:7", 6, [0, 0, 0], 4)
    assert a == b
    assert set(a) <= {0, 1, 2}
    c, _ = place("random:8", 6, [0, 0, 0], 4)
    assert a != c  # different seed, different draw (overwhelmingly)
    with pytest.raises(RuntimeError):
        place("random:7", 9, [0, 0], 4)


def test_unknown_policy_and_bad_random_spec_raise():
    with pytest.raises(ValueError, match="unknown placement policy"):
        place("bogus", 1, [0], 4)
    with pytest.raises(ValueError, match="random:SEED"):
        place("random:x", 1, [0], 4)
    assert placement_names() == [*PLACEMENTS, "random:SEED"]


def test_capacity_error_names_the_cluster():
    with pytest.raises(RuntimeError, match="cluster 'vc3' out of VM capacity"):
        place("spread", 5, [4, 4], 4, cluster="vc3")


@pytest.mark.parametrize("policy", ["spread", "pack", "striped", "random:3"])
def test_equal_load_ties_are_deterministic(policy):
    # On freshly equal loads every policy resolves ties the same way on
    # every call: placement is a pure function of (policy, loads, cap).
    first, _ = place(policy, 4, [0, 0, 0, 0], 4)
    again, _ = place(policy, 4, [0, 0, 0, 0], 4)
    assert first == again
    # The deterministic tie-break is by node index: the first VM of the
    # non-random policies always lands on node 0.
    if not policy.startswith("random:"):
        assert first[0] == 0


@settings(max_examples=30)
@given(
    st.integers(min_value=1, max_value=50),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=1, max_value=10),
)
def test_spread_balance_property(n_vms, n_nodes, cap):
    if n_vms > n_nodes * cap:
        return
    load = [0] * n_nodes
    spread_placement(n_vms, load, cap)
    assert max(load) - min(load) <= 1  # perfectly balanced
    assert sum(load) == n_vms


def test_virtual_cluster_accessors(single_node):
    sim, cluster, vmm = single_node
    from tests.conftest import add_guest_vm

    vms = [add_guest_vm(vmm, 2, name=f"v{i}") for i in range(2)]
    vc = VirtualCluster("vc", vms)
    assert vc.n_vms == 2
    assert vc.n_vcpus == 4
    assert vc.nodes == [0]
    with pytest.raises(ValueError):
        VirtualCluster("empty", [])


# ----------------------------------------------------------------------
# Metric summaries
# ----------------------------------------------------------------------
def test_mean_and_empty():
    assert mean([1, 2, 3]) == 2
    assert math.isnan(mean([]))


def test_geomean():
    assert geomean([1, 4]) == pytest.approx(2.0)
    assert math.isnan(geomean([]))
    with pytest.raises(ValueError):
        geomean([1, -1])


def test_normalized_and_map():
    assert normalized(5, 10) == 0.5
    with pytest.raises(ZeroDivisionError):
        normalized(1, 0)
    out = normalize_map({"CR": 10.0, "ATC": 2.0})
    assert out == {"CR": 1.0, "ATC": 0.2}
    with pytest.raises(KeyError):
        normalize_map({"ATC": 1.0})


def test_pearson_perfect_and_inverse():
    assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)
    assert pearson([1, 2, 3], [6, 4, 2]) == pytest.approx(-1.0)


def test_pearson_validation():
    with pytest.raises(ValueError):
        pearson([1], [1])
    with pytest.raises(ValueError):
        pearson([1, 2], [1])
    with pytest.raises(ValueError):
        pearson([1, 1], [2, 3])


@settings(max_examples=50)
@given(st.lists(st.tuples(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6)), min_size=3, max_size=30))
def test_pearson_bounded(pairs):
    xs = [p[0] for p in pairs]
    ys = [p[1] for p in pairs]
    try:
        r = pearson(xs, ys)
    except ValueError:
        return  # degenerate (zero or underflowing variance) is rejected
    assert -1.0001 <= r <= 1.0001
