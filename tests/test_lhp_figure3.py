"""Figure 3 reproduction: lock-holder preemption makes the lock-waiter's
spinlock latency a multiple of the time slice.

Setup mirrors the figure: VCPU0 (lock holder) and VCPU1 (lock waiter)
belong to the same VM and run on different PCPUs; other VMs' VCPUs occupy
the slices marked 'X'.  When VCPU0 is preempted while holding the lock,
VCPU1 spins across entire slices of the competing VMs — so the measured
latency scales with the slice length, the paper's core observation."""

from repro.guest.process import call, compute, lock
from repro.guest.spinlock import SpinLock
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def lhp_latency(slice_ns: int) -> int:
    """Spinlock wait of the lock waiter when the holder gets preempted."""
    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=2)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 2, name="par", is_parallel=True)
    vm.slice_ns = slice_ns
    # two competitor VMs so the holder has to wait a full rotation
    comp_a = add_guest_vm(vmm, 2, name="compA")
    comp_b = add_guest_vm(vmm, 2, name="compB")
    comp_a.slice_ns = slice_ns
    comp_b.slice_ns = slice_ns

    lk = SpinLock("fig3")
    holder = vm.kernel.add_process()
    waiter = vm.kernel.add_process()

    def holder_prog():
        # long critical section: guaranteed to be preempted mid-hold
        yield lock(lk, 3 * slice_ns // 2)

    def waiter_prog():
        yield compute(10 * USEC)  # let the holder take the lock first
        yield lock(lk, 1 * USEC)

    def hog():
        while True:
            yield compute(10 * MSEC)

    holder.load_program(holder_prog())
    waiter.load_program(waiter_prog())
    for cvm in (comp_a, comp_b):
        for i in range(2):
            p = cvm.kernel.add_process()
            p.load_program(hog())
            p.start()
    holder.start()
    waiter.start()
    sim.run(until=3000 * MSEC)
    assert waiter.done, "waiter never got the lock"
    return waiter.total_spin_ns


def test_lhp_latency_spans_multiple_slices():
    slice_ns = 10 * MSEC
    wait = lhp_latency(slice_ns)
    # waiter spun across at least two competitor slices (Fig. 3 shows 3)
    assert wait >= 2 * slice_ns


def test_lhp_latency_scales_with_slice_length():
    w_long = lhp_latency(10 * MSEC)
    w_short = lhp_latency(1 * MSEC)
    # shortening the slice shrinks the LHP-induced spinlock latency
    assert w_short < w_long / 3
