"""Tests for Algorithm 2: the host-level ATC controller."""

from repro.core.config import ATCConfig
from repro.core.controller import ATCController
from repro.sim.units import MSEC, ns_from_ms

from tests.conftest import add_guest_vm, make_node_world


def make_controller(n_parallel=2, n_nonparallel=1, cfg=None):
    sim, cluster, vmms = make_node_world(n_pcpus=4)
    vmm = vmms[0]
    par = [add_guest_vm(vmm, 1, name=f"p{i}", is_parallel=True) for i in range(n_parallel)]
    non = [add_guest_vm(vmm, 1, name=f"n{i}") for i in range(n_nonparallel)]
    ctrl = ATCController(vmm, cfg or ATCConfig(), record_series=True)
    return sim, vmm, ctrl, par, non


def warm_history(ctrl, vms, lats):
    """Feed three periods of per-VM latency into the controller."""
    for t, batch in enumerate(lats):
        for vm, lat in zip(vms, batch):
            vm.kernel.record_spin_wait(int(lat), "lock")
            # record_spin_wait counts one wait; avg == lat
        ctrl.on_period((t + 1) * 30 * MSEC)


def test_host_min_is_applied_to_all_parallel_vms():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=2)
    # VM p0 sees rising latency -> shortens; p1 flat -> holds at default.
    warm_history(
        ctrl,
        par,
        [
            (1000, 1000),
            (1000, 1000),
            (2000, 1000),  # p0 rising, p1 flat
        ],
    )
    ctrl.on_period(4 * 30 * MSEC)
    cfg = ctrl.cfg
    # p0's candidate is DEF - alpha; p1's candidate DEF; host min applied:
    assert par[0].slice_ns == cfg.default_ns - cfg.alpha_ns
    assert par[1].slice_ns == par[0].slice_ns


def test_nonparallel_gets_default_or_admin_value():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=1, n_nonparallel=2)
    non[1].admin_slice_ns = ns_from_ms(6)
    ctrl.on_period(30 * MSEC)
    assert non[0].slice_ns is None  # VMM default
    assert non[1].slice_ns == ns_from_ms(6)


def test_no_parallel_vms_sets_all_defaults():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=0, n_nonparallel=2)
    non[0].slice_ns = ns_from_ms(0.123456)  # leftover value must be cleared
    ctrl.on_period(30 * MSEC)
    assert non[0].slice_ns is None


def test_dom0_untouched():
    sim, vmm, ctrl, par, non = make_controller()
    ctrl.on_period(30 * MSEC)
    assert vmm.dom0.vm.slice_ns is None


def test_slice_history_recorded():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=1)
    for t in range(4):
        par[0].kernel.record_spin_wait(1000 * (t + 1), "lock")
        ctrl.on_period((t + 1) * 30 * MSEC)
    assert len(ctrl.slice_history) == 4
    times = [t for t, _ in ctrl.slice_history]
    assert times == [30 * MSEC * (i + 1) for i in range(4)]


def test_controller_hooks_into_vmm_period():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=1)
    vmm.start()
    sim.run(until=200 * MSEC)
    # period ticks ran the controller: history accumulated
    st = ctrl.monitor.state_for(par[0])
    assert len(st.latencies) == 3  # window capped


def test_converges_to_min_threshold_under_persistent_spin():
    sim, vmm, ctrl, par, non = make_controller(n_parallel=1)
    vm = par[0]
    for t in range(40):
        # strictly rising latency every period
        vm.kernel.record_spin_wait(1000 * (t + 1) ** 2, "lock")
        ctrl.on_period((t + 1) * 30 * MSEC)
    assert vm.slice_ns == ctrl.cfg.min_threshold_ns


def test_atc_scheduler_integration():
    """ATCScheduler wires the controller into the credit scheduler."""
    from repro.schedulers.atc_sched import ATCParams, ATCScheduler

    sim, cluster, vmms = make_node_world(
        scheduler_factory=lambda vmm: ATCScheduler(vmm, ATCParams())
    )
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1, is_parallel=True)
    sched = vmm.scheduler
    assert sched.controller.vmm is vmm
    # slice_for honours the controller's per-VM slice
    vm.slice_ns = 777
    assert sched.slice_for(vm.vcpus[0]) == 777
    vm.slice_ns = None
    assert sched.slice_for(vm.vcpus[0]) == sched.params.slice_ns
