"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import SimProfiler, profile_new_simulators
from repro.obs import perfsuite
from repro.obs import trace as obstrace
from repro.obs.trace import TraceLog, chrome_events, records_from_dicts
from repro.sim.engine import Simulator


# ----------------------------------------------------------------------
# TraceLog ring buffer
# ----------------------------------------------------------------------
def test_tracelog_appends_in_order():
    log = TraceLog(capacity=10)
    for i in range(5):
        log.append("sched.wake", i * 100, {"i": i})
    recs = log.records()
    assert [r.t for r in recs] == [0, 100, 200, 300, 400]
    assert log.total == 5
    assert log.dropped == 0


def test_tracelog_evicts_oldest_when_full():
    log = TraceLog(capacity=3)
    for i in range(7):
        log.append("sched.wake", i, {"i": i})
    recs = log.records()
    # Oldest overwritten: the 3 retained records are the newest, in order.
    assert [r.args["i"] for r in recs] == [4, 5, 6]
    assert log.total == 7
    assert log.dropped == 4
    assert len(log) == 3


def test_tracelog_by_kind_counts_survive_eviction():
    log = TraceLog(capacity=2)
    for i in range(5):
        log.append("spin.episode", i, {})
    log.append("pkt.hop", 5, {})
    assert log.by_kind == {"spin.episode": 5, "pkt.hop": 1}
    s = log.summary()
    assert s["total"] == 6 and s["retained"] == 2 and s["dropped"] == 4
    assert list(s["by_kind"]) == sorted(s["by_kind"])  # deterministic order


def test_tracelog_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceLog(capacity=0)


def test_emit_noop_when_inactive():
    assert obstrace.active_log() is None
    assert not obstrace.enabled
    obstrace.emit("sched.wake", 0, x=1)  # must not raise, must not record


def test_activate_routes_emit_and_restores():
    log = TraceLog(capacity=8)
    with log.activate():
        assert obstrace.enabled
        assert obstrace.active_log() is log
        obstrace.emit("sched.wake", 7, vcpu="v0")
    assert not obstrace.enabled
    assert obstrace.active_log() is None
    assert log.total == 1
    assert log.records()[0].to_dict() == {"kind": "sched.wake", "t": 7, "vcpu": "v0"}


def test_activate_nests():
    outer, inner = TraceLog(), TraceLog()
    with outer.activate():
        obstrace.emit("pkt.hop", 1)
        with inner.activate():
            obstrace.emit("pkt.hop", 2)
        obstrace.emit("pkt.hop", 3)
        assert obstrace.enabled
    assert [r.t for r in outer.records()] == [1, 3]
    assert [r.t for r in inner.records()] == [2]


def test_records_from_dicts_roundtrip():
    log = TraceLog()
    log.append("spin.episode", 5, {"vm": "a", "wait_ns": 10})
    dicts = [r.to_dict() for r in log.records()]
    back = records_from_dicts(dicts)
    assert back[0].kind == "spin.episode"
    assert back[0].t == 5
    assert back[0].args == {"vm": "a", "wait_ns": 10}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def _sample_records():
    log = TraceLog()
    log.append("sched.dispatch", 1_000, {"node": 0, "pcpu": 1, "vcpu": "vm0.v0",
                                         "vm": "vm0", "slice_ns": 30, "wait_ns": 5})
    log.append("spin.episode", 2_000, {"node": 0, "vm": "vm0",
                                       "spin_kind": "barrier", "wait_ns": 99})
    log.append("pkt.hop", 3_000, {"node": 1, "hop": "send", "src": "a.0",
                                  "dst": "b.0", "nbytes": 64, "tag": 0})
    log.append("vcpu.state", 4_000, {"node": 0, "pcpu": 1, "vcpu": "vm0.v0",
                                     "vm": "vm0", "to_state": "RUNNABLE", "ran_ns": 3_000})
    log.append("sched.steal", 5_000, {"node": 0, "vcpu": "vm0.v1", "vm": "vm0",
                                      "from_rq": 0, "to_rq": 1})
    return log.records()


def test_write_jsonl(tmp_path):
    path = obstrace.write_jsonl(_sample_records(), tmp_path / "t.jsonl")
    lines = path.read_text().splitlines()
    assert len(lines) == 5
    first = json.loads(lines[0])
    assert first["kind"] == "sched.dispatch" and first["t"] == 1_000
    # every line parses and carries kind + t
    for line in lines:
        d = json.loads(line)
        assert "kind" in d and "t" in d


def test_chrome_events_schema():
    events = chrome_events(_sample_records())
    for e in events:
        assert e["ph"] in ("B", "E", "i", "M")
        assert set(e) >= {"name", "ph", "pid", "tid"}
        if e["ph"] != "M":
            assert isinstance(e["ts"], float)
    # B/E pair on the same (pid, tid) track, in order
    b = next(e for e in events if e["ph"] == "B")
    en = next(e for e in events if e["ph"] == "E")
    assert (b["pid"], b["tid"]) == (en["pid"], en["tid"]) == (0, 1)
    assert b["ts"] == 1.0 and en["ts"] == 4.0  # ns -> us
    # instants are thread-scoped
    for e in events:
        if e["ph"] == "i":
            assert e["s"] == "t"
    # metadata names every track used
    named = {(e["pid"], e["tid"]) for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in events if e["ph"] != "M"}
    assert used <= named


def test_write_chrome_trace_file(tmp_path):
    path = obstrace.write_chrome_trace(_sample_records(), tmp_path / "t.trace.json")
    doc = json.loads(path.read_text())
    assert "traceEvents" in doc
    assert doc["displayTimeUnit"] == "ms"
    assert len(doc["traceEvents"]) > 5


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
def test_counter_monotonic():
    c = Counter("x")
    c.inc()
    c.inc(4)
    assert c.read() == 5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set():
    g = Gauge("x")
    assert g.read() == 0
    g.set(3.5)
    assert g.read() == 3.5


def test_histogram_buckets_and_overflow():
    h = Histogram("x", bounds=[10, 100])
    for v in (5, 10, 11, 500):
        h.observe(v)
    r = h.read()
    assert r["bounds"] == [10, 100]
    assert r["counts"] == [2, 1, 1]  # <=10, <=100, overflow
    assert r["count"] == 4 and r["sum"] == 526


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram("x", bounds=[])
    with pytest.raises(ValueError):
        Histogram("x", bounds=[10, 5])


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c = reg.counter("a")
    assert reg.counter("a") is c
    with pytest.raises(TypeError):
        reg.gauge("a")
    with pytest.raises(ValueError):
        reg.histogram("h")  # first use needs bounds
    h = reg.histogram("h", bounds=[1])
    assert reg.histogram("h") is h


def test_registry_callback_and_snapshot_order():
    reg = MetricsRegistry()
    reg.counter("z.first").inc(1)
    state = {"v": 10}
    reg.register("a.second", lambda: state["v"])
    reg.gauge("m.third").set(2)
    snap = reg.snapshot()
    assert list(snap) == ["z.first", "a.second", "m.third"]  # registration order
    assert snap["a.second"] == 10
    state["v"] = 11
    assert reg.snapshot()["a.second"] == 11  # live, not copied
    with pytest.raises(ValueError):
        reg.register("z.first", lambda: 0)


def test_registry_prefix_and_merge():
    inner = MetricsRegistry()
    inner.counter("hits").inc(3)
    outer = MetricsRegistry()
    outer.gauge("own").set(1)
    outer.merge(inner, prefix="vm.a.")
    assert outer.snapshot("vm.a.") == {"vm.a.hits": 3}
    inner.counter("hits").inc()  # merged metrics stay live
    assert outer.snapshot()["vm.a.hits"] == 4
    with pytest.raises(ValueError):
        outer.merge(inner, prefix="vm.a.")


# ----------------------------------------------------------------------
# SimProfiler (injectable clock => deterministic)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 0.5  # every reading advances half a second
        return self.t


def test_profiler_categories_and_report():
    sim = Simulator()
    prof = SimProfiler(sim, clock=FakeClock())
    sim.at(10, lambda: None, cat="a")
    sim.at(20, lambda: None, cat="a")
    sim.at(30, lambda: None)  # uncategorized
    ev = sim.at(40, lambda: None, cat="dead")
    ev.cancel()
    sim.run()
    rep = prof.report()
    assert rep["events"] == 3
    assert rep["cancelled_popped"] == 1
    assert rep["cancel_waste_ratio"] == pytest.approx(0.25)
    assert rep["categories"]["a"]["calls"] == 2
    assert rep["categories"]["uncat"]["calls"] == 1
    # FakeClock: each run_event costs exactly 0.5 fake seconds of callback
    assert rep["callback_s"] == pytest.approx(1.5)
    assert rep["events_per_sec"] > 0
    assert list(rep["categories"]) == sorted(rep["categories"])


def test_profiler_tracks_heap_depth_and_detach():
    sim = Simulator()
    prof = SimProfiler(sim, clock=FakeClock())
    for i in range(5):
        sim.at(i + 1, lambda: None)
    sim.run()
    assert prof.max_heap_depth >= 4
    prof.detach()
    assert sim.profiler is None
    sim.at(100, lambda: None)
    sim.run()
    assert prof.report()["events"] == 6  # counters still readable after detach


def test_profile_new_simulators_attaches_and_restores():
    from repro.sim import engine as engine_mod

    before = engine_mod.on_simulator_created
    with profile_new_simulators(clock=FakeClock()) as profs:
        s1 = Simulator()
        s2 = Simulator()
        assert len(profs) == 2
        assert s1.profiler is profs[0] and s2.profiler is profs[1]
    assert engine_mod.on_simulator_created is before
    s3 = Simulator()
    assert s3.profiler is None


# ----------------------------------------------------------------------
# Perf suite plumbing (no simulation: synthetic results)
# ----------------------------------------------------------------------
def _fake_result(name, eps):
    return {"name": name, "events": 100, "events_per_sec": eps, "wall_s": 1.0,
            "callback_s": 0.5, "categories": {}, "max_heap_depth": 1,
            "cancelled_popped": 0, "cancel_waste_ratio": 0.0}


def test_check_baseline_passes_within_tolerance(tmp_path):
    results = [_fake_result("engine", 80_000)]
    base = tmp_path / "baseline.json"
    perfsuite.write_baseline([_fake_result("engine", 100_000)], base)
    assert perfsuite.check_baseline(results, base, tolerance=0.30) == []


def test_check_baseline_fails_on_regression(tmp_path):
    results = [_fake_result("engine", 60_000)]
    base = tmp_path / "baseline.json"
    perfsuite.write_baseline([_fake_result("engine", 100_000)], base)
    failures = perfsuite.check_baseline(results, base, tolerance=0.30)
    assert len(failures) == 1
    assert "engine" in failures[0]


def test_check_baseline_reports_missing_case(tmp_path):
    base = tmp_path / "baseline.json"
    perfsuite.write_baseline([_fake_result("engine", 100_000)], base)
    failures = perfsuite.check_baseline([_fake_result("newcase", 1.0)], base)
    assert any("newcase" in f for f in failures)


def test_write_results_emits_bench_files(tmp_path):
    paths = perfsuite.write_results([_fake_result("engine", 1.0)], tmp_path)
    assert [p.name for p in paths] == ["BENCH_perf_engine.json"]
    doc = json.loads(paths[0].read_text())
    assert doc["name"] == "engine" and doc["events_per_sec"] == 1.0


def test_run_suite_rejects_unknown_case():
    with pytest.raises(KeyError):
        perfsuite.run_suite(["nope"])


def test_checked_in_baseline_covers_all_cases():
    doc = json.loads(open("benchmarks/perf/baseline.json").read())
    assert doc["version"] == perfsuite.BASELINE_VERSION
    assert set(doc["cases"]) == set(perfsuite.CASES)
