"""Tests for the non-parallel application models."""

import math

from repro.sim.units import MSEC, SEC
from repro.workloads.nonparallel import (
    CPU_APP_SPECS,
    BonnieApp,
    CpuApp,
    PingApp,
    StreamApp,
    WebServerApp,
)
from repro.sim.rng import SimRNG

from tests.conftest import add_guest_vm, make_node_world


def test_cpu_app_records_run_times():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 2)
    app = CpuApp(sim, vm, CPU_APP_SPECS["sphinx3"], SimRNG(0))
    app.start()
    vmms[0].start()
    sim.run(until=2 * SEC)
    assert len(app.run_times) >= 3
    # unloaded: run time ~ total compute (plus tiny switch costs)
    assert app.mean_run_ns < 1.2 * CPU_APP_SPECS["sphinx3"].run_ns
    assert app.results()["app"] == "sphinx3"


def test_cpu_app_specs_table():
    assert {"sphinx3", "gcc", "bzip2", "mcf", "gobmk"} <= set(CPU_APP_SPECS)
    assert CPU_APP_SPECS["sphinx3"].cache_sensitivity > CPU_APP_SPECS["bzip2"].cache_sensitivity
    assert CPU_APP_SPECS["mcf"].cache_sensitivity == max(
        s.cache_sensitivity for s in CPU_APP_SPECS.values()
    )


def test_stream_reports_bandwidth():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 1)
    app = StreamApp(sim, vm, SimRNG(0))
    app.start()
    vmms[0].start()
    sim.run(until=1 * SEC)
    bw = app.bandwidth_Bps
    assert math.isfinite(bw) and bw > 0
    assert app.results()["app"] == "stream"


def test_stream_bandwidth_nan_before_any_pass():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 1)
    app = StreamApp(sim, vm, SimRNG(0))
    assert app.bandwidth_Bps != app.bandwidth_Bps  # NaN


def test_bonnie_throughput_bounded_by_disk():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vm = add_guest_vm(vmms[0], 1)
    app = BonnieApp(sim, vm, SimRNG(0))
    app.start()
    vmms[0].start()
    sim.run(until=3 * SEC)
    assert len(app.pass_times) >= 2
    tput = app.throughput_Bps
    disk_bw = cluster.nodes[0].params.disk.bandwidth_Bps
    assert 0 < tput < disk_bw  # seeks + blkback keep it below raw speed
    assert cluster.nodes[0].disk.requests >= 16


def test_ping_round_trip_through_both_nodes():
    sim, cluster, vmms = make_node_world(n_nodes=2, n_pcpus=2)
    a = add_guest_vm(vmms[0], 1, name="a")
    b = add_guest_vm(vmms[1], 1, name="b")
    app = PingApp(sim, a, b, SimRNG(0), interval_ns=5 * MSEC)
    app.start()
    for vmm in vmms:
        vmm.start()
    sim.run(until=1 * SEC)
    assert len(app.rtts) >= 50
    # RTT must at least cover two wire crossings + four netback passes
    floor = 2 * cluster.fabric.params.latency_ns
    assert app.mean_rtt_ns > floor
    assert app.results()["app"] == "ping"


def test_ping_rtt_grows_under_contention():
    def measure(contended):
        sim, cluster, vmms = make_node_world(n_nodes=2, n_pcpus=1)
        a = add_guest_vm(vmms[0], 1, name="a")
        b = add_guest_vm(vmms[1], 1, name="b")
        if contended:
            from repro.guest.process import compute

            def hogprog():
                while True:
                    yield compute(10 * MSEC)

            for vmm in vmms:
                hog = add_guest_vm(vmm, 1, name=f"hog{vmm.node.index}")
                p = hog.kernel.add_process()
                p.load_program(hogprog())
                p.start()
        app = PingApp(sim, a, b, SimRNG(0), interval_ns=5 * MSEC)
        app.start()
        for vmm in vmms:
            vmm.start()
        sim.run(until=2 * SEC)
        return app.mean_rtt_ns

    assert measure(True) > measure(False)


def test_webserver_closed_loop():
    sim, cluster, vmms = make_node_world(n_nodes=2, n_pcpus=2)
    server = add_guest_vm(vmms[0], 1, name="srv")
    client = add_guest_vm(vmms[1], 1, name="cli")
    app = WebServerApp(sim, server, client, SimRNG(0), service_ns=1 * MSEC, think_ns=3 * MSEC)
    app.start()
    for vmm in vmms:
        vmm.start()
    sim.run(until=2 * SEC)
    assert len(app.response_times) >= 100
    assert app.mean_response_ns >= app.service_ns
    assert app.results()["requests"] == len(app.response_times)
