"""Tests for the guest process state machine: segments, preemption,
spin-then-block semantics."""

import pytest

from repro.guest.process import (
    barrier,
    call,
    compute,
    lock,
    recv,
    recv_block,
    send,
    sleep,
)
from repro.guest.spinlock import SpinBarrier, SpinLock
from repro.hypervisor.vm import VCPUState
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def world_with_procs(n_procs=1, n_pcpus=2, spin_block_ns=None, n_vcpus=None):
    sim, cluster, vmms = make_node_world(n_nodes=1, n_pcpus=n_pcpus)
    vm = add_guest_vm(vmms[0], n_vcpus or n_procs, spin_block_ns=spin_block_ns)
    procs = [vm.kernel.add_process() for _ in range(n_procs)]
    return sim, vm, procs


def test_compute_and_finish():
    sim, vm, (p,) = world_with_procs()
    finished = []

    def prog():
        yield compute(3 * MSEC)

    p.load_program(prog())
    p.on_done = lambda proc: finished.append(sim.now)
    p.start()
    sim.run()
    # 3 ms of work plus first-dispatch overhead
    assert finished and finished[0] >= 3 * MSEC
    assert finished[0] < 4 * MSEC
    assert p.done and p.state == "done"


def test_call_segment_runs_inline():
    sim, vm, (p,) = world_with_procs()
    seen = []

    def prog():
        yield call(lambda now: seen.append(("a", now)))
        yield compute(1 * MSEC)
        yield call(lambda now: seen.append(("b", now)))

    p.load_program(prog())
    p.start()
    sim.run()
    assert seen[0][0] == "a"
    assert seen[1][0] == "b"
    assert seen[1][1] - seen[0][1] >= 1 * MSEC


def test_sleep_blocks_vcpu():
    sim, vm, (p,) = world_with_procs()

    def prog():
        yield sleep(10 * MSEC)
        yield compute(1 * USEC)

    p.load_program(prog())
    done = []
    p.on_done = lambda proc: done.append(sim.now)
    p.start()
    sim.run(until=5 * MSEC)
    assert p.vcpu.state is VCPUState.BLOCKED
    sim.run()
    assert done and done[0] >= 10 * MSEC


def test_cannot_load_program_while_running():
    sim, vm, (p,) = world_with_procs()
    p.load_program(iter([compute(MSEC)]))
    p.start()
    sim.run(until=100)
    with pytest.raises(RuntimeError):
        p.load_program(iter([]))


def test_start_without_program_raises():
    sim, vm, (p,) = world_with_procs()
    with pytest.raises(RuntimeError):
        p.start()


def test_program_reload_after_done():
    sim, vm, (p,) = world_with_procs()
    p.load_program(iter([compute(1 * USEC)]))
    p.start()
    sim.run()
    assert p.done
    p.load_program(iter([compute(1 * USEC)]))
    p.start()
    sim.run()
    assert p.done


def test_uncontended_lock_immediate():
    sim, vm, (p,) = world_with_procs()
    lk = SpinLock("l")

    def prog():
        yield lock(lk, 10 * USEC)

    p.load_program(prog())
    p.start()
    sim.run()
    assert lk.holder is None
    assert lk.acquisitions == 1
    assert lk.contended_acquisitions == 0
    assert p.total_spin_ns == 0


def test_contended_lock_fifo_and_latency_recorded():
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    lk = SpinLock("l")
    order = []

    def prog(i):
        yield lock(lk, 1 * MSEC)
        yield call(lambda now: order.append(i))

    procs[0].load_program(prog(0))
    procs[1].load_program(prog(1))
    procs[0].start()
    procs[1].start()
    sim.run()
    assert sorted(order) == [0, 1]
    assert lk.contended_acquisitions == 1
    # the loser spun for about the winner's hold time
    assert vm.kernel.total_spin_ns >= 0.8 * MSEC


def test_lock_release_by_non_holder_raises():
    lk = SpinLock("l")

    class P:
        name = "p"

    with pytest.raises(RuntimeError):
        lk.release(P())


def test_recursive_acquire_raises():
    sim, vm, (p,) = world_with_procs()
    lk = SpinLock("l")
    assert lk.acquire(p) is True
    with pytest.raises(RuntimeError):
        lk.acquire(p)


def test_barrier_all_ranks_cross_together():
    sim, vm, procs = world_with_procs(n_procs=4, n_pcpus=4)
    bar = SpinBarrier(4)
    crossing_times = []

    def prog(i):
        yield compute((i + 1) * MSEC)  # staggered arrivals
        yield barrier(bar)
        yield call(lambda now: crossing_times.append(now))

    for i, p in enumerate(procs):
        p.load_program(prog(i))
        p.start()
    sim.run()
    assert len(crossing_times) == 4
    assert bar.generation == 1
    assert bar.crossings == 1
    # nobody crosses before the slowest arrival (~4 ms)
    assert min(crossing_times) >= 4 * MSEC
    # early arrivals recorded spin latency
    assert vm.kernel.total_spin_count >= 3


def test_barrier_reusable_across_generations():
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    bar = SpinBarrier(2)

    def prog(i):
        for _ in range(5):
            yield compute(100 * USEC)
            yield barrier(bar)

    for i, p in enumerate(procs):
        p.load_program(prog(i))
        p.start()
    sim.run()
    assert bar.generation == 5
    assert all(p.done for p in procs)


def test_recv_busywait_consumes_cpu_until_message():
    """Busy-wait receive burns the VCPU while waiting (overcommitment
    waste), then resumes when the message arrives."""
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    rx, tx = procs

    def rprog():
        yield recv(1)
        yield compute(1 * USEC)

    def tprog():
        yield compute(5 * MSEC)
        yield send(vm, rx.index, 64)

    rx.load_program(rprog())
    tx.load_program(tprog())
    rx.start()
    tx.start()
    sim.run(until=3 * MSEC)
    assert rx.vcpu.state is VCPUState.RUNNING  # spinning, not blocked
    sim.run(until=200 * MSEC)
    assert rx.done
    assert rx.total_spin_ns >= 4 * MSEC  # waited ~5ms + delivery


def test_recv_block_sleeps_until_message():
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    rx, tx = procs

    def rprog():
        yield recv_block(1)

    def tprog():
        yield compute(5 * MSEC)
        yield send(vm, rx.index, 64)

    rx.load_program(rprog())
    tx.load_program(tprog())
    rx.start()
    tx.start()
    sim.run(until=3 * MSEC)
    assert rx.vcpu.state is VCPUState.BLOCKED
    sim.run(until=200 * MSEC)
    assert rx.done


def test_recv_already_satisfied_consumes_inline():
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    rx, tx = procs

    def rprog():
        yield compute(20 * MSEC)  # message arrives while computing
        yield recv(1)

    def tprog():
        yield send(vm, rx.index, 64)

    rx.load_program(rprog())
    tx.load_program(tprog())
    rx.start()
    tx.start()
    sim.run(until=400 * MSEC)
    assert rx.done
    # no spin was needed for the receive
    assert rx.total_spin_ns == 0


def test_spin_then_block_yields_cpu():
    """With a finite grace budget the spinner blocks after the budget."""
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2, spin_block_ns=500 * USEC)
    rx, tx = procs

    def rprog():
        yield recv(1)

    def tprog():
        yield compute(20 * MSEC)
        yield send(vm, rx.index, 64)

    rx.load_program(rprog())
    tx.load_program(tprog())
    rx.start()
    tx.start()
    sim.run(until=5 * MSEC)
    assert rx.vcpu.state is VCPUState.BLOCKED  # grace exhausted
    sim.run(until=400 * MSEC)
    assert rx.done
    # full wait (including blocked stretch) was recorded as spin latency
    assert rx.total_spin_ns >= 15 * MSEC


def test_unknown_segment_raises():
    sim, vm, (p,) = world_with_procs()
    p.load_program(iter([("bogus",)]))
    p.start()
    with pytest.raises(ValueError):
        sim.run()


def test_messages_counters():
    sim, vm, procs = world_with_procs(n_procs=2, n_pcpus=2)
    rx, tx = procs
    rx.load_program(iter([recv_block(3)]))

    def tprog():
        for _ in range(3):
            yield send(vm, rx.index, 10)

    tx.load_program(tprog())
    rx.start()
    tx.start()
    sim.run(until=100 * MSEC)
    assert tx.messages_sent == 3
    assert rx.messages_received == 3
    assert vm.total_io_events >= 6  # 3 sends + 3 deliveries
