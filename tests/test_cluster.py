"""Tests for the physical substrate: cache model, fabric, nodes, disk."""

import pytest
from hypothesis import given, strategies as st

from repro.cluster.cache import CacheParams, PCPUCache
from repro.cluster.network import Fabric, NetworkParams
from repro.cluster.node import Disk, DiskParams, NodeParams, PhysicalNode
from repro.cluster.topology import build_cluster
from repro.sim.engine import Simulator
from repro.sim.units import MSEC, USEC


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def test_first_dispatch_pays_full_refill():
    c = PCPUCache(CacheParams(refill_ns=30 * USEC, decay_tau_ns=2 * MSEC, miss_cost_ns=100))
    pen, misses = c.on_dispatch(0, "v1", 1.0)
    assert pen == 30 * USEC
    assert misses == pen // 100


def test_back_to_back_same_vcpu_is_free():
    c = PCPUCache()
    c.on_dispatch(0, "v1")
    c.on_undispatch(10, "v1")
    pen, misses = c.on_dispatch(10, "v1")
    assert pen == 0 and misses == 0


def test_warmth_decays_with_absence():
    p = CacheParams(refill_ns=30 * USEC, decay_tau_ns=1 * MSEC)
    c = PCPUCache(p)
    c.on_dispatch(0, "v1")
    c.on_undispatch(100, "v1")
    c.on_dispatch(100, "v2")
    c.on_undispatch(200, "v2")
    pen_short, _ = c.on_dispatch(200, "v1")  # away 100 ns: nearly warm

    c2 = PCPUCache(p)
    c2.on_dispatch(0, "v1")
    c2.on_undispatch(100, "v1")
    c2.on_dispatch(100, "v2")
    c2.on_undispatch(10 * MSEC, "v2")
    pen_long, _ = c2.on_dispatch(10 * MSEC, "v1")  # away 10 ms: cold
    assert pen_short < pen_long
    assert pen_long == pytest.approx(p.refill_ns, rel=0.01)


def test_sensitivity_scales_penalty():
    c = PCPUCache(CacheParams(refill_ns=30 * USEC))
    pen_lo, _ = c.on_dispatch(0, "a", 0.5)
    c2 = PCPUCache(CacheParams(refill_ns=30 * USEC))
    pen_hi, _ = c2.on_dispatch(0, "a", 2.0)
    assert pen_hi == 4 * pen_lo


def test_counters_accumulate_and_reset():
    c = PCPUCache()
    c.on_dispatch(0, "a")
    c.on_undispatch(5, "a")
    c.on_dispatch(5, "b")
    assert c.total_penalty_ns > 0
    assert c.total_miss_count > 0
    c.reset_counters()
    assert c.total_penalty_ns == 0 and c.total_miss_count == 0


@given(st.integers(min_value=0, max_value=10**12))
def test_penalty_never_exceeds_refill(away):
    p = CacheParams(refill_ns=30 * USEC, decay_tau_ns=2 * MSEC)
    c = PCPUCache(p)
    c.on_dispatch(0, "a")
    c.on_undispatch(1, "a")
    c.on_dispatch(1, "b")
    c.on_undispatch(2 + away, "b")
    pen, _ = c.on_dispatch(2 + away, "a")
    assert 0 <= pen <= p.refill_ns


# ----------------------------------------------------------------------
# Network fabric
# ----------------------------------------------------------------------
def test_tx_time_includes_framing():
    p = NetworkParams(bandwidth_bps=1e9, framing_bytes=66, mtu_payload_bytes=1448)
    one = p.tx_ns(100)
    assert one == int((100 + 66) * 8)
    multi = p.tx_ns(1448 * 3)
    assert multi == int((1448 * 3 + 3 * 66) * 8)


def test_delivery_time_latency_plus_tx():
    sim = Simulator()
    fab = Fabric(sim, NetworkParams(latency_ns=30 * USEC, bandwidth_bps=1e9))
    arrivals = []
    t = fab.transmit(0, 1, 1000, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [t]
    assert t == fab.params.tx_ns(1000) + 30 * USEC


def test_nic_serializes_back_to_back_sends():
    sim = Simulator()
    fab = Fabric(sim, NetworkParams(latency_ns=0, bandwidth_bps=1e9))
    arrivals = []
    fab.transmit(0, 1, 1_000_000, lambda: arrivals.append(("a", sim.now)))
    fab.transmit(0, 2, 1_000_000, lambda: arrivals.append(("b", sim.now)))
    sim.run()
    (na, ta), (nb, tb) = arrivals
    assert na == "a" and nb == "b"
    assert tb >= 2 * ta * 0.99  # second waited for the first to drain


def test_different_sources_do_not_serialize():
    sim = Simulator()
    fab = Fabric(sim, NetworkParams(latency_ns=0, bandwidth_bps=1e9))
    arrivals = {}
    fab.transmit(0, 2, 1_000_000, lambda: arrivals.setdefault("a", sim.now))
    fab.transmit(1, 2, 1_000_000, lambda: arrivals.setdefault("b", sim.now))
    sim.run()
    assert arrivals["a"] == arrivals["b"]


def test_fabric_counters():
    sim = Simulator()
    fab = Fabric(sim)
    fab.transmit(0, 1, 500, lambda: None)
    fab.transmit(1, 0, 700, lambda: None)
    assert fab.messages_sent == 2
    assert fab.bytes_sent == 1200


def test_tx_ns_matches_closed_form_exactly():
    """Regression: tx_ns used float division and truncated fractional
    nanoseconds on non-default bandwidths.  It must equal the exact
    rational closed form ceil(wire_bits * 1e9 / bps) for any bandwidth."""
    from fractions import Fraction

    for bps in (1e9, 1e8, 2.5e9, 4e10, 1e9 / 3, 9.37e8):
        p = NetworkParams(bandwidth_bps=bps)
        for nbytes in (0, 1, 100, 1447, 1448, 1449, 1_000_000):
            npackets = max(1, -(-nbytes // p.mtu_payload_bytes))
            bits = (nbytes + npackets * p.framing_bytes) * 8
            exact = Fraction(bits) * Fraction(10**9) / Fraction(round(bps))
            want = -(-exact.numerator // exact.denominator)  # ceil
            assert p.tx_ns(nbytes) == want, (bps, nbytes)


@given(
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=10**6, max_value=10**11),
)
def test_tx_ns_is_integer_and_never_undercharges(nbytes, bps):
    from fractions import Fraction

    p = NetworkParams(bandwidth_bps=float(bps))
    got = p.tx_ns(nbytes)
    assert isinstance(got, int) and got >= 1  # framing alone costs wire time
    npackets = max(1, -(-nbytes // p.mtu_payload_bytes))
    bits = (nbytes + npackets * p.framing_bytes) * 8
    assert got >= Fraction(bits) * Fraction(10**9) / Fraction(bps)


def test_degraded_link_stretches_serialization():
    p = NetworkParams()
    sim = Simulator()
    fab = Fabric(sim, p)
    clean = fab.transmit(0, 1, 10_000, lambda: None)
    fab.degrade_link(0, bw_factor=0.5)
    sim2 = Simulator()
    fab2 = Fabric(sim2, p)
    fab2.degrade_link(0, bw_factor=0.5)
    slow = fab2.transmit(0, 1, 10_000, lambda: None)
    assert slow > clean
    fab2.restore_link(0)
    fab2.restore_link(0)  # idempotent
    sim3 = Simulator()
    fab3 = Fabric(sim3, p)
    assert fab3.transmit(0, 1, 10_000, lambda: None) == clean


def test_dropped_messages_retransmit_and_arrive():
    from repro.sim.rng import SimRNG

    sim = Simulator()
    fab = Fabric(sim, NetworkParams())
    fab.drop_rng = SimRNG(1).substream(0xFA, 0)
    fab.degrade_link(0, drop_prob=0.5)
    delivered = []
    for i in range(20):
        fab.transmit(0, 1, 1000, lambda i=i: delivered.append(i))
    sim.run()
    assert sorted(delivered) == list(range(20))  # retransmit recovers all
    assert fab.messages_dropped > 0
    assert fab.retransmits == fab.messages_dropped
    assert fab.messages_lost == 0


def test_certain_loss_gives_up_after_max_retransmits():
    from repro.sim.rng import SimRNG

    sim = Simulator()
    fab = Fabric(sim, NetworkParams(max_retransmits=3))
    fab.drop_rng = SimRNG(1).substream(0xFA, 0)
    fab.degrade_link(0, drop_prob=0.999999999)
    delivered = []
    fab.transmit(0, 1, 1000, lambda: delivered.append(1))
    sim.run()
    assert delivered == []
    assert fab.messages_lost == 1
    assert fab.messages_dropped == 4  # initial attempt + 3 retransmits


def test_retransmit_bytes_accounted_separately():
    """Regression: every retransmission attempt re-charges the source NIC
    (``_nic_free_at``), but the byte counters only recorded first
    transmissions — so wire-byte totals diverged from the egress time the
    fabric actually modelled under faults."""
    from repro.sim.rng import SimRNG

    sim = Simulator()
    fab = Fabric(sim, NetworkParams())
    fab.drop_rng = SimRNG(1).substream(0xFA, 0)
    fab.degrade_link(0, drop_prob=0.5)
    for _ in range(20):
        fab.transmit(0, 1, 1000, lambda: None)
    sim.run()
    assert fab.retransmits > 0
    assert fab.bytes_sent == 20_000  # one count per message, as before
    assert fab.bytes_retransmitted == fab.retransmits * 1000
    assert fab.wire_bytes_total == fab.bytes_sent + fab.bytes_retransmitted


def test_clean_fabric_wire_bytes_equal_bytes_sent():
    sim = Simulator()
    fab = Fabric(sim)
    fab.transmit(0, 1, 500, lambda: None)
    fab.transmit(1, 0, 700, lambda: None)
    sim.run()
    assert fab.bytes_retransmitted == 0
    assert fab.wire_bytes_total == fab.bytes_sent == 1200


def test_crashed_destination_drops_delivery():
    sim = Simulator()
    fab = Fabric(sim, NetworkParams())
    crashed = {1}
    fab.crashed_of = lambda i: i in crashed
    delivered = []
    fab.transmit(0, 1, 1000, lambda: delivered.append("dead"))
    fab.transmit(0, 2, 1000, lambda: delivered.append("alive"))
    sim.run()
    assert delivered == ["alive"]


# ----------------------------------------------------------------------
# Node / disk / topology
# ----------------------------------------------------------------------
def test_disk_service_time_model():
    p = DiskParams(seek_ns=2 * MSEC, bandwidth_Bps=100e6)
    assert p.service_ns(100_000_000) == 2 * MSEC + 1_000_000_000


def test_disk_fifo_ordering():
    sim = Simulator()
    d = Disk(sim, DiskParams(seek_ns=1 * MSEC, bandwidth_Bps=1e9))
    done = []
    d.submit(1000, lambda: done.append("a"))
    d.submit(1000, lambda: done.append("b"))
    sim.run()
    assert done == ["a", "b"]
    assert d.requests == 2 and d.bytes_moved == 2000


def test_disk_back_to_back_serialization():
    sim = Simulator()
    d = Disk(sim, DiskParams(seek_ns=1 * MSEC, bandwidth_Bps=1e9))
    t1 = d.submit(0, lambda: None)
    t2 = d.submit(0, lambda: None)
    assert t2 == 2 * t1


def test_build_cluster_shape():
    sim = Simulator()
    c = build_cluster(sim, 4, NodeParams(n_pcpus=8))
    assert len(c.nodes) == 4
    assert c.n_pcpus == 32
    assert c.node(2).index == 2
    assert all(n.vmm is None for n in c.nodes)


def test_build_cluster_rejects_zero_nodes():
    with pytest.raises(ValueError):
        build_cluster(Simulator(), 0)


def test_node_pcpus_start_idle():
    sim = Simulator()
    node = PhysicalNode(sim, 0, NodeParams(n_pcpus=3))
    assert all(p.is_idle for p in node.pcpus)
    assert [p.index for p in node.pcpus] == [0, 1, 2]
