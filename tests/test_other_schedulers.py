"""Tests for BS, CS, DSS, VS and the scheduler registry."""

import pytest

from repro.guest.process import compute, recv_block, send, sleep
from repro.hypervisor.vm import VCPUState
from repro.schedulers.balance import BalanceParams, BalanceScheduler
from repro.schedulers.coschedule import CoScheduleParams, CoScheduler
from repro.schedulers.dss import DSSParams, DSSScheduler
from repro.schedulers.registry import (
    DEFAULT_PARAMS,
    SCHEDULERS,
    make_scheduler_factory,
    scheduler_names,
)
from repro.schedulers.vslicer import VSlicerParams, VSlicerScheduler
from repro.sim.units import MSEC, USEC

from tests.conftest import add_guest_vm, make_node_world


def hog():
    while True:
        yield compute(10 * MSEC)


def start_hogs(vm, n=None):
    for _ in range(n if n is not None else len(vm.vcpus)):
        p = vm.kernel.add_process()
        p.load_program(hog())
        p.start()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_contains_paper_approaches():
    assert set(scheduler_names()) == {"CR", "CS", "BS", "DSS", "VS", "ATC"}
    assert set(SCHEDULERS) == set(DEFAULT_PARAMS)


def test_scheduler_names_derives_from_registry():
    # Regression: the name list is derived from SCHEDULERS (insertion
    # order preserved), not a hand-maintained tuple that can drift when a
    # scheduler is added to the dict.
    assert scheduler_names() == list(SCHEDULERS)


def test_registry_unknown_name():
    with pytest.raises(KeyError):
        make_scheduler_factory("NOPE")


def test_registry_param_type_check():
    with pytest.raises(TypeError):
        make_scheduler_factory("CS", BalanceParams())


@pytest.mark.parametrize("name", ["CR", "CS", "BS", "DSS", "VS", "ATC"])
def test_registry_builds_working_scheduler(name):
    sim, cluster, vmms = make_node_world(
        scheduler_factory=make_scheduler_factory(name)
    )
    vm = add_guest_vm(vmms[0], 1)
    start_hogs(vm)
    vmms[0].start()
    sim.run(until=100 * MSEC)
    assert vm.vcpus[0].total_run_ns > 50 * MSEC


# ----------------------------------------------------------------------
# Balance Scheduling
# ----------------------------------------------------------------------
def balance_world(n_pcpus=4):
    return make_node_world(
        n_pcpus=n_pcpus,
        scheduler_factory=lambda vmm: BalanceScheduler(vmm, BalanceParams()),
    )


def test_bs_places_siblings_on_distinct_queues():
    sim, cluster, vmms = balance_world(n_pcpus=4)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 4, name="smp")
    other = add_guest_vm(vmm, 4, name="other")
    start_hogs(vm)
    start_hogs(other)
    vmm.start()
    sched = vmm.scheduler

    def check_invariant():
        for qi, q in enumerate(sched.runqs):
            vms_in_q = [v.vm.name for v in q]
            cur = cluster.nodes[0].pcpus[qi].current
            if cur is not None:
                vms_in_q.append(cur.vm.name)
            assert len(vms_in_q) == len(set(vms_in_q)), f"queue {qi}: {vms_in_q}"

    for _ in range(50):
        sim.run(until=sim.now + 7 * MSEC)
        check_invariant()


def test_bs_falls_back_when_no_sibling_free_queue():
    sim, cluster, vmms = balance_world(n_pcpus=2)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 4, name="wide")  # more VCPUs than PCPUs
    start_hogs(vm)
    vmm.start()
    sim.run(until=500 * MSEC)
    # all four VCPUs still make progress despite the impossible constraint
    runs = [v.total_run_ns for v in vm.vcpus]
    assert min(runs) > 0


# ----------------------------------------------------------------------
# Co-Scheduling
# ----------------------------------------------------------------------
def cs_world(**kw):
    params = CoScheduleParams(**kw)
    return make_node_world(
        n_pcpus=2,
        scheduler_factory=lambda vmm: CoScheduler(vmm, params),
    )


def test_cs_triggers_gang_on_spin():
    sim, cluster, vmms = cs_world(spin_threshold_ns=1 * MSEC)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 2, name="spinny", is_parallel=True)
    other = add_guest_vm(vmm, 2, name="other")
    start_hogs(other)
    # two processes synchronizing via a contended barrier -> spin waits
    from repro.guest.spinlock import SpinBarrier
    from repro.guest.process import barrier

    bar = SpinBarrier(2)

    def bsp(grain_ms):
        while True:
            yield compute(grain_ms * MSEC)
            yield barrier(bar)

    # asymmetric ranks: the fast one spins at the barrier for ~8 ms/step
    for grain in (1, 9):
        p = vm.kernel.add_process()
        p.load_program(bsp(grain))
        p.start()
    vmm.start()
    sim.run(until=2_000 * MSEC)
    assert vmm.scheduler.gangs_triggered > 0


def test_cs_gang_preemption_policy():
    # default: gangs are preemptible (ratelimited boost, Xen-style)
    sim, cluster, vmms = cs_world()
    vmm = vmms[0]
    sched = vmm.scheduler
    vm = add_guest_vm(vmm, 1, name="co", is_parallel=True)
    start_hogs(vm)
    sched._co_vm = vm
    sched._co_until = 10**15
    pcpu = vm.vcpus[0].pcpu
    guest_waker = add_guest_vm(vmm, 1, name="g")
    assert sched._may_preempt(guest_waker.vcpus[0], pcpu) is True
    assert sched._may_preempt(vmm.dom0.vm.vcpus[0], pcpu) is True


def test_cs_strict_gang_mode_denies_guest_preemption():
    sim, cluster, vmms = cs_world(deny_gang_preemption=True)
    vmm = vmms[0]
    sched = vmm.scheduler
    vm = add_guest_vm(vmm, 1, name="co", is_parallel=True)
    start_hogs(vm)
    sched._co_vm = vm
    sched._co_until = 10**15
    pcpu = vm.vcpus[0].pcpu
    guest_waker = add_guest_vm(vmm, 1, name="g")
    assert sched._may_preempt(guest_waker.vcpus[0], pcpu) is False
    # dom0 remains privileged even in strict mode
    assert sched._may_preempt(vmm.dom0.vm.vcpus[0], pcpu) is True


def test_cs_slot_rotation_is_time_based():
    sim, cluster, vmms = cs_world(gang_slice_ns=30 * MSEC)
    vmm = vmms[0]
    sched = vmm.scheduler
    a = add_guest_vm(vmm, 1, name="a", is_parallel=True)
    b = add_guest_vm(vmm, 1, name="b", is_parallel=True)
    sched._flagged = [a, b]
    sched._slot_gang(0)
    first = sched._co_vm
    sched._slot_gang(30 * MSEC)
    second = sched._co_vm
    assert {first, second} == {a, b}


# ----------------------------------------------------------------------
# DSS
# ----------------------------------------------------------------------
def test_dss_assigns_slices_by_io_tier():
    params = DSSParams()
    sim, cluster, vmms = make_node_world(
        n_pcpus=2, scheduler_factory=lambda vmm: DSSScheduler(vmm, params)
    )
    vmm = vmms[0]
    sched = vmm.scheduler
    io_vm = add_guest_vm(vmm, 1, name="io")
    cpu_vm = add_guest_vm(vmm, 1, name="cpu")
    # fake per-period io activity directly
    for _ in range(3):
        io_vm.count_io_event(100)
        sched.on_period(sim.now)
    assert io_vm.slice_ns == params.hi_slice_ns
    assert cpu_vm.slice_ns is None  # default 30 ms for pure CPU


def test_dss_mid_tier():
    params = DSSParams(io_lo_per_period=1.0, io_hi_per_period=50.0, ewma_alpha=1.0)
    sim, cluster, vmms = make_node_world(
        n_pcpus=2, scheduler_factory=lambda vmm: DSSScheduler(vmm, params)
    )
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1)
    vm.count_io_event(5)
    vmm.scheduler.on_period(0)
    assert vm.slice_ns == params.mid_slice_ns


def test_dss_ewma_smooths_flapping():
    params = DSSParams(io_lo_per_period=1.0, ewma_alpha=0.5)
    sim, cluster, vmms = make_node_world(
        n_pcpus=2, scheduler_factory=lambda vmm: DSSScheduler(vmm, params)
    )
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1)
    vm.count_io_event(4)
    vmm.scheduler.on_period(0)
    assert vm.slice_ns == params.mid_slice_ns
    # one silent period: EWMA (2.0) still above the low tier
    vmm.scheduler.on_period(1)
    assert vm.slice_ns == params.mid_slice_ns


# ----------------------------------------------------------------------
# vSlicer
# ----------------------------------------------------------------------
def test_vs_classifies_latency_sensitive_vm():
    params = VSlicerParams()
    sim, cluster, vmms = make_node_world(
        n_pcpus=2, scheduler_factory=lambda vmm: VSlicerScheduler(vmm, params)
    )
    vmm = vmms[0]
    ls = add_guest_vm(vmm, 1, name="ls")
    cpu = add_guest_vm(vmm, 1, name="cpu")
    start_hogs(cpu)

    def pinger():
        while True:
            yield sleep(2 * MSEC)
            yield compute(50 * USEC)

    p = ls.kernel.add_process()
    p.load_program(pinger())
    p.start()
    vmm.start()
    sim.run(until=300 * MSEC)
    assert ls.vmid in vmm.scheduler.ls_vms
    assert ls.slice_ns == params.micro_slice_ns
    assert cpu.vmid not in vmm.scheduler.ls_vms
    assert cpu.slice_ns is None
