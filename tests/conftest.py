"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.topology import build_cluster
from repro.guest.kernel import GuestKernel
from repro.hypervisor.dom0 import Dom0
from repro.hypervisor.vm import VM
from repro.hypervisor.vmm import VMM
from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.sim.engine import EVENT_QUEUE_KINDS, Simulator
from repro.sim.units import MSEC


def make_node_world(
    n_nodes: int = 1,
    n_pcpus: int = 2,
    scheduler_factory=None,
    period_ns: int = 30 * MSEC,
):
    """A minimal wired world: cluster + VMM + dom0 per node.

    Returns (sim, cluster, vmms).
    """
    from repro.cluster.node import NodeParams

    sim = Simulator()
    cluster = build_cluster(sim, n_nodes, NodeParams(n_pcpus=n_pcpus))
    factory = scheduler_factory or (lambda vmm: CreditScheduler(vmm, CreditParams()))
    vmms = []
    for node in cluster.nodes:
        vmm = VMM(sim, node, factory, period_ns=period_ns)
        Dom0(sim, vmm, cluster.fabric)
        vmms.append(vmm)
    return sim, cluster, vmms


def add_guest_vm(vmm, n_vcpus=1, name=None, is_parallel=False, spin_block_ns=None):
    """Create a guest VM with a kernel on the given VMM."""
    vm = VM(vmm.node, n_vcpus, name=name, is_parallel=is_parallel)
    vmm.add_vm(vm)
    GuestKernel(vmm.sim, vm, spin_block_ns=spin_block_ns)
    return vm


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Keep sweep-runner cache writes out of the working tree during tests."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))


@pytest.fixture(params=EVENT_QUEUE_KINDS)
def sim(request):
    """A bare simulator, parametrized over every event-queue backend so
    the engine-semantics tests pin heap and calendar-bucket behaviour to
    the same contract."""
    return Simulator(queue=request.param)


@pytest.fixture
def single_node():
    """(sim, cluster, vmm) with one 2-PCPU node under Credit."""
    sim, cluster, vmms = make_node_world()
    return sim, cluster, vmms[0]
