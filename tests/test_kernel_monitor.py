"""Tests for the guest kernel's spinlock-latency accounting and the
VMM-side SpinLatencyMonitor (Fig. 6 history windows)."""

import pytest

from repro.core.config import ATCConfig
from repro.core.monitor import SpinLatencyMonitor
from repro.sim.units import MSEC

from tests.conftest import add_guest_vm, make_node_world


def test_record_and_drain_period_spin():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    k = vm.kernel
    k.record_spin_wait(100, "lock")
    k.record_spin_wait(300, "barrier")
    assert k.total_spin_ns == 400
    assert k.total_spin_count == 2
    assert k.spin_by_kind == {"lock": 100, "barrier": 300}
    total, count = k.drain_period_spin()
    assert (total, count) == (400, 2)
    # drain resets the period but not the lifetime counters
    assert k.drain_period_spin() == (0, 0)
    assert k.total_spin_ns == 400
    assert k.avg_spin_ns == 200.0


def test_avg_spin_zero_when_no_waits():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    assert vm.kernel.avg_spin_ns == 0.0


def test_add_process_caps_at_vcpus():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 2)
    vm.kernel.add_process()
    vm.kernel.add_process()
    with pytest.raises(RuntimeError):
        vm.kernel.add_process()


def test_monitor_builds_three_period_history():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    mon = SpinLatencyMonitor(ATCConfig())
    vm.kernel.record_spin_wait(1000, "lock")
    st = mon.end_period(vm, 30 * MSEC)
    assert st.latencies == [1000.0]
    vm.kernel.record_spin_wait(500, "lock")
    vm.kernel.record_spin_wait(1500, "lock")
    mon.end_period(vm, 24 * MSEC)
    assert st.latencies == [1000.0, 1000.0]  # avg of 500,1500
    mon.end_period(vm, 18 * MSEC)
    mon.end_period(vm, 12 * MSEC)
    # window keeps exactly the last three periods
    assert len(st.latencies) == 3
    assert st.slices == [24 * MSEC, 18 * MSEC, 12 * MSEC]


def test_monitor_zero_latency_period():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    mon = SpinLatencyMonitor(ATCConfig())
    st = mon.end_period(vm, 30 * MSEC)
    assert st.latencies == [0.0]


def test_monitor_series_recording():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1, name="vmx")
    mon = SpinLatencyMonitor(ATCConfig())
    mon.end_period(vm, 30 * MSEC, now=123, record=True)
    assert mon.series == [(123, "vmx", 0.0, 30 * MSEC)]


def test_monitor_state_per_vm():
    sim, cluster, vmms = make_node_world()
    a = add_guest_vm(vmms[0], 1)
    b = add_guest_vm(vmms[0], 1)
    mon = SpinLatencyMonitor(ATCConfig())
    assert mon.state_for(a) is mon.state_for(a)
    assert mon.state_for(a) is not mon.state_for(b)
