"""Tests for the DFRS cluster-scope subsystem (repro.dfrs).

Covers the pure solver (water-fill arithmetic, determinism, move
proposals), the scheduler-registry cluster hooks (staged cap/weight
application at the accounting boundary), Xen-style cap enforcement in
the Credit scheduler, the controller's bit-identity-when-idle guarantee,
SAN009 self-checks, and DFRS-triggered relocations through the
migration engine.
"""

import pytest

from repro.dfrs.controller import DFRSConfig, DFRSController
from repro.dfrs.solver import (
    VMNeed,
    propose_moves,
    solve_cluster,
    solve_host,
)
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.scenarios import run_dfrs_compare
from repro.guest.process import compute
from repro.sim.units import MSEC, SEC

from tests.conftest import add_guest_vm, make_node_world


def _need(name, vmid, node, need, ceil=0.5):
    return VMNeed(name=name, vmid=vmid, node=node, need=need, ceil=ceil)


# ----------------------------------------------------------------------
# Solver
# ----------------------------------------------------------------------
def test_solve_under_committed_host_satisfies_every_need():
    needs = [_need("a", 1, 0, 0.3), _need("b", 2, 0, 0.2)]
    s = solve_host(0, needs)
    assert s.min_yield == 1.0
    for a, n in zip(s.allocations, needs):
        assert a.alloc == pytest.approx(n.need)
        assert a.vm_yield == pytest.approx(1.0)


def test_solve_over_committed_host_water_fills():
    # Four VMs each needing half the host: the max-min yield is 0.5 and
    # every VM gets a quarter.
    needs = [_need(f"v{i}", i, 0, 0.5) for i in range(4)]
    s = solve_host(0, needs)
    assert s.min_yield == pytest.approx(0.5, abs=1e-12)
    assert sum(a.alloc for a in s.allocations) == pytest.approx(1.0, abs=1e-9)
    for a in s.allocations:
        assert a.alloc == pytest.approx(0.25, abs=1e-12)


def test_solve_ceiling_binds_before_yield():
    # 0.9 + 0.8 + 0.8 of need with 0.5 ceilings: below the ceilings the
    # feasibility line is y * 2.5 <= 1, so y = 0.4 exactly.
    needs = [
        _need("big", 1, 0, 0.9),
        _need("m1", 2, 0, 0.8),
        _need("m2", 3, 0, 0.8),
    ]
    s = solve_host(0, needs)
    assert s.min_yield == pytest.approx(0.4, abs=1e-9)
    assert s.allocations[0].alloc == pytest.approx(0.36, abs=1e-9)
    assert sum(a.alloc for a in s.allocations) <= 1.0 + 1e-9


def test_solve_allocations_never_exceed_host_capacity():
    for k in (1, 3, 5, 9):
        needs = [_need(f"v{i}", i, 0, 0.1 + 0.07 * i) for i in range(k)]
        s = solve_host(0, needs)
        assert sum(a.alloc for a in s.allocations) <= 1.0 + 1e-9


def test_solve_caps_carry_headroom_without_renormalization():
    # A packed host keeps the headroom slack: caps are per-VM limits and
    # may legitimately sum above 1.0 (renormalizing would make every cap
    # exactly binding).
    needs = [_need(f"v{i}", i, 0, 0.5) for i in range(4)]
    s = solve_host(0, needs, headroom=1.25)
    for a in s.allocations:
        assert a.cap == pytest.approx(a.alloc * 1.25, abs=1e-12)
    assert sum(a.cap for a in s.allocations) > 1.0


def test_solve_cap_clipped_to_ceiling():
    needs = [_need("v", 1, 0, 0.5, ceil=0.5)]
    s = solve_host(0, needs, headroom=4.0)
    assert s.allocations[0].cap == pytest.approx(0.5)


def test_solve_weights_normalize_to_mean_one():
    needs = [_need("a", 1, 0, 0.4), _need("b", 2, 0, 0.2), _need("c", 3, 0, 0.3)]
    s = solve_host(0, needs)
    weights = [a.weight for a in s.allocations]
    assert sum(weights) / len(weights) == pytest.approx(1.0, abs=1e-12)
    # need-proportional: the hungriest VM gets the largest weight
    assert weights[0] > weights[2] > weights[1]


def test_solve_empty_host():
    s = solve_host(3, [])
    assert s.min_yield == 1.0
    assert s.allocations == ()


def test_solve_is_deterministic():
    needs = [_need(f"v{i}", i, 0, 0.1 + 0.11 * i) for i in range(5)]
    assert solve_host(0, needs, 1.25) == solve_host(0, needs, 1.25)


def test_solve_cluster_covers_empty_nodes():
    needs = [_need("a", 1, 0, 0.5), _need("b", 2, 2, 0.3)]
    solves = solve_cluster(needs, n_nodes=4)
    assert set(solves) == {0, 1, 2, 3}
    assert solves[1].allocations == ()
    assert solves[3].allocations == ()


def test_propose_moves_sheds_load_to_empty_node():
    # Node 0 over-committed (four half-need VMs), node 1 empty with free
    # slots: the donor's smallest-need VM moves.
    needs = [_need(f"v{i}", i, 0, 0.5) for i in range(4)]
    needs[2] = _need("v2", 2, 0, 0.3)  # smallest need -> the victim
    moves = propose_moves(needs, n_nodes=2, node_loads=[4, 0],
                          vms_per_node=4, max_moves=1)
    assert moves == [(2, 1)]


def test_propose_moves_respects_capacity():
    needs = [_need(f"v{i}", i, 0, 0.5) for i in range(4)]
    moves = propose_moves(needs, n_nodes=2, node_loads=[4, 4],
                          vms_per_node=4, max_moves=2)
    assert moves == []


def test_propose_moves_stops_when_balanced():
    needs = [_need("a", 1, 0, 0.2), _need("b", 2, 1, 0.2)]
    moves = propose_moves(needs, n_nodes=2, node_loads=[1, 1],
                          vms_per_node=4, max_moves=3)
    assert moves == []


def test_propose_moves_budget():
    needs = [_need(f"v{i}", i, 0, 0.5) for i in range(4)]
    moves = propose_moves(needs, n_nodes=4, node_loads=[4, 0, 0, 0],
                          vms_per_node=4, max_moves=2)
    assert len(moves) == 2
    assert all(dst != 0 for _, dst in moves)


# ----------------------------------------------------------------------
# Scheduler cluster hooks: staged application at the boundary
# ----------------------------------------------------------------------
def hog():
    while True:
        yield compute(10 * MSEC)


def start_hogs(vm, n=None):
    for _ in range(n if n is not None else len(vm.vcpus)):
        p = vm.kernel.add_process()
        p.load_program(hog())
        p.start()


def test_set_vm_cap_applies_at_next_boundary():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1)
    start_hogs(vm)
    vmm.start()
    sim.run(until=10 * MSEC)
    sched = vmm.scheduler
    sched.set_vm_cap(vm, 0.5)
    sched.set_vm_weight(vm, 2.0)
    # Mid-period: nothing applied yet.
    assert vm.cap is None
    assert vm.weight == 1.0
    sim.run(until=vmm.period_ns + 10 * MSEC)  # past the accounting boundary
    assert vm.cap == 0.5
    assert vm.weight == 2.0


def test_set_vm_cap_none_clears():
    sim, cluster, vmms = make_node_world(n_pcpus=2)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 1)
    start_hogs(vm)
    vmm.start()
    vmm.scheduler.set_vm_cap(vm, 0.25)
    sim.run(until=vmm.period_ns + MSEC)
    assert vm.cap == 0.25
    vmm.scheduler.set_vm_cap(vm, None)
    sim.run(until=2 * vmm.period_ns + MSEC)
    assert vm.cap is None


def test_set_vm_weight_rejects_non_positive():
    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    with pytest.raises(ValueError):
        vmms[0].scheduler.set_vm_weight(vm, 0.0)
    with pytest.raises(ValueError):
        vmms[0].scheduler.set_vm_weight(vm, -1.0)


# ----------------------------------------------------------------------
# Credit-scheduler cap enforcement
# ----------------------------------------------------------------------
def test_cap_bounds_vm_cpu_share():
    """A capped hog's CPU is bounded by cap * capacity per period (plus
    one slice of overrun), while an uncapped twin runs work-conserving."""
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    capped = add_guest_vm(vmm, 1, name="capped")
    start_hogs(capped)
    vmm.start()
    vmm.scheduler.set_vm_cap(capped, 0.25)
    horizon = 20 * vmm.period_ns
    sim.run(until=horizon)
    run_ns = capped.vcpus[0].total_run_ns
    # Bounded: a quarter of the horizon, with at most one slice of
    # overrun per period (slice truncation keeps it well under that)
    # and the first (uncapped) period's full run.
    budget = 0.25 * horizon + vmm.period_ns
    assert run_ns <= budget
    # Non-work-conserving: the host had nothing else to run, yet the
    # capped VM did NOT consume the idle capacity.
    assert run_ns < 0.5 * horizon


def test_cap_parks_are_counted_and_released():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 2, name="capped")
    start_hogs(vm)
    vmm.start()
    vmm.scheduler.set_vm_cap(vm, 0.1)
    sim.run(until=10 * vmm.period_ns)
    sched = vmm.scheduler
    assert sched.stat_cap_parks > 0
    # Parked VCPUs are re-queued at every boundary: the parked list never
    # leaks across a run that ended mid-period.
    assert all(v.queued or v.state.name != "RUNNABLE" or v in sched._parked
               for v in vm.vcpus)
    # And the VM still made progress every period (unparked each boundary).
    assert vm.vcpus[0].total_run_ns > 0


def test_uncapped_world_has_no_parked_state():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    a = add_guest_vm(vmm, 1, name="a")
    b = add_guest_vm(vmm, 1, name="b")
    start_hogs(a)
    start_hogs(b)
    vmm.start()
    sim.run(until=10 * vmm.period_ns)
    assert vmm.scheduler._parked == []
    assert vmm.scheduler.stat_cap_parks == 0


def test_remove_queued_withdraws_parked_vcpu():
    sim, cluster, vmms = make_node_world(n_pcpus=1)
    vmm = vmms[0]
    vm = add_guest_vm(vmm, 2, name="capped")
    start_hogs(vm)
    vmm.start()
    vmm.scheduler.set_vm_cap(vm, 0.05)
    sched = vmm.scheduler
    # Run until at least one VCPU is parked.
    deadline = 40 * vmm.period_ns
    while not sched._parked and sim.now < deadline:
        sim.run(until=sim.now + MSEC)
    assert sched._parked, "cap at 5% must park a 2-VCPU hog"
    victim = sched._parked[0]
    sched.remove_queued(victim)
    assert victim not in sched._parked


# ----------------------------------------------------------------------
# Controller: bit-identity, staging, SAN009
# ----------------------------------------------------------------------
def _compare_cell(mode, **kw):
    kw.setdefault("horizon_s", 1.5)
    kw.setdefault("seed", 0)
    return run_dfrs_compare(mode=mode, **kw)


def test_idle_controller_is_bit_identical_to_absence():
    base = _compare_cell("baseline")
    idle = _compare_cell("idle")
    # Event count included: the constructed-but-disabled layer adds
    # nothing to the simulation.
    assert idle["events"] == base["events"]
    assert idle["sim_time_ns"] == base["sim_time_ns"]
    assert idle["parallel_mean_round_ns"] == base["parallel_mean_round_ns"]
    assert idle["final_nodes"] == base["final_nodes"]
    assert idle["dfrs"]["solves"] == 0
    assert idle["dfrs"]["caps_applied"] == 0


def test_active_controller_solves_and_publishes_cleanly():
    r = _compare_cell("dfrs", sanitize=True)
    d = r["dfrs"]
    assert d["solves"] > 0
    assert d["caps_applied"] > 0
    assert d["weights_applied"] > 0
    assert d["violations"] == 0
    assert 0.0 < d["last_min_yield"] <= 1.0


def test_dfrs_compare_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_dfrs_compare(mode="nope")


def test_controller_traces_solve_and_apply():
    r = _compare_cell("dfrs", trace=True)
    kinds = r["trace"]["by_kind"]
    assert kinds.get("dfrs.solve", 0) > 0
    assert kinds.get("dfrs.apply", 0) > 0


def test_world_registry_exposes_dfrs_metrics():
    from repro.metrics.collectors import world_registry

    cfg = WorldConfig(n_nodes=1, vms_per_node=2, vcpus_per_vm=2,
                      scheduler="CR", seed=0, dfrs=DFRSConfig())
    world = CloudWorld(cfg)
    vm = world.new_vm(name="v0")
    p = vm.kernel.add_process()
    p.load_program(hog())
    world.background.append(type("P", (), {"start": staticmethod(p.start)})())
    world.run(horizon_ns=int(0.5 * SEC))
    snap = world_registry(world).snapshot()
    assert snap["dfrs.solves"] == world.dfrs.solves
    assert snap["dfrs.violations"] == 0


def test_san009_detects_tampered_cap():
    cfg = WorldConfig(n_nodes=1, vms_per_node=2, vcpus_per_vm=2,
                      scheduler="CR", seed=0,
                      dfrs=DFRSConfig(solve_every=2))
    world = CloudWorld(cfg)
    for i in range(2):
        vm = world.new_vm(name=f"v{i}")
        p = vm.kernel.add_process()
        p.load_program(hog())
        world.background.append(type("P", (), {"start": staticmethod(p.start)})())
    world.run(horizon_ns=int(1.0 * SEC))
    ctl = world.dfrs
    assert ctl.solves > 0 and not ctl.violations
    # Tamper with an applied value behind the controller's back: the
    # next check must flag it.
    vmid, (cap, weight) = sorted(ctl._published.items())[0]
    vm = next(v for v in world.vms if v.vmid == vmid)
    vm.weight = weight + 1.0
    ctl._check_applied(world.sim.now)
    assert any("weight" in v for v in ctl.violations)


def test_dfrs_moves_ride_the_migration_engine():
    # Packed placement on 3 nodes concentrates every VM on node 0;
    # allow_moves lets the controller shed load through the engine, and
    # the auto-attached engine uses per-VCPU-scaled memory footprints.
    r = run_dfrs_compare(
        mode="dfrs", horizon_s=6.0, seed=0,
        dfrs={"allow_moves": True, "max_moves_per_round": 1},
    )
    d = r["dfrs"]
    mig = r["migration"]
    assert d["moves_requested"] >= 1
    assert mig["completed"] >= 1
    assert mig["bytes_copied"] > 0
    assert d["violations"] == 0
    # The moves actually changed the placement away from the pack.
    assert len(set(r["final_nodes"].values())) > 1


def test_dfrs_auto_engine_uses_per_vcpu_footprint():
    cfg = WorldConfig(n_nodes=2, vms_per_node=2, vcpus_per_vm=2,
                      scheduler="CR", seed=0,
                      dfrs=DFRSConfig(allow_moves=True))
    world = CloudWorld(cfg)
    assert world.migration_engine is not None
    assert world.migration_engine.params.mem_bytes_per_vcpu > 0
