"""Additional edge-case coverage across modules."""

import pytest

from repro.guest.spinlock import SpinBarrier
from repro.sim.engine import Simulator
from repro.workloads.base import BSPSpec


def test_barrier_size_validation():
    with pytest.raises(ValueError):
        SpinBarrier(0)
    b = SpinBarrier(1)
    assert b.n == 1


def test_engine_trace_hook():
    sim = Simulator()
    seen = []
    sim.trace = lambda t, fn: seen.append(t)
    sim.at(5, lambda: None)
    sim.at(9, lambda: None)
    sim.run()
    assert seen == [5, 9]


def test_single_rank_barrier_passes_immediately():
    """A barrier of size 1 never spins."""
    from tests.conftest import add_guest_vm, make_node_world
    from repro.guest.process import barrier, compute

    sim, cluster, vmms = make_node_world()
    vm = add_guest_vm(vmms[0], 1)
    p = vm.kernel.add_process()
    bar = SpinBarrier(1)

    def prog():
        for _ in range(3):
            yield compute(1000)
            yield barrier(bar)

    p.load_program(prog())
    p.start()
    sim.run(until=10_000_000)
    assert p.done
    assert bar.generation == 3
    assert p.total_spin_ns == 0


def test_atc_scheduler_in_registry_is_wired():
    from repro.schedulers.registry import make_scheduler_factory
    from tests.conftest import make_node_world

    sim, cluster, vmms = make_node_world(scheduler_factory=make_scheduler_factory("ATC"))
    # the controller installed itself as a period hook
    assert vmms[0].period_hooks


def test_vslicer_registry_roundtrip():
    from repro.schedulers.registry import SCHEDULERS
    from repro.schedulers.vslicer import VSlicerScheduler

    assert SCHEDULERS["VS"] is VSlicerScheduler


def test_world_config_frozen():
    from repro.experiments.harness import WorldConfig

    cfg = WorldConfig()
    with pytest.raises(Exception):
        cfg.n_nodes = 99


def test_bsp_spec_scaled_identity():
    s = BSPSpec("x", grain_ns=100, grain_cv=0.1, supersteps=5, pattern="ring", msg_bytes=10)
    t = s.scaled()
    assert t == s


def test_packet_repr_and_vm_repr_smoke():
    from tests.conftest import add_guest_vm, make_node_world
    from repro.hypervisor.dom0 import Packet

    sim, cluster, vmms = make_node_world()
    a = add_guest_vm(vmms[0], 1, name="a")
    b = add_guest_vm(vmms[0], 1, name="b")
    pkt = Packet(a, 0, b, 0, 64)
    assert pkt.t_send == -1 and pkt.nbytes == 64


def test_simulation_determinism_across_schedulers():
    """The same seed gives bit-identical results per scheduler (the A/B
    comparisons in the benches rely on this)."""
    from repro.experiments.scenarios import run_type_a

    for sched in ("CR", "ATC"):
        a = run_type_a("is", sched, 2, rounds=1, warmup_rounds=0, seed=3)
        b = run_type_a("is", sched, 2, rounds=1, warmup_rounds=0, seed=3)
        assert a["mean_round_ns"] == b["mean_round_ns"], sched
        assert a["events"] == b["events"], sched
