"""Setuptools shim: enables legacy editable installs in offline
environments that lack the ``wheel`` package (configuration lives in
pyproject.toml)."""

from setuptools import setup

setup()
