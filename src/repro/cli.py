"""Command-line interface: run any of the paper's experiments directly.

Examples::

    python -m repro list
    python -m repro typea --app lu --scheduler ATC --nodes 2
    python -m repro compare --app lu --nodes 2
    python -m repro sweep --app lu --slices 30,6,1,0.3
    python -m repro mix --scheduler ATC --np-slice 6
    python -m repro typeb --scheduler ATC --nodes 6
    python -m repro probe --scheduler CR
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.scenarios import (
    run_packet_path_probe,
    run_slice_sweep,
    run_small_mix,
    run_type_a,
    run_type_b,
)
from repro.schedulers.registry import scheduler_names
from repro.workloads.npb import NPB_EXTENDED

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (one subcommand per experiment)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic Acceleration of Parallel "
        "Applications in Cloud Platforms by Adaptive Time-Slice Control' "
        "(IPDPS 2016) on a discrete-event virtualized-cluster simulator.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schedulers, kernels and experiments")

    def common(sp, app=True):
        sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
        sp.add_argument("--nodes", type=int, default=2)
        sp.add_argument("--seed", type=int, default=0)
        if app:
            sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)

    sp = sub.add_parser("typea", help="evaluation type A (Figs. 1, 10)")
    common(sp)
    sp.add_argument("--rounds", type=int, default=2)
    sp.add_argument("--npb-class", default="B", choices=["A", "B", "C"])

    sp = sub.add_parser("compare", help="type A under every approach, normalized")
    common(sp, app=True)
    sp.add_argument("--rounds", type=int, default=2)

    sp = sub.add_parser("sweep", help="static slice sweep under CR (Figs. 5, 8)")
    sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)
    sp.add_argument("--nodes", type=int, default=2)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--slices", default="30,12,6,1,0.3", help="comma-separated ms values")
    sp.add_argument("--npb-class", default="B", choices=["A", "B", "C"])

    sp = sub.add_parser("mix", help="parallel + non-parallel coexistence (Figs. 2, 9)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--horizon", type=float, default=6.0, help="virtual seconds")
    sp.add_argument("--np-slice", type=float, default=None, help="admin slice (ms) for non-parallel VMs under ATC")

    sp = sub.add_parser("typeb", help="LLNL-trace cluster mix (Fig. 11)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=6)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--horizon", type=float, default=8.0)

    sp = sub.add_parser("probe", help="Fig. 4 packet-path hop decomposition")
    sp.add_argument("--scheduler", default="CR", choices=scheduler_names())
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--probes", type=int, default=50)
    sp.add_argument("--slice", type=float, default=None, help="uniform slice (ms)")
    return p


def _cmd_list() -> None:
    print("schedulers :", ", ".join(scheduler_names()))
    print("NPB kernels:", ", ".join(NPB_EXTENDED), "(classes A/B/C)")
    print("experiments: typea, compare, sweep, mix, typeb, probe")


def _cmd_typea(args) -> None:
    r = run_type_a(
        args.app, args.scheduler, args.nodes,
        rounds=args.rounds, warmup_rounds=1, npb_class=args.npb_class, seed=args.seed,
    )
    print(
        format_table(
            ["app", "scheduler", "nodes", "mean round (ms)", "avg spin (ms)", "done"],
            [(r["app"], r["scheduler"], r["n_nodes"], r["mean_round_ns"] / 1e6,
              r["avg_spin_ns"] / 1e6, r["all_done"])],
            title="Evaluation type A",
        )
    )


def _cmd_compare(args) -> None:
    rows = []
    base = None
    for sched in ("CR", "BS", "CS", "DSS", "ATC"):
        r = run_type_a(args.app, sched, args.nodes, rounds=args.rounds, warmup_rounds=1, seed=args.seed)
        if base is None:
            base = r["mean_round_ns"]
        rows.append((sched, r["mean_round_ns"] / 1e6, r["mean_round_ns"] / base))
    print(
        format_table(
            ["scheduler", "mean round (ms)", "normalized vs CR"],
            rows,
            title=f"Type A comparison — {args.app} on {args.nodes} nodes",
        )
    )


def _cmd_sweep(args) -> None:
    slices = [float(s) for s in args.slices.split(",")]
    r = run_slice_sweep(args.app, slices, n_nodes=args.nodes, rounds=2,
                        warmup_rounds=1, npb_class=args.npb_class, seed=args.seed)
    rows = [
        (row["slice_ms"], row["mean_round_ns"] / 1e6, row["avg_spin_ns"] / 1e6,
         row["context_switches"], row["llc_misses"])
        for row in r["rows"]
    ]
    print(
        format_table(
            ["slice (ms)", "round (ms)", "spin (ms)", "ctx switches", "LLC misses"],
            rows,
            title=f"Slice sweep — {args.app}.{args.npb_class} (CR)",
        )
    )


def _cmd_mix(args) -> None:
    r = run_small_mix(args.scheduler, seed=args.seed, horizon_s=args.horizon,
                      atc_np_slice_ms=args.np_slice)
    rows = [
        ("parallel mean round (ms)", r["parallel_mean_round_ns"] / 1e6),
        ("sphinx3 run (ms)", r["sphinx3_mean_run_ns"] / 1e6),
        ("stream bandwidth (GB/s)", r["stream_bandwidth_Bps"] / 1e9),
        ("bonnie++ throughput (MB/s)", r["bonnie_throughput_Bps"] / 1e6),
        ("ping RTT (ms)", r["ping_mean_rtt_ns"] / 1e6),
    ]
    title = f"Mixed tenancy — {args.scheduler}"
    if args.np_slice is not None:
        title += f" (non-parallel slice {args.np_slice} ms)"
    print(format_table(["metric", "value"], rows, title=title))


def _cmd_typeb(args) -> None:
    r = run_type_b(args.scheduler, n_nodes=args.nodes, seed=args.seed, horizon_s=args.horizon)
    rows = [
        (vc["vc"], vc["app"], vc["n_vms"], vc["rounds"],
         vc["mean_round_ns"] / 1e6 if vc["mean_round_ns"] == vc["mean_round_ns"] else "n/a")
        for vc in r["vcs"]
    ]
    print(
        format_table(
            ["VC", "app", "VMs", "rounds", "mean round (ms)"],
            rows,
            title=f"Type B (LLNL trace mix) — {args.scheduler} on {args.nodes} nodes",
        )
    )


def _cmd_probe(args) -> None:
    r = run_packet_path_probe(args.scheduler, uniform_slice_ms=args.slice,
                              n_probes=args.probes, seed=args.seed)
    rows = [
        ("netback tx wait", r["mean_netback_tx_wait_ns"] / 1e3),
        ("wire", r["mean_wire_ns"] / 1e3),
        ("netback rx wait", r["mean_netback_rx_wait_ns"] / 1e3),
        ("guest consume wait", r["mean_consume_wait_ns"] / 1e3),
        ("end to end", r["mean_end_to_end_ns"] / 1e3),
    ]
    print(
        format_table(
            ["hop", "mean (us)"],
            rows,
            title=f"Packet-path probe — {args.scheduler} ({r['probes']} probes)",
        )
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list()
    elif args.command == "typea":
        _cmd_typea(args)
    elif args.command == "compare":
        _cmd_compare(args)
    elif args.command == "sweep":
        _cmd_sweep(args)
    elif args.command == "mix":
        _cmd_mix(args)
    elif args.command == "typeb":
        _cmd_typeb(args)
    elif args.command == "probe":
        _cmd_probe(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
