"""Command-line interface: run any of the paper's experiments directly.

Examples::

    python -m repro list
    python -m repro typea --app lu --scheduler ATC --nodes 2
    python -m repro compare --app lu --nodes 2 --jobs 5
    python -m repro sweep --app lu --slices 30,6,1,0.3 --jobs 4
    python -m repro mix --scheduler ATC --np-slice 6
    python -m repro typeb --scheduler ATC --nodes 6
    python -m repro probe --scheduler CR
    python -m repro chaos --app is --nodes 2 --faults random:3:1
    python -m repro migrate --policy demix --placement pack
    python -m repro dfrs --nodes 3 --horizon 10
    python -m repro serve --admission migration-aware --rate 3 --tenants 8
    python -m repro trace --app is --slice 30
    python -m repro perf
    python -m repro lint src/repro benchmarks tests examples
    python -m repro races
    python -m repro races type_a --app lu --scheduler CR --nodes 2

Sweep-shaped commands (``sweep``, ``compare``, ``typea``, ``typeb``,
``mix``) execute through :mod:`repro.experiments.runner`: ``--jobs N``
fans the independent cells over N worker processes (bit-identical to
serial), results are cached under ``.repro_cache/`` (``--no-cache`` to
bypass), ``--json PATH`` exports the full result set, and ``--sanitize``
runs every cell under the runtime invariant sanitizer
(:mod:`repro.analysis.sanitizer` — read-only hooks, bit-identical
results, violations reported as structured cell failures).
``--cell-timeout S`` bounds each cell's host wall clock (hung workers
are killed, the sweep continues) and ``--salvage PATH`` writes the
structured partial-result report (:func:`repro.experiments.runner.salvage_report`).

``chaos`` runs a baseline cell and a fault-injected cell
(:mod:`repro.faults`) of the same world side by side; ``--faults``
accepts ``random:N[:SEED]``, an inline JSON plan, or a plan file.
``typea`` and ``sweep`` take the same ``--faults`` spec.

``migrate`` runs the mixed-tenancy rebalancing scenario
(:mod:`repro.migration`): a static-placement baseline cell next to a
cell where the chosen policy (``demix`` / ``consolidate`` /
``evacuate``) live-migrates VMs at runtime, reporting parallel round
times, completed migrations and per-VM downtime.  It accepts the same
``--faults`` spec (``evacuate`` drains crashed / degraded nodes).

``dfrs`` runs the design-space comparator (:mod:`repro.dfrs`): the same
mixed-tenancy cell under plain CR, the paper's ATC, cluster-level DFRS
fractional allocation (per-VM caps/weights re-solved periodically from
monitor signals), and the ATC+DFRS hybrid, printing one normalized
table.  ``--moves`` additionally lets the DFRS controller relocate VMs
through the live-migration engine.

``serve`` runs the always-on service scenario (:mod:`repro.service`):
tenants arrive as a stream (Poisson at ``--rate``, or ``--arrival trace``
replaying ``--trace-file``), the ``--admission`` policy admits / queues /
rejects each one, completed tenants are torn down with their capacity
reclaimed, and the admission/SLO rollup plus a per-tenant table are
printed.  ``migration-aware`` admission auto-attaches a demix rebalancer
and kicks it under admission pressure.

``trace`` runs one traced type-A cell (:mod:`repro.obs.trace`) and writes
a JSON-lines trace plus a Chrome ``trace_event`` file (open in Perfetto
or ``chrome://tracing``).  Tracing is read-only: a traced run is
bit-identical to an untraced one.

``perf`` runs the simulator self-profiling micro-suite
(:mod:`repro.obs.perfsuite`): events/sec, per-category callback
attribution and cancelled-event waste, written as ``BENCH_perf_*.json``
and optionally gated against ``benchmarks/perf/baseline.json``.

``lint`` runs the static determinism checker
(:mod:`repro.analysis.lint`) over the given paths.

``races`` runs the order-dependence detector
(:mod:`repro.analysis.races`): each cell executes twice — tie_order
``fifo`` and ``reversed`` — and the result dicts are diffed; any leaf
difference is a *confirmed* order dependence (exit 1).  The forward run
also records SAN008 tie-group suspects (heuristic non-commuting
same-timestamp pairs) unless ``--no-track``.  Without a scenario it
checks the curated invariant cell list.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.experiments.reporting import format_table
from repro.experiments.runner import (
    RunSpec,
    export_json,
    run_sweep,
    sweep_stats,
    write_salvage,
)
from repro.experiments.scenarios import run_packet_path_probe
from repro.schedulers.registry import scheduler_names
from repro.service.admission import admission_names
from repro.workloads.npb import NPB_EXTENDED

__all__ = ["main", "build_parser"]

COMPARE_SCHEDS = ("CR", "BS", "CS", "DSS", "ATC")


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro`` argument parser (one subcommand per experiment)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Dynamic Acceleration of Parallel "
        "Applications in Cloud Platforms by Adaptive Time-Slice Control' "
        "(IPDPS 2016) on a discrete-event virtualized-cluster simulator.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schedulers, kernels and experiments")

    def runner_opts(sp):
        sp.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for independent cells (default 1)")
        sp.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache (.repro_cache/)")
        sp.add_argument("--json", metavar="PATH", default=None,
                        help="export the full sweep results as JSON")
        sp.add_argument("--sanitize", action="store_true",
                        help="run cells under the runtime invariant sanitizer "
                        "(bit-identical results; violations fail the cell)")
        sp.add_argument("--cell-timeout", type=float, default=None, metavar="S",
                        help="host wall-clock budget per cell; overdue workers "
                        "are killed and the cell fails, the sweep continues")
        sp.add_argument("--salvage", metavar="PATH", default=None,
                        help="write the structured salvage report (healthy + "
                        "failed cells) as JSON")

    def common(sp, app=True):
        sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
        sp.add_argument("--nodes", type=int, default=2)
        sp.add_argument("--seed", type=int, default=0)
        if app:
            sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)

    sp = sub.add_parser("typea", help="evaluation type A (Figs. 1, 10)")
    common(sp)
    sp.add_argument("--rounds", type=int, default=2)
    sp.add_argument("--npb-class", default="B", choices=["A", "B", "C"])
    sp.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault plan: random:N[:SEED], inline JSON, or a plan file")
    runner_opts(sp)

    sp = sub.add_parser("compare", help="type A under every approach, normalized")
    common(sp, app=True)
    sp.add_argument("--rounds", type=int, default=2)
    runner_opts(sp)

    sp = sub.add_parser("sweep", help="static slice sweep under CR (Figs. 5, 8)")
    sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)
    sp.add_argument("--nodes", type=int, default=2)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--slices", default="30,12,6,1,0.3", help="comma-separated ms values")
    sp.add_argument("--npb-class", default="B", choices=["A", "B", "C"])
    sp.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault plan: random:N[:SEED], inline JSON, or a plan file")
    runner_opts(sp)

    sp = sub.add_parser("mix", help="parallel + non-parallel coexistence (Figs. 2, 9)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--horizon", type=float, default=6.0, help="virtual seconds")
    sp.add_argument("--np-slice", type=float, default=None, help="admin slice (ms) for non-parallel VMs under ATC")
    runner_opts(sp)

    sp = sub.add_parser("typeb", help="LLNL-trace cluster mix (Fig. 11)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=6)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--horizon", type=float, default=8.0)
    runner_opts(sp)

    sp = sub.add_parser("chaos", help="fault-injected run vs clean baseline (repro.faults)")
    common(sp)
    sp.add_argument("--rounds", type=int, default=6)
    sp.add_argument("--horizon", type=float, default=12.0, help="virtual seconds")
    sp.add_argument("--faults", default="random:3:1", metavar="SPEC",
                    help="fault plan: random:N[:SEED], inline JSON, or a plan file "
                    "(default random:3:1)")
    runner_opts(sp)

    sp = sub.add_parser("migrate", help="live-migration rebalancing vs static placement (repro.migration)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)
    sp.add_argument("--policy", default="demix",
                    choices=["demix", "consolidate", "evacuate", "none"],
                    help="rebalancing policy (default demix; 'none' attaches "
                    "the engine without a controller)")
    sp.add_argument("--placement", default="pack", metavar="POLICY",
                    help="initial placement: spread, pack, striped, or "
                    "random:SEED (default pack, which mixes clusters)")
    sp.add_argument("--clusters", type=int, default=2, metavar="N",
                    help="parallel virtual clusters (default 2)")
    sp.add_argument("--vms-per-cluster", type=int, default=2, metavar="N")
    sp.add_argument("--horizon", type=float, default=10.0, help="virtual seconds")
    sp.add_argument("--faults", default=None, metavar="SPEC",
                    help="fault plan: random:N[:SEED], inline JSON, or a plan file")
    runner_opts(sp)

    sp = sub.add_parser("dfrs", help="cluster-level fractional allocation vs "
                        "ATC: {CR, ATC, CR+DFRS, ATC+DFRS} on one mixed-"
                        "tenancy cell (repro.dfrs)")
    sp.add_argument("--nodes", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--app", default="lu", choices=NPB_EXTENDED)
    sp.add_argument("--placement", default="pack", metavar="POLICY",
                    help="initial placement: spread, pack, striped, or "
                    "random:SEED (default pack, which mixes clusters)")
    sp.add_argument("--clusters", type=int, default=2, metavar="N",
                    help="parallel virtual clusters (default 2)")
    sp.add_argument("--vms-per-cluster", type=int, default=2, metavar="N")
    sp.add_argument("--horizon", type=float, default=10.0, help="virtual seconds")
    sp.add_argument("--solve-every", type=int, default=4, metavar="N",
                    help="re-solve the fractional allocation every N "
                    "accounting periods (default 4)")
    sp.add_argument("--headroom", type=float, default=1.25,
                    help="cap slack multiplier over the solved allocation "
                    "(default 1.25)")
    sp.add_argument("--moves", action="store_true",
                    help="let DFRS relocate VMs through the live-migration "
                    "engine (off by default)")
    runner_opts(sp)

    sp = sub.add_parser("serve", help="always-on service: streaming tenant "
                        "arrivals under online admission (repro.service)")
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=3)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--admission", default="fcfs-queue", choices=admission_names(),
                    help="admission policy (default fcfs-queue)")
    sp.add_argument("--arrival", default="poisson", choices=["poisson", "trace"],
                    help="arrival source (trace replays --trace-file)")
    sp.add_argument("--rate", type=float, default=2.0, metavar="PER_S",
                    help="Poisson arrival rate, tenants per virtual second "
                    "(default 2.0)")
    sp.add_argument("--tenants", type=int, default=6, metavar="N",
                    help="total tenants to generate (default 6)")
    sp.add_argument("--rounds", type=int, default=1,
                    help="NPB rounds each tenant runs (default 1)")
    sp.add_argument("--placement", default="pack", metavar="POLICY",
                    help="initial placement policy (default pack)")
    sp.add_argument("--trace-file", default=None, metavar="PATH",
                    help="JSON arrival trace for --arrival trace: a list of "
                    '{"at_ms", "n_vms", "app", "rounds"} dicts')
    sp.add_argument("--horizon", type=float, default=30.0, help="virtual seconds")
    runner_opts(sp)

    sp = sub.add_parser("attack", help="adversarial tenancy: yield-theft + "
                        "tickle-storm attackers vs hardening knobs "
                        "(repro.workloads.attacks, DESIGN.md §15)")
    sp.add_argument("--scheduler", default=None, choices=["CR", "ATC"],
                    help="restrict the grid to one scheduler (default: both)")
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--app", default="lu", choices=NPB_EXTENDED,
                    help="parallel victim application (default lu)")
    sp.add_argument("--horizon", type=float, default=6.0, help="virtual seconds")
    runner_opts(sp)

    sp = sub.add_parser("probe", help="Fig. 4 packet-path hop decomposition")
    sp.add_argument("--scheduler", default="CR", choices=scheduler_names())
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--probes", type=int, default=50)
    sp.add_argument("--slice", type=float, default=None, help="uniform slice (ms)")
    sp.add_argument("--sanitize", action="store_true",
                    help="run under the runtime invariant sanitizer")

    sp = sub.add_parser("trace", help="traced run: JSON-lines + Chrome trace_event export")
    sp.add_argument("--app", default="is", choices=NPB_EXTENDED)
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=2)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--rounds", type=int, default=1)
    sp.add_argument("--slice", type=float, default=None,
                    help="uniform guest slice (ms; adaptive schedulers overwrite it)")
    sp.add_argument("--horizon", type=float, default=20.0, help="virtual seconds")
    sp.add_argument("--capacity", type=int, default=65536,
                    help="trace ring-buffer capacity (records; oldest evicted)")
    sp.add_argument("--out", default="trace_out/trace", metavar="PREFIX",
                    help="output prefix: writes PREFIX.jsonl and PREFIX.trace.json")

    sp = sub.add_parser("perf", help="simulator self-profiling micro-suite (BENCH_perf_*.json)")
    sp.add_argument("--cases", default=None, metavar="NAMES",
                    help="comma-separated case names (default: all)")
    sp.add_argument("--quick", action="store_true",
                    help="scaled-down workloads (CI smoke / tests)")
    sp.add_argument("--out", default="benchmarks/perf/results", metavar="DIR",
                    help="directory for BENCH_perf_*.json")
    sp.add_argument("--check", default=None, metavar="BASELINE",
                    help="fail if events/sec regresses vs this baseline.json")
    sp.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional regression for --check "
                    "(default 0.15, or REPRO_PERF_TOLERANCE)")
    sp.add_argument("--write-baseline", default=None, metavar="PATH",
                    help="record measured events/sec as the new baseline")
    sp.add_argument("--history", default=None, metavar="JSONL",
                    help="append one events/sec trend line per run "
                    "(e.g. benchmarks/perf/history.jsonl)")
    sp.add_argument("--label", default=None,
                    help="run label for --history (default: $GITHUB_SHA or 'local')")

    sp = sub.add_parser("lint", help="static determinism lint (RPR rules)")
    sp.add_argument("paths", nargs="*",
                    default=["src/repro", "benchmarks", "tests", "examples"],
                    help="files/directories to lint "
                    "(default: src/repro benchmarks tests examples)")
    sp.add_argument("--format", choices=["text", "json"], default="text")
    sp.add_argument("--select", default=None, metavar="CODES",
                    help="comma-separated rule codes to run (default: all)")
    sp.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")

    sp = sub.add_parser(
        "races",
        help="order-dependence detector: forward/reversed tie-order "
        "differential + SAN008 tie-group tracking (repro.analysis.races)",
    )
    sp.add_argument("scenario", nargs="?", default=None,
                    help="scenario to check (e.g. type_a); default: the "
                    "curated invariant cell list")
    sp.add_argument("--app", default="ep", choices=NPB_EXTENDED)
    sp.add_argument("--scheduler", default="ATC", choices=scheduler_names())
    sp.add_argument("--nodes", type=int, default=2)
    sp.add_argument("--rounds", type=int, default=2)
    sp.add_argument("--seed", type=int, default=0)
    sp.add_argument("--no-track", action="store_true",
                    help="skip SAN008 attribute tracking; run only the "
                    "forward/reversed metric differential (faster)")
    sp.add_argument("--json", metavar="PATH", default=None,
                    help="write the full report as JSON")
    sp.add_argument("--suspects", type=int, default=5, metavar="N",
                    help="distinct SAN008 suspect patterns to print per "
                    "cell (default 5; 0 silences them)")
    return p


def _progress(done: int, total: int, result) -> None:
    state = "cached" if result.cached else ("ok" if result.ok else "FAILED")
    print(
        f"[{done}/{total}] {result.spec.label}: {state} ({result.wall_s:.2f}s)",
        file=sys.stderr,
    )


def _run_cells(args, specs: list[RunSpec], allow_partial: bool = False) -> Optional[list]:
    """Execute cells through the shared runner; None when any cell failed
    (unless ``allow_partial``, which returns whatever settled)."""
    progress = _progress if (args.jobs > 1 or len(specs) > 1) else None
    results = run_sweep(
        specs,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        progress=progress,
        cell_timeout_s=getattr(args, "cell_timeout", None),
    )
    if args.json:
        export_json(results, args.json)
    if getattr(args, "salvage", None):
        print(f"salvage report: {write_salvage(results, args.salvage)}", file=sys.stderr)
    stats = sweep_stats(results)
    if len(specs) > 1:
        print(
            f"{stats['cells']} cells: {stats['ok']} ok "
            f"({stats['cached']} cached), {stats['failed']} failed, "
            f"{stats['wall_s']:.2f}s simulated wall, {stats['events']} events",
            file=sys.stderr,
        )
    failed = [r for r in results if not r.ok]
    for r in failed:
        err = r.error or {}
        print(
            f"cell {r.spec.label} failed after {err.get('attempts', '?')} attempts: "
            f"{err.get('type')}: {err.get('message')}",
            file=sys.stderr,
        )
        for v in err.get("violations", [])[:10]:
            print(
                f"  {v['code']} @t={v['time_ns']}: {v['message']}",
                file=sys.stderr,
            )
    if failed and not allow_partial:
        return None
    return results


def _cmd_list() -> None:
    print("schedulers :", ", ".join(scheduler_names()))
    print("NPB kernels:", ", ".join(NPB_EXTENDED), "(classes A/B/C)")
    print("experiments: typea, compare, sweep, mix, typeb, chaos, migrate, dfrs, serve, attack, probe")
    print("tools      : trace (structured tracing + Perfetto export), "
          "perf (self-profiling micro-suite), "
          "lint (static determinism checks; --list-rules for codes), "
          "races (same-timestamp order-dependence detector)")


def _parse_faults(args, horizon_s: float) -> Optional[list]:
    """``--faults`` spec -> plan dict list for scenario params (or None)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None
    from repro.faults.plan import parse_fault_spec
    from repro.sim.units import SEC

    plan = parse_fault_spec(spec, args.nodes, round(horizon_s * SEC))
    return plan.to_dicts() if plan else None


def _cmd_typea(args) -> int:
    params = dict(
        app_name=args.app, scheduler=args.scheduler, n_nodes=args.nodes,
        rounds=args.rounds, warmup_rounds=1, npb_class=args.npb_class, seed=args.seed,
    )
    faults = _parse_faults(args, 300.0)
    if faults:
        params["faults"] = faults
    spec = RunSpec("type_a", params, sanitize=args.sanitize)
    results = _run_cells(args, [spec])
    if results is None:
        return 1
    r = results[0].value
    print(
        format_table(
            ["app", "scheduler", "nodes", "mean round (ms)", "avg spin (ms)", "done"],
            [(r["app"], r["scheduler"], r["n_nodes"], r["mean_round_ns"] / 1e6,
              r["avg_spin_ns"] / 1e6, r["all_done"])],
            title="Evaluation type A",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    specs = [
        RunSpec("type_a", dict(
            app_name=args.app, scheduler=sched, n_nodes=args.nodes,
            rounds=args.rounds, warmup_rounds=1, seed=args.seed,
        ), label=f"compare:{sched}", sanitize=args.sanitize)
        for sched in COMPARE_SCHEDS
    ]
    results = _run_cells(args, specs)
    if results is None:
        return 1
    base = results[0].value["mean_round_ns"]
    rows = [
        (sched, r.value["mean_round_ns"] / 1e6, r.value["mean_round_ns"] / base)
        for sched, r in zip(COMPARE_SCHEDS, results)
    ]
    print(
        format_table(
            ["scheduler", "mean round (ms)", "normalized vs CR"],
            rows,
            title=f"Type A comparison — {args.app} on {args.nodes} nodes",
        )
    )
    return 0


def _cmd_sweep(args) -> int:
    try:
        slices = [float(s) for s in args.slices.split(",")]
    except ValueError:
        print(f"repro sweep: --slices expects comma-separated ms values, got {args.slices!r}",
              file=sys.stderr)
        return 2
    faults = _parse_faults(args, 300.0)
    extra = {"faults": faults} if faults else {}
    specs = [
        RunSpec("slice_sweep", dict(
            app_name=args.app, slice_ms_values=[sm], n_nodes=args.nodes,
            rounds=2, warmup_rounds=1, npb_class=args.npb_class, seed=args.seed,
            **extra,
        ), label=f"sweep:{args.app}@{sm}ms", sanitize=args.sanitize)
        for sm in slices
    ]
    results = _run_cells(args, specs)
    if results is None:
        return 1
    rows = [
        (row["slice_ms"], row["mean_round_ns"] / 1e6, row["avg_spin_ns"] / 1e6,
         row["context_switches"], row["llc_misses"])
        for r in results
        for row in r.value["rows"]
    ]
    print(
        format_table(
            ["slice (ms)", "round (ms)", "spin (ms)", "ctx switches", "LLC misses"],
            rows,
            title=f"Slice sweep — {args.app}.{args.npb_class} (CR)",
        )
    )
    return 0


def _cmd_mix(args) -> int:
    spec = RunSpec("small_mix", dict(
        scheduler=args.scheduler, seed=args.seed, horizon_s=args.horizon,
        atc_np_slice_ms=args.np_slice,
    ), sanitize=args.sanitize)
    results = _run_cells(args, [spec])
    if results is None:
        return 1
    r = results[0].value
    rows = [
        ("parallel mean round (ms)", r["parallel_mean_round_ns"] / 1e6),
        ("sphinx3 run (ms)", r["sphinx3_mean_run_ns"] / 1e6),
        ("stream bandwidth (GB/s)", r["stream_bandwidth_Bps"] / 1e9),
        ("bonnie++ throughput (MB/s)", r["bonnie_throughput_Bps"] / 1e6),
        ("ping RTT (ms)", r["ping_mean_rtt_ns"] / 1e6),
    ]
    title = f"Mixed tenancy — {args.scheduler}"
    if args.np_slice is not None:
        title += f" (non-parallel slice {args.np_slice} ms)"
    print(format_table(["metric", "value"], rows, title=title))
    return 0


def _cmd_typeb(args) -> int:
    spec = RunSpec("type_b", dict(
        scheduler=args.scheduler, n_nodes=args.nodes, seed=args.seed,
        horizon_s=args.horizon,
    ), sanitize=args.sanitize)
    results = _run_cells(args, [spec])
    if results is None:
        return 1
    r = results[0].value
    rows = [
        (vc["vc"], vc["app"], vc["n_vms"], vc["rounds"],
         vc["mean_round_ns"] / 1e6 if vc["mean_round_ns"] == vc["mean_round_ns"] else "n/a")
        for vc in r["vcs"]
    ]
    print(
        format_table(
            ["VC", "app", "VMs", "rounds", "mean round (ms)"],
            rows,
            title=f"Type B (LLNL trace mix) — {args.scheduler} on {args.nodes} nodes",
        )
    )
    return 0


def _cmd_chaos(args) -> int:
    faults = _parse_faults(args, args.horizon)
    if not faults:
        print("repro chaos: --faults resolved to an empty plan", file=sys.stderr)
        return 2
    base = dict(
        app_name=args.app, scheduler=args.scheduler, n_nodes=args.nodes,
        rounds=args.rounds, warmup_rounds=1, seed=args.seed,
        horizon_s=args.horizon,
    )
    specs = [
        RunSpec("type_a", dict(base), label="chaos:baseline", sanitize=args.sanitize),
        RunSpec("type_a", dict(base, faults=faults), label="chaos:faulted",
                sanitize=args.sanitize),
    ]
    if not getattr(args, "salvage", None):
        args.salvage = "chaos_salvage.json"
    results = _run_cells(args, specs, allow_partial=True)
    rows = []
    for r in results:
        if r.ok:
            v = r.value
            rows.append((r.spec.label, v["rounds_measured"], v["mean_round_ns"] / 1e6,
                         v["avg_spin_ns"] / 1e6, v["all_done"], v["events"]))
        else:
            err = (r.error or {}).get("type", "?")
            rows.append((r.spec.label, "-", "-", "-", f"FAILED:{err}", "-"))
    print(
        format_table(
            ["cell", "rounds", "mean round (ms)", "avg spin (ms)", "done", "events"],
            rows,
            title=f"Chaos — {args.app} on {args.nodes} nodes, plan {args.faults}",
        )
    )
    faulted = next((r for r in results if r.spec.label == "chaos:faulted" and r.ok), None)
    if faulted is not None and "faults" in faulted.value:
        fs = faulted.value["faults"]
        inj = ", ".join(f"{k}x{n}" for k, n in sorted(fs["injected"].items())) or "none"
        healed = sum(fs["healed"].values())
        print(
            f"faults: {fs['events']} planned, injected [{inj}], {healed} healed; "
            f"net: {fs['messages_dropped']} dropped, {fs['retransmits']} retransmits, "
            f"{fs['messages_lost']} lost",
            file=sys.stderr,
        )
    return 0 if all(r.ok for r in results) else 1


def _cmd_migrate(args) -> int:
    faults = _parse_faults(args, args.horizon)
    base = dict(
        placement=args.placement, scheduler=args.scheduler, n_nodes=args.nodes,
        n_clusters=args.clusters, vms_per_cluster=args.vms_per_cluster,
        app_name=args.app, seed=args.seed, horizon_s=args.horizon,
    )
    if faults:
        base["faults"] = faults
    specs = [
        RunSpec("migration_rebalance", dict(base, policy="static"),
                label="migrate:static", sanitize=args.sanitize),
        RunSpec("migration_rebalance", dict(base, policy=args.policy),
                label=f"migrate:{args.policy}", sanitize=args.sanitize),
    ]
    results = _run_cells(args, specs)
    if results is None:
        return 1
    rows = []
    for r in results:
        v = r.value
        mig = v.get("migration", {})
        rows.append((
            r.spec.label, v["parallel_mean_round_ns"] / 1e6,
            mig.get("completed", 0), mig.get("aborted", 0),
            mig.get("downtime_total_ns", 0) / 1e6, v["events"],
        ))
    print(
        format_table(
            ["cell", "parallel round (ms)", "migrations", "aborted",
             "downtime (ms)", "events"],
            rows,
            title=f"Migration rebalance — {args.app} x{args.clusters} clusters, "
            f"{args.placement} placement on {args.nodes} nodes",
        )
    )
    rebalanced = results[1].value
    moved = {
        vm: node for vm, node in rebalanced["final_nodes"].items()
        if results[0].value["final_nodes"].get(vm) != node
    }
    if moved:
        placed = ", ".join(f"{vm}->node{n}" for vm, n in sorted(moved.items()))
        print(f"moved: {placed}", file=sys.stderr)
    return 0


DFRS_MODES = ("baseline", "atc", "dfrs", "hybrid")


def _cmd_dfrs(args) -> int:
    dfrs = {"solve_every": args.solve_every, "headroom": args.headroom}
    if args.moves:
        dfrs["allow_moves"] = True
    base = dict(
        placement=args.placement, n_nodes=args.nodes,
        n_clusters=args.clusters, vms_per_cluster=args.vms_per_cluster,
        app_name=args.app, seed=args.seed, horizon_s=args.horizon,
        dfrs=dfrs,
    )
    specs = [
        RunSpec("dfrs_compare", dict(base, mode=mode),
                label=f"dfrs:{mode}", sanitize=args.sanitize)
        for mode in DFRS_MODES
    ]
    results = _run_cells(args, specs)
    if results is None:
        return 1
    base_round = results[0].value["parallel_mean_round_ns"]
    rows = []
    for mode, r in zip(DFRS_MODES, results):
        v = r.value
        d = v.get("dfrs", {})
        rows.append((
            mode, v["scheduler"],
            v["parallel_mean_round_ns"] / 1e6,
            v["parallel_mean_round_ns"] / base_round,
            v["np_mean_run_ns"] / 1e6,
            d.get("solves", "-"), d.get("caps_applied", "-"),
            f"{d['last_min_yield']:.3f}" if d else "-",
        ))
    print(
        format_table(
            ["mode", "sched", "parallel round (ms)", "vs CR",
             "sphinx3 (ms)", "solves", "caps", "min yield"],
            rows,
            title=f"DFRS comparator — {args.app} x{args.clusters} clusters, "
            f"{args.placement} placement on {args.nodes} nodes",
        )
    )
    violations = sum(r.value.get("dfrs", {}).get("violations", 0) for r in results)
    if violations:
        print(f"SAN009: {violations} allocation-consistency violation(s)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    params = dict(
        admission=args.admission, arrival=args.arrival, scheduler=args.scheduler,
        n_nodes=args.nodes, placement=args.placement, rate_per_s=args.rate,
        max_tenants=args.tenants, rounds=args.rounds, seed=args.seed,
        horizon_s=args.horizon,
    )
    if args.trace_file:
        import json as _json

        with open(args.trace_file) as fh:
            params["service_trace"] = _json.load(fh)
    spec = RunSpec("service", params, label=f"serve:{args.admission}",
                   sanitize=args.sanitize)
    results = _run_cells(args, [spec])
    if results is None:
        return 1
    s = results[0].value["service"]
    rows = [
        ("submitted", s["submitted"]),
        ("admitted", s["admitted"]),
        ("rejected", s["rejected"]),
        ("departed", s["departed"]),
        ("still running", s["running_now"]),
        ("still queued", s["queued_now"]),
        ("queue peak", s["queue_peak"]),
        ("mean wait (ms)", f"{s['wait_mean_ns'] / 1e6:.3f}"),
        ("mean slowdown", f"{s['slowdown_mean']:.3f}"),
        ("rebalancer kicks", s["rebalancer_kicks"]),
    ]
    print(
        format_table(
            ["metric", "value"],
            rows,
            title=f"Service — {args.admission} admission, {args.arrival} "
            f"arrivals on {args.nodes} nodes",
        )
    )
    tenant_rows = [
        (t["name"], t["app"], t["n_vms"], t["state"],
         "-" if t["wait_ns"] is None else f"{t['wait_ns'] / 1e6:.3f}",
         "-" if t["slowdown"] is None else f"{t['slowdown']:.3f}")
        for t in s["tenants"]
    ]
    if tenant_rows:
        print(
            format_table(
                ["tenant", "app", "vms", "state", "wait (ms)", "slowdown"],
                tenant_rows,
                title="Tenants",
            )
        )
    return 0


def _cmd_attack(args) -> int:
    scheds = [args.scheduler] if args.scheduler else ["CR", "ATC"]
    specs = [
        RunSpec("attack", dict(
            scheduler=sched, hardened=hardened, attack=attack,
            seed=args.seed, horizon_s=args.horizon, victim_app=args.app,
        ), label="attack:{}:{}:{}".format(
            sched, "hard" if hardened else "open", "atk" if attack else "clean"
        ), sanitize=args.sanitize)
        for sched in scheds
        for hardened in (False, True)
        for attack in (False, True)
    ]
    results = _run_cells(args, specs)
    if results is None:
        return 1
    by = {
        (r.value["scheduler"], r.value["hardened"], r.value["attack"]): r.value
        for r in results
    }
    rows = []
    for sched in scheds:
        for hardened in (False, True):
            clean = by[(sched, hardened, False)]
            atk = by[(sched, hardened, True)]
            slow = atk["victim_mean_round_ns"] / clean["victim_mean_round_ns"]
            rows.append((
                sched,
                "hardened" if hardened else "unhardened",
                f"{slow:.3f}",
                f"{atk['thief']['gain']:.3f}",
                atk["tickler"]["boost_preempts_inflicted"],
                atk["victim_boost_preempts_suffered"],
            ))
    print(
        format_table(
            ["scheduler", "config", "victim slowdown", "thief gain",
             "tickle preempts", "victim preempts"],
            rows,
            title=f"Adversarial tenancy — {args.app} victim (tick-sampled "
            "accounting; gain = CPU consumed / CPU debited)",
        )
    )
    for sched in scheds:
        slow_u = (by[(sched, False, True)]["victim_mean_round_ns"]
                  / by[(sched, False, False)]["victim_mean_round_ns"])
        slow_h = (by[(sched, True, True)]["victim_mean_round_ns"]
                  / by[(sched, True, False)]["victim_mean_round_ns"])
        if slow_u > 1.0:
            rec = (slow_u - slow_h) / (slow_u - 1.0)
            print(f"{sched}: hardening recovers {rec:.0%} of the victim slowdown",
                  file=sys.stderr)
    return 0


def _cmd_probe(args) -> int:
    r = run_packet_path_probe(args.scheduler, uniform_slice_ms=args.slice,
                              n_probes=args.probes, seed=args.seed,
                              sanitize=args.sanitize)
    rows = [
        ("netback tx wait", r["mean_netback_tx_wait_ns"] / 1e3),
        ("wire", r["mean_wire_ns"] / 1e3),
        ("netback rx wait", r["mean_netback_rx_wait_ns"] / 1e3),
        ("guest consume wait", r["mean_consume_wait_ns"] / 1e3),
        ("end to end", r["mean_end_to_end_ns"] / 1e3),
    ]
    print(
        format_table(
            ["hop", "mean (us)"],
            rows,
            title=f"Packet-path probe — {args.scheduler} ({r['probes']} probes)",
        )
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.experiments.scenarios import run_type_a
    from repro.obs import trace as obstrace

    r = run_type_a(
        args.app, args.scheduler, args.nodes,
        rounds=args.rounds, warmup_rounds=0, seed=args.seed,
        horizon_s=args.horizon, uniform_slice_ms=args.slice,
        trace=True, trace_capacity=args.capacity,
    )
    tr = r["trace"]
    records = obstrace.records_from_dicts(tr["records"])
    jsonl_path = obstrace.write_jsonl(records, args.out + ".jsonl")
    chrome_path = obstrace.write_chrome_trace(records, args.out + ".trace.json")
    rows = [(kind, count) for kind, count in tr["by_kind"].items()]
    rows.append(("total", tr["total"]))
    rows.append(("retained", tr["retained"]))
    rows.append(("dropped (ring full)", tr["dropped"]))
    print(
        format_table(
            ["record kind", "count"],
            rows,
            title=f"Trace — {args.app} under {args.scheduler} "
            f"({r['sim_time_ns'] / 1e9:.2f} virtual s)",
        )
    )
    print(f"JSON-lines : {jsonl_path}")
    print(f"trace_event: {chrome_path}  (open in Perfetto / chrome://tracing)")
    return 0


def _cmd_perf(args) -> int:
    from repro.obs import perfsuite

    names = None if args.cases is None else args.cases.split(",")
    try:
        results = perfsuite.run_suite(names, quick=args.quick)
    except KeyError as exc:
        print(f"repro perf: {exc.args[0]}", file=sys.stderr)
        return 2
    rows = [
        (r["name"], r["events"], f"{r['events_per_sec']:,.0f}", r["wall_s"],
         r["max_heap_depth"], f"{r['cancel_waste_ratio']:.3f}")
        for r in results
    ]
    print(
        format_table(
            ["case", "events", "events/sec", "wall (s)", "max heap", "cancel waste"],
            rows,
            title="Simulator self-profile" + (" (quick)" if args.quick else ""),
        )
    )
    for r in results:
        cat_rows = [
            (cat, c["calls"], c["wall_s"] * 1e3)
            for cat, c in sorted(
                r["categories"].items(), key=lambda kv: -kv[1]["wall_s"]
            )
        ]
        print()
        print(
            format_table(
                ["category", "calls", "wall (ms)"],
                cat_rows,
                title=f"{r['name']} — per-category callback attribution",
            )
        )
    paths = perfsuite.write_results(results, args.out)
    print()
    for p in paths:
        print(f"wrote {p}")
    if args.write_baseline:
        print(f"wrote {perfsuite.write_baseline(results, args.write_baseline)}")
    if args.history:
        print(f"appended {perfsuite.append_history(results, args.history, label=args.label)}")
    if args.check:
        failures = perfsuite.check_baseline(results, args.check, tolerance=args.tolerance)
        if failures:
            for f in failures:
                print(f"PERF REGRESSION: {f}", file=sys.stderr)
            return 1
        print(f"perf check vs {args.check}: ok")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis.lint import run_lint

    select = None if args.select is None else args.select.split(",")
    return run_lint(args.paths, fmt=args.format, select=select,
                    list_rules=args.list_rules)


def _cmd_races(args) -> int:
    import json as _json

    from repro.analysis.races import races_report

    if args.scenario is None:
        cells = None
    else:
        params = dict(
            app_name=args.app, scheduler=args.scheduler, n_nodes=args.nodes,
            rounds=args.rounds, warmup_rounds=1, seed=args.seed,
        )
        cells = [{"scenario": args.scenario, "params": params}]
    try:
        report = races_report(cells, track=not args.no_track)
    except KeyError as exc:
        print(f"repro races: unknown scenario {exc.args[0]!r}", file=sys.stderr)
        return 2
    rows = []
    for cell in report["cells"]:
        p = cell["params"]
        label = ":".join(
            str(p[k]) for k in ("app_name", "scheduler", "n_nodes") if k in p
        ) or cell["scenario"]
        rows.append((
            f"{cell['scenario']}:{label}",
            "identical" if cell["identical"] else f"{len(cell['confirmed'])} DIFFS",
            cell["suspects_total"], len(cell["suspects"]), cell["groups_checked"],
        ))
    print(
        format_table(
            ["cell", "forward vs reversed", "suspects", "distinct", "tie groups"],
            rows,
            title="Order-dependence differential (tie_order fifo vs reversed)",
        )
    )
    for cell in report["cells"]:
        for d in cell["confirmed"][:20]:
            print(
                f"CONFIRMED {cell['scenario']}: {d['path']}: "
                f"forward={d['forward']} reversed={d['reversed']}",
                file=sys.stderr,
            )
        if args.suspects:
            for s in cell["suspects"][: args.suspects]:
                print(f"suspect {s['code']} @t={s['time_ns']}: {s['message']}",
                      file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            _json.dump(report, fh, indent=2)
        print(f"wrote {args.json}", file=sys.stderr)
    if report["clean"]:
        print("no confirmed order dependence "
              f"({report['suspects_total']} heuristic suspects recorded)")
        return 0
    print(f"{report['confirmed_total']} confirmed order-dependent metric(s)",
          file=sys.stderr)
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list()
        return 0
    handlers = {
        "typea": _cmd_typea,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "mix": _cmd_mix,
        "typeb": _cmd_typeb,
        "chaos": _cmd_chaos,
        "migrate": _cmd_migrate,
        "dfrs": _cmd_dfrs,
        "serve": _cmd_serve,
        "attack": _cmd_attack,
        "probe": _cmd_probe,
        "trace": _cmd_trace,
        "perf": _cmd_perf,
        "lint": _cmd_lint,
        "races": _cmd_races,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
