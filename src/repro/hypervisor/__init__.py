"""Hypervisor layer: VMs, VCPUs, the per-node VMM, and the dom0 driver
domain with the Fig. 4 split-driver network path."""

from repro.hypervisor.dom0 import Dom0, Dom0Params, Packet
from repro.hypervisor.vm import VCPU, VCPUState, VM
from repro.hypervisor.vmm import VMM

__all__ = ["Dom0", "Dom0Params", "Packet", "VCPU", "VCPUState", "VM", "VMM"]
