"""The per-node virtual machine monitor: dispatch machinery.

One :class:`VMM` runs on each physical node.  It owns the node's VMs
(including dom0), drives the installed scheduler, and performs the actual
PCPU context switches: charging the direct switch cost and the LLC refill
penalty (:mod:`repro.cluster.cache`), arming the slice timer, and notifying
runners.

Reentrancy contract
-------------------
``dispatch`` calls ``runner.on_dispatch``; runners must never synchronously
call back into ``vcpu.block()`` / ``wake`` chains that re-enter dispatch on
the same PCPU.  Guest processes honour this by resolving state changes in
zero-delay follow-up events (see :mod:`repro.guest.process`).  The VMM
itself only re-enters ``dispatch`` after fully unwinding the previous
PCPU transaction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.hypervisor.vm import VCPU, VCPUState, VM
from repro.obs import trace as obstrace
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU, PhysicalNode
    from repro.sim.engine import Simulator

__all__ = ["VMM"]


class VMM:
    """Hypervisor instance for one physical node."""

    __slots__ = (
        "sim",
        "node",
        "scheduler",
        "vms",
        "dom0",
        "period_ns",
        "_period_started",
        "period_hooks",
        "total_context_switches",
    )

    def __init__(
        self,
        sim: "Simulator",
        node: "PhysicalNode",
        scheduler_factory: Callable[["VMM"], object],
        period_ns: int = 30 * MSEC,
    ) -> None:
        self.sim = sim
        self.node = node
        node.vmm = self
        self.vms: list[VM] = []
        self.dom0 = None  # set by repro.hypervisor.dom0.Dom0
        self.period_ns = period_ns
        self._period_started = False
        #: Extra callables invoked each scheduling period *after* the
        #: scheduler's own accounting (ATC controller, CS trigger, ...).
        self.period_hooks: list[Callable[[int], None]] = []
        self.total_context_switches = 0
        self.scheduler = scheduler_factory(self)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def add_vm(self, vm: VM) -> None:
        if vm.node is not self.node:
            raise ValueError(f"{vm.name} belongs to node {vm.node.index}, not {self.node.index}")
        self.vms.append(vm)

    def start(self) -> None:
        """Begin periodic scheduler accounting.  Idempotent."""
        if not self._period_started:
            self._period_started = True
            self.sim.post_after(self.period_ns, self._period_tick, cat="vmm.period")

    def _period_tick(self) -> None:
        now = self.sim.now
        if not self.node.crashed:
            self.scheduler.on_period(now)
            for hook in self.period_hooks:
                hook(now)
        # Keep ticking even while crashed so the period phase survives a
        # restart without rescheduling bookkeeping.
        self.sim.post_after(self.period_ns, self._period_tick, cat="vmm.period")

    # ------------------------------------------------------------------
    # Dispatch transactions
    # ------------------------------------------------------------------
    def dispatch(self, pcpu: "PCPU") -> None:
        """Pick the next VCPU for an idle PCPU and start it."""
        if pcpu.current is not None:
            raise RuntimeError(f"dispatch on busy PCPU {pcpu!r}")
        picked = self.scheduler.pick_next(pcpu)
        if picked is None:
            pcpu.idle_since_ns = self.sim.now
            return
        vcpu, slice_ns = picked
        if vcpu.state is not VCPUState.RUNNABLE:
            raise RuntimeError(f"picked {vcpu.name} in state {vcpu.state.name}")
        now = self.sim.now
        # Non-intrusive monitoring signal: how long the VCPU sat runnable.
        wait_ns = now - vcpu.wake_ns
        vcpu.vm.period_queue_wait_ns += wait_ns
        vcpu.vm.period_queue_waits += 1
        if obstrace.enabled:
            obstrace.emit(
                "sched.dispatch",
                now,
                node=self.node.index,
                pcpu=pcpu.index,
                vcpu=vcpu.name,
                vm=vcpu.vm.name,
                slice_ns=slice_ns,
                wait_ns=wait_ns,
            )
        vcpu.state = VCPUState.RUNNING
        vcpu.pcpu = pcpu
        vcpu.rq = pcpu.index
        vcpu.run_start_ns = now
        pcpu.current = vcpu
        pcpu.run_start_ns = now

        runner = vcpu.runner
        sens = getattr(runner, "cache_sensitivity", 1.0)
        switched = pcpu.cache.last_key is not vcpu
        penalty, misses = pcpu.cache.on_dispatch(now, vcpu, sens)
        overhead = 0
        if switched:
            pcpu.context_switches += 1
            self.total_context_switches += 1
            overhead = self.node.params.ctx_switch_ns + penalty
            vcpu.vm.llc_misses += misses
            vcpu.vm.llc_penalty_ns += penalty

        pcpu.slice_end_ev = self.sim.after(
            slice_ns, lambda p=pcpu: self._on_slice_end(p), cat="vmm.slice"
        )
        if runner is not None:
            runner.on_dispatch(now, overhead)

    def _stop_current(self, pcpu: "PCPU", next_state: VCPUState) -> VCPU:
        """Common tail of every deschedule path: accounting + cache."""
        vcpu = pcpu.current
        now = self.sim.now
        if pcpu.slice_end_ev is not None:
            pcpu.slice_end_ev.cancel()
            pcpu.slice_end_ev = None
        ran = now - vcpu.run_start_ns
        vcpu.total_run_ns += ran
        vcpu.period_run_ns += ran
        # What the scheduler *debits* for this dispatch.  Exact accounting
        # charges ran; tick-sampled accounting (CreditParams.tick_accounting)
        # charges per tick boundary crossed — the charged/ran gap is the
        # theft-accounting signal of the adversarial-tenancy experiments.
        charged = self.scheduler.charge_ns(
            vcpu, vcpu.run_start_ns, now, voluntary=(next_state is VCPUState.BLOCKED)
        )
        vcpu.period_charged_ns += charged
        vcpu.vm.cpu_consumed_ns += ran
        vcpu.vm.cpu_debited_ns += charged
        pcpu.busy_ns += ran
        pcpu.cache.on_undispatch(now, vcpu)
        if charged != ran and obstrace.enabled:
            obstrace.emit(
                "sched.theft",
                now,
                node=self.node.index,
                pcpu=pcpu.index,
                vcpu=vcpu.name,
                vm=vcpu.vm.name,
                ran_ns=ran,
                charged_ns=charged,
            )
        if obstrace.enabled:
            obstrace.emit(
                "vcpu.state",
                now,
                node=self.node.index,
                pcpu=pcpu.index,
                vcpu=vcpu.name,
                vm=vcpu.vm.name,
                to_state=next_state.name,
                ran_ns=ran,
            )
        vcpu.state = next_state
        if next_state is VCPUState.RUNNABLE:
            vcpu.wake_ns = now  # run-queue wait starts now
        vcpu.pcpu = None
        pcpu.current = None
        return vcpu

    def _on_slice_end(self, pcpu: "PCPU") -> None:
        vcpu = pcpu.current
        if vcpu is None:  # pragma: no cover - cancelled races are defensive
            return
        pcpu.slice_end_ev = None
        vcpu.runner.on_preempt(self.sim.now)
        self._stop_current(pcpu, VCPUState.RUNNABLE)
        self.scheduler.on_slice_expired(vcpu)
        self.dispatch(pcpu)

    def vcpu_block(self, vcpu: VCPU) -> None:
        """Voluntary block of the currently running VCPU (from its runner)."""
        pcpu = vcpu.pcpu
        if pcpu is None or pcpu.current is not vcpu:
            raise RuntimeError(f"block of non-running {vcpu.name}")
        self._stop_current(pcpu, VCPUState.BLOCKED)
        self.scheduler.on_block(vcpu)
        self.dispatch(pcpu)

    def preempt(self, pcpu: "PCPU") -> None:
        """Involuntarily deschedule whatever runs on ``pcpu`` and re-pick.

        Used for wake-time boost preemption (Credit) and co-scheduling
        (CS).  The descheduled VCPU is returned to the run queues.
        """
        if pcpu.current is None:
            self.dispatch(pcpu)
            return
        vcpu = pcpu.current
        vcpu.runner.on_preempt(self.sim.now)
        self._stop_current(pcpu, VCPUState.RUNNABLE)
        self.scheduler.on_preempted(vcpu)
        self.dispatch(pcpu)

    def on_vcpu_wake(self, vcpu: VCPU) -> None:
        """A blocked VCPU became runnable; let the scheduler place it."""
        self.scheduler.on_wake(vcpu)

    def kick(self, pcpu: "PCPU") -> None:
        """Dispatch ``pcpu`` if idle (used by schedulers after queueing)."""
        if pcpu.current is None:
            self.dispatch(pcpu)

    # ------------------------------------------------------------------
    # VM freezing (repro.faults pauses, repro.migration stop-and-copy)
    # ------------------------------------------------------------------
    def pause_vm(self, vm: VM, redispatch: bool = True) -> None:
        """Freeze ``vm``: deschedule its running VCPUs, withdraw queued
        ones, and latch any wake that arrives while paused (the guest's
        pending timers / deliveries replay on resume).

        Pauses nest: every ``pause_vm`` call must be matched by a
        ``resume_vm`` before the VM unfreezes, so an overlapping fault
        pause and migration stop-and-copy cannot double-resume each
        other's window.

        ``redispatch=False`` is used by :meth:`crash`, which frees every
        PCPU at once and must not re-dispatch in between."""
        vm.pause_depth += 1
        if vm.paused:
            return
        vm.paused = True
        freed: list["PCPU"] = []
        for vcpu in vm.vcpus:
            if vcpu.state is VCPUState.RUNNING:
                pcpu = vcpu.pcpu
                vcpu.runner.on_preempt(self.sim.now)
                self._stop_current(pcpu, VCPUState.BLOCKED)
                vcpu.wake_pending = True
                freed.append(pcpu)
            elif vcpu.state is VCPUState.RUNNABLE:
                self.scheduler.remove_queued(vcpu)
                vcpu.state = VCPUState.BLOCKED
                vcpu.wake_pending = True
        if redispatch:
            for pcpu in freed:
                self.dispatch(pcpu)

    def resume_vm(self, vm: VM) -> None:
        """Release one pause of ``vm``; unfreeze and replay latched wakes
        when the last outstanding pause is released.  A resume of an
        unpaused VM is a no-op."""
        if not vm.paused:
            vm.pause_depth = 0
            return
        vm.pause_depth -= 1
        if vm.pause_depth > 0:
            return
        vm.pause_depth = 0
        self._unfreeze(vm)

    def _unfreeze(self, vm: VM) -> None:
        vm.paused = False
        for vcpu in vm.vcpus:
            if vcpu.wake_pending:
                vcpu.wake_pending = False
                vcpu.wake()

    def crash(self) -> None:
        """Take the whole node down: every VM (dom0 included) is paused
        and the node is flagged crashed, which gates the period tick and
        lets the fabric drop in-flight deliveries.  Idempotent."""
        if self.node.crashed:
            return
        for vm in self.vms:
            self.pause_vm(vm, redispatch=False)
        self.node.crashed = True

    def restart(self) -> None:
        """Bring a crashed node back: clear the flag, then resume every
        VM (replaying wakes latched while down).  A reboot forgets any
        administrative pause that started before the crash, so the pause
        depth is force-cleared.  Idempotent."""
        if not self.node.crashed:
            return
        self.node.crashed = False
        for vm in self.vms:
            if vm.paused:
                vm.pause_depth = 0
                self._unfreeze(vm)

    # ------------------------------------------------------------------
    @property
    def guest_vms(self) -> list[VM]:
        """All VMs except dom0."""
        return [vm for vm in self.vms if not vm.is_dom0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VMM node={self.node.index} vms={len(self.vms)}>"
