"""The dom0 driver domain: netback/netfront packet path and block backend.

This module realizes Figure 4 of the paper.  Sending a message from VM1
(node 1) to VM2 (node 2) takes the 11 steps / 4 scheduling-wait overhead
sources the paper describes:

1.  VM1's VCPU must be scheduled (overhead source 1) — it then places the
    packet in the I/O ring and notifies dom0 via an event channel
    (``Dom0.send_packet`` + ``VCPU.wake``).
2.  dom0 of node 1 must be scheduled (overhead source 2) — its netback
    worker then copies the packet and hands it to the NIC
    (``_NetTxJob`` → :meth:`repro.cluster.network.Fabric.transmit`).
3.  The wire moves the packet to node 2.
4.  dom0 of node 2 must be scheduled (overhead source 3) — its netback
    worker copies the packet into VM2's I/O ring and signals VM2's event
    channel (``_NetRxJob`` → ``VM.deliver``).
5.  VM2's VCPU must be scheduled (overhead source 4) — the guest process
    then consumes the message (handled in :mod:`repro.guest.process`).

Every "must be scheduled" wait is produced by the installed scheduler, so
the dependence of cross-VM synchronization overhead on time-slice length
*emerges* rather than being assumed.

Packets carry timestamps for each hop so the Fig. 4 bench can report the
four overhead sources individually.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.hypervisor.vm import VCPUState, VM
from repro.obs import trace as obstrace
from repro.sim.units import USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.network import Fabric
    from repro.hypervisor.vmm import VMM

__all__ = ["Packet", "Dom0Params", "Dom0"]


class Packet:
    """A guest-to-guest network message, with hop timestamps."""

    __slots__ = (
        "src_vm",
        "src_proc",
        "dst_vm",
        "dst_proc",
        "nbytes",
        "tag",
        "t_send",
        "t_netback_tx",
        "t_arrive",
        "t_delivered",
        "t_consumed",
    )

    def __init__(self, src_vm: VM, src_proc: int, dst_vm: VM, dst_proc: int, nbytes: int, tag: int = 0) -> None:
        self.src_vm = src_vm
        self.src_proc = src_proc
        self.dst_vm = dst_vm
        self.dst_proc = dst_proc
        self.nbytes = nbytes
        self.tag = tag
        self.t_send = -1  # guest put packet in I/O ring
        self.t_netback_tx = -1  # src dom0 finished netback processing
        self.t_arrive = -1  # last bit arrived at dst node
        self.t_delivered = -1  # dst dom0 copied into guest I/O ring
        self.t_consumed = -1  # guest process consumed the message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet {self.src_vm.name}.{self.src_proc}->"
            f"{self.dst_vm.name}.{self.dst_proc} {self.nbytes}B tag={self.tag}>"
        )


@dataclass(frozen=True)
class Dom0Params:
    """Driver-domain cost model."""

    #: dom0 VCPUs (Xen default gives dom0 several; 1 keeps the model tight
    #: and is the common pinned-dom0 deployment for 8-core hosts).
    n_vcpus: int = 1
    #: Netback CPU cost to process one outbound message (copy + NIC kick).
    netback_tx_ns: int = 10 * USEC
    #: Netback CPU cost to process one inbound message (copy to I/O ring).
    netback_rx_ns: int = 10 * USEC
    #: Block-backend CPU cost to submit one disk request.
    blkback_ns: int = 6 * USEC
    #: Scheduler weight of dom0 (slightly favoured, as in practice).
    weight: float = 2.0


class _Dom0Worker:
    """Preemptible job processor bound to one dom0 VCPU.

    Jobs are ``(cost_ns, completion_fn)``; the worker consumes them FIFO,
    surviving slice ends and preemptions with partial progress, and blocks
    its VCPU when the queue drains.
    """

    __slots__ = ("sim", "dom0", "vcpu", "cur_cost", "cur_fn", "_ev", "_started", "_block_ev", "_epoch")
    cache_sensitivity = 0.3  # kernel net path: modest cache footprint

    def __init__(self, sim, dom0: "Dom0", vcpu) -> None:
        self.sim = sim
        self.dom0 = dom0
        self.vcpu = vcpu
        self.cur_cost = 0
        self.cur_fn: Optional[Callable[[], None]] = None
        self._ev = None
        self._started = 0
        self._block_ev = None
        self._epoch = 0  # bumped on every dispatch/preempt (reentrancy guard)

    # Runner protocol ---------------------------------------------------
    def on_dispatch(self, now: int, overhead_ns: int) -> None:
        self._epoch += 1
        if self._block_ev is not None:
            self._block_ev.cancel()
            self._block_ev = None
        if self.cur_fn is not None:
            self.cur_cost += overhead_ns
            self._started = now
            self._ev = self.sim.after(self.cur_cost, self._finish, cat="dom0")
        elif self.dom0.queue:
            self._start_next(overhead_ns)
        else:
            # Dispatched with nothing to do (can happen when work was
            # consumed by a sibling worker); block in a follow-up event.
            self._block_ev = self.sim.after(0, self._idle_block, cat="dom0")

    def on_preempt(self, now: int) -> None:
        self._epoch += 1
        if self._ev is not None:
            self._ev.cancel()
            self._ev = None
            self.cur_cost = max(0, self.cur_cost - (now - self._started))
        if self._block_ev is not None:
            self._block_ev.cancel()
            self._block_ev = None

    # Internals ----------------------------------------------------------
    def _idle_block(self) -> None:
        self._block_ev = None
        if self.vcpu.state is VCPUState.RUNNING and self.cur_fn is None and not self.dom0.queue:
            self.vcpu.block()

    def _start_next(self, overhead_ns: int = 0) -> None:
        cost, fn = self.dom0.queue.popleft()
        self.cur_cost = cost + overhead_ns
        self.cur_fn = fn
        self._started = self.sim.now
        self._ev = self.sim.after(self.cur_cost, self._finish, cat="dom0")

    def _finish(self) -> None:
        self._ev = None
        fn = self.cur_fn
        self.cur_fn = None
        self.cur_cost = 0
        epoch = self._epoch
        fn()  # may wake guests, which can preempt *this* VCPU synchronously
        if self._epoch != epoch:
            # Preempted (and possibly already re-dispatched with the next
            # job) during fn(): the new dispatch owns the worker now.
            return
        if self.vcpu.state is not VCPUState.RUNNING:
            return  # pragma: no cover - preempt without redispatch
        if self.dom0.queue:
            self._start_next()
        else:
            self.vcpu.block()


class Dom0:
    """The driver domain of one node."""

    __slots__ = (
        "sim",
        "vmm",
        "fabric",
        "params",
        "vm",
        "queue",
        "workers",
        "packets_tx",
        "packets_rx",
        "packets_forwarded",
    )

    def __init__(self, sim, vmm: "VMM", fabric: "Fabric", params: Dom0Params | None = None) -> None:
        self.sim = sim
        self.vmm = vmm
        self.fabric = fabric
        self.params = params or Dom0Params()
        self.vm = VM(
            vmm.node,
            self.params.n_vcpus,
            name=f"dom0-{vmm.node.index}",
            is_parallel=False,
            is_dom0=True,
            weight=self.params.weight,
        )
        self.queue: deque[tuple[int, Callable[[], None]]] = deque()
        self.workers = []
        for vcpu in self.vm.vcpus:
            worker = _Dom0Worker(sim, self, vcpu)
            vcpu.runner = worker
            self.workers.append(worker)
        vmm.add_vm(self.vm)
        vmm.dom0 = self
        self.packets_tx = 0
        self.packets_rx = 0
        self.packets_forwarded = 0

    # ------------------------------------------------------------------
    def _enqueue(self, cost_ns: int, fn: Callable[[], None]) -> None:
        self.queue.append((cost_ns, fn))
        # Event-channel notification: wake a blocked dom0 VCPU.
        for vcpu in self.vm.vcpus:
            if vcpu.state is VCPUState.BLOCKED:
                vcpu.wake()
                break

    # ------------------------------------------------------------------
    # Network path (Fig. 4)
    # ------------------------------------------------------------------
    def _emit_hop(self, hop: str, pkt: Packet) -> None:
        obstrace.emit(
            "pkt.hop",
            self.sim.now,
            node=self.vmm.node.index,
            hop=hop,
            src=f"{pkt.src_vm.name}.{pkt.src_proc}",
            dst=f"{pkt.dst_vm.name}.{pkt.dst_proc}",
            nbytes=pkt.nbytes,
            tag=pkt.tag,
        )

    def send_packet(self, pkt: Packet) -> None:
        """Steps 1-2: guest placed ``pkt`` in the I/O ring and notified us."""
        pkt.t_send = self.sim.now
        self.packets_tx += 1
        if obstrace.enabled:
            self._emit_hop("send", pkt)
        self._enqueue(self.params.netback_tx_ns, lambda: self._tx_done(pkt))

    def _tx_done(self, pkt: Packet) -> None:
        """Steps 4-5: netback copied the packet and the NIC sends it."""
        pkt.t_netback_tx = self.sim.now
        if obstrace.enabled:
            self._emit_hop("netback_tx", pkt)
        dst_node = pkt.dst_vm.node
        if dst_node is self.vmm.node:
            # Same-host inter-VM traffic loops through the dom0 bridge.
            self.recv_packet(pkt)
        else:
            dst_dom0 = dst_node.vmm.dom0
            self.fabric.transmit(
                self.vmm.node.index,
                dst_node.index,
                pkt.nbytes,
                lambda: dst_dom0.recv_packet(pkt),
            )

    def recv_packet(self, pkt: Packet) -> None:
        """Step 7 entry: the packet reached this node; netback (rx side)
        must run to copy it into the destination guest's I/O ring."""
        pkt.t_arrive = self.sim.now
        self.packets_rx += 1
        if obstrace.enabled:
            self._emit_hop("arrive", pkt)
        self._enqueue(self.params.netback_rx_ns, lambda: self._rx_done(pkt))

    def _rx_done(self, pkt: Packet) -> None:
        """Steps 8-9: copy into the guest ring and signal its event channel.

        If the destination VM was live-migrated away while the packet was
        in flight (or queued behind netback), dom0 forwards it to the VM's
        current node instead — delivery to a stale residency is
        structurally impossible (sanitizer rule SAN007)."""
        dst_node = pkt.dst_vm.node
        if dst_node is not self.vmm.node:
            self.packets_forwarded += 1
            if obstrace.enabled:
                self._emit_hop("forward", pkt)
            dst_dom0 = dst_node.vmm.dom0
            self.fabric.transmit(
                self.vmm.node.index,
                dst_node.index,
                pkt.nbytes,
                lambda: dst_dom0.recv_packet(pkt),
            )
            return
        pkt.t_delivered = self.sim.now
        if obstrace.enabled:
            self._emit_hop("delivered", pkt)
        pkt.dst_vm.deliver(pkt)

    # ------------------------------------------------------------------
    # Block path
    # ------------------------------------------------------------------
    def submit_disk(self, nbytes: int, done_fn: Callable[[], None]) -> None:
        """Guest block I/O: blkback CPU cost, then the physical disk; the
        completion interrupt is delivered straight to the guest."""
        disk = self.vmm.node.disk
        self._enqueue(self.params.blkback_ns, lambda: disk.submit(nbytes, done_fn))
