"""Virtual machines and virtual CPUs.

A :class:`VCPU` is the schedulable entity: the VMM multiplexes VCPUs onto
PCPUs.  Each VCPU carries a *runner* — the guest-side logic that actually
executes when the VCPU holds a PCPU (a guest process via the 1:1 pinning of
:mod:`repro.guest.kernel`, or a dom0 backend worker).

Runner protocol (duck-typed)::

    runner.on_dispatch(now, overhead_ns)  # VCPU started running; overhead_ns
                                          # is context-switch + LLC refill
                                          # cost to charge to current work
    runner.on_preempt(now)                # VCPU involuntarily stopped
    runner.cache_sensitivity              # float multiplier for LLC model

Runners *voluntarily* stop by calling ``vcpu.block()`` (never from inside
``on_dispatch`` — see the reentrancy note in :mod:`repro.hypervisor.vmm`).

Scheduler bookkeeping fields (``credit``, ``prio``, ``rq`` …) live directly
on the VCPU as plain slots to keep the hot path allocation-free; they are
owned by whichever scheduler is installed on the node.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU, PhysicalNode

__all__ = ["VCPUState", "VCPU", "VM"]


class VCPUState(enum.IntEnum):
    """Lifecycle of a VCPU, mirroring Xen's blocked/runnable/running."""

    BLOCKED = 0
    RUNNABLE = 1
    RUNNING = 2


class VCPU:
    """One virtual CPU of a VM."""

    __slots__ = (
        "vm",
        "index",
        "state",
        "runner",
        "pcpu",
        "rq",
        "run_start_ns",
        "total_run_ns",
        "period_run_ns",
        "period_charged_ns",
        "period_wakes",
        "wake_ns",
        "wake_pending",
        # scheduler-owned fields
        "credit",
        "prio",
        "queued",
    )

    def __init__(self, vm: "VM", index: int) -> None:
        self.vm = vm
        self.index = index
        self.state = VCPUState.BLOCKED
        self.runner = None  # attached by the guest layer
        self.pcpu: Optional["PCPU"] = None
        self.rq: int = index % len(vm.node.pcpus)  # home run queue
        self.run_start_ns = 0
        self.total_run_ns = 0
        self.period_run_ns = 0
        #: What the scheduler actually *debits* this period.  Equal to
        #: ``period_run_ns`` under exact accounting; under Xen-faithful
        #: tick-sampled accounting (``CreditParams.tick_accounting``) a
        #: dispatch is charged per accounting tick it spans, which is the
        #: window the yield-before-tick theft attack games.
        self.period_charged_ns = 0
        self.period_wakes = 0
        self.wake_ns = 0
        #: A wake arrived while the VM was paused (fault injection); the
        #: VMM replays it on resume.
        self.wake_pending = False
        self.credit = 0.0
        self.prio = 1  # UNDER
        self.queued = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"{self.vm.name}.v{self.index}"

    def wake(self) -> None:
        """Make a blocked VCPU runnable (event-channel notification,
        timer expiry, message arrival...).  No-op unless BLOCKED.

        While the VM is paused (fault injection / node crash) the wake is
        latched instead of delivered; the VMM replays it on resume."""
        if self.vm.paused:
            self.wake_pending = True
            return
        if self.state is VCPUState.BLOCKED:
            self.state = VCPUState.RUNNABLE
            self.period_wakes += 1
            self.wake_ns = self.vm.node.sim.now
            self.vm.node.vmm.on_vcpu_wake(self)

    def block(self) -> None:
        """Voluntarily yield the PCPU and sleep until woken.

        Must be called by the runner *while RUNNING*, from its own event
        (never from inside ``on_dispatch``).
        """
        if self.state is not VCPUState.RUNNING:
            raise RuntimeError(f"{self.name}: block() while {self.state.name}")
        self.vm.node.vmm.vcpu_block(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VCPU {self.name} {self.state.name}>"


class VM:
    """A virtual machine: a set of VCPUs on one physical node.

    ``is_parallel`` is the VM-type input of the paper's Algorithm 2 (the
    administrator / cloud control plane knows which VMs belong to virtual
    clusters running parallel applications).
    """

    __slots__ = (
        "vmid",
        "name",
        "node",
        "vcpus",
        "is_parallel",
        "is_dom0",
        "weight",
        "cap",
        "slice_ns",
        "admin_slice_ns",
        "paused",
        "pause_depth",
        "kernel",
        "llc_misses",
        "llc_penalty_ns",
        "period_io_events",
        "total_io_events",
        "period_queue_wait_ns",
        "period_queue_waits",
        # theft accounting (repro.workloads.attacks / DESIGN.md §15)
        "cpu_consumed_ns",
        "cpu_debited_ns",
        "boost_preempts_inflicted",
        "boost_preempts_suffered",
        "boost_window_idx",
        "boost_window_wakes",
    )

    _next_id = 0

    def __init__(
        self,
        node: "PhysicalNode",
        n_vcpus: int,
        name: str | None = None,
        is_parallel: bool = False,
        is_dom0: bool = False,
        weight: float = 1.0,
    ) -> None:
        self.vmid = VM._next_id
        VM._next_id += 1
        self.name = name or f"vm{self.vmid}"
        self.node = node
        self.is_parallel = is_parallel
        self.is_dom0 = is_dom0
        self.weight = weight
        #: Per-VM CPU cap as a fraction of *host* capacity (Xen's
        #: non-work-conserving ``cap``): once the VM's VCPUs have run
        #: ``cap * period * n_pcpus`` ns within a period they are parked
        #: until the next accounting boundary, even if PCPUs sit idle.
        #: ``None`` (the default) = uncapped; set through the scheduler's
        #: cluster-scope hook (``set_vm_cap``), never written mid-period.
        self.cap: Optional[float] = None
        self.vcpus = [VCPU(self, i) for i in range(n_vcpus)]
        #: Current scheduler time slice for this VM (ns); set by the
        #: scheduler / ATC controller.  ``None`` means scheduler default.
        self.slice_ns: Optional[int] = None
        #: Administrator-specified slice for non-parallel VMs (Algorithm 2's
        #: flexibility interface); ``None`` = use VMM default.
        self.admin_slice_ns: Optional[int] = None
        #: Pause flag (VMM.pause_vm / resume_vm): while set, no VCPU of
        #: this VM runs and wakes are latched, not delivered.  Pauses
        #: nest (fault injection and migration stop-and-copy can overlap):
        #: ``pause_depth`` counts the outstanding pause_vm calls and the
        #: VM only unfreezes when the count returns to zero.
        self.paused = False
        self.pause_depth = 0
        self.kernel = None  # attached by repro.guest.kernel.GuestKernel
        self.llc_misses = 0
        self.llc_penalty_ns = 0
        self.period_io_events = 0
        self.total_io_events = 0
        #: Run-queue wait accounting (RUNNABLE -> RUNNING latency), kept by
        #: the VMM.  This is the *non-intrusive* synchronization-pressure
        #: signal of the paper's future work: observable without guest
        #: instrumentation.
        self.period_queue_wait_ns = 0
        self.period_queue_waits = 0
        #: Theft accounting: CPU time this VM's VCPUs actually consumed vs
        #: what the scheduler debited against their credits.  Identical
        #: under exact accounting; a gap (consumed > debited) quantifies
        #: yield-before-tick theft under tick-sampled accounting.
        self.cpu_consumed_ns = 0
        self.cpu_debited_ns = 0
        #: BOOST-wake preemptions this VM's wakes inflicted on other VMs'
        #: running VCPUs / its own running VCPUs suffered (tickle-abuse
        #: pressure, both directions).
        self.boost_preempts_inflicted = 0
        self.boost_preempts_suffered = 0
        #: BOOST rate-limit window bookkeeping (scheduler-owned; only
        #: touched when ``CreditParams.boost_rate_limit`` > 0).
        self.boost_window_idx = -1
        self.boost_window_wakes = 0

    # ------------------------------------------------------------------
    def count_io_event(self, n: int = 1) -> None:
        """DSS observes per-VM I/O behaviour through this counter."""
        self.period_io_events += n
        self.total_io_events += n

    def drain_period_io(self) -> int:
        n = self.period_io_events
        self.period_io_events = 0
        return n

    def drain_period_queue_wait(self) -> tuple[int, int]:
        """(total run-queue wait ns, dispatch count) this period; resets."""
        stats = (self.period_queue_wait_ns, self.period_queue_waits)
        self.period_queue_wait_ns = 0
        self.period_queue_waits = 0
        return stats

    def deliver(self, packet) -> None:
        """Final step of the Fig. 4 receive path: dom0 copied the packet to
        this VM's I/O ring and signalled its event channel."""
        if self.kernel is None:
            raise RuntimeError(f"{self.name}: packet delivered but no guest kernel")
        self.count_io_event()  # netfront receive is I/O activity (DSS input)
        self.kernel.deliver(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "dom0" if self.is_dom0 else ("par" if self.is_parallel else "np")
        return f"<VM {self.name} {kind} vcpus={len(self.vcpus)} node={self.node.index}>"
