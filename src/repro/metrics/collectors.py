"""Aggregation of the instrumentation scattered through the simulation.

Most counters live on the objects that own them (guest kernels hold spin
latency, PCPUs hold context switches and LLC misses, apps hold round
times).  These helpers expose them through
:class:`~repro.obs.registry.MetricsRegistry` callback gauges — each stat
name is bound to a zero-argument reader evaluated at snapshot time — and
roll them up per VM / node / world for reporting: the analog of reading
Xenoprof and the paper's in-kernel monitor after a run.

``vm_stats`` / ``node_stats`` / ``cluster_stats`` keep their historical
plain-dict shapes (they are simply registry snapshots), so everything
downstream — ``experiments/reporting.py``, the benches, cached sweep
results — is unchanged.  Callers who want live, queryable metrics use the
``*_registry`` builders directly (``CloudWorld.metrics`` merges them all
under ``vm.<name>.`` / ``node.<i>.`` / ``cluster.`` prefixes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.hypervisor.vm import VM

__all__ = [
    "vm_registry",
    "node_registry",
    "cluster_registry",
    "dfrs_registry",
    "migration_registry",
    "service_registry",
    "world_registry",
    "vm_stats",
    "node_stats",
    "cluster_stats",
]


def vm_registry(vm: "VM") -> MetricsRegistry:
    """Per-VM metrics: spin latency, LLC misses, CPU time, I/O events."""
    reg = MetricsRegistry()
    k = vm.kernel
    reg.register("vm", lambda: vm.name)
    reg.register("is_parallel", lambda: vm.is_parallel)
    reg.register("cpu_ns", lambda: sum(v.total_run_ns for v in vm.vcpus))
    reg.register("llc_misses", lambda: vm.llc_misses)
    reg.register("llc_penalty_ns", lambda: vm.llc_penalty_ns)
    reg.register("io_events", lambda: vm.total_io_events)
    reg.register("spin_total_ns", lambda: k.total_spin_ns if k else 0)
    reg.register("spin_waits", lambda: k.total_spin_count if k else 0)
    reg.register("avg_spin_ns", lambda: k.avg_spin_ns if k else 0.0)
    reg.register("spin_by_kind", lambda: dict(k.spin_by_kind) if k else {})
    # Theft accounting (repro.workloads.attacks / DESIGN.md §15): consumed
    # vs debited diverge only under tick-sampled accounting.
    reg.register("cpu_consumed_ns", lambda: vm.cpu_consumed_ns)
    reg.register("cpu_debited_ns", lambda: vm.cpu_debited_ns)
    reg.register("boost_preempts_inflicted", lambda: vm.boost_preempts_inflicted)
    reg.register("boost_preempts_suffered", lambda: vm.boost_preempts_suffered)
    return reg


def node_registry(node) -> MetricsRegistry:
    """Per-node metrics: context switches, busy time, cache totals."""
    reg = MetricsRegistry()
    reg.register("node", lambda: node.index)
    reg.register(
        "context_switches", lambda: sum(p.context_switches for p in node.pcpus)
    )
    reg.register("busy_ns", lambda: sum(p.busy_ns for p in node.pcpus))
    reg.register(
        "llc_misses", lambda: sum(p.cache.total_miss_count for p in node.pcpus)
    )
    reg.register(
        "llc_penalty_ns", lambda: sum(p.cache.total_penalty_ns for p in node.pcpus)
    )
    reg.register("disk_requests", lambda: node.disk.requests)
    reg.register("disk_bytes", lambda: node.disk.bytes_moved)
    return reg


def cluster_registry(cluster: "Cluster") -> MetricsRegistry:
    """Whole-cluster rollup, including fabric traffic."""
    reg = MetricsRegistry()
    reg.register("n_nodes", lambda: len(cluster.nodes))
    reg.register(
        "context_switches",
        lambda: sum(p.context_switches for n in cluster.nodes for p in n.pcpus),
    )
    reg.register(
        "busy_ns", lambda: sum(p.busy_ns for n in cluster.nodes for p in n.pcpus)
    )
    reg.register(
        "llc_misses",
        lambda: sum(p.cache.total_miss_count for n in cluster.nodes for p in n.pcpus),
    )
    reg.register("messages_sent", lambda: cluster.fabric.messages_sent)
    reg.register("bytes_sent", lambda: cluster.fabric.bytes_sent)
    reg.register("nodes", lambda: [node_stats(n) for n in cluster.nodes])
    return reg


def service_registry(service) -> MetricsRegistry:
    """Always-on service rollup (repro.service): admission counters, the
    wait queue, and the completed-tenant wait/slowdown aggregates."""
    reg = MetricsRegistry()
    reg.register("submitted", lambda: service.submitted)
    reg.register("admitted", lambda: service.admitted)
    reg.register("rejected", lambda: service.rejected)
    reg.register("departed", lambda: service.departed)
    reg.register("queued_now", lambda: len(service.queue))
    reg.register("queue_peak", lambda: service.queue_peak)
    reg.register("running_now", lambda: len(service.running))
    reg.register("running_vms", lambda: sum(t.n_vms for t in service.running.values()))
    reg.register("rebalancer_kicks", lambda: service.rebalancer_kicks)
    reg.register(
        "wait_mean_ns",
        lambda: (
            sum(w) // len(w)
            if (w := [t.wait_ns for t in service.tenants if t.wait_ns is not None])
            else 0
        ),
    )
    reg.register(
        "slowdown_mean",
        lambda: (
            sum(s) / len(s)
            if (s := [t.slowdown for t in service.tenants if t.slowdown is not None])
            else 0.0
        ),
    )
    # Admitted-but-not-departed tenants are censored observations: their
    # slowdown is unknown at snapshot time, not zero.  Report the count so
    # the mean above can be read as conditional-on-completion.
    reg.register(
        "slowdown_censored",
        lambda: sum(
            1
            for t in service.tenants
            if t.admit_ns is not None and t.depart_ns is None
        ),
    )
    return reg


def dfrs_registry(controller) -> MetricsRegistry:
    """DFRS rollup (repro.dfrs): solve/publish counters, the last solve's
    yield summary, and the SAN009 self-check tally."""
    reg = MetricsRegistry()
    reg.register("solve_every", lambda: controller.cfg.solve_every)
    reg.register("solves", lambda: controller.solves)
    reg.register("caps_applied", lambda: controller.caps_applied)
    reg.register("weights_applied", lambda: controller.weights_applied)
    reg.register("moves_requested", lambda: controller.moves_requested)
    reg.register("last_min_yield", lambda: controller.last_min_yield)
    reg.register("last_mean_yield", lambda: controller.last_mean_yield)
    reg.register("violations", lambda: len(controller.violations))
    return reg


def migration_registry(engine) -> MetricsRegistry:
    """Live-migration rollup (repro.migration).  ``downtime_ns`` is the
    per-VM accumulated stop-and-copy blackout, conserved against the
    engine's recorded pause intervals."""
    reg = MetricsRegistry()
    reg.register("started", lambda: engine.started)
    reg.register("completed", lambda: engine.completed)
    reg.register("aborted", lambda: engine.aborted)
    reg.register("in_flight", lambda: len(engine.active))
    reg.register("precopy_rounds", lambda: engine.precopy_rounds)
    reg.register("bytes_copied", lambda: engine.bytes_copied)
    reg.register(
        "downtime_total_ns", lambda: sum(engine.downtime_by_vm.values())
    )
    reg.register(
        "downtime_ns",
        lambda: {k: engine.downtime_by_vm[k] for k in sorted(engine.downtime_by_vm)},
    )
    return reg


def world_registry(world) -> MetricsRegistry:
    """One registry for a whole :class:`~repro.experiments.harness.CloudWorld`:
    cluster metrics under ``cluster.``, each node under ``node.<i>.``, each
    guest VM under ``vm.<name>.``, and — when the world has a migration
    engine — its rollup under ``migration.``.  Values are live (callback
    gauges), so the registry can be built once and snapshotted at any time."""
    reg = MetricsRegistry()
    reg.merge(cluster_registry(world.cluster), prefix="cluster.")
    for node in world.cluster.nodes:
        reg.merge(node_registry(node), prefix=f"node.{node.index}.")
    for vm in world.vms:
        reg.merge(vm_registry(vm), prefix=f"vm.{vm.name}.")
    engine = getattr(world, "migration_engine", None)
    if engine is not None:
        reg.merge(migration_registry(engine), prefix="migration.")
    service = getattr(world, "service", None)
    if service is not None:
        reg.merge(service_registry(service), prefix="service.")
    dfrs = getattr(world, "dfrs", None)
    if dfrs is not None:
        reg.merge(dfrs_registry(dfrs), prefix="dfrs.")
    return reg


# ----------------------------------------------------------------------
# Historical plain-dict views (registry snapshots)
# ----------------------------------------------------------------------
def vm_stats(vm: "VM") -> dict:
    """Per-VM counters as a plain dict (a ``vm_registry`` snapshot)."""
    return vm_registry(vm).snapshot()


def node_stats(node) -> dict:
    """Per-node counters as a plain dict (a ``node_registry`` snapshot)."""
    return node_registry(node).snapshot()


def cluster_stats(cluster: "Cluster") -> dict:
    """Whole-cluster rollup as a plain dict (a ``cluster_registry`` snapshot)."""
    return cluster_registry(cluster).snapshot()
