"""Aggregation of the instrumentation scattered through the simulation.

Most counters live on the objects that own them (guest kernels hold spin
latency, PCPUs hold context switches and LLC misses, apps hold round
times).  These helpers roll them up per VM / node / world for reporting —
the analog of reading Xenoprof and the paper's in-kernel monitor after a
run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.topology import Cluster
    from repro.hypervisor.vm import VM

__all__ = ["vm_stats", "node_stats", "cluster_stats"]


def vm_stats(vm: "VM") -> dict:
    """Per-VM counters: spin latency, LLC misses, CPU time, I/O events."""
    k = vm.kernel
    return {
        "vm": vm.name,
        "is_parallel": vm.is_parallel,
        "cpu_ns": sum(v.total_run_ns for v in vm.vcpus),
        "llc_misses": vm.llc_misses,
        "llc_penalty_ns": vm.llc_penalty_ns,
        "io_events": vm.total_io_events,
        "spin_total_ns": k.total_spin_ns if k else 0,
        "spin_waits": k.total_spin_count if k else 0,
        "avg_spin_ns": k.avg_spin_ns if k else 0.0,
        "spin_by_kind": dict(k.spin_by_kind) if k else {},
    }


def node_stats(node) -> dict:
    """Per-node counters: context switches, busy time, cache totals."""
    return {
        "node": node.index,
        "context_switches": sum(p.context_switches for p in node.pcpus),
        "busy_ns": sum(p.busy_ns for p in node.pcpus),
        "llc_misses": sum(p.cache.total_miss_count for p in node.pcpus),
        "llc_penalty_ns": sum(p.cache.total_penalty_ns for p in node.pcpus),
        "disk_requests": node.disk.requests,
        "disk_bytes": node.disk.bytes_moved,
    }


def cluster_stats(cluster: "Cluster") -> dict:
    """Whole-cluster rollup, including fabric traffic."""
    nodes = [node_stats(n) for n in cluster.nodes]
    return {
        "n_nodes": len(cluster.nodes),
        "context_switches": sum(n["context_switches"] for n in nodes),
        "busy_ns": sum(n["busy_ns"] for n in nodes),
        "llc_misses": sum(n["llc_misses"] for n in nodes),
        "messages_sent": cluster.fabric.messages_sent,
        "bytes_sent": cluster.fabric.bytes_sent,
        "nodes": nodes,
    }
