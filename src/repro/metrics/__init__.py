"""Metric collection and summaries (normalized execution time, Pearson)."""

from repro.metrics.collectors import cluster_stats, node_stats, vm_stats
from repro.metrics.summary import geomean, mean, normalize_map, normalized, pearson

__all__ = [
    "cluster_stats",
    "node_stats",
    "vm_stats",
    "geomean",
    "mean",
    "normalize_map",
    "normalized",
    "pearson",
]
