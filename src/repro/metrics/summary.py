"""Statistical summaries used by the evaluation.

The paper's headline metric is *normalized execution time*: the ratio of
an approach's execution time to the Credit (CR) baseline's.  It also
reports the Pearson correlation between spinlock latency and execution
time across the slice sweep (Section II-B: "all pearson correlation
coefficients are larger than 0.9").
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["mean", "normalized", "normalize_map", "pearson", "geomean"]


def mean(xs: Sequence[float]) -> float:
    """Arithmetic mean; NaN for empty input."""
    if not xs:
        return float("nan")
    return sum(xs) / len(xs)


def geomean(xs: Sequence[float]) -> float:
    """Geometric mean; NaN for empty input, requires positives."""
    if not xs:
        return float("nan")
    if any(x <= 0 for x in xs):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


def normalized(value: float, baseline: float) -> float:
    """value / baseline, the paper's normalized execution time."""
    if baseline == 0:
        raise ZeroDivisionError("baseline execution time is zero")
    return value / baseline


def normalize_map(values: Mapping[str, float], baseline_key: str = "CR") -> dict[str, float]:
    """Normalize a {approach: time} map by the named baseline entry."""
    if baseline_key not in values:
        raise KeyError(f"baseline {baseline_key!r} missing from {sorted(values)}")
    base = values[baseline_key]
    # Sorted keys: the reduction order (and output ordering) must not
    # depend on the caller's dict insertion order.
    return {k: normalized(values[k], base) for k in sorted(values)}


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length samples."""
    n = len(xs)
    if n != len(ys):
        raise ValueError(f"length mismatch: {n} vs {len(ys)}")
    if n < 2:
        raise ValueError("need at least two points")
    mx = mean(xs)
    my = mean(ys)
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    denom = math.sqrt(sxx * syy)
    if denom == 0:
        raise ValueError("zero variance input")
    return sxy / denom
