"""Runtime simulation sanitizer: opt-in invariant checks for the DES core.

The sanitizer installs *read-only* hooks on a wired world — the
simulator's :attr:`~repro.sim.engine.Simulator.trace` callback, wrappers
around each node scheduler's decision entry points, and a VMM period
hook — and asserts the invariants that bit-reproducible scheduling
simulations depend on:

* **SAN001 — event-time monotonicity**: the event loop never executes a
  callback at a time earlier than the previous one.
* **SAN002 — VCPU state machine**: every scheduler decision point sees a
  VCPU in the legal state (``on_wake``/``on_slice_expired``/
  ``on_preempted`` and picked VCPUs must be RUNNABLE; ``on_block`` must
  see BLOCKED).
* **SAN003 — credit conservation**: after each accounting period of a
  Credit-family scheduler, every VCPU's credit equals the clamped
  ``old + weight-share - consumed`` recomputed independently from the
  pre-period snapshot, and active shares sum to the period capacity.
* **SAN004 — slice sanity**: every dispatched slice is positive, and the
  ATC controller keeps parallel-VM slices within
  ``[min_threshold, default]``.
* **SAN005 — latency sanity**: spin/queue-wait latencies fed to
  Algorithm 1 are never negative.
* **SAN006 — crashed-node quiescence**: no scheduler decision runs on a
  node that :mod:`repro.faults` crashed — a crashed node must be fully
  quiet until its restart (any activity means a fault hook leaked an
  event onto a dead node).
* **SAN007 — single residency**: after a live-migration handoff
  (:mod:`repro.migration`), no scheduler decision touches a VCPU whose
  VM now lives on another node (the source must forget the VM
  atomically), and the migrating VM must stay fully frozen — paused,
  every VCPU BLOCKED — for the whole stop-and-copy window (the engine
  reports window breaks through :meth:`SimSanitizer.record`).
* **SAN008 — tie-group commutativity** (opt-in, emitted by
  :class:`repro.analysis.races.TieRaceTracker` rather than the hooks
  here): two causally unrelated events at the same timestamp and engine
  phase whose attribute read/write sets do not commute (W–W or R–W
  overlap) — the outcome depends on insertion order, which the model
  never specifies.  Suspects are confirmed (or cleared) by the
  tie-permutation differential in :mod:`repro.analysis.races`.
* **SAN009 — DFRS allocation integrity** (emitted by
  :class:`repro.dfrs.controller.DFRSController` through
  :meth:`SimSanitizer.record`): the per-VM caps/weights a host scheduler
  actually applied must match the controller's last published solve, and
  no host's published caps may sum above its capacity.

Because the hooks only read state, a sanitized run is bit-identical to
an unsanitized one.  Violations are collected as structured
:class:`Violation` records; :meth:`SimSanitizer.check` raises
:class:`SanitizerViolationError`, which the sweep runner converts into a
structured failure record (``error["violations"]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.hypervisor.vm import VCPUState
from repro.schedulers.atc_sched import ATCScheduler
from repro.schedulers.credit import CreditScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VCPU
    from repro.hypervisor.vmm import VMM
    from repro.sim.engine import Simulator

__all__ = ["Violation", "SanitizerViolationError", "SimSanitizer"]

#: Relative tolerance for float credit comparisons.
_CREDIT_EPS = 1e-6


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to locate the bug."""

    code: str
    time_ns: int
    message: str
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "time_ns": self.time_ns,
            "message": self.message,
            "context": dict(self.context),
        }

    def format(self) -> str:
        return f"{self.code} @t={self.time_ns}: {self.message}"


class SanitizerViolationError(RuntimeError):
    """Raised at the end of a sanitized run that recorded violations."""

    def __init__(self, violations: Sequence[Violation]) -> None:
        self.violations = list(violations)
        first = self.violations[0].format() if self.violations else "?"
        super().__init__(
            f"{len(self.violations)} simulation invariant violation(s); first: {first}"
        )


class SimSanitizer:
    """Install invariant hooks on a simulator + its VMMs.

    All hooks are read-only: the sanitized run processes the same events
    in the same order with the same results as an unsanitized one.
    ``max_violations`` bounds memory on a badly broken run; further
    violations are counted but not stored.
    """

    MONOTONIC = "SAN001"
    STATE = "SAN002"
    CREDIT = "SAN003"
    SLICE = "SAN004"
    LATENCY = "SAN005"
    CRASHED = "SAN006"
    MIGRATION = "SAN007"
    #: Emitted by :class:`repro.analysis.races.TieRaceTracker`, not by the
    #: hooks below: a non-commuting pair of same-timestamp events.
    RACE = "SAN008"
    #: Emitted by :class:`repro.dfrs.controller.DFRSController`: the
    #: caps/weights a host applied do not match the last published solve,
    #: or a host's published caps sum above its capacity.
    DFRS = "SAN009"

    def __init__(
        self,
        sim: "Simulator",
        vmms: Sequence["VMM"],
        max_violations: int = 1000,
    ) -> None:
        self.sim = sim
        self.violations: list[Violation] = []
        self.total_violations = 0
        self.max_violations = max_violations
        self._last_event_ns = -1
        self._install_trace(sim)
        for vmm in vmms:
            self._install_vmm(vmm)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, code: str, message: str, **context) -> None:
        self.total_violations += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(
                Violation(code=code, time_ns=self.sim.now, message=message, context=context)
            )

    def check(self) -> None:
        """Raise :class:`SanitizerViolationError` if anything was recorded."""
        if self.violations:
            raise SanitizerViolationError(self.violations)

    # ------------------------------------------------------------------
    # SAN001: event-time monotonicity (Simulator.trace hook)
    # ------------------------------------------------------------------
    def _install_trace(self, sim: "Simulator") -> None:
        prev = sim.trace

        def trace(time_ns: int, fn) -> None:
            if prev is not None:
                prev(time_ns, fn)
            if time_ns < self._last_event_ns:
                self.record(
                    self.MONOTONIC,
                    f"event executed at t={time_ns} after t={self._last_event_ns}",
                    event_time_ns=time_ns,
                    previous_time_ns=self._last_event_ns,
                )
            else:
                self._last_event_ns = time_ns

        sim.trace = trace

    # ------------------------------------------------------------------
    # Scheduler decision-point hooks (SAN002 / SAN004 / SAN003)
    # ------------------------------------------------------------------
    def _expect_state(self, where: str, vcpu: "VCPU", expected: VCPUState) -> None:
        if vcpu.state is not expected:
            self.record(
                self.STATE,
                f"{where}: {vcpu.name} is {vcpu.state.name}, expected {expected.name}",
                vcpu=vcpu.name,
                state=vcpu.state.name,
                expected=expected.name,
                where=where,
            )

    def _expect_alive(self, where: str, vmm: "VMM") -> None:
        if vmm.node.crashed:
            self.record(
                self.CRASHED,
                f"{where}: scheduler decision on crashed node {vmm.node.index}",
                node=vmm.node.index,
                where=where,
            )

    def _expect_resident(self, where: str, vcpu: "VCPU", vmm: "VMM") -> None:
        if vcpu.vm.node is not vmm.node:
            self.record(
                self.MIGRATION,
                f"{where}: {vcpu.name} scheduled on node {vmm.node.index} but its "
                f"VM resides on node {vcpu.vm.node.index} (stale residency after "
                f"migration handoff)",
                vcpu=vcpu.name,
                node=vmm.node.index,
                resident_node=vcpu.vm.node.index,
                where=where,
            )

    def _install_vmm(self, vmm: "VMM") -> None:
        sched = vmm.scheduler

        orig_wake = sched.on_wake
        orig_pick = sched.pick_next
        orig_expired = sched.on_slice_expired
        orig_preempted = sched.on_preempted
        orig_block = sched.on_block

        def on_wake(vcpu: "VCPU") -> None:
            self._expect_alive("on_wake", vmm)
            self._expect_resident("on_wake", vcpu, vmm)
            self._expect_state("on_wake", vcpu, VCPUState.RUNNABLE)
            orig_wake(vcpu)

        def pick_next(pcpu):
            self._expect_alive("pick_next", vmm)
            picked = orig_pick(pcpu)
            if picked is not None:
                vcpu, slice_ns = picked
                self._expect_resident("pick_next", vcpu, vmm)
                self._expect_state("pick_next", vcpu, VCPUState.RUNNABLE)
                if slice_ns <= 0:
                    self.record(
                        self.SLICE,
                        f"pick_next returned non-positive slice {slice_ns} ns "
                        f"for {vcpu.name}",
                        vcpu=vcpu.name,
                        slice_ns=slice_ns,
                    )
            return picked

        def on_slice_expired(vcpu: "VCPU") -> None:
            self._expect_alive("on_slice_expired", vmm)
            self._expect_resident("on_slice_expired", vcpu, vmm)
            self._expect_state("on_slice_expired", vcpu, VCPUState.RUNNABLE)
            orig_expired(vcpu)

        def on_preempted(vcpu: "VCPU") -> None:
            self._expect_alive("on_preempted", vmm)
            self._expect_resident("on_preempted", vcpu, vmm)
            self._expect_state("on_preempted", vcpu, VCPUState.RUNNABLE)
            orig_preempted(vcpu)

        def on_block(vcpu: "VCPU") -> None:
            self._expect_alive("on_block", vmm)
            self._expect_resident("on_block", vcpu, vmm)
            self._expect_state("on_block", vcpu, VCPUState.BLOCKED)
            orig_block(vcpu)

        sched.on_wake = on_wake
        sched.pick_next = pick_next
        sched.on_slice_expired = on_slice_expired
        sched.on_preempted = on_preempted
        sched.on_block = on_block

        if isinstance(sched, CreditScheduler):
            orig_period = sched.on_period

            def on_period(now: int) -> None:
                snapshot = self._credit_snapshot(vmm)
                orig_period(now)
                self._check_credit(vmm, sched, snapshot)

            sched.on_period = on_period

        if isinstance(sched, ATCScheduler):
            # Appended after the ATC controller's own hook (installed at
            # scheduler construction), so it sees the applied slices.
            vmm.period_hooks.append(lambda now, vmm=vmm, sched=sched: self._check_atc(vmm, sched))

    # ------------------------------------------------------------------
    # SAN003: per-period credit conservation
    # ------------------------------------------------------------------
    @staticmethod
    def _credit_snapshot(vmm: "VMM"):
        """(vcpu, credit, charged_ns, active) before accounting runs.

        The debit is what the scheduler *charged* (== ran under exact
        accounting; tick-sampled under ``CreditParams.tick_accounting``);
        activity is still judged on actual consumption."""
        return [
            (v, v.credit, v.period_charged_ns, v.state.value != 0 or v.period_run_ns > 0)
            for vm in vmm.vms
            for v in vm.vcpus
        ]

    def _check_credit(self, vmm: "VMM", sched: CreditScheduler, snapshot) -> None:
        capacity = vmm.period_ns * len(vmm.node.pcpus)
        total_w = sum(v.vm.weight for v, _, _, active in snapshot if active) or 1.0
        cap = sched.params.credit_cap_periods * capacity
        distributed = 0.0
        any_active = False
        for v, old_credit, consumed, active in snapshot:
            share = capacity * (v.vm.weight / total_w) if active else 0.0
            distributed += share
            any_active = any_active or active
            expected = min(cap, max(-cap, old_credit + share - consumed))
            if abs(v.credit - expected) > _CREDIT_EPS * max(1.0, abs(expected)):
                self.record(
                    self.CREDIT,
                    f"credit accounting drift on {v.name}: "
                    f"got {v.credit:.3f}, expected {expected:.3f}",
                    vcpu=v.name,
                    credit=v.credit,
                    expected=expected,
                    share=share,
                    consumed_ns=consumed,
                )
        if any_active and abs(distributed - capacity) > _CREDIT_EPS * capacity:
            self.record(
                self.CREDIT,
                f"credit shares not conserved: distributed {distributed:.3f} ns "
                f"of {capacity} ns capacity",
                distributed=distributed,
                capacity=capacity,
            )

    # ------------------------------------------------------------------
    # SAN004 / SAN005: ATC slice and latency bounds
    # ------------------------------------------------------------------
    def _check_atc(self, vmm: "VMM", sched: ATCScheduler) -> None:
        cfg = sched.controller.cfg
        for vm in vmm.guest_vms:
            if vm.is_parallel and vm.slice_ns is not None:
                if not (cfg.min_threshold_ns <= vm.slice_ns <= cfg.default_ns):
                    self.record(
                        self.SLICE,
                        f"ATC applied slice {vm.slice_ns} ns to {vm.name}, outside "
                        f"[{cfg.min_threshold_ns}, {cfg.default_ns}]",
                        vm=vm.name,
                        slice_ns=vm.slice_ns,
                        min_threshold_ns=cfg.min_threshold_ns,
                        default_ns=cfg.default_ns,
                    )
        for vmid, st in sched.controller.monitor.states.items():
            if st.latencies and st.latencies[-1] < 0:
                self.record(
                    self.LATENCY,
                    f"negative spin latency {st.latencies[-1]} ns observed for "
                    f"vmid {vmid}",
                    vmid=vmid,
                    latency_ns=st.latencies[-1],
                )
