"""Rule family RPR01x: interpreter-address and hash-order dependence.

``id()`` values and ``set`` iteration order both depend on interpreter
object addresses, which vary run to run (and across processes of a
parallel sweep).  Feeding either into a scheduling or ordering decision
breaks bit-reproducibility in exactly the way that is invisible in
aggregate results.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Finding, Rule
from repro.analysis.rules.common import SetBindings

__all__ = ["IdOrderingRule", "SetIterationRule", "SetPopRule"]


class IdOrderingRule(Rule):
    """RPR010: ``id()`` used as a key or ordering input."""

    code = "RPR010"
    summary = (
        "id()-based keying/ordering depends on interpreter object addresses; "
        "key on a stable identifier (vmid, vcpu index) instead"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                yield ctx.finding(
                    self.code,
                    "id() returns an interpreter address, which varies across "
                    "runs and processes; key on a stable identifier instead",
                    node,
                )


class SetIterationRule(Rule):
    """RPR011: iterating an unordered set without ``sorted(...)``."""

    code = "RPR011"
    summary = (
        "iteration over an unordered set; wrap in sorted(...) or use an "
        "insertion-ordered structure (dict keys, list)"
    )

    _MESSAGE = (
        "set iteration order is hash/address-dependent; wrap in sorted(...) "
        "or keep an insertion-ordered dict/list"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        bindings = SetBindings(tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.For):
                if bindings.is_set(node.iter):
                    yield ctx.finding(self.code, self._MESSAGE, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if bindings.is_set(gen.iter):
                        yield ctx.finding(self.code, self._MESSAGE, gen.iter)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                # Order-capturing conversions of a set expression.
                if node.func.id in ("list", "tuple", "enumerate") and node.args:
                    if bindings.is_set(node.args[0]):
                        yield ctx.finding(self.code, self._MESSAGE, node.args[0])


class SetPopRule(Rule):
    """RPR012: ``set.pop()`` removes an arbitrary (address-dependent) element."""

    code = "RPR012"
    summary = "set.pop() removes a hash/address-dependent element"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        bindings = SetBindings(tree)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and not node.args
                and not node.keywords
                and bindings.is_set(node.func.value)
            ):
                yield ctx.finding(
                    self.code,
                    "set.pop() removes an arbitrary element (hash-order "
                    "dependent); pop from a sorted or insertion-ordered "
                    "structure instead",
                    node,
                )
