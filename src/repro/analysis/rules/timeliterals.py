"""Rule family RPR02x: raw numeric time literals.

All simulation durations are integer nanoseconds; :mod:`repro.sim.units`
provides ``MSEC``/``USEC``/``SEC`` and the ``ns_from_*`` converters.  A
bare ``20_000_000`` where a ``*_ns`` value is expected is unreviewable
(20 ms? 20 µs?) and is exactly how unit mistakes slip into scheduling
parameters.  The rule flags plain numeric constants >= 1000 (1 µs)
bound to ``*_ns`` names — as keyword arguments, parameter defaults, or
assignments.  Expressions built from the unit helpers (``30 * MSEC``,
``ns_from_ms(0.3)``) do not trigger.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.lint import FileContext, Finding, Rule

__all__ = ["RawTimeLiteralRule"]

#: Smallest literal worth flagging: 1000 ns = 1 µs.  Below that the value
#: is plausibly a count, an index, or a genuinely sub-microsecond constant.
_MIN_MAGNITUDE = 1000


def _raw_literal(node: ast.AST) -> Optional[ast.Constant]:
    """The node itself when it is a bare numeric constant >= 1 µs."""
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and abs(node.value) >= _MIN_MAGNITUDE
    ):
        return node
    return None


def _ns_name(name: Optional[str]) -> bool:
    return name is not None and name.endswith("_ns")


def _target_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class RawTimeLiteralRule(Rule):
    """RPR020: raw numeric literal bound to a ``*_ns`` name."""

    code = "RPR020"
    summary = (
        "raw numeric time literal where sim.units helpers are expected "
        "(write 20 * MSEC or ns_from_ms(20), not 20_000_000)"
    )

    def _msg(self, name: str, value) -> str:
        return (
            f"raw literal {value!r} bound to {name!r}; use repro.sim.units "
            "(MSEC/USEC/SEC or ns_from_*) so the magnitude is reviewable"
        )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    lit = _raw_literal(kw.value) if _ns_name(kw.arg) else None
                    if lit is not None:
                        yield ctx.finding(self.code, self._msg(kw.arg, lit.value), lit)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_defaults(node, ctx)
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    name = _target_name(tgt)
                    lit = _raw_literal(node.value) if _ns_name(name) else None
                    if lit is not None:
                        yield ctx.finding(self.code, self._msg(name, lit.value), lit)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                name = _target_name(node.target)
                lit = _raw_literal(node.value) if _ns_name(name) else None
                if lit is not None:
                    yield ctx.finding(self.code, self._msg(name, lit.value), lit)

    def _check_defaults(self, fn, ctx: FileContext) -> Iterator[Finding]:
        args = fn.args
        positional = args.posonlyargs + args.args
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            lit = _raw_literal(default) if _ns_name(arg.arg) else None
            if lit is not None:
                yield ctx.finding(self.code, self._msg(arg.arg, lit.value), lit)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is None:
                continue
            lit = _raw_literal(default) if _ns_name(arg.arg) else None
            if lit is not None:
                yield ctx.finding(self.code, self._msg(arg.arg, lit.value), lit)
