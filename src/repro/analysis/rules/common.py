"""Shared AST helpers for the lint rules: dotted-name resolution through
import aliases, and set-typed binding tracking."""

from __future__ import annotations

import ast
from typing import Optional

__all__ = ["ImportMap", "dotted_name", "resolve_call_target", "SetBindings", "node_key"]


def dotted_name(node: ast.AST) -> Optional[list[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ImportMap:
    """Resolve local names back to the real module paths they came from.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from datetime
    import datetime as dt`` maps ``dt`` -> ``datetime.datetime``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    real = alias.name if alias.asname else alias.name.split(".")[0]
                    self.modules[local] = real
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, parts: list[str]) -> str:
        """Map the leading alias of a dotted chain to its real module."""
        head, rest = parts[0], parts[1:]
        if head in self.names:
            return ".".join([self.names[head], *rest])
        if head in self.modules:
            return ".".join([self.modules[head], *rest])
        return ".".join(parts)


def resolve_call_target(call: ast.Call, imports: ImportMap) -> Optional[str]:
    """Fully-qualified dotted target of a call, or None."""
    parts = dotted_name(call.func)
    if parts is None:
        return None
    return imports.resolve(parts)


def node_key(node: ast.AST) -> Optional[str]:
    """Stable key for a binding target: ``x`` or ``self.x`` (one level)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return f"{node.value.id}.{node.attr}"
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _annotation_is_set(node: ast.AST) -> bool:
    """True for ``set``, ``set[int]``, ``Set[int]``, ``frozenset[...]``."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Attribute):
        return node.attr in ("Set", "FrozenSet", "AbstractSet", "MutableSet")
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        stripped = node.value.strip()
        return stripped.split("[")[0] in ("set", "frozenset", "Set", "FrozenSet")
    return False


class SetBindings:
    """Names/attributes bound to set values anywhere in a module.

    A deliberately simple module-wide binding map: names assigned a set
    display/comprehension/``set(...)`` call, or annotated as a set type,
    are considered set-typed everywhere.  Shadowing across scopes can
    produce false positives; the pragma allowlist is the escape hatch.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.keys: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for tgt in node.targets:
                    key = node_key(tgt)
                    if key:
                        self.keys.add(key)
            elif isinstance(node, ast.AnnAssign):
                key = node_key(node.target)
                if key and (
                    _annotation_is_set(node.annotation)
                    or (node.value is not None and _is_set_expr(node.value))
                ):
                    self.keys.add(key)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                if _annotation_is_set(node.annotation):
                    self.keys.add(node.arg)

    def is_set(self, node: ast.AST) -> bool:
        """Is this expression a set display/call or a tracked set name?"""
        if _is_set_expr(node):
            return True
        key = node_key(node)
        return key is not None and key in self.keys
