"""Rule registry: one module per rule family, stable RPR codes.

Retired codes are never reused; new rules take the next free number in
their family (entropy RPR00x, ordering RPR01x, units RPR02x, exception
hygiene RPR03x, same-timestamp hooks RPR04x).
"""

from __future__ import annotations

from repro.analysis.rules.entropy import EntropyCallRule, UnseededRngRule
from repro.analysis.rules.exceptions import BareExceptRule, SwallowedExceptionRule
from repro.analysis.rules.hooks import ClosureCaptureRaceRule, SameTimeWriteOverlapRule
from repro.analysis.rules.ordering import IdOrderingRule, SetIterationRule, SetPopRule
from repro.analysis.rules.timeliterals import RawTimeLiteralRule

__all__ = ["ALL_RULES"]

#: Every active rule, in code order.
ALL_RULES = (
    EntropyCallRule(),
    UnseededRngRule(),
    IdOrderingRule(),
    SetIterationRule(),
    SetPopRule(),
    RawTimeLiteralRule(),
    BareExceptRule(),
    SwallowedExceptionRule(),
    SameTimeWriteOverlapRule(),
    ClosureCaptureRaceRule(),
)
