"""Rule family RPR03x: exception hygiene in event callbacks.

The DES engine runs callbacks with no supervisor: an exception swallowed
inside an event handler silently drops work (a lost wake, a missed
dispatch) and the simulation keeps running with corrupt state — the
resulting numbers are wrong but look fine.  Failures must propagate to
the sweep runner, which converts them into structured failure records.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Finding, Rule

__all__ = ["BareExceptRule", "SwallowedExceptionRule"]


class BareExceptRule(Rule):
    """RPR030: bare ``except:`` catches everything, including SystemExit."""

    code = "RPR030"
    summary = "bare except: catches everything; name the exception types"

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.code,
                    "bare except: hides real failures (including KeyboardInterrupt); "
                    "catch specific exception types",
                    node,
                )


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing at all (pass / ...)."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or ellipsis
        return False
    return True


class SwallowedExceptionRule(Rule):
    """RPR031: exception caught and silently dropped."""

    code = "RPR031"
    summary = (
        "exception handler swallows the error (body is only pass); "
        "record, re-raise, or convert it to a structured failure"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and _swallows(node):
                yield ctx.finding(
                    self.code,
                    "swallowed exception: an event callback that fails here "
                    "silently corrupts simulation state; surface the failure",
                    node,
                )
