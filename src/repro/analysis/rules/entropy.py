"""Rule family RPR00x: wall-clock and entropy sources.

Every timestamp in the simulation must come from
:attr:`repro.sim.engine.Simulator.now` and every random draw from a
seeded :class:`repro.sim.rng.SimRNG`.  Host wall-clock reads or ambient
entropy anywhere in the simulation path makes same-seed runs diverge —
silently, because aggregate numbers still look plausible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint import FileContext, Finding, Rule
from repro.analysis.rules.common import ImportMap, resolve_call_target

__all__ = ["EntropyCallRule", "UnseededRngRule"]

#: Exact dotted targets that read the host clock or ambient entropy.
_FORBIDDEN_EXACT = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Module prefixes where *every* call is ambient entropy.
_FORBIDDEN_PREFIXES = ("random.", "secrets.")

#: numpy's legacy global-state RNG API (np.random.seed / np.random.rand
#: ...).  The seeded Generator API (default_rng(seed), SeedSequence) is
#: what SimRNG wraps and is allowed.
_NUMPY_LEGACY = {
    "seed",
    "random",
    "rand",
    "randn",
    "randint",
    "random_sample",
    "random_integers",
    "ranf",
    "sample",
    "choice",
    "shuffle",
    "permutation",
    "bytes",
    "normal",
    "uniform",
    "standard_normal",
    "exponential",
    "lognormal",
}

#: ``datetime`` constructors that capture the host clock.
_DATETIME_NOW = (".now", ".utcnow", ".today", ".utcfromtimestamp")


class EntropyCallRule(Rule):
    """RPR001: direct wall-clock or entropy call."""

    code = "RPR001"
    summary = (
        "wall-clock/entropy call (time.*, datetime.now, random.*, os.urandom); "
        "route time through Simulator.now and randomness through sim.rng.SimRNG"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target is None:
                continue
            if self._forbidden(target):
                yield ctx.finding(
                    self.code,
                    f"call to {target}() is nondeterministic across runs; "
                    "use Simulator.now / sim.rng.SimRNG instead",
                    node,
                )

    @staticmethod
    def _forbidden(target: str) -> bool:
        if target in _FORBIDDEN_EXACT:
            return True
        if target.startswith(_FORBIDDEN_PREFIXES):
            return True
        if target.startswith("numpy.random.") and target.rsplit(".", 1)[1] in _NUMPY_LEGACY:
            return True
        if target.startswith(("datetime.", "datetime.datetime.", "datetime.date.")):
            return target.endswith(_DATETIME_NOW)
        return False


class UnseededRngRule(Rule):
    """RPR002: RNG constructed without an explicit seed."""

    code = "RPR002"
    summary = (
        "unseeded RNG construction (default_rng()/RandomState()/Random() "
        "with no arguments draws OS entropy)"
    )

    _CONSTRUCTORS = {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "numpy.random.SeedSequence",
        "random.Random",
    }

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        imports = ImportMap(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = resolve_call_target(node, imports)
            if target in self._CONSTRUCTORS and not node.args and not node.keywords:
                yield ctx.finding(
                    self.code,
                    f"{target}() without a seed draws OS entropy; "
                    "pass an explicit seed (or use sim.rng.SimRNG)",
                    node,
                )
