"""Rule family RPR04x: same-timestamp hook/callback order dependence.

The engine executes same-timestamp events in insertion (``seq``) order —
an order nothing in the model specifies (see
:mod:`repro.analysis.races`).  Two callbacks registered for the *same*
instant whose effect summaries (:mod:`repro.analysis.effects`) do not
commute are therefore a latent race: the registration order silently
decides the result.

Both rules group registrations *within one function scope* — the only
place the static analysis can prove two callbacks target the same
instant:

* two appends to the same ``X.period_hooks`` list (period hooks all run
  at the period boundary), or
* two ``sim.at/after/post_at/post_after`` calls whose time argument has
  the identical expression AST.

Cross-module registrations (e.g. the ATC controller and the sanitizer
each appending one period hook from different files) are out of static
reach; the dynamic layer (SAN008 + the tie-permutation differential)
covers those.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.effects import EffectSummary, ModuleEffects
from repro.analysis.lint import FileContext, Finding, Rule
from repro.analysis.rules.common import dotted_name

__all__ = ["SameTimeWriteOverlapRule", "ClosureCaptureRaceRule"]

#: Scheduling methods whose first argument is the time/delay expression.
_SCHEDULE_METHODS = frozenset({"at", "after", "post_at", "post_after"})


class _Registration:
    """One callback registration site inside a function scope."""

    __slots__ = ("node", "callback_expr", "summary", "where")

    def __init__(
        self,
        node: ast.Call,
        callback_expr: ast.AST,
        summary: Optional[EffectSummary],
        where: str,
    ) -> None:
        self.node = node
        self.callback_expr = callback_expr
        self.summary = summary
        self.where = where


def _callback_label(expr: ast.AST, summary: Optional[EffectSummary]) -> str:
    if summary is not None:
        return summary.name
    parts = dotted_name(expr)
    return ".".join(parts) if parts else ast.unparse(expr)


def _iter_scopes(tree: ast.Module):
    """Yield ``(function_node, owner_class_name)`` for every function."""
    stack: list[tuple[ast.AST, Optional[str]]] = [(tree, None)]
    while stack:
        node, owner = stack.pop()
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                stack.append((child, child.name))
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, owner
                stack.append((child, owner))
            else:
                stack.append((child, owner))


def _collect_groups(
    fn: ast.AST, owner: Optional[str], effects: ModuleEffects
) -> dict:
    """Group same-instant registrations in one function's direct scope.

    Key ``("period", <receiver>)`` groups ``<receiver>.period_hooks
    .append(cb)`` calls; key ``("at", <receiver>, <method>, <time-ast>)``
    groups scheduling calls with an identical time expression.
    """
    groups: dict = {}
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope: grouped separately
        stack.extend(ast.iter_child_nodes(node))
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        func = node.func
        if (
            func.attr == "append"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "period_hooks"
            and len(node.args) == 1
        ):
            recv = ast.dump(func.value.value)
            key = ("period", recv)
            cb = node.args[0]
            where = "period hook"
        elif func.attr in _SCHEDULE_METHODS and len(node.args) >= 2:
            recv = ast.dump(func.value)
            key = ("at", recv, func.attr, ast.dump(node.args[0]))
            cb = node.args[1]
            where = f"{func.attr}({ast.unparse(node.args[0])})"
        else:
            continue
        summary = effects.resolve_callback(cb, owner_class=owner)
        groups.setdefault(key, []).append(_Registration(node, cb, summary, where))
    return groups


def _pairs(groups: dict):
    for regs in groups.values():
        if len(regs) < 2:
            continue
        # Registration order == source order == execution order claim.
        regs = sorted(regs, key=lambda r: (r.node.lineno, r.node.col_offset))
        for i in range(len(regs)):
            for j in range(i + 1, len(regs)):
                a, b = regs[i], regs[j]
                if ast.dump(a.callback_expr) == ast.dump(b.callback_expr):
                    continue  # same callback re-registered: not a pair race
                yield a, b


class SameTimeWriteOverlapRule(Rule):
    """RPR040: same-instant callbacks with non-disjoint write sets."""

    code = "RPR040"
    summary = (
        "two callbacks registered for the same instant (shared period-hook "
        "list or identical schedule time) have overlapping attribute write "
        "sets; their execution order is unspecified"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        effects = ModuleEffects(tree)
        for fn, owner in _iter_scopes(tree):
            for a, b in _pairs(_collect_groups(fn, owner, effects)):
                if a.summary is None or b.summary is None:
                    continue
                ww, rw = a.summary.overlap(b.summary)
                conflict = ww or rw
                if not conflict:
                    continue
                kind = "write-write" if ww else "read-write"
                yield ctx.finding(
                    self.code,
                    f"callbacks {_callback_label(a.callback_expr, a.summary)!r} "
                    f"and {_callback_label(b.callback_expr, b.summary)!r} are "
                    f"both registered for the same instant ({b.where}) with a "
                    f"{kind} overlap on attribute(s) "
                    f"{', '.join(sorted(conflict))}; same-timestamp execution "
                    f"order is unspecified — merge them or order explicitly",
                    b.node,
                )


class ClosureCaptureRaceRule(Rule):
    """RPR041: closure capture written by a sibling same-instant callback."""

    code = "RPR041"
    summary = (
        "a same-instant sibling callback writes state that this callback "
        "closure captured; the captured value depends on unspecified "
        "tie-break order"
    )

    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        effects = ModuleEffects(tree)
        for fn, owner in _iter_scopes(tree):
            for a, b in _pairs(_collect_groups(fn, owner, effects)):
                if a.summary is None or b.summary is None:
                    continue
                for reader, writer in ((a, b), (b, a)):
                    shared = reader.summary.captures & writer.summary.writes
                    if not shared:
                        continue
                    yield ctx.finding(
                        self.code,
                        f"callback "
                        f"{_callback_label(reader.callback_expr, reader.summary)!r} "
                        f"captures {', '.join(sorted(shared))!s}, which "
                        f"same-instant sibling "
                        f"{_callback_label(writer.callback_expr, writer.summary)!r} "
                        f"writes; what the closure observes depends on "
                        f"unspecified tie-break order",
                        reader.node,
                    )
