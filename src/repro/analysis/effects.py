"""Interprocedural AST effect analysis for event callbacks.

The static half of the order-dependence detector
(:mod:`repro.analysis.races` is the dynamic half): for every function,
method, and lambda in a module this computes a conservative summary of
the attribute state it touches —

* ``writes`` — attribute names the callable stores to (``obj.x = v``,
  ``obj.x += v``, ``del obj.x``) plus names it mutates through known
  container mutators (``obj.xs.append(v)`` writes ``xs``; ``xs.append``
  on a bare name writes ``xs``),
* ``reads`` — attribute names it loads,
* ``captures`` — free variable names a closure reads from an enclosing
  scope (the RPR041 signal: captured mutable state shared with a
  sibling callback).

Summaries are *interprocedural to a fixed point within one module*:
calls to ``self.method(...)``, to module-level functions, and to sibling
nested functions fold the callee's reads/writes into the caller.  Calls
that cannot be resolved (other modules, dynamic dispatch) contribute
nothing — the analysis under-approximates across module boundaries and
over-approximates attribute aliasing (two different objects with an
attribute of the same name collide).  Both choices are deliberate: the
consumer rules (RPR040/RPR041 in :mod:`repro.analysis.rules.hooks`)
compare summaries of callbacks registered *in the same scope*, where
name collisions usually are the same object, and a missed effect only
costs a missed warning, never a false crash.

Attribute granularity is the attribute *name*, not an object path:
``vcpu.state`` and ``other.state`` both summarize as ``state``.  The
dynamic layer (SAN008) is instance-precise; the static layer trades
precision for zero-setup whole-tree coverage.
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from typing import Optional, Union

__all__ = ["MUTATOR_METHODS", "EffectSummary", "ModuleEffects"]

#: Method names treated as in-place mutations of their receiver.
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]
_FUNC_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
_BUILTINS = frozenset(dir(builtins))


@dataclass
class EffectSummary:
    """Effect summary of one callable (post fixed-point propagation)."""

    name: str
    reads: set = field(default_factory=set)
    writes: set = field(default_factory=set)
    captures: set = field(default_factory=set)
    #: Resolved same-module callee keys (internal, pre-propagation).
    calls: set = field(default_factory=set)

    def overlap(self, other: "EffectSummary") -> tuple[set, set]:
        """(write∩write, read∩write ∪ write∩read) attribute names."""
        ww = self.writes & other.writes
        rw = (self.reads & other.writes) | (other.reads & self.writes)
        return ww, rw


class _LocalCollector(ast.NodeVisitor):
    """Names bound inside one function body (params, assignments,
    imports, comprehension targets, nested def/class names)."""

    def __init__(self) -> None:
        self.bound: set = set()

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.add(node.id)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.bound.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # separate scope

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name.split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name)


def _params_of(fn: _FuncNode) -> set:
    args = fn.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


class _EffectVisitor(ast.NodeVisitor):
    """Collect one function's own effects, not descending into nested
    function bodies (those get their own summaries; defining a closure
    is not executing it)."""

    def __init__(self, summary: EffectSummary, owner_class: Optional[str]) -> None:
        self.summary = summary
        self.owner_class = owner_class
        self._root: Optional[ast.AST] = None

    def collect(self, fn: _FuncNode) -> None:
        self._root = fn
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        for stmt in body:
            self.visit(stmt)

    # -- scope boundary ------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- effects -------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.summary.writes.add(node.attr)
        else:
            self.summary.reads.add(node.attr)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Attribute):
            # `obj.x += v` both reads and writes x; the Store ctx visit
            # only records the write.
            self.summary.reads.add(node.target.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATOR_METHODS:
                recv = func.value
                if isinstance(recv, ast.Attribute):
                    self.summary.writes.add(recv.attr)
                elif isinstance(recv, ast.Name):
                    self.summary.writes.add(recv.id)
            # self.method(...) -> same-class callee
            if (
                self.owner_class
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"
            ):
                self.summary.calls.add(f"{self.owner_class}.{func.attr}")
        elif isinstance(func, ast.Name):
            self.summary.calls.add(func.id)
        self.generic_visit(node)


class ModuleEffects:
    """Effect summaries for every callable in one parsed module.

    Summaries are keyed by a dotted qualname-like path (``f``,
    ``Class.method``, ``Class.method.<lambda>``) and by AST node
    identity; :meth:`resolve_callback` maps a callback *expression* at a
    registration site (``self._tick``, a bare function name, an inline
    lambda) to its summary.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.by_key: dict[str, EffectSummary] = {}
        self.by_node: dict[int, EffectSummary] = {}
        self._module_names: set = set()
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                self._module_names.add(stmt.name)
        self._collect(tree.body, prefix="", owner_class=None)
        self._propagate()

    # ------------------------------------------------------------------
    def _collect(self, body, prefix: str, owner_class: Optional[str]) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._summarize(node, prefix, owner_class, name=node.name)
            elif isinstance(node, ast.ClassDef):
                cls_prefix = f"{prefix}{node.name}."
                self._collect(node.body, prefix=cls_prefix, owner_class=node.name)

    def _summarize(
        self,
        fn: _FuncNode,
        prefix: str,
        owner_class: Optional[str],
        name: str,
    ) -> EffectSummary:
        key = f"{prefix}{name}"
        summary = EffectSummary(name=key)
        visitor = _EffectVisitor(summary, owner_class)
        visitor.collect(fn)
        self._captures(fn, summary)
        self.by_key[key] = summary
        self.by_node[id(fn)] = summary  # repro: ignore[RPR010] -- AST-node identity within one parse
        # Nested defs and lambdas get their own summaries, prefixed.
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        for inner in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(inner, _FUNC_TYPES) and id(inner) not in self.by_node:  # repro: ignore[RPR010] -- AST-node identity within one parse
                if self._directly_inside(inner, body):
                    inner_name = getattr(inner, "name", "<lambda>")
                    self._summarize(
                        inner, f"{key}.", owner_class, name=inner_name
                    )
        return summary

    @staticmethod
    def _directly_inside(target: ast.AST, body) -> bool:
        """True if ``target`` is not nested inside another callable that
        is itself inside ``body`` (those are summarized recursively)."""
        for stmt in body:
            stack = [stmt]
            while stack:
                cur = stack.pop()
                if cur is target:
                    return True
                if cur is not stmt and isinstance(cur, _FUNC_TYPES):
                    continue  # deeper scope: handled by its own pass
                stack.extend(ast.iter_child_nodes(cur))
        return False

    def _captures(self, fn: _FuncNode, summary: EffectSummary) -> None:
        local = _LocalCollector()
        body = fn.body if isinstance(fn.body, list) else [fn.body]
        for stmt in body:
            local.visit(stmt)
        bound = local.bound | _params_of(fn)
        for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name = node.id
                if (
                    name not in bound
                    and name not in self._module_names
                    and name not in _BUILTINS
                    and name != "self"
                ):
                    summary.captures.add(name)

    def _propagate(self) -> None:
        """Fold resolved same-module callee effects into callers until a
        fixed point (handles call chains and recursion)."""
        changed = True
        while changed:
            changed = False
            for summary in self.by_key.values():
                for callee_key in summary.calls:
                    callee = self.by_key.get(callee_key)
                    if callee is None:
                        continue
                    if not (callee.reads <= summary.reads):
                        summary.reads |= callee.reads
                        changed = True
                    if not (callee.writes <= summary.writes):
                        summary.writes |= callee.writes
                        changed = True

    # ------------------------------------------------------------------
    def resolve_callback(
        self, expr: ast.AST, owner_class: Optional[str] = None
    ) -> Optional[EffectSummary]:
        """Summary for a callback expression at a registration site.

        Handles inline lambdas (by node identity), ``self._method``
        (resolved against ``owner_class``), bare names of module-level
        or nested functions, and ``functools.partial(f, ...)`` /
        ``partial(f, ...)`` wrappers (summary of ``f``).
        """
        if isinstance(expr, ast.Lambda):
            return self.by_node.get(id(expr))  # repro: ignore[RPR010] -- AST-node identity within one parse
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and owner_class
        ):
            return self.by_key.get(f"{owner_class}.{expr.attr}")
        if isinstance(expr, ast.Name):
            # Innermost match wins: a nested function shadows a
            # module-level one of the same name.
            candidates = [
                s for k, s in self.by_key.items()
                if k == expr.id or k.endswith(f".{expr.id}")
            ]
            if candidates:
                return max(candidates, key=lambda s: s.name.count("."))
            return None
        if isinstance(expr, ast.Call):
            target = expr.func
            is_partial = (
                isinstance(target, ast.Name) and target.id == "partial"
            ) or (
                isinstance(target, ast.Attribute) and target.attr == "partial"
            )
            if is_partial and expr.args:
                return self.resolve_callback(expr.args[0], owner_class)
        return None
