"""Correctness tooling for the reproduction: static determinism lint and
runtime simulation sanitizer.

The whole evaluation pipeline rests on one promise: every sweep cell is
bit-identical for a given seed.  That is what makes the content-hash
result cache and the process-pool fan-out of
:mod:`repro.experiments.runner` sound.  Two tools enforce it:

* :mod:`repro.analysis.lint` — an AST-based static checker that flags
  code patterns which silently break reproducibility (wall-clock/entropy
  calls, ``id()``-keyed ordering, unordered-set iteration, raw time
  literals, swallowed exceptions).  Run it with ``python -m repro lint``.
* :mod:`repro.analysis.sanitizer` — an opt-in runtime invariant checker
  that hooks the simulator and schedulers and asserts event-time
  monotonicity, legal VCPU state-machine transitions, per-period credit
  conservation and sane ATC slice/latency values.  Enable it with
  ``--sanitize`` on the sweep-shaped CLI commands or
  ``RunSpec(..., sanitize=True)``.
"""

from repro.analysis.lint import Finding, lint_paths, lint_source
from repro.analysis.sanitizer import SanitizerViolationError, SimSanitizer, Violation

__all__ = [
    "Finding",
    "lint_paths",
    "lint_source",
    "SanitizerViolationError",
    "SimSanitizer",
    "Violation",
]
