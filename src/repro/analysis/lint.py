"""Static determinism/correctness lint for the DES core.

An AST-based checker framework: each rule family lives in one module
under :mod:`repro.analysis.rules` and carries a stable code (RPR001,
RPR010, ...).  The linter walks ``src/repro`` and ``benchmarks/`` (or any
paths given), parses every ``*.py`` file once, runs each rule over the
tree, and reports findings as ``path:line:col: CODE message``.

Suppression
-----------
A finding is suppressed by a pragma comment on the flagged line::

    t0 = time.perf_counter()  # repro: ignore[RPR001]

``# repro: ignore`` without a bracket list suppresses every rule on that
line; ``# repro: ignore[RPR001,RPR010]`` suppresses only those codes.
Suppressions are deliberate and visible — the pragma is the audit trail
for why a forbidden pattern is actually fine (e.g. host wall-clock
measurement in the sweep runner, which never feeds simulation state).

Exit codes: 0 = clean, 1 = findings, 2 = usage error (bad path/arg).
"""

from __future__ import annotations

import abc
import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, TextIO

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "run_lint",
]

#: Reserved code for files the linter cannot parse.
PARSE_ERROR_CODE = "RPR000"

_PRAGMA_RE = re.compile(r"#\s*repro:\s*ignore(?:\[([A-Za-z0-9_,\s]*)\])?")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, anchored to a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class FileContext:
    """Per-file state shared by every rule: source text and pragma index."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines = source.splitlines()
        #: line number -> set of suppressed codes ("*" = all codes).
        self.pragmas: dict[int, set[str]] = {}
        for i, text in enumerate(self.lines, start=1):
            m = _PRAGMA_RE.search(text)
            if m is None:
                continue
            codes = m.group(1)
            if codes is None or not codes.strip():
                self.pragmas[i] = {"*"}
            else:
                self.pragmas[i] = {c.strip().upper() for c in codes.split(",") if c.strip()}

    # ------------------------------------------------------------------
    def finding(self, code: str, message: str, node: ast.AST) -> Finding:
        """Build a Finding anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )

    def suppressed(self, finding: Finding) -> bool:
        codes = self.pragmas.get(finding.line)
        if not codes:
            return False
        return "*" in codes or finding.code in codes


class Rule(abc.ABC):
    """One lint rule family: a stable code, a summary, and an AST check."""

    #: Stable rule code (``RPRxxx``).  Never reuse a retired code.
    code: str = ""
    #: One-line description for ``repro lint --list-rules`` and the docs.
    summary: str = ""

    @abc.abstractmethod
    def check(self, tree: ast.Module, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code}: {self.summary}>"


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _default_rules() -> Sequence[Rule]:
    from repro.analysis.rules import ALL_RULES

    return ALL_RULES


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint one source string; returns sorted, pragma-filtered findings."""
    ctx = FileContext(path, source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=PARSE_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    findings: list[Finding] = []
    for rule in rules if rules is not None else _default_rules():
        for f in rule.check(tree, ctx):
            if not ctx.suppressed(f):
                findings.append(f)
    findings.sort()
    return findings


def lint_file(path: Path, rules: Optional[Sequence[Rule]] = None) -> list[Finding]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def _iter_py_files(paths: Iterable[Path]) -> Iterator[Path]:
    for p in paths:
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    yield f
        else:
            yield p


def lint_paths(
    paths: Sequence[str | Path],
    rules: Optional[Sequence[Rule]] = None,
) -> list[Finding]:
    """Lint every ``*.py`` file under the given files/directories."""
    findings: list[Finding] = []
    for f in _iter_py_files(Path(p) for p in paths):
        findings.extend(lint_file(f, rules=rules))
    findings.sort()
    return findings


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding + a summary."""
    lines = [f.format() for f in findings]
    n = len(findings)
    lines.append(f"{n} finding{'s' if n != 1 else ''}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report: {"findings": [...], "count": N}."""
    return json.dumps(
        {"findings": [f.to_dict() for f in findings], "count": len(findings)},
        indent=2,
    )


# ----------------------------------------------------------------------
# CLI driver (called from ``python -m repro lint``)
# ----------------------------------------------------------------------
def run_lint(
    paths: Sequence[str],
    fmt: str = "text",
    select: Optional[Sequence[str]] = None,
    list_rules: bool = False,
    out: Optional[TextIO] = None,
) -> int:
    """Execute the lint and print a report; returns the exit code."""
    out = sys.stdout if out is None else out
    rules = list(_default_rules())
    if list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.summary}", file=out)
        return 0
    if select:
        wanted = {c.strip().upper() for c in select if c.strip()}
        unknown = wanted - {r.code for r in rules}
        if unknown:
            print(f"repro lint: unknown rule code(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2
        rules = [r for r in rules if r.code in wanted]
    targets = [Path(p) for p in paths]
    missing = [str(p) for p in targets if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    findings = lint_paths(targets, rules=rules)
    if fmt == "json":
        print(render_json(findings), file=out)
    else:
        print(render_text(findings), file=out)
    return 1 if findings else 0
