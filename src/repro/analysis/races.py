"""Order-dependence race detection for same-timestamp events.

After PR 6 the engine hot path reduces to a ``(time, phase, seq)`` total
order, which makes any two callbacks at the *same* timestamp with
overlapping state effects a latent race: the outcome silently depends on
insertion order (``seq``), which nothing in the model specifies.  This
module provides the two dynamic halves of the detector (the static half
lives in :mod:`repro.analysis.effects` and
:mod:`repro.analysis.rules.hooks`):

**SAN008 — tie-group access tracking** (:class:`TieRaceTracker`).  An
opt-in sanitizer mode that groups executed events by identical timestamp
and records each event's attribute read/write sets on the core sim
objects (VM / VCPU / PCPU / spinlocks / guest processes).  Two events in
one tie group *suspect* an order dependence when their access sets do not
commute — a write–write or read–write overlap — unless the pair is
ordered anyway:

* one event (transitively) scheduled the other at the same timestamp
  (zero-delay causality: the child can only run after the parent), or
* the two events run in different engine phases
  (:data:`repro.sim.engine.ACCOUNTING_CATS` callbacks always run before
  default-phase events at the same instant — defined semantics, not a
  race).

Tracking is armed by explicitly attaching a tracker; a run without one
executes the exact unmodified code paths (zero cost), and an armed run is
bit-identical to a plain run because every hook is read-only.

**Tie-permutation differential** (:func:`run_differential`).  Suspects
are heuristic; the differential *confirms*: run the same scenario with
``tie_order="fifo"`` and ``tie_order="reversed"`` (inverted ``seq``
comparison within equal timestamps only — see
:data:`repro.sim.engine.TIE_ORDERS`) and diff the result dicts.  Any leaf
difference is a confirmed order dependence — the scenario's results hinge
on an ordering the model never specified.

Known inherent order dependences (reported, not fixable without
delta-cycle event semantics): on lock-heavy workloads sharing hosts
across VMs, a cross-VM wake can land on the same nanosecond as an
independent slice expiry or guest poll on the target PCPU; whether the
wake sees the pre- or post-dispatch state legitimately changes deferred
tickles and preemption.  The period-boundary variant of this class
(accounting tick racing same-instant dispatches) *was* fixable and is
fixed by the engine's accounting phase.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.analysis.sanitizer import SimSanitizer, Violation
from repro.cluster.node import PCPU
from repro.guest.process import GuestProcess
from repro.guest.spinlock import SpinBarrier, SpinLock
from repro.hypervisor.vm import VCPU, VM
from repro.sim import engine
from repro.sim.engine import ACCOUNTING_CATS, Simulator

__all__ = [
    "TRACKED_CLASSES",
    "TieRaceTracker",
    "run_differential",
    "diff_values",
    "DEFAULT_CELLS",
    "races_report",
]

#: Classes whose per-event attribute reads/writes the tracker records.
#: All hold scheduler- or guest-visible state that same-timestamp events
#: may contend on.  Every class is slotted, so the trackable attribute
#: set is exactly the union of ``__slots__`` over the MRO.
TRACKED_CLASSES = (VCPU, VM, PCPU, SpinLock, SpinBarrier, GuestProcess)

#: The armed tracker (at most one at a time); module-level so the
#: class-method patches can reach it without per-instance state.
_active: Optional["TieRaceTracker"] = None
_saved_methods: list = []


def _data_attrs(cls: type) -> frozenset:
    names: set = set()
    for c in cls.__mro__:
        names.update(getattr(c, "__slots__", ()))
    return frozenset(n for n in names if not n.startswith("__"))  # repro: ignore[RPR011] -- membership-only set


def _fn_label(fn) -> str:
    """Stable human-readable label for a callback (qualname + instance)."""
    q = getattr(fn, "__qualname__", repr(fn))
    owner = getattr(fn, "__self__", None)
    if owner is not None:
        name = getattr(owner, "name", None)
        return f"{q}[{name if isinstance(name, str) else type(owner).__name__}]"
    return q


class _EventRec:
    """Per-executed-event access record inside the current tie group."""

    __slots__ = ("fn", "label", "phase", "reads", "writes")

    def __init__(self, fn, label: str, phase: int) -> None:
        # Holding ``fn`` pins its id until the group flushes, so ancestor
        # keys (id(fn) of same-group parents) cannot be reused mid-group.
        self.fn = fn
        self.label = label
        self.phase = phase
        self.reads: set = set()
        self.writes: set = set()


class TieRaceTracker:
    """Record per-event read/write sets and flag non-commuting tie pairs.

    Usage::

        tracker = TieRaceTracker()
        tracker.attach(sim)       # arms schedule + attribute instrumentation
        try:
            ...                   # run the simulation
        finally:
            tracker.detach()      # flushes the last group, restores classes
        for v in tracker.suspects:
            print(v.format())     # SAN008 records

    Only one tracker may be armed at a time (the instrumentation is
    class-level).  All hooks are observational: an armed run pops the
    same events in the same order with the same results as a plain run.
    """

    def __init__(self, max_suspects: int = 200) -> None:
        self.sim: Optional[Simulator] = None
        self.suspects: list[Violation] = []
        self.total_suspects = 0
        self.max_suspects = max_suspects
        self.groups_checked = 0
        #: Record of the event currently executing (None between events
        #: and while unarmed) — the attribute wrappers test this.
        self.cur: Optional[_EventRec] = None
        self._group: list[_EventRec] = []
        self._group_time = -1
        #: id(fn) -> set of same-timestamp ancestor ids (zero-delay chains).
        self._ancestors: dict[int, set] = {}
        #: id(fn) -> [cat, refcount] recorded at schedule time; consumed at
        #: pop time to classify the event's phase.
        self._cats: dict[int, list] = {}
        self._obj_labels: dict[int, str] = {}
        self._obj_counter = 0
        #: Reentrancy guard: label computation may invoke ``name``
        #: properties that read other tracked attributes; those reads are
        #: tracker-internal and must be neither recorded nor re-labelled.
        self._labeling = False
        self._prev_trace: Optional[Callable] = None
        self._seen_pairs: set = set()

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def attach(self, sim: Simulator) -> None:
        """Arm on ``sim`` (flushing any previous sim's pending group)."""
        global _active
        if _active is self:
            self._flush()  # scenario built a new world: switch simulators
        elif _active is not None:
            raise RuntimeError("another TieRaceTracker is already armed")
        else:
            _active = self
            _patch_classes()
        self.sim = sim
        self._group_time = -1
        self._ancestors.clear()
        self._cats.clear()
        self._prev_trace = sim.trace

        prev = self._prev_trace

        def trace(now: int, fn) -> None:
            if prev is not None:
                prev(now, fn)
            self._on_pop(now, fn)

        sim.trace = trace

    def detach(self) -> None:
        """Flush the final tie group and restore all patched classes."""
        global _active
        if _active is not self:
            return
        self._flush()
        self.cur = None
        _active = None
        _unpatch_classes()

    # ------------------------------------------------------------------
    # Hooks (called from the patched schedule methods / trace)
    # ------------------------------------------------------------------
    def _on_schedule(self, time: int, fn, cat: Optional[str]) -> None:
        key = id(fn)  # repro: ignore[RPR010] -- identity token, never ordered or persisted
        rec = self._cats.get(key)
        if rec is not None and rec[0] == cat:
            rec[1] += 1
        else:
            self._cats[key] = [cat, 1]
        cur = self.cur
        if cur is not None and time == self.sim.now:
            # Zero-delay child: causally ordered after everything the
            # current event is ordered after, plus the current event.
            parent = id(cur.fn)  # repro: ignore[RPR010] -- identity token, pinned by the event record
            anc = self._ancestors.get(key)
            lineage = self._ancestors.get(parent)
            fresh = {parent} if lineage is None else lineage | {parent}
            self._ancestors[key] = fresh if anc is None else anc | fresh

    def _on_pop(self, now: int, fn) -> None:
        if now != self._group_time:
            self._flush()
            self._group_time = now
        key = id(fn)  # repro: ignore[RPR010] -- identity token, never ordered or persisted
        cat = None
        rec = self._cats.get(key)
        if rec is not None:
            cat = rec[0]
            rec[1] -= 1
            if rec[1] <= 0:
                del self._cats[key]
        phase = 0 if cat in ACCOUNTING_CATS else 1
        ev = _EventRec(fn, _fn_label(fn), phase)
        self._group.append(ev)
        self.cur = ev

    # ------------------------------------------------------------------
    # Tie-group analysis
    # ------------------------------------------------------------------
    def _flush(self) -> None:
        group = self._group
        self.cur = None
        if len(group) >= 2:
            self.groups_checked += 1
            anc = self._ancestors
            n = len(group)
            for i in range(n):
                a = group[i]
                if not (a.writes or a.reads):
                    continue
                a_key = id(a.fn)  # repro: ignore[RPR010] -- identity token, group-local
                a_anc = anc.get(a_key, ())
                for j in range(i + 1, n):
                    b = group[j]
                    if a.phase != b.phase:
                        continue  # cross-phase pairs are ordered by design
                    b_key = id(b.fn)  # repro: ignore[RPR010] -- identity token, group-local
                    if a_key in anc.get(b_key, ()) or b_key in a_anc:
                        continue  # zero-delay causal chain: ordered
                    ww = a.writes & b.writes
                    rw = (a.reads & b.writes) | (b.reads & a.writes)
                    if ww or rw:
                        self._suspect(a, b, ww, rw)
        group.clear()
        # Ancestry is only meaningful within one timestamp.
        self._ancestors.clear()

    def _suspect(self, a: _EventRec, b: _EventRec, ww: set, rw: set) -> None:
        self.total_suspects += 1
        # Dedup by code pattern (callback qualnames + conflicting attribute
        # names), not by instance: one racy code path shows up once, not
        # once per process/VCPU pair per timestamp.
        pattern = (
            frozenset((a.label.partition("[")[0], b.label.partition("[")[0])),
            frozenset(attr for _obj, attr in ww),  # repro: ignore[RPR011] -- equality-only key
            frozenset(attr for _obj, attr in rw),  # repro: ignore[RPR011] -- equality-only key
        )
        if pattern in self._seen_pairs:
            return
        self._seen_pairs.add(pattern)
        if len(self.suspects) >= self.max_suspects:
            return
        conflicts = sorted(f"{obj}.{attr}" for obj, attr in (ww | rw))
        kind = "W-W" if ww else "R-W"
        self.suspects.append(
            Violation(
                code=SimSanitizer.RACE,
                time_ns=self._group_time,
                message=(
                    f"non-commuting same-timestamp pair: {a.label} vs {b.label} "
                    f"({kind} on {', '.join(conflicts)})"
                ),
                context={
                    "a": a.label,
                    "b": b.label,
                    "kind": kind,
                    "attrs": conflicts,
                },
            )
        )

    # ------------------------------------------------------------------
    # Attribute recording (called from the patched class methods)
    # ------------------------------------------------------------------
    def _label_obj(self, obj) -> str:
        key = id(obj)  # repro: ignore[RPR010] -- label cache key for live objects only
        label = self._obj_labels.get(key)
        if label is None:
            self._labeling = True
            try:
                name = getattr(obj, "name", None)
            except Exception:
                name = None
            finally:
                self._labeling = False
            if isinstance(name, str):
                label = name
            else:
                self._obj_counter += 1
                label = f"{type(obj).__name__.lower()}#{self._obj_counter}"
            self._obj_labels[key] = label
        return label


# ----------------------------------------------------------------------
# Class-level instrumentation
# ----------------------------------------------------------------------
def _patch_classes() -> None:
    """Install read/write recording on the tracked classes and the
    schedule methods.  Originals are stacked for :func:`_unpatch_classes`."""
    saved = _saved_methods

    orig_at = Simulator.at
    orig_post_at = Simulator.post_at

    def at(self, time, fn, cat=None):
        tr = _active
        if tr is not None and self is tr.sim:
            tr._on_schedule(int(time), fn, cat)
        return orig_at(self, time, fn, cat)

    def post_at(self, time, fn, cat=None):
        tr = _active
        if tr is not None and self is tr.sim:
            tr._on_schedule(int(time), fn, cat)
        return orig_post_at(self, time, fn, cat)

    saved.append((Simulator, "at", orig_at, True))
    saved.append((Simulator, "post_at", orig_post_at, True))
    Simulator.at = at
    Simulator.post_at = post_at

    for cls in TRACKED_CLASSES:
        attrs = _data_attrs(cls)
        had_get = "__getattribute__" in cls.__dict__
        had_set = "__setattr__" in cls.__dict__
        orig_get = cls.__getattribute__
        orig_set = cls.__setattr__

        def __getattribute__(self, name, _orig=orig_get, _attrs=attrs):
            value = _orig(self, name)
            tr = _active
            if tr is not None and name in _attrs and not tr._labeling:
                ev = tr.cur
                if ev is not None:
                    ev.reads.add((tr._label_obj(self), name))
            return value

        def __setattr__(self, name, value, _orig=orig_set, _attrs=attrs):
            tr = _active
            if tr is not None and name in _attrs and not tr._labeling:
                ev = tr.cur
                if ev is not None:
                    ev.writes.add((tr._label_obj(self), name))
            _orig(self, name, value)

        saved.append((cls, "__getattribute__", orig_get, had_get))
        saved.append((cls, "__setattr__", orig_set, had_set))
        cls.__getattribute__ = __getattribute__
        cls.__setattr__ = __setattr__


def _unpatch_classes() -> None:
    while _saved_methods:
        cls, name, orig, had_own = _saved_methods.pop()
        if had_own:
            setattr(cls, name, orig)
        else:
            delattr(cls, name)  # fall back to the inherited implementation


# ----------------------------------------------------------------------
# Tie-permutation differential
# ----------------------------------------------------------------------
def diff_values(forward, reverse, path: str = "") -> list[tuple[str, object, object]]:
    """Recursive leaf diff of two scenario result values.

    Returns ``(path, forward_value, reversed_value)`` triples; an empty
    list means the results are identical (order-independence confirmed
    for everything the scenario measures).
    """
    out: list[tuple[str, object, object]] = []
    if isinstance(forward, dict) and isinstance(reverse, dict):
        for key in sorted(set(forward) | set(reverse), key=str):
            sub = f"{path}.{key}" if path else str(key)
            if key not in forward:
                out.append((sub, "<missing>", reverse[key]))
            elif key not in reverse:
                out.append((sub, forward[key], "<missing>"))
            else:
                out.extend(diff_values(forward[key], reverse[key], sub))
    elif isinstance(forward, (list, tuple)) and isinstance(reverse, (list, tuple)):
        if len(forward) != len(reverse):
            out.append((f"{path}.len", len(forward), len(reverse)))
        for i, (fv, rv) in enumerate(zip(forward, reverse)):
            out.extend(diff_values(fv, rv, f"{path}[{i}]"))
    elif forward != reverse:
        out.append((path, forward, reverse))
    return out


def run_differential(
    scenario: str,
    params: dict,
    sanitize: bool = True,
    track: bool = True,
) -> dict:
    """Run one scenario forward (fifo) and reversed, diff the results.

    The forward run is sanitized and (when ``track``) executed under a
    :class:`TieRaceTracker`, so the report carries both *suspects*
    (SAN008 heuristic pairs) and *confirmed* order dependences (leaf
    diffs between the two runs).  Returns a plain dict::

        {"scenario", "params", "identical", "confirmed", "suspects",
         "suspects_total", "groups_checked"}
    """
    from repro.experiments.runner import SCENARIOS

    fn = SCENARIOS[scenario]
    tracker = TieRaceTracker() if track else None
    prev_hook = engine.on_simulator_created

    if tracker is not None:
        def _hook(sim: Simulator) -> None:
            if prev_hook is not None:
                prev_hook(sim)
            tracker.attach(sim)

        engine.on_simulator_created = _hook
    try:
        forward = fn(**params, sanitize=sanitize, tie_order="fifo")
    finally:
        engine.on_simulator_created = prev_hook
        if tracker is not None:
            tracker.detach()

    reverse = fn(**params, sanitize=sanitize, tie_order="reversed")
    confirmed = diff_values(forward, reverse)
    return {
        "scenario": scenario,
        "params": dict(params),
        "identical": not confirmed,
        "confirmed": [
            {"path": p, "forward": f, "reversed": r} for p, f, r in confirmed
        ],
        "suspects": [v.to_dict() for v in tracker.suspects] if tracker else [],
        "suspects_total": tracker.total_suspects if tracker else 0,
        "groups_checked": tracker.groups_checked if tracker else 0,
    }


#: Default cells for ``repro races``: type-A cells covering both the
#: paper's baseline (CR) and its contribution (ATC) that are expected to
#: be tie-order invariant — every same-timestamp group commutes.  Richer
#: contended cells (e.g. lock-heavy ``lu`` across 2+ shared nodes) carry
#: the inherent wake-vs-dispatch simultaneity documented in the module
#: docstring and are *expected* to report confirmed differences when run
#: explicitly.
DEFAULT_CELLS: tuple[dict, ...] = (
    {"scenario": "type_a", "params": {"app_name": "ep", "scheduler": "ATC", "n_nodes": 2, "rounds": 2, "warmup_rounds": 1}},
    {"scenario": "type_a", "params": {"app_name": "ep", "scheduler": "CR", "n_nodes": 2, "rounds": 2, "warmup_rounds": 1}},
    {"scenario": "type_a", "params": {"app_name": "bt", "scheduler": "ATC", "n_nodes": 2, "rounds": 2, "warmup_rounds": 1}},
    {"scenario": "type_a", "params": {"app_name": "lu", "scheduler": "ATC", "n_nodes": 1, "rounds": 2, "warmup_rounds": 1}},
)


def races_report(cells: Optional[Sequence[dict]] = None, track: bool = True) -> dict:
    """Run the differential over ``cells`` (default :data:`DEFAULT_CELLS`).

    Returns ``{"schema", "cells": [per-cell reports], "confirmed_total",
    "suspects_total", "clean"}`` — ``clean`` is True when no cell showed
    a confirmed order dependence (suspects alone do not fail a run; they
    are heuristic leads for inspection).
    """
    reports = [
        run_differential(c["scenario"], dict(c["params"]), track=track)
        for c in (DEFAULT_CELLS if cells is None else cells)
    ]
    confirmed_total = sum(len(r["confirmed"]) for r in reports)
    return {
        "schema": "repro.races/v1",
        "cells": reports,
        "confirmed_total": confirmed_total,
        "suspects_total": sum(r["suspects_total"] for r in reports),
        "clean": confirmed_total == 0,
    }
