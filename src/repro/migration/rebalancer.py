"""Periodic cluster-level rebalancing controller.

The rebalancer piggybacks on the VMM scheduling period instead of
scheduling its own events: its hook is appended to *every* node's
``period_hooks``, all period ticks fire at the same timestamps, and the
first live node's hook leads each round (the rest see the timestamp
already claimed and return).  Crashed nodes skip their hooks, so
leadership silently fails over to the next node index.  An idle control
plane therefore adds **zero** simulator events and zero RNG draws — a
world with a rebalancer that never migrates is bit-identical (including
the event count) to a world without the subsystem.

Every ``control_every``-th period the leader refreshes the health map
(sticky crash marks + currently degraded NICs, both from
:mod:`repro.faults` state), asks the configured policy for moves, and
starts them through the :class:`~repro.migration.engine.MigrationEngine`
under the concurrency budget and per-VM cooldown.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.migration.policies import POLICIES, policy_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld
    from repro.hypervisor.vm import VM
    from repro.migration.engine import MigrationConfig, MigrationEngine

__all__ = ["Rebalancer"]


class Rebalancer:
    """Drives a migration policy off the VMM period ticks."""

    def __init__(
        self, world: "CloudWorld", engine: "MigrationEngine", config: "MigrationConfig"
    ) -> None:
        if config.policy not in POLICIES:
            raise ValueError(
                f"unknown migration policy {config.policy!r}; known: "
                f"{', '.join(policy_names())} (or 'none')"
            )
        self.world = world
        self.sim = world.sim
        self.engine = engine
        self.cfg = config
        self.policy = POLICIES[config.policy]
        #: Sticky unhealthy-node marks in detection order (crashes stay
        #: marked after restart; degraded NICs while degraded).
        self.unhealthy: dict[int, None] = {}
        self._tick_seen_ns = -1
        self._ticks = 0
        self.control_rounds = 0
        self.migrations_requested = 0
        self.kicks = 0
        for vmm in world.vmms:
            vmm.period_hooks.append(self._on_period)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Deterministic rollup for scenario results."""
        return {
            "policy": self.cfg.policy,
            "control_rounds": self.control_rounds,
            "migrations_requested": self.migrations_requested,
            "kicks": self.kicks,
            "unhealthy_nodes": list(self.unhealthy),
        }

    # ------------------------------------------------------------------
    def _on_period(self, now: int) -> None:
        if now == self._tick_seen_ns:
            return  # a lower-indexed live node already led this round
        self._tick_seen_ns = now
        self._ticks += 1
        if self._ticks % self.cfg.control_every:
            return
        self._control(now)

    def kick(self, now: int) -> None:
        """Run an off-cycle control round immediately.

        The service layer's migration-aware admission calls this under
        admission pressure (no foreign-cluster-free placement exists for
        a new tenant), so a demix round can make room before the next
        scheduled ``control_every`` tick.  Draws no RNG and schedules no
        events beyond any migrations it starts.
        """
        self.kicks += 1
        self._control(now)

    def _control(self, now: int) -> None:
        self.control_rounds += 1
        for i, node in enumerate(self.world.cluster.nodes):
            if node.crashed and i not in self.unhealthy:
                self.unhealthy[i] = None
        for i in self.world.cluster.fabric.degraded_nodes:
            if i not in self.unhealthy:
                self.unhealthy[i] = None
        budget = self.cfg.max_concurrent - len(self.engine.active)
        if budget <= 0:
            return
        for vm, dst in self.policy(self.world, self):
            if budget <= 0:
                break
            if not self._eligible(vm) or vm.node.index == dst:
                continue
            if self.engine.start(vm, dst):
                self.migrations_requested += 1
                budget -= 1

    def _eligible(self, vm: "VM") -> bool:
        if vm.paused or vm.vmid in self.engine.active:
            return False
        last = self.engine.last_migrated_ns.get(vm.name)
        return last is None or self.sim.now - last >= self.cfg.cooldown_ns
    # A policy may propose a move computed from stale loads (another move
    # this round changed them); engine.start re-validates capacity and
    # returns False, and the controller simply tries the next candidate.
