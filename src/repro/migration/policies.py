"""Pluggable rebalancing policies.

A policy is a pure function ``policy(world, rebalancer) -> moves`` that
inspects the world (read-only) and returns an ordered list of proposed
``(vm, dst_node_idx)`` moves.  The :class:`~repro.migration.rebalancer.
Rebalancer` applies them front-to-back under its concurrency budget,
re-checking eligibility per move, so policies may over-propose.

Policies must be deterministic: no RNG, no set-order iteration, ties
broken by node index / vmid / insertion order.  Inputs are the signals
the cloud control plane can see without guest cooperation: the per-host
parallel-VM census (which virtual clusters share which node — the
hidden variable of Algorithm 2's per-host minimum), per-node VM load,
and the fault state (crashed nodes, degraded NICs) surfaced by
:mod:`repro.faults`.

* ``demix``    — hosts where two parallel clusters mix drag *both*
  clusters down to the stricter slice minimum; move the minority
  cluster's VM to a host owned by (or free for) its own cluster.
* ``consolidate`` — pack non-parallel VMs onto parallel-free hosts so
  parallel hosts stop paying mixed-tenancy overhead.
* ``evacuate`` — drain nodes that have been marked unhealthy (a
  ``node_crash`` observed, or a currently degraded NIC).  Crash marks
  are sticky: VMs are moved off as soon as the node is back up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld
    from repro.hypervisor.vm import VM
    from repro.migration.rebalancer import Rebalancer

__all__ = ["POLICIES", "policy_names", "parallel_census", "demix", "consolidate", "evacuate"]


def parallel_census(world: "CloudWorld") -> dict[int, dict[str, list["VM"]]]:
    """``{node_idx: {cluster_name: [VMs...]}}`` for parallel VMs.

    Built by walking virtual clusters in creation order and VMs in
    cluster order, so every nested container is insertion-ordered and
    iteration is deterministic.
    """
    census: dict[int, dict[str, list["VM"]]] = {}
    for vc in world.virtual_clusters:
        for vm in vc.vms:
            census.setdefault(vm.node.index, {}).setdefault(vc.name, []).append(vm)
    return census


def demix(world: "CloudWorld", rb: "Rebalancer") -> list[tuple["VM", int]]:
    """Separate parallel clusters sharing a host.

    For each node hosting ≥ 2 parallel clusters, the *minority* cluster
    (fewest VMs there; insertion order breaks ties) donates its
    lowest-vmid VM.  Destinations are ranked: nodes already hosting the
    victim's cluster first, then fewest parallel clusters, then lowest
    load, then lowest index — and must not host any *other* parallel
    cluster (moving the mix elsewhere would be churn, not progress).
    """
    census = parallel_census(world)
    nodes = world.cluster.nodes
    cap = world.config.vms_per_node
    load = world._node_vm_load
    moves: list[tuple["VM", int]] = []
    for node_idx in sorted(census):
        if nodes[node_idx].crashed:
            continue
        clusters = census[node_idx]
        if len(clusters) < 2:
            continue
        victim = min(clusters, key=lambda c: len(clusters[c]))
        vm = min(clusters[victim], key=lambda v: v.vmid)
        best = None
        for i in range(len(nodes)):
            if i == node_idx or nodes[i].crashed or load[i] >= cap:
                continue
            here = set(census.get(i, {}))
            if not here <= {victim}:
                continue
            key = (0 if victim in here else 1, len(here), load[i], i)
            if best is None or key < best[0]:
                best = (key, i)
        if best is not None:
            moves.append((vm, best[1]))
    return moves


def consolidate(world: "CloudWorld", rb: "Rebalancer") -> list[tuple["VM", int]]:
    """Move non-parallel VMs off hosts that also run parallel VMs, onto
    the most-loaded parallel-free host with capacity (tightest pack)."""
    census = parallel_census(world)
    nodes = world.cluster.nodes
    cap = world.config.vms_per_node
    load = world._node_vm_load
    moves: list[tuple["VM", int]] = []
    for vm in world.vms:  # creation order
        if vm.is_parallel or vm.is_dom0:
            continue
        src = vm.node.index
        if src not in census or nodes[src].crashed:
            continue
        best = None
        for i in range(len(nodes)):
            if i == src or i in census or nodes[i].crashed or load[i] >= cap:
                continue
            key = (-load[i], i)
            if best is None or key < best[0]:
                best = (key, i)
        if best is not None:
            moves.append((vm, best[1]))
    return moves


def evacuate(world: "CloudWorld", rb: "Rebalancer") -> list[tuple["VM", int]]:
    """Drain unhealthy nodes (see :attr:`Rebalancer.unhealthy`) onto the
    least-loaded healthy node, lowest vmid first.  Nodes currently down
    are skipped — their VMs are frozen — and drained after restart."""
    nodes = world.cluster.nodes
    cap = world.config.vms_per_node
    load = world._node_vm_load
    moves: list[tuple["VM", int]] = []
    for src in rb.unhealthy:  # detection order
        if nodes[src].crashed:
            continue
        for vm in sorted(world.vmms[src].guest_vms, key=lambda v: v.vmid):
            best = None
            for i in range(len(nodes)):
                if i in rb.unhealthy or nodes[i].crashed or load[i] >= cap:
                    continue
                key = (load[i], i)
                if best is None or key < best[0]:
                    best = (key, i)
            if best is not None:
                moves.append((vm, best[1]))
    return moves


#: Policy registry: name -> policy(world, rebalancer) -> [(vm, dst), ...].
POLICIES: dict[str, Callable[["CloudWorld", "Rebalancer"], list[tuple["VM", int]]]] = {
    "demix": demix,
    "consolidate": consolidate,
    "evacuate": evacuate,
}


def policy_names() -> list[str]:
    return sorted(POLICIES)
