"""Live VM migration and dynamic placement control plane.

The paper's mixed-tenancy results (Figs. 11-14) hinge on *which* VMs
share a host: Algorithm 2 takes the minimum slice over all co-resident
parallel VMs, so placement is the hidden variable behind every number.
This subsystem makes placement dynamic: a deterministic pre-copy
live-migration model (:mod:`repro.migration.engine`) plus a periodic
cluster-level rebalancer (:mod:`repro.migration.rebalancer`) driving
migrations under pluggable policies (:mod:`repro.migration.policies`).

Everything is zero-entropy when idle: constructing the engine and
rebalancer adds no simulator events and draws no RNG, so a run with the
subsystem enabled but never triggered is bit-identical to a run without
it.
"""

from repro.migration.engine import (
    Migration,
    MigrationConfig,
    MigrationEngine,
    MigrationParams,
)
from repro.migration.policies import POLICIES, parallel_census, policy_names
from repro.migration.rebalancer import Rebalancer

__all__ = [
    "Migration",
    "MigrationConfig",
    "MigrationEngine",
    "MigrationParams",
    "POLICIES",
    "parallel_census",
    "policy_names",
    "Rebalancer",
]
