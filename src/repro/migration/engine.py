"""Deterministic pre-copy live migration of guest VMs.

The model follows the classic Xen/KVM pre-copy scheme:

1. *Pre-copy rounds*: the VM keeps running while its memory image is
   streamed to the destination as real :meth:`Fabric.transmit
   <repro.cluster.network.Fabric.transmit>` traffic (chunked, so
   migration competes with — and is slowed by — application packets on
   the same NIC).  While a round is in flight the guest keeps dirtying
   pages at ``dirty_bytes_per_s``; whatever got dirtied must be re-sent
   in the next round.
2. *Stop-and-copy*: once the dirty residue falls below
   ``stop_copy_threshold_bytes`` (or the round budget is exhausted), the
   VM is paused — the PR-4 latch-and-replay freeze, so in-flight wakes
   and packets are latched, not lost — and the residue is copied in one
   final transfer.
3. *Handoff*: the VM is deregistered from the source VMM, re-homed on
   the destination node (VCPU run-queue homes recomputed), registered
   with the destination VMM, and resumed there.  The ATC / vSlicer
   per-host controls are re-triggered on *both* hosts so the Algorithm 2
   minimum adapts to the new census immediately instead of waiting for
   the next period.

Downtime is exactly the stop-and-copy pause window; the engine records
both the per-VM total and every ``(pause_ns, resume_ns)`` interval so
conservation can be asserted (see ``tests/test_migration.py``).

Determinism: the engine draws no RNG anywhere.  All durations derive
from the fabric's bandwidth model and integer arithmetic on the
simulation clock.  An idle engine schedules no events.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.hypervisor.vm import VCPUState, VM
from repro.obs import trace as obstrace
from repro.sim.units import MSEC, SEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld

__all__ = [
    "MigrationParams",
    "MigrationConfig",
    "Migration",
    "MigrationEngine",
    "per_vcpu_params",
]

MIB = 1 << 20


def per_vcpu_params(
    base: "MigrationParams | None" = None, mem_bytes_per_vcpu: int = 8 * MIB
) -> "MigrationParams":
    """A :class:`MigrationParams` with VCPU-scaled memory footprints.

    The default cost model keeps ``mem_bytes_per_vcpu=0`` for
    bit-identity with historical runs; controllers that relocate VMs of
    very different shapes (DFRS) use this so a 16-VCPU VM costs more
    fabric traffic to move than a 1-VCPU VM."""
    from dataclasses import replace

    return replace(base or MigrationParams(), mem_bytes_per_vcpu=mem_bytes_per_vcpu)


@dataclass(frozen=True)
class MigrationParams:
    """Cost model of one live migration."""

    #: Guest memory image base size to transfer in round 1.
    mem_bytes: int = 64 * MIB
    #: Additional image size per VCPU: a 16-VCPU VM carries more state
    #: (and costs more fabric traffic to move) than a 1-VCPU VM.  The
    #: default 0 keeps the historical fixed-size cost model bit-identical;
    #: DFRS-triggered moves enable it (see ``per_vcpu_params``).
    mem_bytes_per_vcpu: int = 0
    #: Rate at which the running guest dirties pages during pre-copy.
    dirty_bytes_per_s: int = 8 * MIB
    #: Stop-and-copy when the dirty residue falls below this.
    stop_copy_threshold_bytes: int = 1 * MIB
    #: Hard cap on pre-copy rounds (then stop-and-copy regardless).
    max_precopy_rounds: int = 8
    #: Transfer granularity; each chunk is a separate fabric message, so
    #: application packets interleave with the migration stream.
    chunk_bytes: int = 1 * MIB
    #: Destination-side activation cost after the final copy arrives
    #: (device re-attach, ARP announce, ...); part of downtime.
    activation_ns: int = 50 * USEC
    #: Abort the migration if it has not completed by then (covers
    #: streams stalled by crashed destinations or dead links).
    abort_timeout_ns: int = 30 * SEC

    def mem_for(self, vm: "VM") -> int:
        """Memory image size for migrating ``vm``: the base image plus
        the per-VCPU component (0 unless configured)."""
        return self.mem_bytes + self.mem_bytes_per_vcpu * len(vm.vcpus)


@dataclass(frozen=True)
class MigrationConfig:
    """Control-plane configuration (WorldConfig.migration)."""

    #: Rebalancing policy name (repro.migration.policies) or ``"none"``
    #: for an engine with no controller (manual ``engine.start`` only).
    policy: str = "none"
    #: Run the control loop every N VMM periods.
    control_every: int = 2
    #: Maximum simultaneously in-flight migrations.
    max_concurrent: int = 1
    #: Minimum time between two migrations of the same VM.
    cooldown_ns: int = 500 * MSEC
    params: MigrationParams = field(default_factory=MigrationParams)

    def to_dict(self) -> dict:
        return {
            "policy": self.policy,
            "control_every": self.control_every,
            "max_concurrent": self.max_concurrent,
            "cooldown_ns": self.cooldown_ns,
            "params": asdict(self.params),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MigrationConfig":
        d = dict(d)
        params = d.pop("params", None)
        if isinstance(params, dict):
            params = MigrationParams(**params)
        return cls(params=params or MigrationParams(), **d)


class Migration:
    """State of one in-flight migration."""

    __slots__ = (
        "vm",
        "src",
        "dst",
        "start_ns",
        "round_no",
        "mem_bytes",
        "remaining",
        "bytes_sent",
        "round_started_ns",
        "pause_start_ns",
        "abort_ev",
        "done",
        "aborted",
    )

    def __init__(self, vm: VM, src: int, dst: int, start_ns: int) -> None:
        self.vm = vm
        self.src = src
        self.dst = dst
        self.start_ns = start_ns
        self.round_no = 1
        self.mem_bytes = 0
        self.remaining = 0
        self.bytes_sent = 0
        self.round_started_ns = start_ns
        self.pause_start_ns: Optional[int] = None
        self.abort_ev = None
        self.done = False
        self.aborted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Migration {self.vm.name} {self.src}->{self.dst} round={self.round_no}>"


class MigrationEngine:
    """Executes live migrations on a wired :class:`CloudWorld`."""

    def __init__(self, world: "CloudWorld", params: MigrationParams | None = None) -> None:
        self.world = world
        self.sim = world.sim
        self.params = params or MigrationParams()
        #: In-flight migrations by vmid (insertion-ordered).
        self.active: dict[int, Migration] = {}
        self.started = 0
        self.completed = 0
        self.aborted = 0
        self.precopy_rounds = 0
        self.bytes_copied = 0
        #: Accumulated stop-and-copy downtime per VM name.
        self.downtime_by_vm: dict[str, int] = {}
        #: Every (pause_ns, resume_ns) stop-and-copy interval per VM name
        #: — conservation: sum of interval lengths == downtime_by_vm.
        self.pause_intervals: dict[str, list[tuple[int, int]]] = {}
        #: Completion (or abort) time per VM name, for cooldown checks.
        self.last_migrated_ns: dict[str, int] = {}
        #: SAN007-style window violations found by the engine itself when
        #: no sanitizer is attached (strings; tests assert empty).
        self.violations: list[str] = []

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Deterministic rollup for scenario results."""
        return {
            "started": self.started,
            "completed": self.completed,
            "aborted": self.aborted,
            "precopy_rounds": self.precopy_rounds,
            "bytes_copied": self.bytes_copied,
            "downtime_total_ns": sum(self.downtime_by_vm.values()),
            "downtime_ns": {k: self.downtime_by_vm[k] for k in sorted(self.downtime_by_vm)},
        }

    # ------------------------------------------------------------------
    def start(self, vm: VM, dst_idx: int) -> bool:
        """Begin migrating ``vm`` to node ``dst_idx``.

        Structural misuse (dom0, unknown node, src == dst) raises;
        transient ineligibility (already migrating, VM paused, a node
        crashed, destination full) returns ``False`` so policies can
        simply try their next candidate.
        """
        nodes = self.world.cluster.nodes
        if vm.is_dom0:
            raise ValueError(f"{vm.name}: dom0 cannot be migrated")
        if not 0 <= dst_idx < len(nodes):
            raise ValueError(f"no node {dst_idx} (cluster has {len(nodes)})")
        src_idx = vm.node.index
        if dst_idx == src_idx:
            raise ValueError(f"{vm.name}: already on node {dst_idx}")
        if vm.vmid in self.active or vm.paused:
            return False
        if nodes[src_idx].crashed or nodes[dst_idx].crashed:
            return False
        if self.world._node_vm_load[dst_idx] >= self.world.config.vms_per_node:
            return False
        self.world._node_vm_load[dst_idx] += 1  # reserve the slot now
        m = Migration(vm, src_idx, dst_idx, self.sim.now)
        m.mem_bytes = self.params.mem_for(vm)
        m.remaining = m.mem_bytes
        self.active[vm.vmid] = m
        self.started += 1
        m.abort_ev = self.sim.after(
            self.params.abort_timeout_ns, lambda: self._abort(m, "timeout"), cat="migration"
        )
        if obstrace.enabled:
            obstrace.emit(
                "migrate.start",
                self.sim.now,
                vm=vm.name,
                src=src_idx,
                dst=dst_idx,
                mem_bytes=m.mem_bytes,
            )
        self._send_chunk(m, m.remaining)
        return True

    # -- pre-copy --------------------------------------------------------
    def _send_chunk(self, m: Migration, left: int) -> None:
        if m.done:
            return
        chunk = min(left, self.params.chunk_bytes)
        self.world.cluster.fabric.transmit(
            m.src, m.dst, chunk, lambda: self._chunk_arrived(m, chunk, left - chunk)
        )

    def _chunk_arrived(self, m: Migration, chunk: int, left: int) -> None:
        if m.done:
            return
        m.bytes_sent += chunk
        self.bytes_copied += chunk
        if left > 0:
            self._send_chunk(m, left)
        else:
            self._round_done(m)

    def _round_done(self, m: Migration) -> None:
        now = self.sim.now
        elapsed = now - m.round_started_ns
        dirtied = min(
            m.mem_bytes, self.params.dirty_bytes_per_s * elapsed // SEC
        )
        self.precopy_rounds += 1
        if obstrace.enabled:
            obstrace.emit(
                "migrate.round",
                now,
                vm=m.vm.name,
                round=m.round_no,
                sent_bytes=m.remaining,
                dirtied_bytes=dirtied,
                elapsed_ns=elapsed,
            )
        m.remaining = dirtied
        if dirtied <= self.params.stop_copy_threshold_bytes or m.round_no >= self.params.max_precopy_rounds:
            self._stop_copy(m)
        else:
            m.round_no += 1
            m.round_started_ns = now
            self._send_chunk(m, m.remaining)

    # -- stop-and-copy ---------------------------------------------------
    def _stop_copy(self, m: Migration) -> None:
        vm = m.vm
        vm.node.vmm.pause_vm(vm)
        m.pause_start_ns = self.sim.now
        final = max(1, m.remaining)
        self.world.cluster.fabric.transmit(
            m.src, m.dst, final, lambda: self._final_arrived(m, final)
        )

    def _final_arrived(self, m: Migration, final: int) -> None:
        if m.done:
            return
        m.bytes_sent += final
        self.bytes_copied += final
        self.sim.after(self.params.activation_ns, lambda: self._finish(m), cat="migration")

    def _finish(self, m: Migration) -> None:
        if m.done:
            return
        vm = m.vm
        now = self.sim.now
        world = self.world
        dst_node = world.cluster.nodes[m.dst]
        if dst_node.crashed:
            self._abort(m, "dst_crashed")
            return
        # SAN007 window integrity: the VM must have stayed frozen for the
        # whole stop-and-copy phase (a node restart force-clearing the
        # pause depth would break this).
        if not vm.paused or any(v.state is not VCPUState.BLOCKED for v in vm.vcpus):
            self._violate(
                f"{vm.name}: stop-and-copy window broken at t={now} "
                f"(paused={vm.paused})"
            )
        if m.abort_ev is not None:
            m.abort_ev.cancel()
            m.abort_ev = None
        src_vmm = world.vmms[m.src]
        dst_vmm = world.vmms[m.dst]
        # Deregister from the source: VMM roster, per-node load, and any
        # vmid-keyed scheduler state (vSlicer's LS set).
        src_vmm.vms.remove(vm)
        world._node_vm_load[m.src] -= 1
        ls = getattr(src_vmm.scheduler, "ls_vms", None)
        if ls is not None:
            ls.pop(vm.vmid, None)
        # Re-home: node pointer and VCPU run-queue homes.
        vm.node = dst_node
        for i, vcpu in enumerate(vm.vcpus):
            vcpu.pcpu = None
            vcpu.rq = i % len(dst_node.pcpus)
        dst_vmm.add_vm(vm)
        # Downtime accounting (conserved: total == sum of intervals).
        downtime = now - m.pause_start_ns
        self.downtime_by_vm[vm.name] = self.downtime_by_vm.get(vm.name, 0) + downtime
        self.pause_intervals.setdefault(vm.name, []).append((m.pause_start_ns, now))
        if obstrace.enabled:
            obstrace.emit(
                "migrate.downtime",
                now,
                vm=vm.name,
                src=m.src,
                dst=m.dst,
                downtime_ns=downtime,
            )
        dst_vmm.resume_vm(vm)
        # The host census changed on both sides: re-run the per-host slice
        # minimum (Algorithm 2) instead of waiting for the next period.
        self._retrigger(src_vmm)
        self._retrigger(dst_vmm)
        m.done = True
        self.active.pop(vm.vmid, None)
        self.completed += 1
        self.last_migrated_ns[vm.name] = now
        if obstrace.enabled:
            obstrace.emit(
                "migrate.done",
                now,
                vm=vm.name,
                src=m.src,
                dst=m.dst,
                status="completed",
                rounds=m.round_no,
                bytes=m.bytes_sent,
                total_ns=now - m.start_ns,
            )

    def _retrigger(self, vmm) -> None:
        """Re-run the scheduler's slice controller off-cycle, if it has
        one (ATC).  The ATC controller's on_period is a pure slice pass —
        no credit accounting — so this is safe between periods."""
        controller = getattr(vmm.scheduler, "controller", None)
        if controller is not None and not vmm.node.crashed:
            controller.on_period(self.sim.now)

    # -- abort -----------------------------------------------------------
    def cancel(self, vm: VM, reason: str = "cancelled") -> bool:
        """Abort the in-flight migration of ``vm``, if any.

        Used by ``CloudWorld.teardown_vm`` when a tenant departs while
        one of its VMs is mid-migration: the destination reservation is
        released and a stop-and-copy pause (if open) is resumed before
        the caller re-freezes the VM for good.  Returns ``True`` when a
        migration was actually aborted.
        """
        m = self.active.get(vm.vmid)
        if m is None:
            return False
        self._abort(m, reason)
        return True

    def _abort(self, m: Migration, reason: str) -> None:
        if m.done:
            return
        m.done = True
        m.aborted = True
        now = self.sim.now
        if m.abort_ev is not None:
            m.abort_ev.cancel()
            m.abort_ev = None
        self.world._node_vm_load[m.dst] -= 1  # release the reservation
        vm = m.vm
        if m.pause_start_ns is not None:
            downtime = now - m.pause_start_ns
            self.downtime_by_vm[vm.name] = self.downtime_by_vm.get(vm.name, 0) + downtime
            self.pause_intervals.setdefault(vm.name, []).append((m.pause_start_ns, now))
            vm.node.vmm.resume_vm(vm)
        self.active.pop(vm.vmid, None)
        self.aborted += 1
        self.last_migrated_ns[vm.name] = now
        if obstrace.enabled:
            obstrace.emit(
                "migrate.done",
                now,
                vm=vm.name,
                src=m.src,
                dst=m.dst,
                status=f"aborted:{reason}",
                rounds=m.round_no,
                bytes=m.bytes_sent,
                total_ns=now - m.start_ns,
            )

    # ------------------------------------------------------------------
    def _violate(self, message: str) -> None:
        sanitizer = getattr(self.world, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.record(sanitizer.MIGRATION, message)
        else:
            self.violations.append(message)
