"""Guest kernel: process table and spinlock-latency accounting.

The paper instruments the guest Linux kernel to measure spinlock latency
and exports it to the VMM ("an intrusive monitoring method in the OS
kernel", Section VI).  :class:`GuestKernel` is that monitor: every
completed spin wait (lock, barrier-generation, or busy-wait receive — the
synchronization phases of the BSP model, Section II-B) is accumulated, and
the VMM-side ATC monitor drains the accumulator once per scheduling
period to obtain the *average spinlock latency of the VM during that
period* — the exact input of Algorithm 1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.guest.process import GuestProcess
from repro.obs import trace as obstrace
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.dom0 import Packet
    from repro.hypervisor.vm import VM
    from repro.sim.engine import Simulator

__all__ = ["GuestKernel"]


class GuestKernel:
    """Guest OS instance for one VM; pins process *i* to VCPU *i*."""

    __slots__ = (
        "sim",
        "vm",
        "spin_block_ns",
        "processes",
        "period_spin_ns",
        "period_spin_count",
        "total_spin_ns",
        "total_spin_count",
        "spin_by_kind",
        "packet_log",
    )

    def __init__(self, sim: "Simulator", vm: "VM", spin_block_ns: "int | None" = 20 * MSEC) -> None:
        """``spin_block_ns`` is the PV-spinlock grace budget: CPU time a
        waiter spins before blocking on its event channel (Xen PV guests
        and MPI runtimes both spin-then-yield).  ``None`` = spin forever
        (pure busy-waiting, for ablations)."""
        self.sim = sim
        self.vm = vm
        self.spin_block_ns = spin_block_ns
        vm.kernel = self
        self.processes: list[GuestProcess] = []
        self.period_spin_ns = 0
        self.period_spin_count = 0
        self.total_spin_ns = 0
        self.total_spin_count = 0
        self.spin_by_kind: dict[str, int] = {}
        #: When set to a list, every delivered packet is appended — used by
        #: the Fig. 4 overhead-source probe to read per-hop timestamps.
        self.packet_log: list | None = None

    # ------------------------------------------------------------------
    def add_process(self, cache_sensitivity: float = 1.0) -> GuestProcess:
        """Create a process pinned to the next free VCPU."""
        idx = len(self.processes)
        if idx >= len(self.vm.vcpus):
            raise RuntimeError(
                f"{self.vm.name}: more processes ({idx + 1}) than VCPUs ({len(self.vm.vcpus)})"
            )
        proc = GuestProcess(self, idx, cache_sensitivity)
        self.processes.append(proc)
        return proc

    # ------------------------------------------------------------------
    # Network receive (Fig. 4 step 10-11)
    # ------------------------------------------------------------------
    def deliver(self, pkt: "Packet") -> None:
        if self.packet_log is not None:
            self.packet_log.append(pkt)
        proc = self.processes[pkt.dst_proc]
        proc.on_message(pkt)

    # ------------------------------------------------------------------
    # Spinlock-latency monitor
    # ------------------------------------------------------------------
    def record_spin_wait(self, wait_ns: int, kind: str) -> None:
        if obstrace.enabled:
            obstrace.emit(
                "spin.episode",
                self.sim.now,
                node=self.vm.node.index,
                vm=self.vm.name,
                spin_kind=kind,
                wait_ns=wait_ns,
            )
        self.period_spin_ns += wait_ns
        self.period_spin_count += 1
        self.total_spin_ns += wait_ns
        self.total_spin_count += 1
        self.spin_by_kind[kind] = self.spin_by_kind.get(kind, 0) + wait_ns

    def drain_period_spin(self) -> tuple[int, int]:
        """Return ``(total_wait_ns, completed_waits)`` for the period just
        ended, and reset the period accumulator.  Called by the VMM-side
        monitor once per scheduling period."""
        stats = (self.period_spin_ns, self.period_spin_count)
        self.period_spin_ns = 0
        self.period_spin_count = 0
        return stats

    @property
    def avg_spin_ns(self) -> float:
        """Lifetime average spin latency (reporting only)."""
        if self.total_spin_count == 0:
            return 0.0
        return self.total_spin_ns / self.total_spin_count
