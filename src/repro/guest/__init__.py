"""Guest layer: kernel, processes, spinlocks — including the spinlock
latency monitor that feeds the ATC controller."""

from repro.guest.kernel import GuestKernel
from repro.guest.process import (
    GuestProcess,
    Segment,
    barrier,
    call,
    compute,
    disk,
    lock,
    recv,
    recv_block,
    send,
    sleep,
)
from repro.guest.spinlock import SpinBarrier, SpinLock

__all__ = [
    "GuestKernel",
    "GuestProcess",
    "Segment",
    "SpinBarrier",
    "SpinLock",
    "barrier",
    "call",
    "compute",
    "disk",
    "lock",
    "recv",
    "recv_block",
    "send",
    "sleep",
]
