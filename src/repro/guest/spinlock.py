"""Guest-kernel spinlocks and spin barriers, with lock-holder preemption.

These primitives reproduce the synchronization behaviour the paper builds
on (Section II-B1, Figure 3):

* A ticket-style :class:`SpinLock`: waiters *spin* — their VCPU keeps
  consuming PCPU time — and on release the lock is handed FIFO to the next
  waiter.  If that waiter's VCPU is descheduled, the lock is now held by a
  non-running VCPU: the classic LHP cascade that makes over-committed SMP
  VMs slow.  A waiter only *proceeds* (and its spinlock latency is only
  complete) when its VCPU actually runs again, so the Fig. 3 scenario —
  spinlock latency = 3 time slices when the holder is preempted — falls
  out of the model.

* A :class:`SpinBarrier`: the BSP synchronization phase.  Arrival requires
  taking the internal spinlock for a short critical section (incrementing
  the arrival count), then spinning on the generation counter until the
  last arrival flips it.  Both the lock wait and the generation wait are
  recorded as spinlock latency by the guest kernel, which is exactly the
  signal the paper's intrusive monitor exports to the VMM.

The actual spinning/resumption mechanics live in
:class:`repro.guest.process.GuestProcess`; these classes only hold the
shared state and waiter queues.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.units import USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.process import GuestProcess

__all__ = ["SpinLock", "SpinBarrier"]


class SpinLock:
    """FIFO (ticket-style) spinlock shared by processes of one VM."""

    __slots__ = ("name", "holder", "waiters", "acquisitions", "contended_acquisitions")

    def __init__(self, name: str = "lock") -> None:
        self.name = name
        self.holder: "GuestProcess | None" = None
        self.waiters: deque["GuestProcess"] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, proc: "GuestProcess") -> bool:
        """Try to take the lock.  Returns True if acquired immediately;
        otherwise the caller is queued and must spin until granted."""
        if self.holder is None:
            self.holder = proc
            self.acquisitions += 1
            return True
        if proc is self.holder:
            raise RuntimeError(f"{self.name}: recursive acquire by {proc.name}")
        self.waiters.append(proc)
        self.contended_acquisitions += 1
        return False

    def release(self, proc: "GuestProcess") -> None:
        """Release and hand off FIFO.  The new holder is notified; it
        proceeds once its VCPU runs (ticket-lock LHP semantics)."""
        if self.holder is not proc:
            raise RuntimeError(
                f"{self.name}: release by {proc.name} but holder is "
                f"{self.holder.name if self.holder else None}"
            )
        if self.waiters:
            nxt = self.waiters.popleft()
            self.holder = nxt
            self.acquisitions += 1
            nxt._lock_granted(self)
        else:
            self.holder = None


class SpinBarrier:
    """Spinlock-protected arrival counter + generation spin (BSP barrier)."""

    __slots__ = ("name", "n", "count", "generation", "lock", "gen_waiters", "hold_ns", "crossings")

    def __init__(self, n: int, name: str = "barrier", hold_ns: int = 1 * USEC) -> None:
        if n < 1:
            raise ValueError(f"barrier size must be >= 1, got {n}")
        self.name = name
        self.n = n
        self.count = 0
        self.generation = 0
        self.lock = SpinLock(f"{name}.lock")
        self.gen_waiters: list["GuestProcess"] = []
        #: Length of the critical section each arrival holds the lock for.
        #: This is the window in which lock-holder preemption can strike.
        self.hold_ns = hold_ns
        self.crossings = 0
