"""Guest processes: preemptible programs pinned 1:1 to VCPUs.

A *program* is a Python generator yielding **segments** — the primitive
actions a guest process performs.  Segment constructors:

``compute(ns)``
    Burn ``ns`` of CPU (preemptible; survives slice ends with partial
    progress, and pays context-switch + LLC-refill overhead on each
    re-dispatch).
``lock(lk, hold_ns)``
    Acquire spinlock ``lk`` (spinning if contended), hold it for a
    ``hold_ns`` critical section, release.
``barrier(bar)``
    BSP barrier: lock-protected arrival + generation spin.
``send(dst_vm, dst_proc, nbytes, tag=0)``
    Asynchronous message through the Fig. 4 dom0 path.
``recv(n=1)``
    MPI-style **busy-wait** receive of ``n`` messages: the VCPU keeps
    spinning (consuming its slice) until the messages arrive *and* the
    VCPU is running.  Wait time is recorded as sync/spin latency.
``recv_block(n=1)``
    Blocking receive (servers): the VCPU sleeps until a message arrives.
``sleep(ns)``
    Block the VCPU for ``ns`` (timers, think time).
``disk(nbytes)``
    Synchronous block I/O through dom0's blkback and the node disk.
``call(fn)``
    Run ``fn(now_ns)`` instantly — for metric hooks; must not wake VCPUs.

Reentrancy/correctness invariants (see :mod:`repro.hypervisor.vmm`):

* ``_advance`` (the segment interpreter) only ever runs from events owned
  by this process while its VCPU is RUNNING;
* condition resolutions arriving while the VCPU is descheduled are latched
  (``_granted`` / mailbox count) and resolved by a zero-delay poll at the
  next dispatch — which is what makes spinlock latency depend on the
  *scheduler*, the paper's core phenomenon;
* after any side effect that may wake another VCPU (``send``), the
  interpreter re-checks that it is still RUNNING, because a wake can
  preempt the sender's own PCPU synchronously.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.guest.spinlock import SpinBarrier, SpinLock
from repro.hypervisor.dom0 import Packet
from repro.hypervisor.vm import VCPUState

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.kernel import GuestKernel

__all__ = [
    "GuestProcess",
    "Segment",
    "compute",
    "lock",
    "barrier",
    "send",
    "recv",
    "recv_block",
    "sleep",
    "disk",
    "call",
]

Segment = tuple

#: Max consecutive ``compute`` segments coalesced into one timer (bounds
#: how far ahead of the clock a program generator body is executed).
COMPUTE_BATCH_MAX = 1024


# ----------------------------------------------------------------------
# Segment constructors (the program-author API)
# ----------------------------------------------------------------------
def compute(ns: int) -> Segment:
    """Burn ``ns`` of CPU (preemptible, survives slice ends)."""
    return ("compute", int(ns))


def lock(lk: SpinLock, hold_ns: int) -> Segment:
    """Acquire ``lk`` (spinning if contended), hold ``hold_ns``, release."""
    return ("lock", lk, int(hold_ns))


def barrier(bar: SpinBarrier) -> Segment:
    """Cross the BSP spin barrier (lock-protected arrival + generation spin)."""
    return ("barrier", bar)


def send(dst_vm, dst_proc: int, nbytes: int, tag: int = 0) -> Segment:
    """Asynchronously send ``nbytes`` to a peer process via the dom0 path."""
    return ("send", dst_vm, dst_proc, int(nbytes), tag)


def recv(n: int = 1) -> Segment:
    """Busy-wait (MPI-style) receive of ``n`` messages."""
    return ("recv", int(n))


def recv_block(n: int = 1) -> Segment:
    """Blocking receive of ``n`` messages (the VCPU sleeps)."""
    return ("recv_block", int(n))


def sleep(ns: int) -> Segment:
    """Block the VCPU for ``ns`` nanoseconds."""
    return ("sleep", int(ns))


def disk(nbytes: int) -> Segment:
    """Synchronous block I/O of ``nbytes`` through dom0's blkback."""
    return ("disk", int(nbytes))


def call(fn: Callable[[int], None]) -> Segment:
    """Run ``fn(now_ns)`` inline (metric hooks; must not wake VCPUs)."""
    return ("call", fn)


# ----------------------------------------------------------------------
class GuestProcess:
    """One guest process, pinned to one VCPU of its VM."""

    __slots__ = (
        "sim",
        "kernel",
        "vm",
        "vcpu",
        "index",
        "name",
        "cache_sensitivity",
        "on_done",
        "done",
        "_program",
        "_pushback",
        "state",
        "_remaining",
        "_work_started",
        "_work_ev",
        "_poll_ev",
        "_spin_start",
        "_spin_kind",
        "_spin_cpu_used",
        "_grace_started",
        "_grace_ev",
        "_granted",
        "mailbox",
        "_unstamped",
        "_need",
        "_cur_lock",
        "_cur_hold",
        "_cur_barrier",
        "total_spin_ns",
        "messages_sent",
        "messages_received",
    )

    # states: init, ready, compute, lock_spin, crit, bar_lock_spin,
    #         bar_crit, bar_wait, recv_spin, recv_block, sleep, disk, done

    def __init__(self, kernel: "GuestKernel", index: int, cache_sensitivity: float = 1.0) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.vm = kernel.vm
        self.index = index
        self.vcpu = self.vm.vcpus[index]
        self.vcpu.runner = self
        self.name = f"{self.vm.name}.p{index}"
        self.cache_sensitivity = cache_sensitivity
        self.on_done: Optional[Callable[["GuestProcess"], None]] = None
        self.done = False
        self._program: Optional[Iterator[Segment]] = None
        self._pushback: Optional[Segment] = None
        self.state = "init"
        self._remaining = 0
        self._work_started = 0
        self._work_ev = None
        self._poll_ev = None
        self._spin_start = 0
        self._spin_kind = ""
        self._spin_cpu_used = 0
        self._grace_started = 0
        self._grace_ev = None
        self._granted = False
        self.mailbox = 0
        self._unstamped: list[Packet] = []
        self._need = 0
        self._cur_lock: Optional[SpinLock] = None
        self._cur_hold = 0
        self._cur_barrier: Optional[SpinBarrier] = None
        self.total_spin_ns = 0
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------
    def load_program(self, program: Iterator[Segment]) -> None:
        """Install a (new) program.  The process must be idle (init/done)."""
        if self.state not in ("init", "done"):
            raise RuntimeError(f"{self.name}: load_program while {self.state}")
        self._program = program
        self._pushback = None
        self.done = False
        self.state = "ready"

    def start(self) -> None:
        """Wake the VCPU so the program begins executing."""
        if self._program is None:
            raise RuntimeError(f"{self.name}: start() without a program")
        self.vcpu.wake()

    # ------------------------------------------------------------------
    # Runner protocol (called by the VMM)
    # ------------------------------------------------------------------
    def on_dispatch(self, now: int, overhead_ns: int) -> None:
        st = self.state
        if st in ("compute", "crit", "bar_crit"):
            self._remaining += overhead_ns
            self._work_started = now
            self._work_ev = self.sim.after(self._remaining, self._work_done, cat="guest")
        elif st in ("lock_spin", "bar_lock_spin", "bar_wait", "recv_spin"):
            if self._spin_resolved():
                self._schedule_poll()
            else:
                # Keep spinning, but only up to the remaining grace budget
                # (Xen PV spinlocks / MPI runtimes spin briefly then block
                # on an event channel).
                self._start_grace_timer(now)
        elif st in ("ready", "recv_block"):
            self._schedule_poll()
        elif st in ("init", "done"):
            # Spurious dispatch of an idle process: give the CPU back.
            self._schedule_poll()

    def on_preempt(self, now: int) -> None:
        if self._work_ev is not None:
            self._work_ev.cancel()
            self._work_ev = None
            self._remaining = max(0, self._remaining - (now - self._work_started))
        if self._grace_ev is not None:
            self._grace_ev.cancel()
            self._grace_ev = None
            self._spin_cpu_used += now - self._grace_started
        if self._poll_ev is not None:
            self._poll_ev.cancel()
            self._poll_ev = None

    # ------------------------------------------------------------------
    # Condition resolutions (may arrive while descheduled)
    # ------------------------------------------------------------------
    def _lock_granted(self, lk: SpinLock) -> None:
        self._granted = True
        self._try_resume()

    def _barrier_released(self) -> None:
        self._granted = True
        self._try_resume()

    def on_message(self, pkt: Packet) -> None:
        self.mailbox += 1
        self.messages_received += 1
        self._unstamped.append(pkt)
        st = self.state
        if st == "recv_spin":
            if self.mailbox >= self._need:
                self._try_resume()
        elif st == "recv_block":
            if self.mailbox >= self._need:
                self.vcpu.wake()

    def _stamp_consumed(self) -> None:
        """Overhead source 4 ends here: the guest actually reads the data."""
        if self._unstamped:
            now = self.sim.now
            for pkt in self._unstamped:
                pkt.t_consumed = now
            self._unstamped.clear()

    def _try_resume(self) -> None:
        if self.vcpu.state is VCPUState.RUNNING:
            self._schedule_poll()
        elif self.vcpu.state is VCPUState.BLOCKED:
            # The spinner exhausted its grace budget and blocked on the
            # event channel (PV-spinlock style): wake it now.
            self.vcpu.wake()
        # else RUNNABLE: latched; on_dispatch will poll

    def _schedule_poll(self) -> None:
        if self._poll_ev is None:
            self._poll_ev = self.sim.after(0, self._poll, cat="guest")

    # ------------------------------------------------------------------
    # Spin-then-block mechanics
    # ------------------------------------------------------------------
    def _spin_resolved(self) -> bool:
        st = self.state
        if st in ("lock_spin", "bar_lock_spin", "bar_wait"):
            return self._granted
        if st == "recv_spin":
            return self.mailbox >= self._need
        return False

    def _start_grace_timer(self, now: int) -> None:
        budget = self.kernel.spin_block_ns
        if budget is None:
            return  # pure spinning (no PV-block): burn the slice
        remaining = budget - self._spin_cpu_used
        self._grace_started = now
        if remaining <= 0:
            self._grace_ev = self.sim.after(0, self._spin_block_timeout, cat="guest")
        else:
            self._grace_ev = self.sim.after(remaining, self._spin_block_timeout, cat="guest")

    def _spin_block_timeout(self) -> None:
        self._grace_ev = None
        if self.vcpu.state is not VCPUState.RUNNING:
            return
        if self.state not in ("lock_spin", "bar_lock_spin", "bar_wait", "recv_spin"):
            return  # stale timer: the wait already resolved
        if self._spin_resolved():
            self._schedule_poll()
            return
        # Give up the PCPU; a grant/message will wake us via _try_resume.
        self.vcpu.block()

    # ------------------------------------------------------------------
    # Spin accounting
    # ------------------------------------------------------------------
    def _enter_spin(self, state: str, kind: str) -> None:
        self.state = state
        self._spin_kind = kind
        self._spin_start = self.sim.now
        self._spin_cpu_used = 0
        if self.vcpu.state is VCPUState.RUNNING:
            self._start_grace_timer(self.sim.now)

    def _end_spin(self) -> None:
        wait = self.sim.now - self._spin_start
        self.total_spin_ns += wait
        self.kernel.record_spin_wait(wait, self._spin_kind)

    # ------------------------------------------------------------------
    # The segment interpreter
    # ------------------------------------------------------------------
    def _poll(self) -> None:
        self._poll_ev = None
        if self.vcpu.state is not VCPUState.RUNNING:
            return
        if self._grace_ev is not None:
            self._grace_ev.cancel()
            self._grace_ev = None
        st = self.state
        if st == "ready":
            self._advance()
        elif st in ("lock_spin", "bar_lock_spin") and self._granted:
            self._granted = False
            self._end_spin()
            self._begin_crit("crit" if st == "lock_spin" else "bar_crit")
        elif st == "bar_wait" and self._granted:
            self._granted = False
            self._end_spin()
            self._advance()
        elif st == "recv_spin" and self.mailbox >= self._need:
            self._end_spin()
            self.mailbox -= self._need
            self._stamp_consumed()
            self._advance()
        elif st == "recv_block" and self.mailbox >= self._need:
            self.mailbox -= self._need
            self._stamp_consumed()
            self._advance()
        elif st in ("init", "done"):
            self.vcpu.block()

    def _advance(self) -> None:
        while True:
            self.state = "ready"
            if self._pushback is not None:
                seg = self._pushback
                self._pushback = None
            else:
                try:
                    seg = next(self._program)
                except StopIteration:
                    self._finish()
                    return
            k = seg[0]
            if k == "compute":
                # Coalesce consecutive compute segments into one timer: the
                # interpreter would otherwise burn one event per segment
                # with nothing observable happening at the seams (zero
                # simulated time elapses between back-to-back computes).
                # The first non-compute segment pulled ahead is pushed back
                # and interpreted after the batched work completes, so
                # ``call``/``send``/... stay exact batching boundaries.
                total = seg[1]
                batched = 1
                prog = self._program
                while batched < COMPUTE_BATCH_MAX:
                    try:
                        nxt = next(prog)
                    except StopIteration:
                        break
                    if nxt[0] == "compute":
                        total += nxt[1]
                        batched += 1
                    else:
                        self._pushback = nxt
                        break
                self.state = "compute"
                self._begin_work(total)
                return
            if k == "call":
                seg[1](self.sim.now)
                continue
            if k == "send":
                self._do_send(seg)
                if self.vcpu.state is not VCPUState.RUNNING:
                    return  # the wake preempted us; resume at next dispatch
                continue
            if k == "recv":
                need = seg[1]
                if self.mailbox >= need:
                    self.mailbox -= need
                    self._stamp_consumed()
                    continue
                self._need = need
                self._enter_spin("recv_spin", "recv")
                return
            if k == "recv_block":
                need = seg[1]
                if self.mailbox >= need:
                    self.mailbox -= need
                    self._stamp_consumed()
                    continue
                self._need = need
                self.state = "recv_block"
                self.vcpu.block()
                return
            if k == "lock":
                lk, hold = seg[1], seg[2]
                self._cur_lock = lk
                self._cur_hold = hold
                if lk.acquire(self):
                    self._begin_crit("crit")
                else:
                    self._enter_spin("lock_spin", "lock")
                return
            if k == "barrier":
                bar = seg[1]
                self._cur_barrier = bar
                self._cur_lock = bar.lock
                self._cur_hold = bar.hold_ns
                if bar.lock.acquire(self):
                    self._begin_crit("bar_crit")
                else:
                    self._enter_spin("bar_lock_spin", "lock")
                return
            if k == "sleep":
                self.state = "sleep"
                ns = seg[1]
                self.vcpu.block()
                # Sleep timers are never cancelled: fire-and-forget.
                self.sim.post_after(ns, self._sleep_done, cat="guest")
                return
            if k == "disk":
                self.state = "disk"
                self.vm.count_io_event()
                self.vcpu.block()
                self.vm.node.vmm.dom0.submit_disk(seg[1], self._io_done)
                return
            raise ValueError(f"{self.name}: unknown segment {seg!r}")

    # ------------------------------------------------------------------
    def _begin_work(self, ns: int) -> None:
        self._remaining = ns
        self._work_started = self.sim.now
        self._work_ev = self.sim.after(ns, self._work_done, cat="guest")

    def _begin_crit(self, state: str) -> None:
        self.state = state
        self._begin_work(self._cur_hold)

    def _advance_if_running(self) -> None:
        """Continue the program, unless a wake we just caused preempted our
        own VCPU — in that case resume at the next dispatch."""
        if self.vcpu.state is VCPUState.RUNNING:
            self._advance()
        else:
            self.state = "ready"

    def _work_done(self) -> None:
        self._work_ev = None
        st = self.state
        if st == "compute":
            self._advance()
        elif st == "crit":
            lk = self._cur_lock
            self._cur_lock = None
            self.state = "ready"
            lk.release(self)  # may wake a blocked waiter -> may preempt us
            self._advance_if_running()
        elif st == "bar_crit":
            self._bar_arrived()
        else:  # pragma: no cover - state machine invariant
            raise RuntimeError(f"{self.name}: work done in state {st}")

    def _bar_arrived(self) -> None:
        bar = self._cur_barrier
        bar.count += 1
        if bar.count == bar.n:
            # Last arrival: flip the generation and wake all spinners.
            bar.count = 0
            bar.generation += 1
            bar.crossings += 1
            waiters = bar.gen_waiters
            bar.gen_waiters = []
            self._cur_barrier = None
            lk = self._cur_lock
            self._cur_lock = None
            self.state = "ready"
            lk.release(self)  # both the release and the waiter wakes below
            for w in waiters:  # can preempt our own PCPU (boost)
                w._barrier_released()
            self._advance_if_running()
        else:
            bar.gen_waiters.append(self)
            self._enter_spin("bar_wait", "barrier")
            self._cur_barrier = None
            lk = self._cur_lock
            self._cur_lock = None
            lk.release(self)

    def _do_send(self, seg: Segment) -> None:
        _, dst_vm, dst_proc, nbytes, tag = seg
        pkt = Packet(self.vm, self.index, dst_vm, dst_proc, nbytes, tag)
        self.messages_sent += 1
        self.vm.count_io_event()
        self.vm.node.vmm.dom0.send_packet(pkt)

    def _sleep_done(self) -> None:
        self.state = "ready"
        self.vcpu.wake()

    def _io_done(self) -> None:
        self.state = "ready"
        self.vcpu.wake()

    def _finish(self) -> None:
        self.state = "done"
        self.done = True
        self._program = None
        self.vcpu.block()
        if self.on_done is not None:
            self.on_done(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestProcess {self.name} {self.state}>"
