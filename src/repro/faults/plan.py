"""Declarative fault plans.

A :class:`FaultPlan` is an ordered tuple of typed :class:`FaultEvent`
records, each naming a fault kind, a target, an absolute injection time
and (for transient faults) a duration after which the injector heals it.
Plans are plain data: they serialize to/from JSON dict lists (so they
ride through the sweep cache key inside scenario ``params``) and can be
synthesized deterministically from a seed with
:meth:`FaultPlan.synthesize`.

Fault kinds (``KINDS``):

``node_crash``
    The whole physical node goes down: every VM (dom0 included) freezes,
    the fabric drops deliveries addressed to it, and the period tick is
    gated.  Healing restarts the node and replays latched wakes.
``dom0_stall``
    The node's driver domain is paused — the paper's "dom0 starved of
    CPU" overhead source taken to its limit: I/O backends stop serving
    while guests keep computing.
``nic_degrade``
    The node's NIC loses bandwidth (``bw_factor``) and/or drops packets
    (``drop_prob``); the guest transport retransmits with exponential
    backoff (:class:`repro.cluster.network.NetworkParams`).
``pcpu_straggler``
    External interference on one core: every ``steal_period_ns`` the
    injector forces a preemption on that PCPU, emulating a co-located
    noisy neighbour the scheduler cannot see.
``vm_pause``
    One guest VM freezes (live-migration brownout / stop-and-copy pause);
    its peers in a virtual cluster spin at barriers meanwhile.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.sim.rng import SimRNG
from repro.sim.units import MSEC

__all__ = ["KINDS", "FaultEvent", "FaultPlan", "parse_fault_spec"]

KINDS = ("node_crash", "dom0_stall", "nic_degrade", "pcpu_straggler", "vm_pause")

#: Sub-stream key reserved for fault synthesis / probabilistic drops, far
#: from the world's sequential workload keys.
RNG_KEY = 0xFA


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.  Unused fields stay at their defaults so the
    dict form only carries what the kind needs."""

    kind: str
    #: Absolute injection time (simulation ns).
    at_ns: int
    #: Target physical node index.
    node: int = 0
    #: Fault lifetime; 0 = permanent (never healed).
    duration_ns: int = 0
    #: Target VM name (``vm_pause``); "" = first guest VM on the node.
    vm: str = ""
    #: Target core index (``pcpu_straggler``).
    pcpu: int = 0
    #: Remaining egress bandwidth fraction (``nic_degrade``), in (0, 1].
    bw_factor: float = 1.0
    #: Packet-loss probability on the degraded link, in [0, 1).
    drop_prob: float = 0.0
    #: Interference period (``pcpu_straggler``): one forced preemption
    #: per period while the fault is live.
    steal_period_ns: int = 0

    def to_dict(self) -> dict:
        """Compact dict: kind, at_ns, plus non-default fields only."""
        d = asdict(self)
        defaults = _EVENT_DEFAULTS
        return {
            k: v for k, v in d.items() if k in ("kind", "at_ns") or v != defaults[k]
        }

    def validate(self, n_nodes: int, n_pcpus: int = 8) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (have {KINDS})")
        if self.at_ns < 0:
            raise ValueError(f"{self.kind}: at_ns must be >= 0, got {self.at_ns}")
        if self.duration_ns < 0:
            raise ValueError(f"{self.kind}: negative duration {self.duration_ns}")
        if not (0 <= self.node < n_nodes):
            raise ValueError(
                f"{self.kind}: node {self.node} out of range [0, {n_nodes})"
            )
        if self.kind == "nic_degrade":
            if not (0.0 < self.bw_factor <= 1.0):
                raise ValueError(f"nic_degrade: bw_factor {self.bw_factor} not in (0, 1]")
            if not (0.0 <= self.drop_prob < 1.0):
                raise ValueError(f"nic_degrade: drop_prob {self.drop_prob} not in [0, 1)")
        if self.kind == "pcpu_straggler":
            if not (0 <= self.pcpu < n_pcpus):
                raise ValueError(
                    f"pcpu_straggler: pcpu {self.pcpu} out of range [0, {n_pcpus})"
                )
            if self.steal_period_ns <= 0:
                raise ValueError(
                    f"pcpu_straggler: steal_period_ns must be > 0, "
                    f"got {self.steal_period_ns}"
                )


_EVENT_DEFAULTS = asdict(FaultEvent(kind="node_crash", at_ns=0))


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-ordered fault schedule."""

    events: tuple[FaultEvent, ...] = field(default_factory=tuple)

    @classmethod
    def of(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        """Build a plan; events are stably sorted by injection time (ties
        keep authoring order, which fixes the injection order exactly)."""
        return cls(events=tuple(sorted(events, key=lambda e: e.at_ns)))

    def __bool__(self) -> bool:
        return bool(self.events)

    def kinds(self) -> set[str]:
        return {e.kind for e in self.events}

    def validate(self, n_nodes: int, n_pcpus: int = 8) -> "FaultPlan":
        for e in self.events:
            e.validate(n_nodes, n_pcpus)
        return self

    # -- serialization ---------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self.events]

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "FaultPlan":
        return cls.of(FaultEvent(**d) for d in dicts)

    # -- synthesis -------------------------------------------------------
    @classmethod
    def synthesize(
        cls,
        seed: int,
        n_nodes: int,
        horizon_ns: int,
        n_events: int = 3,
        n_pcpus: int = 8,
        kinds: Sequence[str] = KINDS,
    ) -> "FaultPlan":
        """Draw a reproducible random plan: ``n_events`` transient faults
        injected inside the middle of ``[0, horizon_ns]``, every one with
        a bounded duration so it heals before the horizon.  The same
        ``(seed, n_nodes, horizon_ns, n_events)`` always yields the same
        plan, independent of any other RNG consumer."""
        if n_events < 0:
            raise ValueError(f"n_events must be >= 0, got {n_events}")
        if horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be > 0, got {horizon_ns}")
        rng = SimRNG(seed).substream(RNG_KEY)
        events = []
        heal_by = (horizon_ns * 7) // 8
        for _ in range(n_events):
            kind = rng.choice(list(kinds))
            node = int(rng.uniform_ns(0, max(0, n_nodes - 1)))
            at = rng.uniform_ns(horizon_ns // 8, (horizon_ns * 5) // 8)
            dur = rng.uniform_ns(max(1, horizon_ns // 64), max(2, horizon_ns // 8))
            dur = max(1, min(dur, heal_by - at))
            kw: dict = {}
            if kind == "nic_degrade":
                kw["bw_factor"] = 0.25 + 0.75 * rng.random()
                kw["drop_prob"] = 0.05 * rng.random()
            elif kind == "pcpu_straggler":
                kw["pcpu"] = int(rng.uniform_ns(0, max(0, n_pcpus - 1)))
                kw["steal_period_ns"] = rng.uniform_ns(1 * MSEC, 5 * MSEC)
            events.append(
                FaultEvent(kind=kind, at_ns=at, node=node, duration_ns=dur, **kw)
            )
        return cls.of(events).validate(n_nodes, n_pcpus)


def parse_fault_spec(
    spec: Optional[str],
    n_nodes: int,
    horizon_ns: int,
    n_pcpus: int = 8,
) -> Optional[FaultPlan]:
    """Parse a CLI ``--faults`` spec into a validated plan.

    Forms accepted:

    * ``None`` / ``""`` / ``"none"`` — no faults;
    * ``"random:N"`` or ``"random:N:SEED"`` — :meth:`FaultPlan.synthesize`
      with ``N`` events (seed defaults to 0);
    * a string starting with ``[`` — inline JSON list of event dicts;
    * anything else — path to a JSON file holding that list.
    """
    if spec is None or spec == "" or spec == "none":
        return None
    if spec.startswith("random:"):
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ValueError(f"bad --faults spec {spec!r}; want random:N[:SEED]")
        n = int(parts[1])
        seed = int(parts[2]) if len(parts) == 3 else 0
        return FaultPlan.synthesize(seed, n_nodes, horizon_ns, n_events=n, n_pcpus=n_pcpus)
    if spec.lstrip().startswith("["):
        dicts = json.loads(spec)
    else:
        dicts = json.loads(Path(spec).read_text(encoding="utf-8"))
    return FaultPlan.from_dicts(dicts).validate(n_nodes, n_pcpus)
