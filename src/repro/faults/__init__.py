"""Deterministic fault injection (``repro.faults``).

Declarative, seeded fault plans (:mod:`repro.faults.plan`) applied to a
wired :class:`~repro.experiments.harness.CloudWorld` through small hooks
in the hypervisor and fabric (:mod:`repro.faults.inject`).  Every fault
fires off the simulation clock — never wall clock — so the same seed and
the same plan reproduce the same perturbed run bit-for-bit.
"""

from repro.faults.plan import KINDS, FaultEvent, FaultPlan, parse_fault_spec
from repro.faults.inject import FaultInjector

__all__ = ["KINDS", "FaultEvent", "FaultPlan", "FaultInjector", "parse_fault_spec"]
