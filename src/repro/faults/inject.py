"""Apply a :class:`~repro.faults.plan.FaultPlan` to a wired world.

The injector schedules every plan event on the world's simulator at
construction time (category ``"fault"``), arms the fabric's optional
fault hooks only when the plan actually needs them, and heals each
transient fault when its duration elapses.  All state transitions run off
the simulation clock, so a faulted run is exactly reproducible from
``(seed, plan)``.

Overlap semantics: crash windows are depth-counted per node (two
overlapping crash windows keep the node down until *both* heal); VM
pauses nest natively in the VMM (``VM.pause_depth``), so overlapping
``vm_pause`` faults — or a fault pause overlapping a migration
stop-and-copy — keep the VM frozen until every window releases.  NIC
degradations stack, with heal restoring the previous degradation (or
the clean link).  A node ``restart`` resumes every VM on the node and
force-clears the pause depth — a reboot forgets pre-crash
administrative pauses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import RNG_KEY, FaultEvent, FaultPlan
from repro.obs import trace as obstrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld
    from repro.hypervisor.vm import VM

__all__ = ["FaultInjector"]


class FaultInjector:
    """Schedules, applies, and heals the faults of one plan."""

    def __init__(self, world: "CloudWorld", plan: FaultPlan) -> None:
        self.world = world
        self.sim = world.sim
        self.plan = plan
        n_nodes = len(world.cluster.nodes)
        n_pcpus = len(world.cluster.nodes[0].pcpus) if n_nodes else 0
        plan.validate(n_nodes, n_pcpus)
        self.injected: dict[str, int] = {}
        self.healed: dict[str, int] = {}
        self.skipped: dict[str, int] = {}
        kinds = plan.kinds()
        fabric = world.cluster.fabric
        if "nic_degrade" in kinds:
            # Dedicated sub-stream: drop draws never perturb workload RNG.
            fabric.drop_rng = world.rng.substream(RNG_KEY, 0)
        if "node_crash" in kinds:
            nodes = world.cluster.nodes
            fabric.crashed_of = lambda i: nodes[i].crashed
        self._crash_depth = [0] * n_nodes
        #: Per-node stack of (bw_factor, drop_prob) degradations.
        self._deg_stack: dict[int, list[tuple[float, float]]] = {}
        #: Plan-index → VM actually paused at inject time.  The heal must
        #: release exactly that pause: re-resolving the target at heal time
        #: can land on a *different* VM (service tenants arrive and depart
        #: between inject and heal) and decrement a pause depth it never
        #: incremented.
        self._paused: dict[int, "VM"] = {}
        for idx, ev in enumerate(plan.events):
            self.sim.at(ev.at_ns, lambda e=ev, i=idx: self._apply(e, i), cat="fault")

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Deterministic injection rollup for scenario results."""
        fabric = self.world.cluster.fabric
        return {
            "events": len(self.plan.events),
            "injected": {k: self.injected[k] for k in sorted(self.injected)},
            "healed": {k: self.healed[k] for k in sorted(self.healed)},
            "skipped": {k: self.skipped[k] for k in sorted(self.skipped)},
            "messages_dropped": fabric.messages_dropped,
            "retransmits": fabric.retransmits,
            "messages_lost": fabric.messages_lost,
        }

    # ------------------------------------------------------------------
    def _emit(self, phase: str, ev: FaultEvent) -> None:
        if obstrace.enabled:
            obstrace.emit(
                f"fault.{phase}",
                self.sim.now,
                fault=ev.kind,
                node=ev.node,
                vm=ev.vm or None,
                pcpu=ev.pcpu if ev.kind == "pcpu_straggler" else None,
                duration_ns=ev.duration_ns,
            )

    def _apply(self, ev: FaultEvent, idx: int) -> None:
        self.injected[ev.kind] = self.injected.get(ev.kind, 0) + 1
        self._emit("inject", ev)
        getattr(self, f"_apply_{ev.kind}")(ev, idx)
        if ev.duration_ns > 0:
            self.sim.after(
                ev.duration_ns, lambda e=ev, i=idx: self._heal(e, i), cat="fault"
            )

    def _heal(self, ev: FaultEvent, idx: int) -> None:
        if ev.kind in ("vm_pause", "dom0_stall") and idx not in self._paused:
            # The inject was skipped (no target VM existed), so there is
            # no pause to release — and no heal to record: transient
            # pauses keep ``injected == healed + skipped``.
            return
        self.healed[ev.kind] = self.healed.get(ev.kind, 0) + 1
        self._emit("heal", ev)
        getattr(self, f"_heal_{ev.kind}")(ev, idx)

    # -- node crash ------------------------------------------------------
    def _apply_node_crash(self, ev: FaultEvent, idx: int) -> None:
        self._crash_depth[ev.node] += 1
        self.world.vmms[ev.node].crash()

    def _heal_node_crash(self, ev: FaultEvent, idx: int) -> None:
        self._crash_depth[ev.node] -= 1
        if self._crash_depth[ev.node] <= 0:
            self.world.vmms[ev.node].restart()

    # -- dom0 stall / VM pause -------------------------------------------
    def _target_vm(self, ev: FaultEvent):
        vmm = self.world.vmms[ev.node]
        if ev.kind == "dom0_stall":
            return vmm.dom0.vm
        if ev.vm:
            # Named VMs may have been live-migrated off ev.node since the
            # plan was written: search the whole cluster.  Under the
            # service layer a named tenant VM may also have departed (torn
            # down) or not arrived yet — that's a skip, not an error.
            for other in self.world.vmms:
                for vm in other.vms:
                    if vm.name == ev.vm:
                        return vm
            return None
        guests = vmm.guest_vms
        if not guests:
            # A node whose tenants all departed has no guest to pause.
            return None
        return guests[0]

    def _skip(self, ev: FaultEvent) -> None:
        self.skipped[ev.kind] = self.skipped.get(ev.kind, 0) + 1
        if obstrace.enabled:
            obstrace.emit(
                "fault.skip", self.sim.now,
                fault=ev.kind, node=ev.node, vm=ev.vm or None,
            )

    def _pause(self, ev: FaultEvent, idx: int) -> None:
        vm = self._target_vm(ev)
        if vm is None:
            self._skip(ev)
            return
        self._paused[idx] = vm
        vm.node.vmm.pause_vm(vm)

    def _unpause(self, ev: FaultEvent, idx: int) -> None:
        # Release exactly the VM paused at inject time.  Re-resolving the
        # target here could pick up a VM admitted *after* the skip/pause
        # (service-layer arrivals) and decrement a pause depth this window
        # never incremented — unfreezing someone else's stop-and-copy.
        vm = self._paused.pop(idx)
        # The VMM's pause depth keeps the VM frozen while other windows
        # (overlapping faults, migration stop-and-copy, a teardown of the
        # departed VM) are still open; a node restart force-clears the
        # depth, making this a no-op.
        vm.node.vmm.resume_vm(vm)

    _apply_dom0_stall = _pause
    _heal_dom0_stall = _unpause
    _apply_vm_pause = _pause
    _heal_vm_pause = _unpause

    # -- NIC degradation -------------------------------------------------
    def _apply_nic_degrade(self, ev: FaultEvent, idx: int) -> None:
        stack = self._deg_stack.setdefault(ev.node, [])
        stack.append((ev.bw_factor, ev.drop_prob))
        self.world.cluster.fabric.degrade_link(ev.node, ev.bw_factor, ev.drop_prob)

    def _heal_nic_degrade(self, ev: FaultEvent, idx: int) -> None:
        stack = self._deg_stack.get(ev.node, [])
        if (ev.bw_factor, ev.drop_prob) in stack:
            stack.remove((ev.bw_factor, ev.drop_prob))
        fabric = self.world.cluster.fabric
        if stack:
            fabric.degrade_link(ev.node, *stack[-1])
        else:
            fabric.restore_link(ev.node)

    # -- PCPU straggler --------------------------------------------------
    def _apply_pcpu_straggler(self, ev: FaultEvent, idx: int) -> None:
        end_ns = self.sim.now + ev.duration_ns
        self._straggle_tick(ev, end_ns)

    def _heal_pcpu_straggler(self, ev: FaultEvent, idx: int) -> None:
        """The tick chain self-terminates at its end time."""

    def _straggle_tick(self, ev: FaultEvent, end_ns: int) -> None:
        vmm = self.world.vmms[ev.node]
        if not vmm.node.crashed:
            # Interference steals the core for an instant: whatever runs is
            # forced off and must win the run queue again (context-switch +
            # LLC refill costs land on the victim).
            vmm.preempt(vmm.node.pcpus[ev.pcpu])
        nxt = self.sim.now + ev.steal_period_ns
        if nxt < end_ns:
            self.sim.at(nxt, lambda: self._straggle_tick(ev, end_ns), cat="fault")
