"""CloudWorld: the one-stop experiment facade.

Wires a whole virtualized cloud — simulator, physical cluster, one VMM +
dom0 per node with the chosen scheduler, guest VMs with kernels — and
provides the builders the paper's scenarios need: virtual clusters spread
across nodes, NPB jobs in batch mode, and the non-parallel applications.

Typical use (see ``examples/quickstart.py``)::

    world = CloudWorld(WorldConfig(n_nodes=2, scheduler="ATC"))
    vc = world.virtual_cluster(n_vms=2, name="vc0")
    app = world.add_npb("lu", vc.vms, rounds=3, warmup_rounds=1)
    world.run(horizon_ns=ns_from_s(20))
    print(app.mean_round_ns)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster.network import NetworkParams
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.profiler import SimProfiler
from repro.obs.trace import TraceLog
from repro.cluster.node import NodeParams
from repro.cluster.topology import Cluster, build_cluster
from repro.dfrs.controller import DFRSConfig, DFRSController
from repro.guest.kernel import GuestKernel
from repro.hypervisor.dom0 import Dom0, Dom0Params
from repro.hypervisor.vm import VM
from repro.hypervisor.vmm import VMM
from repro.migration.engine import MigrationConfig, MigrationEngine, per_vcpu_params
from repro.migration.rebalancer import Rebalancer
from repro.schedulers.base import SchedulerParams
from repro.schedulers.registry import make_scheduler_factory
from repro.service.service import CloudService, ServiceConfig
from repro.sim.engine import Simulator
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC
from repro.virtcluster.cluster import VirtualCluster
from repro.virtcluster.placement import place
from repro.workloads.attacks import ATTACK_RNG_KEY, TickleAbuseApp, YieldTheftApp
from repro.workloads.base import BSPSpec, ParallelApp
from repro.workloads.nonparallel import (
    CPU_APP_SPECS,
    BonnieApp,
    CpuApp,
    PingApp,
    StreamApp,
    WebServerApp,
)
from repro.workloads.npb import npb_spec

__all__ = ["WorldConfig", "CloudWorld"]


@dataclass(frozen=True)
class WorldConfig:
    """Shape of the simulated cloud platform."""

    #: Physical nodes (paper: up to 32, each 8 cores).
    n_nodes: int = 2
    #: VMs hosted per node (paper: 4).
    vms_per_node: int = 4
    #: VCPUs per guest VM (paper: 8; 16 in the Section II-B experiments).
    vcpus_per_vm: int = 8
    #: Scheduler approach name: CR / CS / BS / DSS / VS / ATC.
    scheduler: str = "CR"
    #: Optional scheduler parameter override.
    sched_params: Optional[SchedulerParams] = None
    #: Force a fixed time slice on every *guest* VM (the Fig. 5/8/9 static
    #: sweeps).  Only meaningful with CR — adaptive schedulers overwrite it.
    uniform_slice_ns: Optional[int] = None
    #: VMM scheduling period (credit accounting + ATC control period).
    period_ns: int = 30 * MSEC
    #: Deterministic seed for all workload randomness.
    seed: int = 0
    #: Event-queue backend for the simulator: "heap", "bucket", or ``None``
    #: to follow the ``REPRO_EVENT_QUEUE`` env var (default heap).  Both
    #: backends produce bit-identical results (same (time, seq) order);
    #: "bucket" trades per-push heap churn for O(1) inserts at the deep
    #: queue depths of full-scale worlds.
    event_queue: Optional[str] = None
    #: Tie-order mode among same-timestamp events: "fifo", "reversed", or
    #: ``None`` to follow the ``REPRO_TIE_ORDER`` env var (default fifo).
    #: "reversed" is the race-detector differential mode (see
    #: :mod:`repro.analysis.races`): any metric difference between a fifo
    #: and a reversed run of the same world is a confirmed order-dependence.
    tie_order: Optional[str] = None
    #: PV-spinlock grace budget: CPU time a guest waiter spins before
    #: blocking on its event channel (None = spin forever; see
    #: repro.guest.kernel.GuestKernel).
    spin_block_ns: Optional[int] = 20 * MSEC
    #: Install the runtime invariant sanitizer (repro.analysis.sanitizer).
    #: Read-only hooks: a sanitized run is bit-identical to a plain one.
    sanitize: bool = False
    #: Collect a structured trace (repro.obs.trace) of every run.  Like the
    #: sanitizer, tracing is read-only: a traced run is bit-identical to an
    #: untraced one.
    trace: bool = False
    #: Ring-buffer capacity of the trace log (records; oldest evicted).
    trace_capacity: int = 65536
    #: Attach the wall-clock self-profiler (repro.obs.profiler) to the
    #: simulator.  Also read-only with respect to simulation state.
    profile: bool = False
    #: Deterministic fault plan (repro.faults); ``None`` = no faults and
    #: no fault hooks armed, so the run is bit-identical to a world built
    #: before the fault subsystem existed.
    faults: Optional[FaultPlan] = None
    #: Default VM placement policy for ``new_vm`` / ``virtual_cluster``
    #: (see repro.virtcluster.placement: spread / pack / striped /
    #: "random:SEED").
    placement: str = "spread"
    #: Live migration & rebalancing control plane (repro.migration);
    #: ``None`` = subsystem not constructed.  An enabled-but-idle control
    #: plane draws no RNG and adds no events, so such a run stays
    #: bit-identical to one without the subsystem.
    migration: Optional[MigrationConfig] = None
    #: Always-on service layer (repro.service): streaming tenant arrivals
    #: under online admission control; ``None`` = batch mode (fixed
    #: population).  A service layer configured for zero arrivals adds no
    #: events and draws no RNG, so such a run is bit-identical — event
    #: count included — to one without the layer.
    service: Optional[ServiceConfig] = None
    #: Cluster-scope fractional resource scheduling (repro.dfrs): a
    #: leader-elected controller that periodically re-solves per-VM
    #: (cap, weight) allocations and pushes them into the per-host
    #: schedulers; ``None`` = subsystem not constructed.  A configured
    #: controller with ``solve_every=0`` never solves, draws no RNG and
    #: adds no events, so such a run is bit-identical — event count
    #: included — to one without the layer.
    dfrs: Optional[DFRSConfig] = None
    node_params: NodeParams = field(default_factory=NodeParams)
    net_params: NetworkParams = field(default_factory=NetworkParams)
    dom0_params: Dom0Params = field(default_factory=Dom0Params)


class CloudWorld:
    """A fully wired simulated cloud platform."""

    def __init__(self, config: WorldConfig | None = None) -> None:
        self.config = config or WorldConfig()
        cfg = self.config
        self.sim = Simulator(queue=cfg.event_queue, tie_order=cfg.tie_order)
        self.rng = SimRNG(cfg.seed)
        self.cluster: Cluster = build_cluster(
            self.sim, cfg.n_nodes, cfg.node_params, cfg.net_params
        )
        factory = make_scheduler_factory(cfg.scheduler, cfg.sched_params)
        self.vmms: list[VMM] = []
        for node in self.cluster.nodes:
            vmm = VMM(self.sim, node, factory, period_ns=cfg.period_ns)
            Dom0(self.sim, vmm, self.cluster.fabric, cfg.dom0_params)
            self.vmms.append(vmm)
        self.sanitizer: Optional[SimSanitizer] = (
            SimSanitizer(self.sim, self.vmms) if cfg.sanitize else None
        )
        self.tracelog: Optional[TraceLog] = (
            TraceLog(capacity=cfg.trace_capacity) if cfg.trace else None
        )
        self.profiler: Optional[SimProfiler] = (
            SimProfiler(self.sim) if cfg.profile else None
        )
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self, cfg.faults) if cfg.faults else None
        )
        self._node_vm_load = [0] * cfg.n_nodes
        self._rng_key = 0
        self.vms: list[VM] = []
        self.virtual_clusters: list[VirtualCluster] = []
        self.migration_engine: Optional[MigrationEngine] = None
        self.rebalancer: Optional[Rebalancer] = None
        if cfg.migration is not None:
            self.migration_engine = MigrationEngine(self, cfg.migration.params)
            if cfg.migration.policy != "none":
                self.rebalancer = Rebalancer(self, self.migration_engine, cfg.migration)
        self.dfrs: Optional[DFRSController] = None
        if cfg.dfrs is not None:
            if cfg.dfrs.allow_moves and self.migration_engine is None:
                # DFRS relocations go through the standard engine; attach
                # one (no rebalancer) when the config demands moves but no
                # migration control plane was requested.  DFRS moves VMs
                # of very different shapes, so the footprint scales with
                # VCPU count.
                self.migration_engine = MigrationEngine(self, per_vcpu_params())
            self.dfrs = DFRSController(self, cfg.dfrs)
        self.service: Optional[CloudService] = (
            CloudService(self, cfg.service) if cfg.service is not None else None
        )
        self.apps: list[ParallelApp] = []  # tracked (finite-round) jobs
        self.background: list = []  # infinite jobs and non-parallel apps
        self._started = False
        self._pending_apps = 0

    # ------------------------------------------------------------------
    # Topology builders
    # ------------------------------------------------------------------
    def _next_rng(self) -> SimRNG:
        self._rng_key += 1
        return self.rng.substream(self._rng_key)

    def _create_vm(
        self,
        node_idx: int,
        n_vcpus: Optional[int],
        is_parallel: bool,
        name: Optional[str],
        weight: float = 1.0,
    ) -> VM:
        """Construct a VM on an already-reserved node slot."""
        cfg = self.config
        vm = VM(
            self.cluster.nodes[node_idx],
            n_vcpus if n_vcpus is not None else cfg.vcpus_per_vm,
            name=name,
            is_parallel=is_parallel,
            weight=weight,
        )
        if cfg.uniform_slice_ns is not None:
            vm.slice_ns = cfg.uniform_slice_ns
        self.vmms[node_idx].add_vm(vm)
        GuestKernel(self.sim, vm, spin_block_ns=cfg.spin_block_ns)
        self.vms.append(vm)
        return vm

    def new_vm(
        self,
        node_idx: Optional[int] = None,
        n_vcpus: Optional[int] = None,
        is_parallel: bool = False,
        name: Optional[str] = None,
        weight: float = 1.0,
    ) -> VM:
        """Create a guest VM (with a guest kernel) on a node.

        ``node_idx=None`` picks the least-loaded node.
        """
        cfg = self.config
        if node_idx is None:
            assignment, new_loads = place(
                cfg.placement, 1, self._node_vm_load, cfg.vms_per_node, cluster=name or "vm"
            )
            self._node_vm_load[:] = new_loads
            node_idx = assignment[0]
        else:
            if self._node_vm_load[node_idx] >= cfg.vms_per_node:
                raise RuntimeError(f"node {node_idx} is at VM capacity")
            self._node_vm_load[node_idx] += 1
        return self._create_vm(node_idx, n_vcpus, is_parallel, name, weight)

    def virtual_cluster(
        self,
        n_vms: int,
        name: Optional[str] = None,
        node_indices: Optional[Sequence[int]] = None,
        n_vcpus: Optional[int] = None,
        placement: Optional[str] = None,
    ) -> VirtualCluster:
        """Create a virtual cluster of parallel VMs.

        ``placement`` names a policy from
        :data:`repro.virtcluster.placement.PLACEMENTS` (or
        ``"random:SEED"``); ``None`` uses ``WorldConfig.placement``.
        ``"spread"`` (the paper's setup) puts each VM on a different node
        where possible; ``"pack"`` fills nodes in order (for ablations
        isolating the cross-VM network overhead).
        """
        name = name or f"vc{len(self.virtual_clusters)}"
        if node_indices is None:
            assignment, new_loads = place(
                placement or self.config.placement,
                n_vms,
                self._node_vm_load,
                self.config.vms_per_node,
                cluster=name,
            )
            self._node_vm_load[:] = new_loads
            node_indices = assignment
        else:
            for ni in node_indices:
                if self._node_vm_load[ni] >= self.config.vms_per_node:
                    raise RuntimeError(f"node {ni} is at VM capacity")
                self._node_vm_load[ni] += 1
        vms = [
            self._create_vm(ni, n_vcpus, True, f"{name}.vm{i}")
            for i, ni in enumerate(node_indices)
        ]
        vc = VirtualCluster(name, vms)
        self.virtual_clusters.append(vc)
        return vc

    # ------------------------------------------------------------------
    # Teardown (tenant departures — repro.service)
    # ------------------------------------------------------------------
    def teardown_vm(self, vm: VM) -> None:
        """Remove a guest VM from the platform, reclaiming its node slot.

        The inverse of :meth:`_create_vm`.  The VM is frozen first (the
        PR-4 latch-and-replay pause), so stale guest timers and in-flight
        packets addressed to it latch harmlessly instead of corrupting
        scheduler state; it is then dropped from every roster: the VMM's
        VM list, the per-node load, vmid-keyed scheduler state (vSlicer's
        LS set) and the world VM list.  An in-flight migration of the VM
        is aborted.  The host census changed, so the per-host slice
        minimum (Algorithm 2) is re-run immediately, exactly as after a
        migration handoff.
        """
        if vm.is_dom0:
            raise ValueError(f"{vm.name}: dom0 cannot be torn down")
        if self.migration_engine is not None:
            self.migration_engine.cancel(vm, reason="teardown")
        vmm = vm.node.vmm
        vmm.pause_vm(vm)  # never resumed: late wakes stay latched forever
        vmm.vms.remove(vm)
        self._node_vm_load[vm.node.index] -= 1
        ls = getattr(vmm.scheduler, "ls_vms", None)
        if ls is not None:
            ls.pop(vm.vmid, None)
        self.vms.remove(vm)
        controller = getattr(vmm.scheduler, "controller", None)
        if controller is not None and not vmm.node.crashed:
            controller.on_period(self.sim.now)

    def teardown_cluster(self, vc: VirtualCluster) -> None:
        """Tear down every VM of a virtual cluster and deregister it."""
        for vm in vc.vms:
            self.teardown_vm(vm)
        self.virtual_clusters.remove(vc)

    # ------------------------------------------------------------------
    # Workload builders
    # ------------------------------------------------------------------
    def add_npb(
        self,
        kernel: str | BSPSpec,
        vms: Sequence[VM],
        rounds: Optional[int] = 3,
        warmup_rounds: int = 1,
        npb_class: str = "B",
        procs_per_vm: Optional[int] = None,
    ) -> ParallelApp:
        """Run an NPB kernel on a set of VMs, batch mode.

        ``rounds=None`` makes it untracked background load (repeats until
        the horizon); otherwise the world's :meth:`run` can stop when all
        tracked apps complete their measured rounds.
        """
        spec = kernel if isinstance(kernel, BSPSpec) else npb_spec(kernel, npb_class)
        app = ParallelApp(
            self.sim,
            spec,
            vms,
            self._next_rng(),
            procs_per_vm=procs_per_vm,
            rounds=rounds,
            warmup_rounds=warmup_rounds,
        )
        if rounds is None:
            self._register_background(app)
        else:
            app.on_complete = self._app_complete
            self.apps.append(app)
            if self._started:
                # Late-registered tracked app: the world is live, so it must
                # start now and join the completion countdown, otherwise it
                # would silently never run (and a stale countdown could stop
                # the simulation before it finishes).
                self._pending_apps += 1
                app.start()
        return app

    def _app_complete(self, app: ParallelApp) -> None:
        self._pending_apps -= 1
        if self._pending_apps <= 0:
            self.sim.stop()

    def _register_background(self, app):
        """Track a background workload; start it at once if the world runs."""
        self.background.append(app)
        if self._started:
            app.start()
        return app

    def add_cpu_app(self, name: str, vm: VM) -> CpuApp:
        return self._register_background(
            CpuApp(self.sim, vm, CPU_APP_SPECS[name], self._next_rng())
        )

    def add_stream(self, vm: VM) -> StreamApp:
        return self._register_background(StreamApp(self.sim, vm, self._next_rng()))

    def add_bonnie(self, vm: VM) -> BonnieApp:
        return self._register_background(BonnieApp(self.sim, vm, self._next_rng()))

    def add_ping(self, vm: VM, peer_vm: VM, interval_ns: int = 10 * MSEC) -> PingApp:
        return self._register_background(
            PingApp(self.sim, vm, peer_vm, self._next_rng(), interval_ns=interval_ns)
        )

    def add_webserver(self, server_vm: VM, client_vm: VM, **kw) -> WebServerApp:
        return self._register_background(
            WebServerApp(self.sim, server_vm, client_vm, self._next_rng(), **kw)
        )

    # -- adversarial tenants (repro.workloads.attacks) ------------------
    # Attackers draw *only* from the dedicated ATTACK_RNG_KEY substream
    # (sub-keyed by ``stream``), never from ``_next_rng()``: worlds that
    # build no attackers consume zero attack entropy and the honest apps'
    # draw sequences are unperturbed by attackers being added or removed.
    def add_yield_theft(self, vm: VM, stream: int = 0, **kw) -> YieldTheftApp:
        rng = self.rng.substream(ATTACK_RNG_KEY, stream)
        return self._register_background(YieldTheftApp(self.sim, vm, rng, **kw))

    def add_tickle_abuse(self, vm: VM, stream: int = 0, **kw) -> TickleAbuseApp:
        rng = self.rng.substream(ATTACK_RNG_KEY, stream)
        return self._register_background(TickleAbuseApp(self.sim, vm, rng, **kw))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start VMM period ticks and all registered workloads.

        Idempotent.  Workloads registered *after* the world has started
        are started immediately by their ``add_*`` builder (and tracked
        apps join the completion countdown), so staged scenarios — run,
        add more load, run again — behave as expected.
        """
        if self._started:
            return
        self._started = True
        for vmm in self.vmms:
            vmm.start()
        self._pending_apps = len(self.apps)
        for app in self.apps:
            app.start()
        for app in self.background:
            app.start()
        if self.service is not None:
            self.service.start()

    def run(self, horizon_ns: int = 60 * SEC) -> None:
        """Run until every tracked app finished its rounds, or the horizon.

        Call repeatedly to extend the horizon.

        With ``WorldConfig.sanitize`` set, raises
        :class:`~repro.analysis.sanitizer.SanitizerViolationError` if any
        simulation invariant was violated during the run.
        """
        self.start()
        if self.tracelog is not None:
            with self.tracelog.activate():
                self.sim.run(until=self.sim.now + horizon_ns)
        else:
            self.sim.run(until=self.sim.now + horizon_ns)
        if self.sanitizer is not None:
            self.sanitizer.check()

    @property
    def metrics(self):
        """Live :class:`~repro.obs.registry.MetricsRegistry` for the whole
        world (cluster / per-node / per-VM, callback gauges)."""
        from repro.metrics.collectors import world_registry

        return world_registry(self)

    @property
    def all_apps_done(self) -> bool:
        return all(a.finished for a in self.apps)
