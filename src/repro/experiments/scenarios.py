"""Scenario builders: one function per paper experiment setup.

Each builder constructs the paper's platform shape, runs it, and returns a
plain dict of measurements.  The benchmark files in ``benchmarks/`` call
these with scaled-down defaults (fewer nodes / rounds, same over-commit
ratio) — see DESIGN.md §4; normalized execution time is a ratio, so the
paper's *shapes* survive the scaling.

Setups reproduced:

* ``run_type_a`` — Section IV-B1 (Figs. 1, 10): N nodes, four identical
  virtual clusters of one VM per node, all running the same NPB kernel.
* ``run_slice_sweep`` — Section II-B / III-B (Figs. 5, 8): the static
  time-slice sweep under CR, returning execution time, average spinlock
  latency, LLC misses and context switches per slice.
* ``run_small_mix`` — Section II-A2 (Figs. 2, 9): two nodes, three
  2-VM virtual clusters plus two non-parallel VMs running bonnie++,
  sphinx3, stream and ping.
* ``run_type_b`` — Section IV-B2 (Fig. 11): the LLNL-trace virtual
  cluster mix, every cluster running a random NPB kernel, batch mode.
* ``run_type_b_mixed`` — Section IV-C (Figs. 12-14): type B placement
  where independent VMs run a mix of NPB and non-parallel applications
  (web server driven from a dedicated client node).
* ``run_packet_path_probe`` — Fig. 4: per-hop timestamps of cross-VM
  messages under load, splitting the four scheduling-wait overheads.
* ``run_migration_rebalance`` — mixed-tenancy world (Fig. 12/13-style)
  under a live-migration rebalancing policy (:mod:`repro.migration`):
  compares static placements against dynamically demixed/consolidated/
  evacuated ones.
* ``run_dfrs_compare`` — design-space comparator (:mod:`repro.dfrs`):
  the same mixed-tenancy cell run under plain CR, the paper's ATC
  (per-VCPU slice control), cluster-level DFRS fractional allocation
  (per-VM caps/weights solved periodically), and the ATC+DFRS hybrid.
* ``run_service`` — always-on cloud service (:mod:`repro.service`):
  tenants arrive as a stream (Poisson or trace replay), an admission
  policy admits/queues/rejects them, and completed tenants are torn
  down with their resources reclaimed.  Compares admission policies at
  equal offered load.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

from repro.dfrs.controller import DFRSConfig
from repro.experiments.harness import CloudWorld, WorldConfig
from repro.faults.plan import FaultPlan
from repro.migration.engine import MigrationConfig
from repro.service.service import ServiceConfig
from repro.guest.process import recv_block, send
from repro.metrics.collectors import cluster_stats
from repro.metrics.summary import mean
from repro.schedulers.base import SchedulerParams
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC, ns_from_ms
from repro.workloads.npb import NPB_NAMES, npb_spec
from repro.workloads.traces import synthesize_vc_mix

__all__ = [
    "run_type_a",
    "run_table1_cell",
    "run_slice_sweep",
    "run_small_mix",
    "run_type_b",
    "run_type_b_mixed",
    "run_packet_path_probe",
    "run_fault_probe",
    "run_migration_rebalance",
    "run_service",
    "run_dfrs_compare",
    "run_attack",
    "full_scale",
]


def full_scale() -> bool:
    """True when REPRO_FULL=1: run paper-scale sweeps (slow)."""
    return os.environ.get("REPRO_FULL", "0") == "1"


# ----------------------------------------------------------------------
def _world(
    n_nodes: int,
    scheduler: str,
    seed: int,
    uniform_slice_ns: Optional[int] = None,
    sched_params: Optional[SchedulerParams] = None,
    vcpus_per_vm: int = 8,
    vms_per_node: int = 4,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    placement: str = "spread",
    migration: Optional[dict] = None,
    service: Optional[dict] = None,
    dfrs: Optional[dict] = None,
    event_queue: Optional[str] = None,
    tie_order: Optional[str] = None,
) -> CloudWorld:
    # Fault plans, migration/service/DFRS configs travel through scenario
    # params as JSON dicts so they are picklable and fold into the sweep
    # cache key automatically.
    plan = FaultPlan.from_dicts(faults) if faults else None
    return CloudWorld(
        WorldConfig(
            n_nodes=n_nodes,
            event_queue=event_queue,
            tie_order=tie_order,
            vms_per_node=vms_per_node,
            vcpus_per_vm=vcpus_per_vm,
            scheduler=scheduler,
            sched_params=sched_params,
            uniform_slice_ns=uniform_slice_ns,
            seed=seed,
            sanitize=sanitize,
            trace=trace,
            trace_capacity=trace_capacity,
            profile=profile,
            faults=plan,
            placement=placement,
            migration=MigrationConfig.from_dict(migration) if migration else None,
            service=ServiceConfig.from_dict(service) if service else None,
            dfrs=DFRSConfig.from_dict(dfrs) if dfrs is not None else None,
        )
    )


def _attach_obs(result: dict, world: CloudWorld) -> dict:
    """Fold observability outputs into a scenario result.

    Only adds keys when the corresponding layer was enabled, so results of
    plain runs are byte-identical with and without this call (the traced-run
    bit-identity regression tests compare everything *except* these keys).
    """
    if world.tracelog is not None:
        result["trace"] = world.tracelog.summary(include_records=True)
    if world.profiler is not None:
        result["profile"] = world.profiler.report()
    if world.fault_injector is not None:
        result["faults"] = world.fault_injector.stats
    if world.migration_engine is not None:
        result["migration"] = world.migration_engine.stats
    if world.rebalancer is not None:
        result["rebalancer"] = world.rebalancer.stats
    if world.service is not None:
        result["service"] = world.service.stats
    if world.dfrs is not None:
        result["dfrs"] = world.dfrs.stats
    return result


def run_type_a(
    app_name: str,
    scheduler: str,
    n_nodes: int,
    rounds: int = 2,
    warmup_rounds: int = 1,
    n_vclusters: int = 4,
    npb_class: str = "B",
    seed: int = 0,
    vcpus_per_vm: int = 8,
    horizon_s: float = 300.0,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    uniform_slice_ms: Optional[float] = None,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    event_queue: Optional[str] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Evaluation type A (Figs. 1, 10): four identical virtual clusters,
    one VM per node each, all running ``app_name``.

    ``uniform_slice_ms`` forces a static guest slice (CR sweeps and the
    ``repro trace`` CLI); ``trace``/``profile`` attach the observability
    layers and fold their outputs into the result; ``faults`` is a fault
    plan as dict list (:meth:`repro.faults.plan.FaultPlan.to_dicts`);
    ``event_queue`` selects the simulator queue backend (bit-identical
    across backends — see :mod:`repro.sim.engine`).
    """
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=vcpus_per_vm, sanitize=sanitize,
        uniform_slice_ns=None if uniform_slice_ms is None else ns_from_ms(uniform_slice_ms),
        trace=trace, trace_capacity=trace_capacity, profile=profile, faults=faults,
        event_queue=event_queue, tie_order=tie_order,
    )
    apps = []
    for k in range(n_vclusters):
        vc = world.virtual_cluster(n_vms=n_nodes, name=f"vc{k}")
        apps.append(
            world.add_npb(app_name, vc.vms, rounds=rounds, warmup_rounds=warmup_rounds, npb_class=npb_class)
        )
    world.run(horizon_ns=round(horizon_s * SEC))
    times = [t for a in apps for t in a.round_times]
    spin = [vm.kernel.avg_spin_ns for vm in world.vms]
    return _attach_obs(
        {
            "scheduler": scheduler,
            "app": app_name,
            "n_nodes": n_nodes,
            "mean_round_ns": mean(times),
            "rounds_measured": len(times),
            "all_done": world.all_apps_done,
            "avg_spin_ns": mean(spin),
            "cluster": cluster_stats(world.cluster),
            "sim_time_ns": world.sim.now,
            "events": world.sim.events_processed,
        },
        world,
    )


def run_table1_cell(
    scheduler: str = "ATC",
    seed: int = 0,
    horizon_s: float = 2.0,
    n_nodes: int = 32,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    profile: bool = False,
    event_queue: Optional[str] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """One full-scale Table-I trace cell: the paper's exact 32-node /
    256-core evaluation-type-B platform (Section IV-B2).

    Uses :func:`repro.workloads.traces.paper_vc_mix` — one 256-VCPU
    virtual cluster, two 128s, three 64s, one 32 and three 16s (90 VMs)
    plus 30 independent 8-VCPU VMs: 128 VMs on 32 nodes, 4 VMs/node.
    This is the cell the perf work targets: it only fits a CI smoke job
    because the engine overhead per event is low enough.  ``horizon_s``
    bounds the simulated time (CI smoke uses a short horizon; REPRO_FULL
    benchmarks run it long enough for every VC to finish rounds).
    """
    from repro.workloads.traces import paper_vc_mix

    mix = paper_vc_mix()
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=mix.vcpus_per_vm, vms_per_node=4, sanitize=sanitize,
        profile=profile, event_queue=event_queue, tie_order=tie_order,
    )
    rng = world.rng.substream(999)
    vc_apps = []
    for i, size in enumerate(mix.cluster_sizes_vms):
        vc = world.virtual_cluster(n_vms=size, name=f"VC{i + 1}")
        app_name = rng.choice(NPB_NAMES)
        vc_apps.append((vc, world.add_npb(app_name, vc.vms, rounds=None, warmup_rounds=1)))
    indep_apps = []
    for j in range(mix.independent_vms):
        vm = world.new_vm(name=f"ind{j}")
        indep_apps.append(world.add_npb(rng.choice(["lu", "is"]), [vm], rounds=None, warmup_rounds=1))
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "scheduler": scheduler,
        "n_nodes": n_nodes,
        "n_vms": len(world.vms),
        "total_vcpus": sum(len(vm.vcpus) for vm in world.vms),
        "vcs": [
            {
                "vc": vc.name,
                "n_vms": vc.n_vms,
                "app": app.spec.name,
                "mean_round_ns": app.mean_round_ns,
                "rounds": len(app.round_times),
            }
            for vc, app in vc_apps
        ],
        "independent_rounds": sum(len(a.round_times) for a in indep_apps),
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_slice_sweep(
    app_name: str,
    slice_ms_values: Sequence[float],
    n_nodes: int = 2,
    rounds: int = 2,
    warmup_rounds: int = 1,
    n_vclusters: int = 4,
    npb_class: str = "B",
    seed: int = 0,
    vcpus_per_vm: int = 8,
    horizon_s: float = 300.0,
    sanitize: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Static slice sweep under CR (Figs. 5 and 8).

    Paper setup: two nodes, four VMs per node forming four identical
    two-VM virtual clusters.  Returns per-slice execution time, average
    spinlock latency, LLC misses and context switches.  A ``faults`` plan
    applies identically to every slice's world.
    """
    rows = []
    total_events = 0
    for sm in slice_ms_values:
        world = _world(
            n_nodes, "CR", seed, uniform_slice_ns=ns_from_ms(sm),
            vcpus_per_vm=vcpus_per_vm, sanitize=sanitize, faults=faults,
            tie_order=tie_order,
        )
        apps = []
        for k in range(n_vclusters):
            vc = world.virtual_cluster(n_vms=n_nodes, name=f"vc{k}")
            apps.append(
                world.add_npb(
                    app_name, vc.vms, rounds=rounds, warmup_rounds=warmup_rounds, npb_class=npb_class
                )
            )
        world.run(horizon_ns=round(horizon_s * SEC))
        times = [t for a in apps for t in a.round_times]
        stats = cluster_stats(world.cluster)
        busy = max(1, stats["busy_ns"])
        rows.append(
            {
                "slice_ms": sm,
                "mean_round_ns": mean(times),
                "avg_spin_ns": mean([vm.kernel.avg_spin_ns for vm in world.vms]),
                "llc_misses": stats["llc_misses"],
                "miss_rate_per_ms": stats["llc_misses"] / (busy / MSEC),
                "context_switches": stats["context_switches"],
                "all_done": world.all_apps_done,
            }
        )
        total_events += world.sim.events_processed
    return {"app": app_name, "npb_class": npb_class, "rows": rows, "events": total_events}


def run_small_mix(
    scheduler: str,
    seed: int = 0,
    horizon_s: float = 8.0,
    uniform_slice_ms: Optional[float] = None,
    parallel_app: str = "lu",
    atc_np_slice_ms: Optional[float] = None,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Section II-A2 platform (Figs. 2 and 9): two nodes, four VMs each;
    three two-VM virtual clusters run ``parallel_app`` in the background,
    the remaining two VMs host bonnie++, sphinx3, stream and ping.

    ``uniform_slice_ms`` reproduces Fig. 9's static sweep (CR only);
    ``atc_np_slice_ms`` sets the administrator slice for non-parallel VMs
    under ATC (the ATC(6ms) variant of Section IV-C).
    """
    world = _world(
        2,
        scheduler,
        seed,
        uniform_slice_ns=None if uniform_slice_ms is None else ns_from_ms(uniform_slice_ms),
        sched_params=sched_params,
        sanitize=sanitize,
        trace=trace,
        trace_capacity=trace_capacity,
        profile=profile,
        faults=faults,
        tie_order=tie_order,
    )
    bg_apps = []
    for k in range(3):
        vc = world.virtual_cluster(n_vms=2, name=f"vc{k}")
        bg_apps.append(world.add_npb(parallel_app, vc.vms, rounds=None, warmup_rounds=1))
    np1 = world.new_vm(node_idx=0, name="np0")
    np2 = world.new_vm(node_idx=1, name="np1")
    if atc_np_slice_ms is not None:
        np1.admin_slice_ns = ns_from_ms(atc_np_slice_ms)
        np2.admin_slice_ns = ns_from_ms(atc_np_slice_ms)
    if uniform_slice_ms is not None:
        np1.slice_ns = ns_from_ms(uniform_slice_ms)
        np2.slice_ns = ns_from_ms(uniform_slice_ms)
    sphinx = world.add_cpu_app("sphinx3", np1)
    stream = world.add_stream(np1)
    bonnie = world.add_bonnie(np2)
    ping = world.add_ping(np1, np2)
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs(
        {
            "scheduler": scheduler,
            "uniform_slice_ms": uniform_slice_ms,
            "sphinx3_mean_run_ns": sphinx.mean_run_ns,
            "stream_bandwidth_Bps": stream.bandwidth_Bps,
            "bonnie_throughput_Bps": bonnie.throughput_Bps,
            "ping_mean_rtt_ns": ping.mean_rtt_ns,
            "ping_samples": len(ping.rtts),
            "parallel_mean_round_ns": mean([t for a in bg_apps for t in a.round_times]),
            "sim_time_ns": world.sim.now,
            "events": world.sim.events_processed,
        },
        world,
    )


def _scaled_vc_mix(world: CloudWorld, rng: SimRNG, reserve_vms: int = 0):
    """Build a Table-I-distributed VC mix filling the world's capacity."""
    total = world.config.n_nodes * world.config.vms_per_node - reserve_vms
    return synthesize_vc_mix(
        total, world.config.vcpus_per_vm, rng,
        min_vcpus=2 * world.config.vcpus_per_vm,
        max_vcpus=world.config.n_nodes * world.config.vcpus_per_vm,
    )


def run_type_b(
    scheduler: str,
    n_nodes: int = 8,
    seed: int = 0,
    horizon_s: float = 6.0,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Evaluation type B (Fig. 11): LLNL-trace virtual-cluster mix, every
    cluster running a random NPB kernel repeatedly;
    independent VMs run lu.B or is.B.  Per-VC mean round times returned."""
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params, sanitize=sanitize,
        trace=trace, trace_capacity=trace_capacity, profile=profile, faults=faults,
        tie_order=tie_order,
    )
    rng = world.rng.substream(999)
    mix = _scaled_vc_mix(world, rng)
    vc_apps = []
    for i, size in enumerate(mix.cluster_sizes_vms):
        vc = world.virtual_cluster(n_vms=size, name=f"VC{i + 1}")
        app_name = rng.choice(NPB_NAMES)
        vc_apps.append((vc, world.add_npb(app_name, vc.vms, rounds=None, warmup_rounds=1)))
    indep_apps = []
    for j in range(mix.independent_vms):
        vm = world.new_vm(name=f"ind{j}")
        app_name = rng.choice(["lu", "is"])
        indep_apps.append(world.add_npb(app_name, [vm], rounds=None, warmup_rounds=1))
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "scheduler": scheduler,
        "n_nodes": n_nodes,
        "vcs": [
            {
                "vc": vc.name,
                "n_vms": vc.n_vms,
                "app": app.spec.name,
                "mean_round_ns": app.mean_round_ns,
                "rounds": len(app.round_times),
            }
            for vc, app in vc_apps
        ],
        "independents": [
            {"app": a.spec.name, "mean_round_ns": a.mean_round_ns, "rounds": len(a.round_times)}
            for a in indep_apps
        ],
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_type_b_mixed(
    scheduler: str,
    n_nodes: int = 8,
    seed: int = 0,
    horizon_s: float = 6.0,
    atc_np_slice_ms: Optional[float] = None,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Section IV-C (Figs. 12-14): type B clusters plus independent VMs
    running lu/is and the non-parallel suite.  One extra node hosts the
    httperf client (the paper drives web load from separate machines)."""
    world = _world(
        n_nodes + 1, scheduler, seed, sched_params=sched_params, sanitize=sanitize,
        trace=trace, trace_capacity=trace_capacity, profile=profile, faults=faults,
        tie_order=tie_order,
    )
    # keep the client node (last index) out of general placement
    world._node_vm_load[n_nodes] = world.config.vms_per_node - 1
    rng = world.rng.substream(999)

    # Reserve independent slots for the non-parallel apps (5 VMs).
    mix = _scaled_vc_mix(world, rng, reserve_vms=world.config.vms_per_node + 5)
    vc_apps = []
    for i, size in enumerate(mix.cluster_sizes_vms):
        vc = world.virtual_cluster(n_vms=size, name=f"VC{i + 1}")
        app_name = rng.choice(NPB_NAMES)
        vc_apps.append((vc, world.add_npb(app_name, vc.vms, rounds=None, warmup_rounds=1)))

    def np_vm(name):
        vm = world.new_vm(name=name)
        if atc_np_slice_ms is not None:
            vm.admin_slice_ns = ns_from_ms(atc_np_slice_ms)
        return vm

    web_vm = np_vm("web")
    cpu_vm = np_vm("speccpu")
    stream_vm = np_vm("streamvm")
    bonnie_vm = np_vm("bonnievm")
    ping_vm = np_vm("pingvm")
    client_vm = world.new_vm(node_idx=n_nodes, name="httperf-client")

    webserver = world.add_webserver(web_vm, client_vm)
    gcc = world.add_cpu_app("gcc", cpu_vm)
    bzip2 = world.add_cpu_app("bzip2", cpu_vm)
    sphinx = world.add_cpu_app("sphinx3", cpu_vm)
    stream = world.add_stream(stream_vm)
    bonnie = world.add_bonnie(bonnie_vm)
    ping = world.add_ping(ping_vm, bonnie_vm)

    # Remaining independent capacity runs lu/is, as in the paper.
    indep_apps = []
    j = 0
    while sum(world._node_vm_load[:n_nodes]) < n_nodes * world.config.vms_per_node:
        vm = world.new_vm(name=f"ind{j}")
        indep_apps.append(world.add_npb(rng.choice(["lu", "is"]), [vm], rounds=None, warmup_rounds=1))
        j += 1

    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "scheduler": scheduler,
        "atc_np_slice_ms": atc_np_slice_ms,
        "vcs": [
            {
                "vc": vc.name,
                "n_vms": vc.n_vms,
                "app": app.spec.name,
                "mean_round_ns": app.mean_round_ns,
                "rounds": len(app.round_times),
            }
            for vc, app in vc_apps
        ],
        "webserver_mean_response_ns": webserver.mean_response_ns,
        "gcc_mean_run_ns": gcc.mean_run_ns,
        "bzip2_mean_run_ns": bzip2.mean_run_ns,
        "sphinx3_mean_run_ns": sphinx.mean_run_ns,
        "stream_bandwidth_Bps": stream.bandwidth_Bps,
        "bonnie_throughput_Bps": bonnie.throughput_Bps,
        "ping_mean_rtt_ns": ping.mean_rtt_ns,
        "independent_mean_round_ns": mean(
            [t for a in indep_apps for t in a.round_times]
        ),
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_packet_path_probe(
    scheduler: str = "CR",
    uniform_slice_ms: Optional[float] = None,
    n_probes: int = 50,
    seed: int = 0,
    horizon_s: float = 30.0,
    background_app: str = "lu",
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Fig. 4: measure the four scheduling-wait overhead sources on the
    cross-VM packet path while parallel load keeps the hosts busy.

    Returns mean nanoseconds of: netback-tx wait (source 2), wire time,
    netback-rx wait (source 3) and guest-consume wait (source 4).
    (Source 1 — the sender's own wait to be scheduled — is folded into
    inter-send gaps and reported as send interval jitter.)
    """
    world = _world(
        2, scheduler, seed,
        uniform_slice_ns=None if uniform_slice_ms is None else ns_from_ms(uniform_slice_ms),
        sched_params=sched_params,
        sanitize=sanitize,
        trace=trace,
        trace_capacity=trace_capacity,
        profile=profile,
        faults=faults,
        tie_order=tie_order,
    )
    for k in range(3):
        vc = world.virtual_cluster(n_vms=2, name=f"vc{k}")
        world.add_npb(background_app, vc.vms, rounds=None, warmup_rounds=1)
    src = world.new_vm(node_idx=0, name="probe-src")
    dst = world.new_vm(node_idx=1, name="probe-dst")
    log: list = []
    dst.kernel.packet_log = log

    sender = src.kernel.add_process(cache_sensitivity=0.2)
    receiver = dst.kernel.add_process(cache_sensitivity=0.2)

    def send_prog():
        from repro.guest.process import sleep as sleep_seg

        for i in range(n_probes):
            yield send(dst, receiver.index, 1024, tag=i)
            yield sleep_seg(20 * MSEC)

    def recv_prog():
        while True:
            yield recv_block(1)

    sender.load_program(send_prog())
    receiver.load_program(recv_prog())
    world.background.append(_ProcPair(sender, receiver))
    world.run(horizon_ns=round(horizon_s * SEC))

    stamped = [p for p in log if p.t_consumed >= 0]
    return _attach_obs({
        "scheduler": scheduler,
        "probes": len(stamped),
        "mean_netback_tx_wait_ns": mean([p.t_netback_tx - p.t_send for p in stamped]),
        "mean_wire_ns": mean([p.t_arrive - p.t_netback_tx for p in stamped]),
        "mean_netback_rx_wait_ns": mean([p.t_delivered - p.t_arrive for p in stamped]),
        "mean_consume_wait_ns": mean([p.t_consumed - p.t_delivered for p in stamped]),
        "mean_end_to_end_ns": mean([p.t_consumed - p.t_send for p in stamped]),
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_migration_rebalance(
    policy: str = "demix",
    placement: str = "pack",
    scheduler: str = "ATC",
    n_nodes: int = 3,
    n_clusters: int = 2,
    vms_per_cluster: int = 2,
    vms_per_node: int = 4,
    vcpus_per_vm: int = 4,
    app_name: str = "lu",
    n_nonparallel: int = 1,
    seed: int = 0,
    horizon_s: float = 10.0,
    migration: Optional[dict] = None,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Mixed-tenancy world under a live-migration rebalancing policy.

    ``n_clusters`` virtual clusters of ``vms_per_cluster`` VMs each run
    ``app_name`` in the background; ``n_nonparallel`` independent VMs run
    sphinx3.  The initial ``placement`` (typically ``"pack"``, which mixes
    clusters on shared hosts) is then revisited by the ``policy``:

    * ``"static"`` — no migration subsystem at all (baseline);
    * ``"none"``   — engine constructed but no rebalancer (bit-identity
      control: must match ``"static"`` exactly);
    * ``"demix"`` / ``"consolidate"`` / ``"evacuate"`` — live policies
      (:mod:`repro.migration.policies`).

    ``migration`` holds :class:`~repro.migration.engine.MigrationConfig`
    overrides as a JSON-friendly dict (``control_every``, ``params``...).
    """
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=vcpus_per_vm, vms_per_node=vms_per_node,
        sanitize=sanitize, trace=trace, trace_capacity=trace_capacity,
        profile=profile, faults=faults, placement=placement, tie_order=tie_order,
        migration=None if policy == "static" else {"policy": policy, **(migration or {})},
    )
    apps = []
    for k in range(n_clusters):
        vc = world.virtual_cluster(n_vms=vms_per_cluster, name=f"vc{k}")
        apps.append(world.add_npb(app_name, vc.vms, rounds=None, warmup_rounds=1))
    for j in range(n_nonparallel):
        world.add_cpu_app("sphinx3", world.new_vm(name=f"np{j}"))
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "scheduler": scheduler,
        "policy": policy,
        "placement": placement,
        "app": app_name,
        "parallel_mean_round_ns": mean([t for a in apps for t in a.round_times]),
        "per_cluster_mean_round_ns": {
            f"vc{k}": apps[k].mean_round_ns for k in range(n_clusters)
        },
        "final_nodes": {vm.name: vm.node.index for vm in world.vms},
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_dfrs_compare(
    mode: str = "hybrid",
    placement: str = "pack",
    n_nodes: int = 3,
    n_clusters: int = 2,
    vms_per_cluster: int = 2,
    vms_per_node: int = 4,
    vcpus_per_vm: int = 4,
    app_name: str = "lu",
    n_nonparallel: int = 1,
    seed: int = 0,
    horizon_s: float = 10.0,
    dfrs: Optional[dict] = None,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """DFRS comparator cell: one mixed-tenancy packed world (the
    ``run_migration_rebalance`` shape) run under one point of the
    {scheduler} × {cluster allocator} design space:

    * ``"baseline"`` — plain CR, no cluster layer (the paper's default);
    * ``"atc"``      — the paper's ATC: per-VCPU adaptive time slices,
      no cluster layer;
    * ``"dfrs"``     — CR plus the DFRS controller: per-VM fractional
      caps and weights re-solved every ``solve_every`` periods from
      monitor signals (:mod:`repro.dfrs`);
    * ``"hybrid"``   — ATC *and* DFRS: intra-host slice adaptation under
      cluster-level fractional allocation;
    * ``"idle"``     — CR plus a constructed-but-disabled controller
      (``solve_every=0``): the bit-identity control, which must match
      ``"baseline"`` exactly, event count included.

    ``dfrs`` holds :class:`~repro.dfrs.controller.DFRSConfig` overrides
    as a JSON-friendly dict (``solve_every``, ``headroom``,
    ``allow_moves``...).  Results carry the same round-time keys as the
    migration scenario so benches can put all modes on one normalized
    axis.
    """
    modes = {
        "baseline": ("CR", None),
        "atc": ("ATC", None),
        "dfrs": ("CR", dict(dfrs or {})),
        "hybrid": ("ATC", dict(dfrs or {})),
        "idle": ("CR", {**(dfrs or {}), "solve_every": 0}),
    }
    try:
        scheduler, dfrs_cfg = modes[mode]
    except KeyError:
        raise ValueError(
            f"unknown dfrs_compare mode {mode!r}; choose from {sorted(modes)}"
        ) from None
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=vcpus_per_vm, vms_per_node=vms_per_node,
        sanitize=sanitize, trace=trace, trace_capacity=trace_capacity,
        profile=profile, faults=faults, placement=placement,
        tie_order=tie_order, dfrs=dfrs_cfg,
    )
    apps = []
    for k in range(n_clusters):
        vc = world.virtual_cluster(n_vms=vms_per_cluster, name=f"vc{k}")
        apps.append(world.add_npb(app_name, vc.vms, rounds=None, warmup_rounds=1))
    np_apps = []
    for j in range(n_nonparallel):
        np_apps.append(world.add_cpu_app("sphinx3", world.new_vm(name=f"np{j}")))
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "mode": mode,
        "scheduler": scheduler,
        "placement": placement,
        "app": app_name,
        "parallel_mean_round_ns": mean([t for a in apps for t in a.round_times]),
        "per_cluster_mean_round_ns": {
            f"vc{k}": apps[k].mean_round_ns for k in range(n_clusters)
        },
        "np_mean_run_ns": mean([a.mean_run_ns for a in np_apps]),
        "final_nodes": {vm.name: vm.node.index for vm in world.vms},
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_service(
    admission: str = "fcfs-queue",
    arrival: str = "poisson",
    scheduler: str = "ATC",
    n_nodes: int = 3,
    vms_per_node: int = 4,
    vcpus_per_vm: int = 4,
    placement: str = "pack",
    rate_per_s: float = 2.0,
    max_tenants: int = 6,
    service_trace: Optional[Sequence[dict]] = None,
    min_vcpus: int = 8,
    max_vcpus: int = 16,
    rounds: int = 1,
    apps: Sequence[str] = ("lu", "is"),
    npb_class: str = "A",
    seed: int = 0,
    horizon_s: float = 30.0,
    migration: Optional[dict] = None,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Always-on cloud service: streaming tenant arrivals under an
    online admission policy (:mod:`repro.service`).

    Tenants arrive as a Poisson process at ``rate_per_s`` (or replay
    ``service_trace``, a list of ``{"at_ms", "n_vms", "app", "rounds"}``
    dicts), draw their VM-count shape from the Table-I size distribution
    restricted to ``[min_vcpus, max_vcpus]``, and submit to ``admission``
    (one of :func:`repro.service.admission.admission_names`).  Completed
    tenants are torn down and their capacity reclaimed, so later arrivals
    reuse it.  ``admission="migration-aware"`` auto-attaches a demix
    rebalancer unless ``migration`` overrides it; the policy queues and
    kicks the rebalancer when no foreign-cluster-free placement exists.
    """
    if admission == "migration-aware" and migration is None:
        migration = {"policy": "demix"}
    service = {
        "arrival": arrival,
        "admission": admission,
        "rate_per_s": rate_per_s,
        "max_tenants": max_tenants,
        "trace": list(service_trace or ()),
        "min_vcpus": min_vcpus,
        "max_vcpus": max_vcpus,
        "rounds": rounds,
        "apps": list(apps),
        "npb_class": npb_class,
    }
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=vcpus_per_vm, vms_per_node=vms_per_node,
        sanitize=sanitize, trace=trace, trace_capacity=trace_capacity,
        profile=profile, faults=faults, placement=placement,
        migration=migration, service=service, tie_order=tie_order,
    )
    world.run(horizon_ns=round(horizon_s * SEC))
    return _attach_obs({
        "scheduler": scheduler,
        "admission": admission,
        "arrival": arrival,
        "n_nodes": n_nodes,
        "offered_load_per_s": rate_per_s,
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


def run_attack(
    scheduler: str = "CR",
    hardened: bool = False,
    attack: bool = True,
    seed: int = 0,
    horizon_s: float = 6.0,
    n_nodes: int = 1,
    vcpus_per_vm: int = 4,
    victim_app: str = "lu",
    npb_class: str = "A",
    n_attack_procs: int = 4,
    boost_rate_limit: int = 2,
    slice_floor_ms: float = 6.0,
    sched_params: Optional[SchedulerParams] = None,
    sanitize: bool = False,
    trace: bool = False,
    trace_capacity: int = 65536,
    profile: bool = False,
    faults: Optional[Sequence[dict]] = None,
    tie_order: Optional[str] = None,
) -> dict:
    """Adversarial-tenancy cell (DESIGN.md §15): one over-committed node
    hosting a parallel victim cluster, a non-parallel victim, and two
    attacker VMs — a yield-before-tick thief and a BOOST/tickle stormer
    (:mod:`repro.workloads.attacks`).

    Every cell — clean or attacked, hardened or not — runs the scheduler
    with Xen-faithful tick-*sampled* debiting
    (``CreditParams.tick_accounting``), the substrate the classic Zhou
    et al. attacks game, so clean/attack pairs isolate the attacker's
    effect.  ``hardened`` switches on the full mitigation set:
    ``deboost_on_yield``, a per-VM BOOST rate limit, a randomized tick
    phase (drawn off the dedicated attack substream), and — under ATC —
    the ``slice_floor_ns`` clamp on Algorithm 2.

    ``attack=False`` keeps the identical tenancy shape (the attacker VMs
    exist but stay idle, their VCPUs never wake) and constructs no
    attacker apps, so clean cells draw zero attack entropy.  The CLI /
    bench derive *victim slowdown* (attacked / clean mean round) and
    *attacker gain* (``cpu_consumed_ns / cpu_debited_ns``) from the
    {clean, attack} × {hardened, unhardened} grid per scheduler.
    """
    from repro.core.config import ATCConfig
    from repro.schedulers.atc_sched import ATCParams
    from repro.schedulers.credit import CreditParams
    from repro.workloads.attacks import ATTACK_RNG_KEY

    if scheduler not in ("CR", "ATC"):
        raise ValueError(f"run_attack supports CR/ATC, got {scheduler!r}")
    if sched_params is None:
        # The randomized tick phase is adversarial-layer entropy: draw it
        # off the dedicated attack substream (distinct stream key 0xF0 so
        # attacker apps and the phase never share draws), only when the
        # hardened configuration actually uses it.
        phase = 0
        if hardened:
            tick = CreditParams.tick_ns
            phase = SimRNG(seed).substream(ATTACK_RNG_KEY, 0xF0).uniform_ns(0, tick - 1)
        knobs = dict(
            tick_accounting=True,
            deboost_on_yield=hardened,
            boost_rate_limit=boost_rate_limit if hardened else 0,
            tick_phase_ns=phase,
        )
        if scheduler == "ATC":
            sched_params = ATCParams(
                atc=ATCConfig(
                    slice_floor_ns=ns_from_ms(slice_floor_ms) if hardened else 0
                ),
                **knobs,
            )
        else:
            sched_params = CreditParams(**knobs)
    world = _world(
        n_nodes, scheduler, seed, sched_params=sched_params,
        vcpus_per_vm=vcpus_per_vm, vms_per_node=4, sanitize=sanitize,
        trace=trace, trace_capacity=trace_capacity, profile=profile,
        faults=faults, tie_order=tie_order,
    )
    vc = world.virtual_cluster(n_vms=n_nodes, name="victim")
    victim = world.add_npb(victim_app, vc.vms, rounds=None, warmup_rounds=1,
                           npb_class=npb_class)
    np_vm = world.new_vm(name="np-victim")
    np_app = world.add_cpu_app("sphinx3", np_vm)
    world.add_cpu_app("gcc", np_vm)
    thief_vm = world.new_vm(name="thief")
    tickler_vm = world.new_vm(name="tickler")
    thieves = []
    ticklers = []
    if attack:
        thieves = [world.add_yield_theft(thief_vm, stream=i)
                   for i in range(n_attack_procs)]
        ticklers = [world.add_tickle_abuse(tickler_vm, stream=0x10 + i)
                    for i in range(n_attack_procs)]
    world.run(horizon_ns=round(horizon_s * SEC))
    victim_vms = list(vc.vms) + [np_vm]
    return _attach_obs({
        "scheduler": scheduler,
        "hardened": hardened,
        "attack": attack,
        "victim_app": victim_app,
        "victim_mean_round_ns": victim.mean_round_ns,
        "victim_rounds": len(victim.round_times),
        "np_mean_run_ns": np_app.mean_run_ns,
        "victim_boost_preempts_suffered": sum(
            vm.boost_preempts_suffered for vm in victim_vms
        ),
        "thief": {
            "cycles": sum(a.cycles for a in thieves),
            "cpu_consumed_ns": thief_vm.cpu_consumed_ns,
            "cpu_debited_ns": thief_vm.cpu_debited_ns,
            "gain": (thief_vm.cpu_consumed_ns / thief_vm.cpu_debited_ns
                     if thief_vm.cpu_debited_ns > 0
                     else (float("inf") if thief_vm.cpu_consumed_ns > 0 else 1.0)),
        },
        "tickler": {
            "wakes": sum(a.wakes for a in ticklers),
            "boost_preempts_inflicted": tickler_vm.boost_preempts_inflicted,
            "cpu_consumed_ns": tickler_vm.cpu_consumed_ns,
            "cpu_debited_ns": tickler_vm.cpu_debited_ns,
        },
        "sim_time_ns": world.sim.now,
        "events": world.sim.events_processed,
    }, world)


class _ProcPair:
    """Adapter so raw processes can sit in ``world.background``."""

    def __init__(self, *procs) -> None:
        self.procs = procs

    def start(self) -> None:
        for p in self.procs:
            p.start()


def run_fault_probe(
    mode: str = "ok",
    seed: int = 0,
    hang_s: float = 30.0,
    horizon_ms: float = 50.0,
) -> dict:
    """Degradation-test scenario: a tiny world that can misbehave on cue.

    Modes: ``ok`` runs cleanly; ``raise`` throws (retryable failure path);
    ``exit`` kills the worker process outright (``os._exit``, so no
    exception propagates — exercises BrokenProcessPool recovery);
    ``hang`` sleeps ``hang_s`` host seconds (cell-timeout path);
    ``runaway`` floods the simulator with 1 µs self-rescheduling ticks so
    only a watchdog or the horizon stops it.
    """
    from repro.sim.engine import Simulator
    from repro.sim.units import USEC, ns_from_ms

    if mode == "raise":
        raise RuntimeError(f"fault_probe: injected failure (seed={seed})")
    if mode == "exit":
        os._exit(17)  # simulated worker crash: bypasses all exception handling
    if mode == "hang":
        time.sleep(hang_s)
    sim = Simulator()
    ticks = 0

    def tick() -> None:
        nonlocal ticks
        ticks += 1
        sim.after(1 * USEC, tick, cat="probe")

    sim.after(0, tick, cat="probe")
    sim.run(until=ns_from_ms(horizon_ms) if mode == "runaway" else ns_from_ms(1.0))
    return {
        "mode": mode,
        "seed": seed,
        "ticks": ticks,
        "sim_time_ns": sim.now,
        "events": sim.events_processed,
    }
