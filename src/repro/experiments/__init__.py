"""Experiment harness: the CloudWorld facade, per-figure scenario
builders, the parallel sweep runner, and plain-text reporting."""

from repro.experiments.harness import CloudWorld, WorldConfig
from repro.experiments.reporting import format_normalized, format_table, to_csv, to_markdown
from repro.experiments.runner import (
    RunResult,
    RunSpec,
    export_json,
    run_sweep,
    sweep_stats,
)
from repro.experiments.scenarios import (
    full_scale,
    run_packet_path_probe,
    run_slice_sweep,
    run_small_mix,
    run_type_a,
    run_type_b,
    run_type_b_mixed,
)

__all__ = [
    "CloudWorld",
    "WorldConfig",
    "RunResult",
    "RunSpec",
    "export_json",
    "run_sweep",
    "sweep_stats",
    "format_normalized",
    "format_table",
    "to_csv",
    "to_markdown",
    "full_scale",
    "run_packet_path_probe",
    "run_slice_sweep",
    "run_small_mix",
    "run_type_a",
    "run_type_b",
    "run_type_b_mixed",
]
