"""Plain-text / CSV / Markdown tables for experiment output."""

from __future__ import annotations

import io
from typing import Mapping, Sequence

from repro.metrics.summary import normalize_map

__all__ = [
    "format_table",
    "format_normalized",
    "format_metrics",
    "to_csv",
    "to_markdown",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render an aligned ASCII table."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.3f}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_normalized(results: Mapping[str, float], baseline: str = "CR", title: str = "") -> str:
    """Render a {approach: time} map as normalized-vs-baseline rows.

    Division goes through :func:`repro.metrics.summary.normalize_map`, so a
    missing or zero baseline raises the same descriptive error everywhere
    normalization happens, instead of a bare ``KeyError``/``ZeroDivisionError``.
    """
    rows = list(normalize_map(results, baseline).items())
    return format_table(["approach", f"normalized vs {baseline}"], rows, title=title)


def format_metrics(registry, prefix: str = "", title: str = "") -> str:
    """Render a :class:`~repro.obs.registry.MetricsRegistry` snapshot (or a
    snapshot dict) as a metric/value table.

    Composite values (histogram dicts, nested node lists) are summarized by
    their size rather than dumped inline; use the snapshot itself for the
    full structure.
    """
    if hasattr(registry, "snapshot"):
        snap = registry.snapshot(prefix)
    else:
        snap = {k: v for k, v in registry.items() if k.startswith(prefix)}
    rows = []
    for name, value in snap.items():
        if isinstance(value, dict):
            value = f"<{len(value)} fields>"
        elif isinstance(value, list):
            value = f"<{len(value)} entries>"
        rows.append((name, value))
    return format_table(["metric", "value"], rows, title=title)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Serialize a result table as CSV (RFC-4180 quoting)."""
    import csv

    buf = io.StringIO()
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(headers)
    for row in rows:
        w.writerow(row)
    return buf.getvalue()


def to_markdown(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Serialize a result table as a GitHub-flavoured Markdown table."""
    cells = [[f"{c:.3f}" if isinstance(c, float) else str(c) for c in row] for row in rows]
    lines = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in cells:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
