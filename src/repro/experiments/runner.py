"""Parallel sweep execution: fan independent simulation cells over workers.

Every figure the reproduction regenerates is a sweep over independent,
deterministic cells (scheduler x app x scale x slice).  Each cell owns its
own :class:`~repro.sim.engine.Simulator` and seeded
:class:`~repro.sim.rng.SimRNG`, so cells can run in any order on any
number of processes and still produce bit-identical results — parallelism
here is a matter of not sharing state, not of luck.

The moving parts:

* :class:`RunSpec` — a picklable description of one cell: a scenario name
  from :data:`SCENARIOS` plus JSON-serializable keyword arguments.
* :class:`RunResult` — the outcome of one cell: the scenario's result dict
  on success, or a structured error record (type, message, traceback,
  attempts) on failure.  A failing cell never aborts the sweep.
* :func:`run_sweep` — executes a list of specs, serially (``jobs=1``) or
  over a ``ProcessPoolExecutor`` (``jobs=N``), consulting an on-disk
  result cache under ``.repro_cache/`` keyed by a content hash of the
  spec plus a code-version salt (any change to ``repro``'s sources
  invalidates every cached cell).
* :func:`sweep_stats` / :func:`export_json` — wall-clock and
  events-processed aggregates, and machine-readable result dumps.

Typical use::

    specs = [RunSpec("type_a", {"app_name": a, "scheduler": s, "n_nodes": 2})
             for a in ("lu", "is") for s in ("CR", "ATC")]
    results = run_sweep(specs, jobs=4)
    for r in results:
        print(r.spec.label, r.value["mean_round_ns"] if r.ok else r.error)
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.sanitizer import SanitizerViolationError
from repro.experiments import scenarios

__all__ = [
    "SCENARIOS",
    "RunSpec",
    "RunResult",
    "run_sweep",
    "sweep_stats",
    "export_json",
    "default_cache_dir",
    "code_salt",
]

#: Scenario registry: every cell names one of these builders.  Keeping the
#: callable out of the spec keeps specs picklable and content-hashable.
SCENARIOS: dict[str, Callable[..., dict]] = {
    "type_a": scenarios.run_type_a,
    "slice_sweep": scenarios.run_slice_sweep,
    "small_mix": scenarios.run_small_mix,
    "type_b": scenarios.run_type_b,
    "type_b_mixed": scenarios.run_type_b_mixed,
    "packet_path_probe": scenarios.run_packet_path_probe,
}

_CACHE_VERSION = 1
_code_salt_memo: Optional[str] = None


def default_cache_dir() -> Path:
    """The sweep result cache root (override with ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def code_salt() -> str:
    """Content hash of every ``repro`` source file.

    Folded into each cell's cache key so that *any* change to the
    simulator invalidates *every* cached result — simulation outputs
    depend on the whole code path, not just the spec.
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for p in sorted(root.rglob("*.py")):
            h.update(str(p.relative_to(root)).encode())
            h.update(b"\0")
            h.update(p.read_bytes())
        _code_salt_memo = h.hexdigest()[:16]
    return _code_salt_memo


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation cell.

    ``scenario`` names an entry of :data:`SCENARIOS`; ``params`` are its
    keyword arguments and must be JSON-serializable (they form the cache
    key).  ``label`` is only for progress display and defaults to a
    compact rendering of the params.

    ``sanitize`` runs the cell under the runtime invariant sanitizer
    (:mod:`repro.analysis.sanitizer`).  The sanitizer's hooks are
    read-only, so results are bit-identical either way; the flag is
    folded into the cache key only when set, keeping existing cached
    digests valid.

    ``trace`` and ``profile`` attach the observability layers
    (:mod:`repro.obs`): tracing adds a ``"trace"`` key (ring-buffer
    summary + records) and profiling a ``"profile"`` key (wall-clock
    self-profile) to the cell's value.  Like ``sanitize``, both are
    read-only observation and fold into the cache key only when set —
    but a profiled value embeds host wall-clock numbers, so profiled
    cells are cached separately and their ``"profile"`` content is
    machine-dependent.
    """

    scenario: str
    params: Mapping = field(default_factory=dict)
    label: str = ""
    sanitize: bool = False
    trace: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {self.scenario!r}; known: {sorted(SCENARIOS)}"
            )
        object.__setattr__(self, "params", dict(self.params))
        self.key()  # fail fast on non-JSON-serializable params
        if not self.label:
            short = ",".join(f"{k}={v}" for k, v in self.params.items())
            object.__setattr__(self, "label", f"{self.scenario}({short})")

    def key(self) -> str:
        """Canonical JSON identity of the cell (scenario + params)."""
        payload = {"scenario": self.scenario, "params": self.params}
        if self.sanitize:
            # Only present when set, so pre-existing cache digests of
            # unsanitized cells stay valid.
            payload["sanitize"] = True
        if self.trace:
            payload["trace"] = True
        if self.profile:
            payload["profile"] = True
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self, salt: Optional[str] = None) -> str:
        """Cache key: SHA-256 over the canonical spec + code-version salt."""
        salt = code_salt() if salt is None else salt
        payload = f"v{_CACHE_VERSION}|{salt}|{self.key()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        d = {"scenario": self.scenario, "params": dict(self.params), "label": self.label}
        if self.sanitize:
            d["sanitize"] = True
        if self.trace:
            d["trace"] = True
        if self.profile:
            d["profile"] = True
        return d


@dataclass
class RunResult:
    """Outcome of one cell: value dict on success, error record on failure."""

    spec: RunSpec
    ok: bool
    value: Optional[dict] = None
    #: Structured failure record: {"type", "message", "traceback", "attempts"}.
    error: Optional[dict] = None
    wall_s: float = 0.0
    attempts: int = 1
    cached: bool = False

    @property
    def events(self) -> int:
        """Simulator events processed by this cell (0 when unreported)."""
        if self.ok and isinstance(self.value, dict):
            return int(self.value.get("events", 0))
        return 0

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "value": self.value,
            "error": self.error,
            "wall_s": self.wall_s,
            "attempts": self.attempts,
            "cached": self.cached,
        }


# ----------------------------------------------------------------------
# Cell execution (runs in worker processes; must stay picklable/top-level)
# ----------------------------------------------------------------------
def _execute_cell(spec: RunSpec, retries: int = 1) -> dict:
    """Run one cell with retry; always returns a plain (picklable) dict."""
    fn = SCENARIOS[spec.scenario]
    kwargs = dict(spec.params)
    if spec.sanitize:
        kwargs["sanitize"] = True
    if spec.trace:
        kwargs["trace"] = True
    if spec.profile:
        kwargs["profile"] = True
    attempts = 0
    last_exc: Optional[BaseException] = None
    # Host wall-clock (never feeds simulation state, so exempt from the
    # determinism lint).
    t0 = time.perf_counter()  # repro: ignore[RPR001]
    while attempts <= retries:
        attempts += 1
        try:
            value = fn(**kwargs)
            return {
                "ok": True,
                "value": value,
                "error": None,
                "wall_s": time.perf_counter() - t0,  # repro: ignore[RPR001]
                "attempts": attempts,
            }
        except SanitizerViolationError as exc:
            # Deterministic: a retry would record the same violations.
            last_exc = exc
            break
        except Exception as exc:  # noqa: BLE001 - converted to a record
            last_exc = exc
    error = {
        "type": type(last_exc).__name__,
        "message": str(last_exc),
        "traceback": "".join(traceback.format_exception(last_exc)),
        "attempts": attempts,
    }
    if isinstance(last_exc, SanitizerViolationError):
        error["violations"] = [v.to_dict() for v in last_exc.violations]
    return {
        "ok": False,
        "value": None,
        "error": error,
        "wall_s": time.perf_counter() - t0,  # repro: ignore[RPR001]
        "attempts": attempts,
    }


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def _cache_load(cache_dir: Path, digest: str) -> Optional[dict]:
    path = cache_dir / f"{digest}.json"
    try:
        with path.open("r", encoding="utf-8") as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if entry.get("cache_version") != _CACHE_VERSION:
        return None
    return entry.get("value")


def _cache_store(cache_dir: Path, digest: str, spec: RunSpec, value: dict, salt: str) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{digest}.json"
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    entry = {
        "cache_version": _CACHE_VERSION,
        "salt": salt,
        "spec": spec.to_dict(),
        "value": value,
    }
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        os.replace(tmp, path)  # atomic publish; concurrent sweeps race benignly
    except (OSError, TypeError, ValueError):
        tmp.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[os.PathLike] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int, RunResult], None]] = None,
) -> list[RunResult]:
    """Execute every cell, in spec order, over ``jobs`` worker processes.

    Results come back in the same order as ``specs`` regardless of the
    completion order of the workers.  ``jobs=1`` runs inline (no pool), so
    a parallel sweep can always be checked against a serial one.  A cell
    that raises is retried ``retries`` times and then reported as a
    failed :class:`RunResult`; the sweep itself never aborts.

    ``progress`` (if given) is invoked as ``progress(done, total, result)``
    each time a cell settles, in completion order.
    """
    specs = list(specs)
    cache_root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    salt = code_salt()
    results: list[Optional[RunResult]] = [None] * len(specs)
    done = 0

    def settle(idx: int, result: RunResult) -> None:
        nonlocal done
        results[idx] = result
        done += 1
        if progress is not None:
            progress(done, len(specs), result)

    # Cache pass (parent process only: no cross-process cache races).
    misses: list[int] = []
    for i, spec in enumerate(specs):
        value = _cache_load(cache_root, spec.digest(salt)) if use_cache else None
        if value is not None:
            settle(i, RunResult(spec=spec, ok=True, value=value, cached=True))
        else:
            misses.append(i)

    def record(idx: int, payload: dict) -> None:
        spec = specs[idx]
        res = RunResult(
            spec=spec,
            ok=payload["ok"],
            value=payload["value"],
            error=payload["error"],
            wall_s=payload["wall_s"],
            attempts=payload["attempts"],
        )
        if res.ok and use_cache:
            _cache_store(cache_root, spec.digest(salt), spec, res.value, salt)
        settle(idx, res)

    if jobs <= 1 or len(misses) <= 1:
        for i in misses:
            record(i, _execute_cell(specs[i], retries=retries))
    else:
        max_workers = min(jobs, len(misses))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            pending = {
                pool.submit(_execute_cell, specs[i], retries): i for i in misses
            }
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for fut in finished:
                    record(pending.pop(fut), fut.result())

    return [r for r in results if r is not None]


def sweep_stats(results: Sequence[RunResult]) -> dict:
    """Aggregate wall-clock / events / cache counters for a finished sweep."""
    return {
        "cells": len(results),
        "ok": sum(1 for r in results if r.ok),
        "failed": sum(1 for r in results if not r.ok),
        "cached": sum(1 for r in results if r.cached),
        "wall_s": sum(r.wall_s for r in results),
        "events": sum(r.events for r in results),
    }


def export_json(results: Sequence[RunResult], path: os.PathLike) -> None:
    """Dump a sweep (specs, values, errors, stats) as machine-readable JSON."""
    payload = {
        "code_salt": code_salt(),
        "stats": sweep_stats(results),
        "results": [r.to_dict() for r in results],
    }
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
