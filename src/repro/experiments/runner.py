"""Parallel sweep execution: fan independent simulation cells over workers.

Every figure the reproduction regenerates is a sweep over independent,
deterministic cells (scheduler x app x scale x slice).  Each cell owns its
own :class:`~repro.sim.engine.Simulator` and seeded
:class:`~repro.sim.rng.SimRNG`, so cells can run in any order on any
number of processes and still produce bit-identical results — parallelism
here is a matter of not sharing state, not of luck.

The moving parts:

* :class:`RunSpec` — a picklable description of one cell: a scenario name
  from :data:`SCENARIOS` plus JSON-serializable keyword arguments.
* :class:`RunResult` — the outcome of one cell: the scenario's result dict
  on success, or a structured error record (type, message, traceback,
  attempts) on failure.  A failing cell never aborts the sweep.
* :func:`run_sweep` — executes a list of specs, serially (``jobs=1``) or
  over a ``ProcessPoolExecutor`` (``jobs=N``), consulting an on-disk
  result cache under ``.repro_cache/`` keyed by a content hash of the
  spec plus a code-version salt (any change to ``repro``'s sources
  invalidates every cached cell).
* :func:`sweep_stats` / :func:`export_json` — wall-clock and
  events-processed aggregates, and machine-readable result dumps.

Typical use::

    specs = [RunSpec("type_a", {"app_name": a, "scheduler": s, "n_nodes": 2})
             for a in ("lu", "is") for s in ("CR", "ATC")]
    results = run_sweep(specs, jobs=4)
    for r in results:
        print(r.spec.label, r.value["mean_round_ns"] if r.ok else r.error)
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Optional, Sequence

from repro.analysis.sanitizer import SanitizerViolationError
from repro.experiments import scenarios
from repro.sim import engine as sim_engine
from repro.sim.engine import WatchdogExceeded, install_watchdog

__all__ = [
    "SCENARIOS",
    "RunSpec",
    "RunResult",
    "WorkerCrashError",
    "CellTimeoutError",
    "run_sweep",
    "sweep_stats",
    "export_json",
    "salvage_report",
    "write_salvage",
    "default_cache_dir",
    "code_salt",
]

#: Scenario registry: every cell names one of these builders.  Keeping the
#: callable out of the spec keeps specs picklable and content-hashable.
SCENARIOS: dict[str, Callable[..., dict]] = {
    "type_a": scenarios.run_type_a,
    "slice_sweep": scenarios.run_slice_sweep,
    "small_mix": scenarios.run_small_mix,
    "type_b": scenarios.run_type_b,
    "type_b_mixed": scenarios.run_type_b_mixed,
    "packet_path_probe": scenarios.run_packet_path_probe,
    "fault_probe": scenarios.run_fault_probe,
    "migration_rebalance": scenarios.run_migration_rebalance,
    "service": scenarios.run_service,
    "dfrs_compare": scenarios.run_dfrs_compare,
    "attack": scenarios.run_attack,
}


class WorkerCrashError(RuntimeError):
    """A sweep worker process died (segfault, OOM kill, ``os._exit``).

    Never raised: used as the ``error["type"]`` of the structured failure
    record once a cell's bounded crash-retry budget is exhausted.
    """


class CellTimeoutError(RuntimeError):
    """A cell exceeded the host-side ``cell_timeout_s`` budget.

    Never raised: used as the ``error["type"]`` of the structured failure
    record.  Timeouts are not retried — a hung cell hangs again.
    """

_CACHE_VERSION = 1
_code_salt_memo: Optional[str] = None


def default_cache_dir() -> Path:
    """The sweep result cache root (override with ``REPRO_CACHE_DIR``)."""
    return Path(os.environ.get("REPRO_CACHE_DIR", ".repro_cache"))


def code_salt() -> str:
    """Content hash of every ``repro`` source file.

    Folded into each cell's cache key so that *any* change to the
    simulator invalidates *every* cached result — simulation outputs
    depend on the whole code path, not just the spec.
    """
    global _code_salt_memo
    if _code_salt_memo is None:
        root = Path(__file__).resolve().parent.parent
        h = hashlib.sha256()
        for p in sorted(root.rglob("*.py")):
            h.update(str(p.relative_to(root)).encode())
            h.update(b"\0")
            h.update(p.read_bytes())
        _code_salt_memo = h.hexdigest()[:16]
    return _code_salt_memo


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation cell.

    ``scenario`` names an entry of :data:`SCENARIOS`; ``params`` are its
    keyword arguments and must be JSON-serializable (they form the cache
    key).  ``label`` is only for progress display and defaults to a
    compact rendering of the params.

    ``sanitize`` runs the cell under the runtime invariant sanitizer
    (:mod:`repro.analysis.sanitizer`).  The sanitizer's hooks are
    read-only, so results are bit-identical either way; the flag is
    folded into the cache key only when set, keeping existing cached
    digests valid.

    ``trace`` and ``profile`` attach the observability layers
    (:mod:`repro.obs`): tracing adds a ``"trace"`` key (ring-buffer
    summary + records) and profiling a ``"profile"`` key (wall-clock
    self-profile) to the cell's value.  Like ``sanitize``, both are
    read-only observation and fold into the cache key only when set —
    but a profiled value embeds host wall-clock numbers, so profiled
    cells are cached separately and their ``"profile"`` content is
    machine-dependent.

    ``max_sim_events`` / ``max_sim_ns`` arm a *simulated-time* watchdog
    (:func:`repro.sim.engine.install_watchdog`) on every simulator the
    cell creates: a runaway cell fails deterministically with
    :class:`~repro.sim.engine.WatchdogExceeded` instead of spinning until
    the host-side timeout kills it.  Folded into the cache key only when
    set.

    ``tie_order`` selects the simulator's ordering among same-timestamp
    events (``"fifo"``/``"reversed"``, see
    :data:`repro.sim.engine.TIE_ORDERS`).  The race-detector differential
    (:mod:`repro.analysis.races`) runs each cell once per tie order and
    diffs the results.  Folded into the cache key only when set, so
    existing cached digests of plain (fifo) cells stay valid.
    """

    scenario: str
    params: Mapping = field(default_factory=dict)
    label: str = ""
    sanitize: bool = False
    trace: bool = False
    profile: bool = False
    max_sim_events: Optional[int] = None
    max_sim_ns: Optional[int] = None
    tie_order: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {self.scenario!r}; known: {sorted(SCENARIOS)}"
            )
        object.__setattr__(self, "params", dict(self.params))
        self.key()  # fail fast on non-JSON-serializable params
        if not self.label:
            short = ",".join(f"{k}={v}" for k, v in self.params.items())
            object.__setattr__(self, "label", f"{self.scenario}({short})")

    def key(self) -> str:
        """Canonical JSON identity of the cell (scenario + params)."""
        payload = {"scenario": self.scenario, "params": self.params}
        if self.sanitize:
            # Only present when set, so pre-existing cache digests of
            # unsanitized cells stay valid.
            payload["sanitize"] = True
        if self.trace:
            payload["trace"] = True
        if self.profile:
            payload["profile"] = True
        if self.max_sim_events is not None:
            payload["max_sim_events"] = self.max_sim_events
        if self.max_sim_ns is not None:
            payload["max_sim_ns"] = self.max_sim_ns
        if self.tie_order is not None:
            payload["tie_order"] = self.tie_order
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def digest(self, salt: Optional[str] = None) -> str:
        """Cache key: SHA-256 over the canonical spec + code-version salt."""
        salt = code_salt() if salt is None else salt
        payload = f"v{_CACHE_VERSION}|{salt}|{self.key()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def to_dict(self) -> dict:
        d = {"scenario": self.scenario, "params": dict(self.params), "label": self.label}
        if self.sanitize:
            d["sanitize"] = True
        if self.trace:
            d["trace"] = True
        if self.profile:
            d["profile"] = True
        if self.max_sim_events is not None:
            d["max_sim_events"] = self.max_sim_events
        if self.max_sim_ns is not None:
            d["max_sim_ns"] = self.max_sim_ns
        if self.tie_order is not None:
            d["tie_order"] = self.tie_order
        return d


@dataclass
class RunResult:
    """Outcome of one cell: value dict on success, error record on failure."""

    spec: RunSpec
    ok: bool
    value: Optional[dict] = None
    #: Structured failure record: {"type", "message", "traceback", "attempts"}.
    error: Optional[dict] = None
    wall_s: float = 0.0
    attempts: int = 1
    cached: bool = False

    @property
    def events(self) -> int:
        """Simulator events processed by this cell (0 when unreported)."""
        if self.ok and isinstance(self.value, dict):
            return int(self.value.get("events", 0))
        return 0

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "ok": self.ok,
            "value": self.value,
            "error": self.error,
            "wall_s": self.wall_s,
            "attempts": self.attempts,
            "cached": self.cached,
        }


# ----------------------------------------------------------------------
# Cell execution (runs in worker processes; must stay picklable/top-level)
# ----------------------------------------------------------------------
def _execute_cell(spec: RunSpec, retries: int = 1) -> dict:
    """Run one cell with retry; always returns a plain (picklable) dict."""
    fn = SCENARIOS[spec.scenario]
    kwargs = dict(spec.params)
    if spec.sanitize:
        kwargs["sanitize"] = True
    if spec.trace:
        kwargs["trace"] = True
    if spec.profile:
        kwargs["profile"] = True
    if spec.tie_order is not None:
        kwargs["tie_order"] = spec.tie_order
    attempts = 0
    last_exc: Optional[BaseException] = None
    # Host wall-clock (never feeds simulation state, so exempt from the
    # determinism lint).
    t0 = time.perf_counter()  # repro: ignore[RPR001]
    prev_hook = sim_engine.on_simulator_created
    if spec.max_sim_events is not None or spec.max_sim_ns is not None:
        # Arm the runaway watchdog on every simulator the cell builds,
        # chaining whatever hook (profiler attach, ...) is already there.
        def _hook(sim, _prev=prev_hook) -> None:
            if _prev is not None:
                _prev(sim)
            install_watchdog(sim, spec.max_sim_events, spec.max_sim_ns)

        sim_engine.on_simulator_created = _hook
    try:
        while attempts <= retries:
            attempts += 1
            try:
                value = fn(**kwargs)
                return {
                    "ok": True,
                    "value": value,
                    "error": None,
                    "wall_s": time.perf_counter() - t0,  # repro: ignore[RPR001]
                    "attempts": attempts,
                }
            except (SanitizerViolationError, WatchdogExceeded) as exc:
                # Deterministic: a retry would record the same violations /
                # blow the same budget.
                last_exc = exc
                break
            except Exception as exc:  # noqa: BLE001 - converted to a record
                last_exc = exc
    finally:
        sim_engine.on_simulator_created = prev_hook
    error = {
        "type": type(last_exc).__name__,
        "message": str(last_exc),
        "traceback": "".join(traceback.format_exception(last_exc)),
        "attempts": attempts,
    }
    if isinstance(last_exc, SanitizerViolationError):
        error["violations"] = [v.to_dict() for v in last_exc.violations]
    return {
        "ok": False,
        "value": None,
        "error": error,
        "wall_s": time.perf_counter() - t0,  # repro: ignore[RPR001]
        "attempts": attempts,
    }


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
def _cache_load(cache_dir: Path, digest: str) -> Optional[dict]:
    path = cache_dir / f"{digest}.json"
    try:
        with path.open("r", encoding="utf-8") as fh:
            entry = json.load(fh)
    except (OSError, ValueError):
        return None
    if entry.get("cache_version") != _CACHE_VERSION:
        return None
    return entry.get("value")


def _cache_store(cache_dir: Path, digest: str, spec: RunSpec, value: dict, salt: str) -> None:
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"{digest}.json"
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    entry = {
        "cache_version": _CACHE_VERSION,
        "salt": salt,
        "spec": spec.to_dict(),
        "value": value,
    }
    try:
        with tmp.open("w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        os.replace(tmp, path)  # atomic publish; concurrent sweeps race benignly
    except (OSError, TypeError, ValueError):
        tmp.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[os.PathLike] = None,
    retries: int = 1,
    progress: Optional[Callable[[int, int, RunResult], None]] = None,
    cell_timeout_s: Optional[float] = None,
) -> list[RunResult]:
    """Execute every cell, in spec order, over ``jobs`` worker processes.

    Results come back in the same order as ``specs`` regardless of the
    completion order of the workers.  ``jobs=1`` runs inline (no pool), so
    a parallel sweep can always be checked against a serial one.  A cell
    that raises is retried ``retries`` times and then reported as a
    failed :class:`RunResult`; the sweep itself never aborts.

    Graceful degradation (parallel path):

    * ``cell_timeout_s`` bounds each cell's *host* wall clock.  An overdue
      cell's worker is terminated, the cell fails with a
      :class:`CellTimeoutError` record (no retry — a hang reproduces),
      and the pool is rebuilt so the remaining cells keep running.
    * A worker that dies (segfault, ``os._exit``, OOM kill) breaks the
      pool; every in-flight cell earns a crash mark and is requeued until
      its marks exceed ``retries``, at which point it fails with a
      :class:`WorkerCrashError` record.  The pool is rebuilt with a short
      exponential backoff between rebuilds.

    Either way the sweep always returns a :class:`RunResult` per spec —
    completed cells are never lost to one bad neighbour (see
    :func:`salvage_report`).

    ``progress`` (if given) is invoked as ``progress(done, total, result)``
    each time a cell settles, in completion order.
    """
    specs = list(specs)
    cache_root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    salt = code_salt()
    results: list[Optional[RunResult]] = [None] * len(specs)
    done = 0

    def settle(idx: int, result: RunResult) -> None:
        nonlocal done
        results[idx] = result
        done += 1
        if progress is not None:
            progress(done, len(specs), result)

    # Cache pass (parent process only: no cross-process cache races).
    misses: list[int] = []
    for i, spec in enumerate(specs):
        value = _cache_load(cache_root, spec.digest(salt)) if use_cache else None
        if value is not None:
            settle(i, RunResult(spec=spec, ok=True, value=value, cached=True))
        else:
            misses.append(i)

    def record(idx: int, payload: dict) -> None:
        spec = specs[idx]
        res = RunResult(
            spec=spec,
            ok=payload["ok"],
            value=payload["value"],
            error=payload["error"],
            wall_s=payload["wall_s"],
            attempts=payload["attempts"],
        )
        if res.ok and use_cache:
            _cache_store(cache_root, spec.digest(salt), spec, res.value, salt)
        settle(idx, res)

    def fail(idx: int, err_type: str, message: str, attempts: int, wall_s: float) -> None:
        settle(
            idx,
            RunResult(
                spec=specs[idx],
                ok=False,
                error={"type": err_type, "message": message, "attempts": attempts},
                wall_s=wall_s,
                attempts=attempts,
            ),
        )

    if jobs <= 1 or len(misses) <= 1:
        for i in misses:
            record(i, _execute_cell(specs[i], retries=retries))
        return [r for r in results if r is not None]

    max_workers = min(jobs, len(misses))
    queue: deque[int] = deque(misses)
    suspects: deque[int] = deque()
    crash_marks = {i: 0 for i in misses}
    rebuilds = 0
    pool = ProcessPoolExecutor(max_workers=max_workers)
    in_flight: dict = {}  # future -> (cell index, submit time, deadline)

    def launch(i: int) -> None:
        t_sub = time.monotonic()  # repro: ignore[RPR001]
        deadline = None if cell_timeout_s is None else t_sub + cell_timeout_s
        in_flight[pool.submit(_execute_cell, specs[i], retries)] = (i, t_sub, deadline)

    def submit_ready() -> None:
        # Windowed submission: at most ``max_workers`` cells in flight, so
        # every in-flight cell is actually running and both the per-cell
        # deadline and the crash blame stay meaningful.
        while queue and len(in_flight) < max_workers:
            launch(queue.popleft())
        # Crash suspects retry in isolation — one at a time, nothing else
        # in flight — because a dying worker breaks the whole pool and
        # every concurrent future with it; only a solo re-crash proves the
        # cell itself is guilty (and only then burns its retry budget).
        if not queue and not in_flight and suspects:
            launch(suspects.popleft())

    def rebuild_pool() -> None:
        nonlocal pool, rebuilds
        rebuilds += 1
        # Hung/broken workers don't exit on shutdown(); terminate directly.
        for proc in list(getattr(pool, "_processes", {}).values()):
            try:
                proc.terminate()
            except OSError:  # repro: ignore[RPR031]  (already gone)
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        time.sleep(min(0.1 * (2 ** (rebuilds - 1)), 2.0))
        pool = ProcessPoolExecutor(max_workers=max_workers)

    def reap(fut, force_crash: bool = False) -> bool:
        """Settle or requeue one no-longer-flying future.  Returns True if
        the worker holding it had crashed."""
        idx, t_sub, _deadline = in_flight.pop(fut)
        wall = time.monotonic() - t_sub  # repro: ignore[RPR001]
        if fut.done() and not fut.cancelled() and not force_crash:
            try:
                record(idx, fut.result())
                return False
            except BaseException as exc:  # noqa: BLE001 - broken pool
                reason = f"worker died: {type(exc).__name__}: {exc}"
        else:
            reason = "worker pool broke while the cell was in flight"
        crash_marks[idx] += 1
        if crash_marks[idx] > retries:
            fail(idx, WorkerCrashError.__name__, reason, crash_marks[idx], wall)
        else:
            suspects.append(idx)  # retry in isolation on the rebuilt pool
        return True

    try:
        while queue or suspects or in_flight:
            submit_ready()
            timeout = None
            if cell_timeout_s is not None and in_flight:
                now = time.monotonic()  # repro: ignore[RPR001]
                earliest = min(dl for _, _, dl in in_flight.values())
                timeout = max(0.05, earliest - now)
            finished, _ = wait(set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)

            broken = False
            for fut in finished:
                broken = reap(fut) or broken

            overdue = []
            if cell_timeout_s is not None:
                now = time.monotonic()  # repro: ignore[RPR001]
                overdue = [
                    fut
                    for fut, (_, _, dl) in in_flight.items()
                    if dl is not None and now >= dl and not fut.done()
                ]
            if overdue:
                # A hung worker never returns: kill the whole pool, fail the
                # overdue cells, and resubmit the innocent bystanders.
                for fut in overdue:
                    idx, t_sub, _dl = in_flight.pop(fut)
                    fail(
                        idx,
                        CellTimeoutError.__name__,
                        f"cell exceeded host budget of {cell_timeout_s} s",
                        1,
                        time.monotonic() - t_sub,  # repro: ignore[RPR001]
                    )
                broken = True

            if broken:
                rebuild_pool()
                # Anything else in flight went down with the pool: reap
                # what finished (good results recorded, broken ones earn a
                # crash mark), requeue the rest without blame.
                for fut in list(in_flight):
                    if fut.done() and not fut.cancelled():
                        reap(fut)
                    else:
                        idx, _t, _dl = in_flight.pop(fut)
                        queue.appendleft(idx)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

    return [r for r in results if r is not None]


def _error_type(r: RunResult) -> str:
    return (r.error or {}).get("type", "") if not r.ok else ""


def sweep_stats(results: Sequence[RunResult]) -> dict:
    """Aggregate wall-clock / events / cache counters for a finished sweep."""
    return {
        "cells": len(results),
        "ok": sum(1 for r in results if r.ok),
        "failed": sum(1 for r in results if not r.ok),
        "cached": sum(1 for r in results if r.cached),
        "timeouts": sum(1 for r in results if _error_type(r) == CellTimeoutError.__name__),
        "worker_crashes": sum(
            1 for r in results if _error_type(r) == WorkerCrashError.__name__
        ),
        "wall_s": sum(r.wall_s for r in results),
        "events": sum(r.events for r in results),
    }


def salvage_report(results: Sequence[RunResult]) -> dict:
    """Partial-result salvage: what survived a degraded sweep, structured.

    Splits a sweep into ``healthy`` (full :class:`RunResult` dicts, values
    included) and ``failed`` (spec + error record, no value), so that a
    sweep hit by crashes or timeouts still delivers every completed cell
    in machine-readable form.  ``schema`` versions the layout for CI
    consumers.
    """
    return {
        "schema": "repro.sweep.salvage/v1",
        "code_salt": code_salt(),
        "stats": sweep_stats(results),
        "healthy": [r.to_dict() for r in results if r.ok],
        "failed": [
            {
                "spec": r.spec.to_dict(),
                "error": r.error,
                "attempts": r.attempts,
                "wall_s": r.wall_s,
            }
            for r in results
            if not r.ok
        ],
    }


def write_salvage(results: Sequence[RunResult], path: os.PathLike) -> Path:
    """Write :func:`salvage_report` as JSON; returns the path."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(salvage_report(results), fh, indent=2, default=str)
    return path


def export_json(results: Sequence[RunResult], path: os.PathLike) -> None:
    """Dump a sweep (specs, values, errors, stats) as machine-readable JSON."""
    payload = {
        "code_salt": code_salt(),
        "stats": sweep_stats(results),
        "results": [r.to_dict() for r in results],
    }
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
