"""Time units for the discrete-event simulator.

All simulation timestamps and durations are **integer nanoseconds**.  An
integer time base avoids floating-point comparison hazards in the event
queue and makes event ordering exactly reproducible across platforms.

The paper quotes time slices in milliseconds (Xen's default credit-scheduler
slice is 30 ms; the derived minimum threshold is 0.3 ms), so the helpers
below convert the units that appear throughout the paper into nanoseconds.
"""

from __future__ import annotations

#: One microsecond in nanoseconds.
USEC = 1_000
#: One millisecond in nanoseconds.
MSEC = 1_000_000
#: One second in nanoseconds.
SEC = 1_000_000_000


def ns_from_us(us: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded)."""
    return round(us * USEC)


def ns_from_ms(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded)."""
    return round(ms * MSEC)


def ns_from_s(s: float) -> int:
    """Convert seconds to integer nanoseconds (rounded)."""
    return round(s * SEC)


def ms_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds, for reporting."""
    return ns / MSEC


def us_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) microseconds, for reporting."""
    return ns / USEC


def s_from_ns(ns: int) -> float:
    """Convert nanoseconds to (float) seconds, for reporting."""
    return ns / SEC
