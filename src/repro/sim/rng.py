"""Deterministic random-number utilities.

Every stochastic element of the simulation (compute-grain jitter, workload
selection, trace synthesis) draws from a :class:`SimRNG`, which wraps a
seeded :class:`numpy.random.Generator`.  Sub-streams derived with
:meth:`SimRNG.substream` give each entity its own independent, reproducible
stream, so that adding an entity never perturbs the draws of the others —
a requirement for meaningful A/B comparisons between schedulers on *the
same* workload realization.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SimRNG"]


class SimRNG:
    """Seeded random source with cheap deterministic sub-streams."""

    __slots__ = ("seed", "_gen")

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._gen = np.random.default_rng(np.random.SeedSequence(self.seed))

    # ------------------------------------------------------------------
    def substream(self, *keys: int) -> "SimRNG":
        """Derive an independent stream keyed by ``keys``.

        The same ``(seed, keys)`` always yields the same stream; different
        keys yield statistically independent streams (via SeedSequence
        spawning semantics).
        """
        ss = np.random.SeedSequence(entropy=self.seed, spawn_key=tuple(int(k) for k in keys))
        child = SimRNG.__new__(SimRNG)
        child.seed = self.seed
        child._gen = np.random.default_rng(ss)
        return child

    # ------------------------------------------------------------------
    # Draw helpers (all return python ints/floats, ns-friendly)
    # ------------------------------------------------------------------
    def uniform_ns(self, lo: int, hi: int) -> int:
        """Uniform integer in [lo, hi] nanoseconds."""
        return int(self._gen.integers(lo, hi + 1))

    def jittered_ns(self, mean_ns: int, cv: float) -> int:
        """A positive duration with the given mean and coefficient of
        variation, drawn from a lognormal (heavy-ish tail, like real
        compute phases).  ``cv = 0`` returns the mean exactly."""
        if cv <= 0.0 or mean_ns <= 0:
            return max(0, int(mean_ns))
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean_ns) - 0.5 * sigma2
        val = self._gen.lognormal(mean=mu, sigma=np.sqrt(sigma2))
        return max(1, int(val))

    def exponential_ns(self, mean_ns: int) -> int:
        """Exponential inter-arrival time with the given mean (>=1 ns)."""
        return max(1, int(self._gen.exponential(mean_ns)))

    def choice(self, seq, p=None):
        """Choose an element of ``seq`` (optionally with probabilities)."""
        idx = self._gen.choice(len(seq), p=p)
        return seq[int(idx)]

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return float(self._gen.random())

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._gen.shuffle(items)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy Generator (for vectorized draws)."""
        return self._gen
