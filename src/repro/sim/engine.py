"""Discrete-event simulation engine.

A minimal, fast event-queue kernel in the style of classic DES libraries:
events are ``(time, sequence, callback)`` tuples kept in a binary heap.  The
sequence number breaks ties deterministically (FIFO among simultaneous
events), which keeps whole-cluster simulations bit-reproducible for a given
seed.

Design notes (following the repository's HPC-Python guidelines):

* the hot path (``schedule`` / ``run``) avoids allocation beyond the event
  record itself and uses ``__slots__`` everywhere;
* cancellation is O(1): a cancelled event stays in the heap but is skipped
  when popped (lazy deletion), which is far cheaper than heap surgery for
  the preemption-heavy scheduler workloads simulated here;
* callbacks receive no arguments; closures or ``functools.partial`` bind
  whatever context they need.  This keeps the heap entries small.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "WatchdogExceeded",
    "install_watchdog",
    "on_simulator_created",
]

#: Optional callable invoked with every newly constructed :class:`Simulator`.
#: The observability layer (:mod:`repro.obs.profiler`) uses this to attach a
#: self-profiler to simulators created deep inside scenario builders without
#: threading a reference through every call site.  ``None`` disables it.
on_simulator_created: Optional[Callable[["Simulator"], None]] = None


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class WatchdogExceeded(SimulationError):
    """A simulation ran past its :func:`install_watchdog` budget.

    The sweep runner treats this as a non-retryable cell failure: a run
    that blew its event or simulated-time budget once will do so again
    deterministically, so retrying would only burn wall clock.
    """


def install_watchdog(
    sim: "Simulator",
    max_events: Optional[int] = None,
    max_now_ns: Optional[int] = None,
) -> None:
    """Arm a simulated-time / event-count watchdog on ``sim``.

    Piggybacks on the per-event ``sim.trace`` probe (chaining any tracer
    already installed, e.g. the runtime sanitizer) and raises
    :exc:`WatchdogExceeded` from inside the run loop once either budget is
    exceeded.  Purely observational until it fires: the check reads
    counters the loop maintains anyway, so a run that stays within budget
    is bit-identical with or without the watchdog.
    """
    if max_events is None and max_now_ns is None:
        return
    prev = sim.trace
    budget_events = None if max_events is None else sim.events_processed + max_events

    def _watch(now: int, fn: Callable[[], None]) -> None:
        if prev is not None:
            prev(now, fn)
        if budget_events is not None and sim.events_processed >= budget_events:
            raise WatchdogExceeded(
                f"watchdog: event budget {max_events} exhausted at t={now}"
            )
        if max_now_ns is not None and now > max_now_ns:
            raise WatchdogExceeded(
                f"watchdog: simulated time {now} ns past budget {max_now_ns} ns"
            )

    sim.trace = _watch


class Event:
    """A handle to a scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled.  A cancelled event is skipped by the main loop.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "cat")

    def __init__(
        self, time: int, seq: int, fn: Callable[[], None], cat: Optional[str] = None
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False
        #: Profiling category tag (``"guest"``, ``"dom0"``, ``"vmm.slice"``,
        #: ...); purely observational — never read by the event loop itself.
        self.cat = cat

    def cancel(self) -> None:
        """Cancel the event; it will not fire.  Idempotent."""
        self.cancelled = True
        self.fn = None  # break reference cycles / free closure early

    # Heap ordering -------------------------------------------------------
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state}>"


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current simulation time in integer nanoseconds.
    events_processed:
        Number of callbacks executed so far (skipped/cancelled events do
        not count).
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "events_processed",
        "cancelled_popped",
        "_stopped",
        "trace",
        "profiler",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[Event] = []
        self._seq: int = 0
        self.events_processed: int = 0
        #: Cancelled events lazily discarded when popped (waste metric).
        self.cancelled_popped: int = 0
        self._stopped = False
        #: Optional callable(time, fn) invoked before each event; used by
        #: the runtime sanitizer, tests and debugging tools.  ``None``
        #: disables tracing (default).
        self.trace: Optional[Callable[[int, Callable[[], None]], None]] = None
        #: Optional :class:`repro.obs.profiler.SimProfiler`; when set, the
        #: loop routes each callback through ``profiler.run_event`` so
        #: wall-clock time is attributed per category.  ``None`` = off.
        self.profiler = None
        if on_simulator_created is not None:
            on_simulator_created(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[[], None], cat: Optional[str] = None) -> Event:
        """Schedule ``fn`` to run at absolute time ``time`` (ns).

        ``cat`` is an optional profiling category tag; the self-profiler
        attributes the callback's wall-clock cost to it.  It has no effect
        on simulation behaviour.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        ev = Event(int(time), self._seq, fn, cat)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def after(self, delay: int, fn: Callable[[], None], cat: Optional[str] = None) -> Event:
        """Schedule ``fn`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn, cat)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns.

        A stopped run leaves :attr:`now` at the last processed event (the
        clock is *not* advanced to a pending ``until`` deadline), so a
        subsequent :meth:`run` resumes exactly where the stop happened.
        """
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self.cancelled_popped += 1
        return heap[0].time if heap else None

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self.cancelled_popped += 1
                continue
            self.now = ev.time
            fn = ev.fn
            ev.fn = None
            if self.trace is not None:
                self.trace(self.now, fn)
            if self.profiler is None:
                fn()
            else:
                self.profiler.run_event(ev.cat, fn)
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` (ns) is reached, or
        ``max_events`` callbacks have executed.

        When ``until`` is given and no runnable event at or before it
        remains, the clock is advanced to exactly ``until`` so repeated
        ``run`` calls compose naturally.  This holds on every exit path,
        including ``max_events`` exhaustion: if the budget ran out but the
        queue is drained up to ``until``, the clock still lands on
        ``until``; if runnable events at or before ``until`` remain, the
        clock stays at the last processed event so the next ``run`` call
        resumes without skipping them.  A :meth:`stop` likewise leaves
        ``now`` at the last processed event.
        """
        self._stopped = False
        heap = self._heap
        processed = 0
        while heap and not self._stopped:
            ev = heap[0]
            if ev.cancelled:
                heapq.heappop(heap)
                self.cancelled_popped += 1
                continue
            if until is not None and ev.time > until:
                break
            heapq.heappop(heap)
            self.now = ev.time
            fn = ev.fn
            ev.fn = None
            if self.trace is not None:
                self.trace(self.now, fn)
            if self.profiler is None:
                fn()
            else:
                self.profiler.run_event(ev.cat, fn)
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self.now < until and not self._stopped:
            nxt = self.peek()
            if nxt is None or nxt > until:
                self.now = until

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(n); tests only)."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now} pending={len(self._heap)}>"
