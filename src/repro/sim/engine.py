"""Discrete-event simulation engine.

A minimal, fast event-queue kernel in the style of classic DES libraries:
events are ``(time, sequence, callback)`` tuples kept in a pluggable
priority queue.  The sequence number breaks ties deterministically (FIFO
among simultaneous events), which keeps whole-cluster simulations
bit-reproducible for a given seed.

Two queue backends share the exact ``(time, seq)`` total order:

* ``"heap"`` (default) — a binary heap (:mod:`heapq`).  Queue entries are
  plain tuples, so every sift comparison is a C-level tuple compare; the
  ``Event`` handle rides in slot 2 and is never compared.
* ``"bucket"`` — a calendar queue (:class:`BucketQueue`): events hash into
  time buckets of a fixed width, only the *current* bucket epoch is kept
  heap-ordered, and future buckets are unsorted append-only lists.  Push
  is O(1) for future events, which beats the heap's O(log n) churn at the
  deep queue depths of full-scale (32-node / 256-VCPU) runs.

Both backends pop events in an identical order, so simulation results are
bit-identical regardless of backend (enforced by a differential test).
Select with ``Simulator(queue="bucket")`` or ``REPRO_EVENT_QUEUE=bucket``.

Design notes (following the repository's HPC-Python guidelines):

* the hot path (``schedule`` / ``run``) avoids allocation beyond the event
  record itself and uses ``__slots__`` everywhere;
* cancellation is O(1): a cancelled event stays in the queue but is
  skipped when popped (lazy deletion), which is far cheaper than heap
  surgery for the preemption-heavy scheduler workloads simulated here;
* fire-and-forget callbacks that are never cancelled can skip the
  ``Event`` handle entirely via :meth:`Simulator.post_at` /
  :meth:`Simulator.post_after` — the queue entry is then a bare
  ``(time, seq, fn, cat)`` tuple with no per-event object allocation;
* callbacks receive no arguments; closures or ``functools.partial`` bind
  whatever context they need.  This keeps the queue entries small.
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heappush
from typing import Callable, Iterator, Optional

__all__ = [
    "Event",
    "BucketQueue",
    "Simulator",
    "SimulationError",
    "WatchdogExceeded",
    "install_watchdog",
    "on_simulator_created",
    "EVENT_QUEUE_KINDS",
    "TIE_ORDERS",
    "ACCOUNTING_CATS",
]

#: Optional callable invoked with every newly constructed :class:`Simulator`.
#: The observability layer (:mod:`repro.obs.profiler`) uses this to attach a
#: self-profiler to simulators created deep inside scenario builders without
#: threading a reference through every call site.  ``None`` disables it.
on_simulator_created: Optional[Callable[["Simulator"], None]] = None

#: Recognized queue backends.
EVENT_QUEUE_KINDS = ("heap", "bucket")

#: Recognized tie-order modes for events sharing a timestamp.  ``"fifo"``
#: (default) pops simultaneous events in scheduling order; ``"reversed"``
#: inverts the sequence comparison *within* equal timestamps only (times
#: still pop in order).  Any metric difference between a "fifo" and a
#: "reversed" run of the same scenario is a confirmed order-dependence:
#: the result hinges on insertion order among simultaneous events, which
#: nothing in the model specifies (see :mod:`repro.analysis.races`).
TIE_ORDERS = ("fifo", "reversed")

#: Event categories whose callbacks run in the *accounting phase*: at any
#: given timestamp they execute before all other (default-phase) events,
#: regardless of scheduling order or tie-order mode.  This pins down the
#: one intra-timestamp ordering the model genuinely specifies: periodic
#: accounting (credit refresh, ATC slice recomputation, migration rounds
#: riding the period hooks) applies *before* same-instant dispatches and
#: guest activity consume it.  Without the phase, a slice timer expiring
#: exactly on a period boundary raced the period tick for who runs first —
#: a race the tie-order differential flagged on every ATC scenario.
#: ``tie_order="reversed"`` inverts ordering within a phase only, so the
#: accounting-before-consumers contract is part of the semantics, not an
#: accident of insertion order.
ACCOUNTING_CATS = frozenset({"vmm.period"})

#: Phase stride for queue keys: entries are keyed by
#: ``(time, phase * _PHASE_STRIDE + tie_sign * seq)``.  Sequence numbers
#: can never reach 2**53 events, so phase dominates the comparison and
#: ``seq`` breaks ties within a phase.
_PHASE_STRIDE = 1 << 53


class SimulationError(RuntimeError):
    """Raised for invalid uses of the simulator (e.g. scheduling in the past)."""


class WatchdogExceeded(SimulationError):
    """A simulation ran past its :func:`install_watchdog` budget.

    The sweep runner treats this as a non-retryable cell failure: a run
    that blew its event or simulated-time budget once will do so again
    deterministically, so retrying would only burn wall clock.
    """


def install_watchdog(
    sim: "Simulator",
    max_events: Optional[int] = None,
    max_now_ns: Optional[int] = None,
) -> None:
    """Arm a simulated-time / event-count watchdog on ``sim``.

    Piggybacks on the per-event ``sim.trace`` probe (chaining any tracer
    already installed, e.g. the runtime sanitizer) and raises
    :exc:`WatchdogExceeded` from inside the run loop once either budget is
    exceeded.  Purely observational until it fires: the check reads
    counters the loop maintains anyway, so a run that stays within budget
    is bit-identical with or without the watchdog.
    """
    if max_events is None and max_now_ns is None:
        return
    prev = sim.trace
    budget_events = None if max_events is None else sim.events_processed + max_events

    def _watch(now: int, fn: Callable[[], None]) -> None:
        if prev is not None:
            prev(now, fn)
        if budget_events is not None and sim.events_processed >= budget_events:
            raise WatchdogExceeded(
                f"watchdog: event budget {max_events} exhausted at t={now}"
            )
        if max_now_ns is not None and now > max_now_ns:
            raise WatchdogExceeded(
                f"watchdog: simulated time {now} ns past budget {max_now_ns} ns"
            )

    sim.trace = _watch


class Event:
    """A handle to a scheduled callback.

    Instances are returned by :meth:`Simulator.at` / :meth:`Simulator.after`
    and can be cancelled.  A cancelled event is skipped by the main loop.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "cat")

    def __init__(
        self, time: int, seq: int, fn: Callable[[], None], cat: Optional[str] = None
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False
        #: Profiling category tag (``"guest"``, ``"dom0"``, ``"vmm.slice"``,
        #: ...); purely observational — never read by the event loop itself.
        self.cat = cat

    def cancel(self) -> None:
        """Cancel the event; it will not fire.  Idempotent."""
        self.cancelled = True
        self.fn = None  # break reference cycles / free closure early

    # Ordering ------------------------------------------------------------
    # Queue entries are tuples keyed by (time, seq), so the queue never
    # compares Event objects; __lt__ is kept for introspection and tests.
    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state}>"


def _entry_live(entry: tuple) -> bool:
    """Is this queue entry still runnable?  (Posted entries always are.)"""
    ev = entry[2]
    return not (ev.__class__ is Event and ev.cancelled)


class BucketQueue:
    """A calendar queue over ``(time, seq, ...)`` entries.

    Simulated time is divided into epochs of ``width`` ns.  Entries whose
    epoch is at or before the *current* epoch live in ``_cur``, a small
    binary heap; later entries are appended (unsorted, O(1)) to one of
    ``nbuckets`` circular bucket lists indexed by ``epoch % nbuckets``.
    When the current heap drains, :meth:`_advance` scans forward for the
    next populated epoch and heapifies just that epoch's entries.

    Ordering invariant: every entry in a future bucket has an epoch
    strictly greater than the current one, hence a time strictly greater
    than every entry in ``_cur`` — so the minimum of ``_cur`` is the
    global minimum and pops follow the exact ``(time, seq)`` order of the
    binary-heap backend.

    The queue resizes deterministically (based only on its own contents,
    never on host state) when occupancy outgrows the bucket array, keeping
    per-epoch heaps small for full-scale workloads.
    """

    __slots__ = ("_w", "_n", "_mask", "_buckets", "_cur", "_epoch", "_size")

    def __init__(self, width: int = 4096, nbuckets: int = 1024) -> None:
        if width < 1 or nbuckets < 2 or nbuckets & (nbuckets - 1):
            raise SimulationError(
                f"bucket queue needs width >= 1 and power-of-two buckets, "
                f"got width={width} nbuckets={nbuckets}"
            )
        self._w = width
        self._n = nbuckets
        self._mask = nbuckets - 1
        self._buckets: list[list] = [[] for _ in range(nbuckets)]
        self._cur: list = []  # heap of entries in epochs <= _epoch
        self._epoch = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __iter__(self) -> Iterator[tuple]:
        yield from self._cur
        for lst in self._buckets:
            yield from lst

    def push(self, entry: tuple) -> None:
        e = entry[0] // self._w
        if e <= self._epoch:
            heappush(self._cur, entry)
        else:
            self._buckets[e & self._mask].append(entry)
        self._size += 1
        if self._size > 2 * self._n:
            self._resize()

    def peekentry(self) -> Optional[tuple]:
        if not self._size:
            return None
        if not self._cur:
            self._advance()
        return self._cur[0]

    def pop(self) -> tuple:
        if not self._cur:
            self._advance()
        self._size -= 1
        return heappop(self._cur)

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        """Move the current epoch forward to the next populated one.

        Scans at most ``nbuckets`` epochs; past that (a sparse far-future
        schedule) it falls back to a direct minimum search and jumps
        straight to the earliest entry's epoch.
        """
        w = self._w
        mask = self._mask
        buckets = self._buckets
        e = self._epoch + 1
        scanned = 0
        while True:
            lst = buckets[e & mask]
            if lst:
                cur = [x for x in lst if x[0] // w == e]
                if cur:
                    if len(cur) == len(lst):
                        buckets[e & mask] = []
                    else:
                        buckets[e & mask] = [x for x in lst if x[0] // w != e]
                    heapify(cur)
                    self._cur = cur
                    self._epoch = e
                    return
            e += 1
            scanned += 1
            if scanned >= self._n:
                mt = None
                for lst in buckets:
                    for x in lst:
                        if mt is None or x[0] < mt:
                            mt = x[0]
                if mt is None:  # pragma: no cover - guarded by _size
                    raise SimulationError("bucket queue empty in _advance")
                e = mt // w
                scanned = 0

    def _resize(self) -> None:
        """Grow the bucket array; deterministic in queue contents only.

        New geometry: ``nbuckets`` = smallest power of two >= 2x the live
        entry count, ``width`` ~ 3x the mean inter-entry spacing (span /
        size), so one epoch holds a handful of entries on average.
        """
        entries = list(self)
        size = len(entries)
        lo = min(x[0] for x in entries)
        hi = max(x[0] for x in entries)
        span = hi - lo
        n = 2
        while n < 2 * size:
            n *= 2
        w = max(1, (3 * span) // size) if span else self._w
        self._w = w
        self._n = n
        self._mask = n - 1
        self._buckets = [[] for _ in range(n)]
        # Anchor the epoch at the earliest entry so it lands in _cur.
        self._epoch = lo // w
        cur: list = []
        for x in entries:
            e = x[0] // w
            if e <= self._epoch:
                cur.append(x)
            else:
                self._buckets[e & self._mask].append(x)
        heapify(cur)
        self._cur = cur


class Simulator:
    """The discrete-event simulation kernel.

    Attributes
    ----------
    now:
        Current simulation time in integer nanoseconds.
    events_processed:
        Number of callbacks executed so far (skipped/cancelled events do
        not count).
    queue_kind:
        The active backend, ``"heap"`` or ``"bucket"``.
    tie_order:
        How simultaneous events are ordered: ``"fifo"`` (default) or
        ``"reversed"`` (the race-detector differential mode — see
        :data:`TIE_ORDERS`).
    """

    __slots__ = (
        "now",
        "_heap",
        "_q",
        "queue_kind",
        "tie_order",
        "_seqsign",
        "_seq",
        "events_processed",
        "cancelled_popped",
        "_stopped",
        "trace",
        "profiler",
    )

    def __init__(self, queue: Optional[str] = None, tie_order: Optional[str] = None) -> None:
        if queue is None:
            queue = os.environ.get("REPRO_EVENT_QUEUE") or "heap"
        if queue not in EVENT_QUEUE_KINDS:
            raise SimulationError(
                f"unknown event queue {queue!r}; expected one of {EVENT_QUEUE_KINDS}"
            )
        if tie_order is None:
            tie_order = os.environ.get("REPRO_TIE_ORDER") or "fifo"
        if tie_order not in TIE_ORDERS:
            raise SimulationError(
                f"unknown tie order {tie_order!r}; expected one of {TIE_ORDERS}"
            )
        self.tie_order = tie_order
        #: Queue entries are keyed by ``(time, _seqsign * seq)``: +1 pops
        #: FIFO among ties, -1 pops LIFO (reversed) among ties.  Stored on
        #: the instance so the hot scheduling path pays one multiply and
        #: no branch, and the (time, seq) key stays a pure int tuple.
        self._seqsign = 1 if tie_order == "fifo" else -1
        self.queue_kind = queue
        self.now: int = 0
        #: Binary-heap backend storage.  Entries are ``(time, key, Event)``
        #: or ``(time, key, fn, cat)`` tuples (see :meth:`post_at`), where
        #: ``key`` encodes phase and (sign-adjusted) sequence number in one
        #: int; heapq therefore only ever compares ints, never objects.
        self._heap: list = []
        #: Calendar-queue backend (``None`` for the heap backend).
        self._q: Optional[BucketQueue] = BucketQueue() if queue == "bucket" else None
        self._seq: int = 0
        self.events_processed: int = 0
        #: Cancelled events lazily discarded when popped (waste metric).
        self.cancelled_popped: int = 0
        self._stopped = False
        #: Optional callable(time, fn) invoked before each event; used by
        #: the runtime sanitizer, tests and debugging tools.  ``None``
        #: disables tracing (default).
        self.trace: Optional[Callable[[int, Callable[[], None]], None]] = None
        #: Optional :class:`repro.obs.profiler.SimProfiler`; when set, the
        #: loop routes each callback through ``profiler.run_event`` so
        #: wall-clock time is attributed per category.  ``None`` = off.
        self.profiler = None
        if on_simulator_created is not None:
            on_simulator_created(self)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: int, fn: Callable[[], None], cat: Optional[str] = None) -> Event:
        """Schedule ``fn`` to run at absolute time ``time`` (ns).

        ``cat`` is an optional profiling category tag; the self-profiler
        attributes the callback's wall-clock cost to it.  It has no effect
        on simulation behaviour.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        time = int(time)
        ev = Event(time, self._seq, fn, cat)
        key = self._seqsign * self._seq
        if cat not in ACCOUNTING_CATS:
            key += _PHASE_STRIDE
        entry = (time, key, ev)
        self._seq += 1
        if self._q is None:
            heappush(self._heap, entry)
        else:
            self._q.push(entry)
        return ev

    def after(self, delay: int, fn: Callable[[], None], cat: Optional[str] = None) -> Event:
        """Schedule ``fn`` to run ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + int(delay), fn, cat)

    def post_at(self, time: int, fn: Callable[[], None], cat: Optional[str] = None) -> None:
        """Fire-and-forget :meth:`at`: no :class:`Event` handle, no cancel.

        The queue entry is a bare ``(time, seq, fn, cat)`` tuple — use this
        on hot paths that never cancel (message deliveries, stat ticks) to
        skip the per-event object allocation.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        key = self._seqsign * self._seq
        if cat not in ACCOUNTING_CATS:
            key += _PHASE_STRIDE
        entry = (int(time), key, fn, cat)
        self._seq += 1
        if self._q is None:
            heappush(self._heap, entry)
        else:
            self._q.push(entry)

    def post_after(self, delay: int, fn: Callable[[], None], cat: Optional[str] = None) -> None:
        """Fire-and-forget :meth:`after` (see :meth:`post_at`)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.post_at(self.now + int(delay), fn, cat)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop the run loop after the current event returns.

        A stopped run leaves :attr:`now` at the last processed event (the
        clock is *not* advanced to a pending ``until`` deadline), so a
        subsequent :meth:`run` resumes exactly where the stop happened.
        """
        self._stopped = True

    def peek(self) -> Optional[int]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        if self._q is None:
            heap = self._heap
            while heap:
                entry = heap[0]
                ev = entry[2]
                if ev.__class__ is Event and ev.cancelled:
                    heappop(heap)
                    self.cancelled_popped += 1
                    continue
                return entry[0]
            return None
        q = self._q
        while True:
            entry = q.peekentry()
            if entry is None:
                return None
            ev = entry[2]
            if ev.__class__ is Event and ev.cancelled:
                q.pop()
                self.cancelled_popped += 1
                continue
            return entry[0]

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if queue empty."""
        pop = (lambda: heappop(self._heap)) if self._q is None else self._q.pop
        size = (lambda: len(self._heap)) if self._q is None else self._q.__len__
        while size():
            entry = pop()
            ev = entry[2]
            if ev.__class__ is Event:
                if ev.cancelled:
                    self.cancelled_popped += 1
                    continue
                fn = ev.fn
                ev.fn = None
            else:
                fn = ev
            self.now = entry[0]
            if self.trace is not None:
                self.trace(self.now, fn)
            if self.profiler is None:
                fn()
            else:
                self.profiler.run_event(
                    ev.cat if ev.__class__ is Event else entry[3], fn, size() + 1
                )
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` (ns) is reached, or
        ``max_events`` callbacks have executed.

        When ``until`` is given and no runnable event at or before it
        remains, the clock is advanced to exactly ``until`` so repeated
        ``run`` calls compose naturally.  This holds on every exit path,
        including ``max_events`` exhaustion: if the budget ran out but the
        queue is drained up to ``until``, the clock still lands on
        ``until``; if runnable events at or before ``until`` remain, the
        clock stays at the last processed event so the next ``run`` call
        resumes without skipping them.  A :meth:`stop` likewise leaves
        ``now`` at the last processed event.
        """
        self._stopped = False
        if self._q is None:
            self._run_heap(until, max_events)
        else:
            self._run_bucket(until, max_events)
        if until is not None and self.now < until and not self._stopped:
            nxt = self.peek()
            if nxt is None or nxt > until:
                self.now = until

    def _run_heap(self, until: Optional[int], max_events: Optional[int]) -> None:
        """Hot loop, heap backend.  Pops eagerly and pushes the one
        over-deadline entry back — cheaper than peek-then-pop per event."""
        heap = self._heap
        processed = 0
        while heap and not self._stopped:
            entry = heappop(heap)
            ev = entry[2]
            if ev.__class__ is Event:
                if ev.cancelled:
                    self.cancelled_popped += 1
                    continue
                if until is not None and entry[0] > until:
                    heappush(heap, entry)
                    break
                fn = ev.fn
                ev.fn = None
            else:
                if until is not None and entry[0] > until:
                    heappush(heap, entry)
                    break
                fn = ev
            self.now = entry[0]
            if self.trace is not None:
                self.trace(self.now, fn)
            if self.profiler is None:
                fn()
            else:
                # cat is only needed for attribution; read it lazily so the
                # unprofiled hot path skips the extra attribute/index load.
                self.profiler.run_event(
                    ev.cat if ev.__class__ is Event else entry[3], fn, len(heap) + 1
                )
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break

    def _run_bucket(self, until: Optional[int], max_events: Optional[int]) -> None:
        """Hot loop, calendar-queue backend.  Identical pop order."""
        q = self._q
        processed = 0
        while q._size and not self._stopped:
            entry = q.pop()
            ev = entry[2]
            if ev.__class__ is Event:
                if ev.cancelled:
                    self.cancelled_popped += 1
                    continue
                if until is not None and entry[0] > until:
                    q.push(entry)
                    break
                fn = ev.fn
                ev.fn = None
            else:
                if until is not None and entry[0] > until:
                    q.push(entry)
                    break
                fn = ev
            self.now = entry[0]
            if self.trace is not None:
                self.trace(self.now, fn)
            if self.profiler is None:
                fn()
            else:
                self.profiler.run_event(
                    ev.cat if ev.__class__ is Event else entry[3], fn, q._size + 1
                )
            self.events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _entries(self) -> Iterator[tuple]:
        """All queued entries, unordered (tests/debugging only)."""
        return iter(self._heap) if self._q is None else iter(self._q)

    def live_events(self) -> Iterator[Event]:
        """Non-cancelled :class:`Event` handles still queued, unordered.

        Fire-and-forget entries (:meth:`post_at`) have no handle and are
        not included.  O(n); introspection/tests only.
        """
        for entry in self._entries():
            ev = entry[2]
            if ev.__class__ is Event and not ev.cancelled:
                yield ev

    def pending(self) -> int:
        """Number of non-cancelled events still queued (O(n); tests only)."""
        return sum(1 for entry in self._entries() if _entry_live(entry))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self._heap) if self._q is None else len(self._q)
        return f"<Simulator now={self.now} queue={self.queue_kind} pending={n}>"
