"""Discrete-event simulation kernel (event queue, clock, deterministic RNG).

This package is the foundation everything else builds on: the cluster,
hypervisor, guest and workload layers all advance time exclusively through
a shared :class:`~repro.sim.engine.Simulator` instance.
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.rng import SimRNG
from repro.sim.units import (
    MSEC,
    SEC,
    USEC,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    s_from_ns,
    us_from_ns,
)

__all__ = [
    "Event",
    "SimulationError",
    "Simulator",
    "SimRNG",
    "USEC",
    "MSEC",
    "SEC",
    "ns_from_us",
    "ns_from_ms",
    "ns_from_s",
    "ms_from_ns",
    "us_from_ns",
    "s_from_ns",
]
