"""Dynamic Fractional Resource Scheduling (DFRS) — the cluster-scope
end of the design space the paper's per-host ATC sits at the other
end of.

Instead of adapting *time slices* on each host, DFRS periodically
re-solves a *fractional allocation* for every VM in the cluster — a
(cap, weight) pair pushed down into the per-host credit schedulers —
and, when the solve demands it, relocates VMs through the live-migration
engine.  The model follows Stillwell/Vivien/Casanova's yield-maximizing
formulation: each VM has an estimated resource *need*, its *yield* is
allocation/need, and the solver maximizes the minimum yield per host.

* :mod:`repro.dfrs.solver` — deterministic need estimation + per-host
  binary-search max-min-yield solve (pure functions, no RNG, no clock).
* :mod:`repro.dfrs.controller` — the leader-elected periodic controller
  riding the VMM period hooks (idle ⇒ zero events, zero RNG).
"""

from repro.dfrs.controller import DFRSConfig, DFRSController
from repro.dfrs.solver import Allocation, HostSolve, VMNeed, solve_host, solve_cluster

__all__ = [
    "DFRSConfig",
    "DFRSController",
    "VMNeed",
    "Allocation",
    "HostSolve",
    "solve_host",
    "solve_cluster",
]
