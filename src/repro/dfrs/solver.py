"""Deterministic fractional-allocation solver (DFRS).

Pure functions: no RNG, no wall clock, no simulator access.  Everything
the solver sees arrives as plain numbers, so a solve is a reproducible
function of its inputs and can be unit-tested in isolation.

Model (Stillwell/Vivien/Casanova, *Dynamic Fractional Resource
Scheduling for HPC Workloads* / *Resource Allocation using Virtual
Clusters*):

* each VM ``i`` has a resource **need** ``n_i`` — the fraction of its
  host's CPU capacity it would consume unconstrained (estimated from the
  monitor signals by the controller);
* an allocation gives VM ``i`` a fraction ``a_i <= ceil_i`` of the host
  (``ceil_i = min(n_vcpus, n_pcpus) / n_pcpus``: a VM cannot use more
  PCPUs than it has VCPUs);
* the **yield** of VM ``i`` is ``a_i / n_i``; the solver maximizes the
  *minimum* yield on each host subject to ``sum(a_i) <= 1``.

With per-VM ceilings the optimum is a water-fill: every VM gets
``min(y * n_i, ceil_i)`` for the largest feasible common yield ``y``.
:func:`solve_host` finds that ``y`` by binary search (the monotone
feasibility predicate ``sum(min(y*n_i, ceil_i)) <= 1``), which keeps the
solve exact enough at 60 iterations and trivially deterministic.

The published **cap** is the allocation times a configurable headroom.
Caps are per-VM limits, not a partition — like Xen's ``cap`` they may
sum above host capacity (the scheduler arbitrates the overlap); it is
the *allocations* that must fit in the host, and the water-fill
guarantees ``sum(a_i) <= 1`` by construction (SAN009 checks it).  The
published **weight** is the need normalized to mean 1.0 per host —
comparable to the default weight of VMs outside DFRS's control (dom0
keeps 1.0), so enabling DFRS does not starve the control domain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "VMNeed",
    "Allocation",
    "HostSolve",
    "solve_host",
    "solve_cluster",
    "propose_moves",
]

#: Binary-search iterations: 2^-60 relative error, far below any
#: tolerance the sanitizer or the benches use.
_ITERS = 60


@dataclass(frozen=True)
class VMNeed:
    """Solver input for one VM (built by the controller)."""

    name: str
    vmid: int
    node: int
    #: Estimated need as a fraction of host capacity, already clamped to
    #: ``(0, ceil]`` by the controller.
    need: float
    #: Per-VM allocation ceiling (``min(n_vcpus, n_pcpus) / n_pcpus``).
    ceil: float


@dataclass(frozen=True)
class Allocation:
    """Solver output for one VM: the binding fractional allocation."""

    name: str
    vmid: int
    node: int
    need: float
    #: Yield-optimal allocation (fraction of host capacity).
    alloc: float
    #: Published cap: ``alloc * headroom``, clipped to ``ceil``.  A per-VM
    #: limit, not a partition: caps on one host may sum above 1.0.
    cap: float
    #: Published weight: need, normalized to mean 1.0 on the host.
    weight: float
    #: ``alloc / need``.
    vm_yield: float


@dataclass(frozen=True)
class HostSolve:
    """Per-host solve result."""

    node: int
    #: The max-min yield the binary search converged to (capped at 1.0:
    #: a VM never needs more than its need).
    min_yield: float
    allocations: tuple[Allocation, ...]


def _feasible(needs: list[VMNeed], y: float) -> bool:
    return sum(min(y * n.need, n.ceil) for n in needs) <= 1.0


def solve_host(node: int, needs: list[VMNeed], headroom: float = 1.0) -> HostSolve:
    """Max-min-yield water-fill for one host.

    ``needs`` must be insertion-ordered deterministically by the caller
    (the controller walks VMs in creation order).  ``headroom > 1``
    publishes caps looser than the exact allocation: burst room without
    giving up the solve's proportions.  Caps deliberately keep that
    slack even when it makes them sum above 1.0 on a packed host —
    renormalizing would collapse every cap back to exactly its
    allocation, turning the non-work-conserving limit hard-binding and
    throttling whatever the per-host scheduler (e.g. ATC) accelerates.
    """
    if not needs:
        return HostSolve(node=node, min_yield=1.0, allocations=())
    # Largest useful yield: 1.0 (every VM fully satisfied).  If even that
    # is feasible the host is under-committed and allocations equal needs.
    if _feasible(needs, 1.0):
        y = 1.0
    else:
        lo, hi = 0.0, 1.0
        for _ in range(_ITERS):
            mid = (lo + hi) / 2.0
            if _feasible(needs, mid):
                lo = mid
            else:
                hi = mid
        y = lo
    allocs = [min(y * n.need, n.ceil) for n in needs]
    caps = [min(a * headroom, n.ceil) for a, n in zip(allocs, needs)]
    mean_need = sum(n.need for n in needs) / len(needs)
    out = tuple(
        Allocation(
            name=n.name,
            vmid=n.vmid,
            node=n.node,
            need=n.need,
            alloc=a,
            cap=c,
            weight=n.need / mean_need if mean_need > 0 else 1.0,
            vm_yield=a / n.need if n.need > 0 else 1.0,
        )
        for n, a, c in zip(needs, allocs, caps)
    )
    return HostSolve(node=node, min_yield=y, allocations=out)


def solve_cluster(
    needs: list[VMNeed], n_nodes: int, headroom: float = 1.0
) -> dict[int, HostSolve]:
    """Solve every host independently; hosts are coupled only through
    relocation (the controller's move proposals), not through the caps.

    Returns ``{node_index: HostSolve}`` for all ``n_nodes`` hosts (empty
    hosts included, so move proposals can target them)."""
    by_node: dict[int, list[VMNeed]] = {i: [] for i in range(n_nodes)}
    for n in needs:
        by_node[n.node].append(n)
    return {i: solve_host(i, by_node[i], headroom) for i in range(n_nodes)}


def propose_moves(
    needs: list[VMNeed],
    n_nodes: int,
    node_loads: list[int],
    vms_per_node: int,
    max_moves: int,
    improvement_eps: float = 1e-6,
) -> list[tuple[int, int]]:
    """Greedy relocation pass: let the worst-yield host shed load.

    Repeatedly takes the host with the lowest ``min_yield`` (ties broken
    by lowest index), picks its smallest-need VM (ties by vmid) and the
    recipient host whose post-move minimum yield over the donor/recipient
    pair is best (must have a free slot and actually improve the pair's
    minimum by more than ``improvement_eps``).  Returns at most
    ``max_moves`` ``(vmid, dst_node)`` pairs, computed on a scratch copy
    of the needs — the real solve happens next round, after the engine
    has (maybe) executed the moves.

    Deterministic: pure arithmetic, all ties index- or vmid-ordered.
    """
    needs_by_node: dict[int, list[VMNeed]] = {i: [] for i in range(n_nodes)}
    for n in needs:
        needs_by_node[n.node].append(n)
    loads = list(node_loads)
    moves: list[tuple[int, int]] = []
    for _ in range(max_moves):
        yields = {i: solve_host(i, ns).min_yield for i, ns in needs_by_node.items()}
        donor = min(yields, key=lambda i: (yields[i], i))
        if yields[donor] >= 1.0 or not needs_by_node[donor]:
            break
        victim = min(needs_by_node[donor], key=lambda n: (n.need, n.vmid))
        base = yields[donor]
        best = None
        for dst in range(n_nodes):
            if dst == donor or loads[dst] >= vms_per_node:
                continue
            moved = VMNeed(victim.name, victim.vmid, dst, victim.need, victim.ceil)
            y_donor = solve_host(
                donor, [n for n in needs_by_node[donor] if n.vmid != victim.vmid]
            ).min_yield
            y_dst = solve_host(dst, needs_by_node[dst] + [moved]).min_yield
            gain = min(y_donor, y_dst) - min(base, yields[dst])
            if gain > improvement_eps and (best is None or gain > best[0]):
                best = (gain, dst, moved)
        if best is None:
            break
        _, dst, moved = best
        needs_by_node[donor] = [n for n in needs_by_node[donor] if n.vmid != victim.vmid]
        needs_by_node[dst] = needs_by_node[dst] + [moved]
        loads[donor] -= 1
        loads[dst] += 1
        moves.append((victim.vmid, dst))
    return moves
