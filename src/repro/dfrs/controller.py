"""Cluster-scope DFRS controller.

Rides the leader-elected rebalancer pattern
(:class:`repro.migration.rebalancer.Rebalancer`): its hook is appended to
*every* node's ``period_hooks``, all period ticks fire at the same
timestamps, and the first live node's hook leads each round (the rest
see the timestamp already claimed and return), so leadership fails over
past crashed nodes with no election traffic.  An idle controller
(``solve_every=0``) adds **zero** simulator events and zero RNG draws —
a world with a disabled DFRS layer is bit-identical, event count
included, to a world without the subsystem.

Every ``solve_every``-th period the leader:

1. estimates each guest VM's *need* from the monitor signals already
   collected for ATC — the ``cpu_consumed_ns`` ledger plus the spin /
   run-queue-wait latencies (unmet demand), as interval deltas;
2. runs the deterministic max-min-yield solve (:mod:`repro.dfrs.solver`)
   per host;
3. publishes each VM's (cap, weight) through the scheduler-registry
   cluster hook (``set_vm_cap`` / ``set_vm_weight``; applied by the host
   scheduler at its next accounting boundary);
4. optionally asks the solver for relocations and issues them through
   the live-migration engine (:mod:`repro.migration`);
5. self-checks SAN009: the caps/weights a host actually applied match
   the last published solve, and no host's published caps sum above its
   capacity.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional

from repro.dfrs.solver import VMNeed, propose_moves, solve_cluster
from repro.obs import trace as obstrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld
    from repro.hypervisor.vm import VM

__all__ = ["DFRSConfig", "DFRSController"]

#: Tolerance for SAN009 float comparisons (caps/weights round-trip
#: through plain float slots; only representation error is expected).
_EPS = 1e-9


@dataclass(frozen=True)
class DFRSConfig:
    """Control-plane configuration (``WorldConfig.dfrs``)."""

    #: Re-solve every N VMM periods; ``0`` never solves (the idle layer —
    #: bit-identity control).
    solve_every: int = 4
    #: Cap looseness: published cap = allocation * headroom (clipped to
    #: the VM's ceiling).  1.0 publishes the exact solve; larger values
    #: leave burst room.  Caps are per-VM limits, not a partition, so
    #: with headroom they may sum above 1.0 on a packed host.
    headroom: float = 1.25
    #: Publish caps / weights (either can be disabled for ablations).
    apply_caps: bool = True
    apply_weights: bool = True
    #: Issue solver-proposed relocations through the migration engine.
    allow_moves: bool = False
    #: Relocation budget per control round.
    max_moves_per_round: int = 1
    #: Floor on the estimated need (fraction of host capacity): a VM that
    #: was idle all interval still gets a sliver, so a later burst is not
    #: capped to zero.
    min_need: float = 0.05
    #: Weight of the unmet-demand signal (spin + run-queue wait) relative
    #: to consumed CPU in the need estimate.
    wait_factor: float = 1.0

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "DFRSConfig":
        return cls(**d)


class DFRSController:
    """Periodic cluster-level fractional-allocation controller."""

    def __init__(self, world: "CloudWorld", config: DFRSConfig) -> None:
        self.world = world
        self.sim = world.sim
        self.cfg = config
        self._tick_seen_ns = -1
        self._ticks = 0
        #: Cumulative-signal snapshots per vmid from the previous solve:
        #: ``(cpu_consumed_ns, spin_total_ns, queue_wait_ns)``.  Deltas
        #: against these estimate the need over the last interval; a
        #: counter that shrank (another consumer drained it) clamps to
        #: its current value instead of going negative.
        self._last_sig: dict[int, tuple[int, int, int]] = {}
        self._last_solve_ns = 0
        #: Last published (cap, weight) per vmid, for the SAN009 check.
        self._published: dict[int, tuple[Optional[float], float]] = {}
        # Introspection counters (deterministic rollup).
        self.solves = 0
        self.caps_applied = 0
        self.weights_applied = 0
        self.moves_requested = 0
        self.last_min_yield = 1.0
        self.last_mean_yield = 1.0
        #: SAN009 violations found when no sanitizer is attached
        #: (strings; tests assert empty) — the MigrationEngine pattern.
        self.violations: list[str] = []
        for vmm in world.vmms:
            vmm.period_hooks.append(self._on_period)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> dict:
        """Deterministic rollup for scenario results."""
        return {
            "solve_every": self.cfg.solve_every,
            "solves": self.solves,
            "caps_applied": self.caps_applied,
            "weights_applied": self.weights_applied,
            "moves_requested": self.moves_requested,
            "last_min_yield": self.last_min_yield,
            "last_mean_yield": self.last_mean_yield,
            "violations": len(self.violations),
        }

    # ------------------------------------------------------------------
    def _on_period(self, now: int) -> None:
        if self.cfg.solve_every <= 0:
            return  # idle layer: no state, no events, no RNG
        if now == self._tick_seen_ns:
            return  # a lower-indexed live node already led this round
        self._tick_seen_ns = now
        self._ticks += 1
        if self._ticks % self.cfg.solve_every:
            return
        self._control(now)

    # ------------------------------------------------------------------
    # Need estimation
    # ------------------------------------------------------------------
    def _estimate_needs(self, now: int) -> list[VMNeed]:
        """Per-VM need as a fraction of host capacity over the interval
        since the previous solve.

        Signals: the ``cpu_consumed_ns`` ledger (satisfied demand) plus
        ``wait_factor`` times spin and run-queue-wait time (unmet
        demand).  All are read as deltas of cumulative counters; the
        queue-wait counter is period-scoped on some configurations
        (ATC's monitor drains it), so a shrinking counter clamps its
        delta to the current value rather than going negative.
        """
        cfg = self.cfg
        interval = max(1, now - self._last_solve_ns)
        needs: list[VMNeed] = []
        for vm in self.world.vms:
            kernel = vm.kernel
            spin = kernel.total_spin_ns if kernel else 0
            qwait = vm.period_queue_wait_ns
            sig = (vm.cpu_consumed_ns, spin, qwait)
            last = self._last_sig.get(vm.vmid, (0, 0, 0))
            d_cpu, d_spin, d_wait = (
                cur - prev if cur >= prev else cur for cur, prev in zip(sig, last)
            )
            self._last_sig[vm.vmid] = sig
            n_pcpus = len(vm.node.pcpus)
            ceil = min(len(vm.vcpus), n_pcpus) / n_pcpus
            demand_ns = d_cpu + cfg.wait_factor * (d_spin + d_wait)
            need = demand_ns / (interval * n_pcpus)
            need = max(cfg.min_need, min(ceil, need))
            needs.append(
                VMNeed(name=vm.name, vmid=vm.vmid, node=vm.node.index,
                       need=need, ceil=ceil)
            )
        return needs

    # ------------------------------------------------------------------
    # Control round
    # ------------------------------------------------------------------
    def _control(self, now: int) -> None:
        self._check_applied(now)
        cfg = self.cfg
        needs = self._estimate_needs(now)
        self._last_solve_ns = now
        solves = solve_cluster(needs, self.world.config.n_nodes, cfg.headroom)
        self.solves += 1
        occupied = [s for s in solves.values() if s.allocations]
        self.last_min_yield = min((s.min_yield for s in occupied), default=1.0)
        self.last_mean_yield = (
            sum(s.min_yield for s in occupied) / len(occupied) if occupied else 1.0
        )
        if obstrace.enabled:
            obstrace.emit(
                "dfrs.solve",
                now,
                n_vms=len(needs),
                min_yield=self.last_min_yield,
                mean_yield=self.last_mean_yield,
                yields={s.node: s.min_yield for s in occupied},
            )
        self._publish(now, solves)
        if cfg.allow_moves:
            self._relocate(needs)

    def _publish(self, now: int, solves) -> None:
        cfg = self.cfg
        self._published.clear()
        vms_by_id = {vm.vmid: vm for vm in self.world.vms}
        for node in sorted(solves):
            host = solves[node]
            # SAN009 host-capacity leg: the solved *allocations* must fit
            # in the host (caps may legally sum above 1.0 — they are
            # per-VM limits with headroom, not a partition).
            total_alloc = sum(a.alloc for a in host.allocations)
            if total_alloc > 1.0 + _EPS:
                self._violate(
                    f"solved allocations on node {node} sum to "
                    f"{total_alloc:.6f} > host capacity at t={now}"
                )
            # Caps enforce the solved shares *under contention*.  When the
            # water-fill is feasible at yield 1.0 the host is
            # under-committed and every VM already fits; a non-work-
            # conserving cap there would only throttle bursts, so the
            # controller publishes "uncapped" (and clears stale caps left
            # from a contended earlier solve).
            contended = host.min_yield < 1.0 - _EPS
            for a in host.allocations:
                vm = vms_by_id.get(a.vmid)
                if vm is None:  # torn down between estimate and publish
                    continue
                sched = vm.node.vmm.scheduler
                cap = a.cap if (cfg.apply_caps and contended) else None
                weight = a.weight if cfg.apply_weights else vm.weight
                if cfg.apply_caps:
                    sched.set_vm_cap(vm, cap)
                    if cap is not None:
                        self.caps_applied += 1
                if cfg.apply_weights:
                    sched.set_vm_weight(vm, weight)
                    self.weights_applied += 1
                self._published[vm.vmid] = (cap, weight)
                if obstrace.enabled:
                    obstrace.emit(
                        "dfrs.apply",
                        now,
                        vm=vm.name,
                        node=node,
                        need=a.need,
                        cap=cap,
                        weight=weight,
                        vm_yield=a.vm_yield,
                    )

    def _relocate(self, needs) -> None:
        engine = self.world.migration_engine
        if engine is None:
            return
        moves = propose_moves(
            needs,
            self.world.config.n_nodes,
            self.world._node_vm_load,
            self.world.config.vms_per_node,
            self.cfg.max_moves_per_round,
        )
        vms_by_id = {vm.vmid: vm for vm in self.world.vms}
        for vmid, dst in moves:
            vm = vms_by_id.get(vmid)
            if vm is None or vm.paused or vm.vmid in engine.active:
                continue
            if vm.node.index == dst:
                continue
            if engine.start(vm, dst):
                self.moves_requested += 1

    # ------------------------------------------------------------------
    # SAN009: published allocations are the applied ones
    # ------------------------------------------------------------------
    def _check_applied(self, now: int) -> None:
        """The caps/weights on the VMs must match the previous publish.

        Runs at the top of each control round: period hooks fire *after*
        the scheduler's accounting pass, so by the next round every
        staged update from the previous publish has been applied.  A VM
        that disappeared (teardown) is skipped; one whose cap or weight
        was changed behind the controller's back — or a scheduler that
        dropped the staged update — is a SAN009 violation.
        """
        if not self._published:
            return
        vms_by_id = {vm.vmid: vm for vm in self.world.vms}
        for vmid, (cap, weight) in self._published.items():
            vm = vms_by_id.get(vmid)
            if vm is None:
                continue
            if self.cfg.apply_caps and not _close(vm.cap, cap):
                self._violate(
                    f"{vm.name}: applied cap {vm.cap!r} != published {cap!r} "
                    f"at t={now}"
                )
            if self.cfg.apply_weights and abs(vm.weight - weight) > _EPS:
                self._violate(
                    f"{vm.name}: applied weight {vm.weight!r} != published "
                    f"{weight!r} at t={now}"
                )

    def _violate(self, message: str) -> None:
        sanitizer = getattr(self.world, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.record(sanitizer.DFRS, message)
        else:
            self.violations.append(message)


def _close(a: Optional[float], b: Optional[float]) -> bool:
    if a is None or b is None:
        return a is b
    return abs(a - b) <= _EPS
