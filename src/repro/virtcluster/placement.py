"""VM placement policies for virtual clusters.

The paper's setups spread each virtual cluster across physical nodes
(e.g. "four identical virtual clusters ... and the four VMs on each
physical node belong to them separately"), which maximizes the cross-VM
network synchronization this work targets.  ``spread`` reproduces that;
``pack`` fills nodes one at a time (for contrast/ablations); ``striped``
walks the nodes cyclically from a load-derived offset; ``random:SEED``
draws uniformly among nodes with free capacity from a dedicated
:class:`~repro.sim.rng.SimRNG` sub-stream (so workload RNG is never
perturbed by placement).

Two APIs:

* :func:`place` — the pure registry entry point.  Takes the policy name,
  the current per-node VM loads and the per-node capacity, and returns
  ``(assignment, new_loads)`` without mutating its inputs.  Ties between
  equally-loaded nodes always resolve to the lowest node index, for every
  policy, so placement is deterministic by construction.
* :func:`spread_placement` / :func:`pack_placement` — thin back-compat
  wrappers around :func:`place` that keep the historical mutating
  signature (``node_load`` is updated in place).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.sim.rng import SimRNG

__all__ = [
    "PLACEMENTS",
    "place",
    "placement_names",
    "spread_placement",
    "pack_placement",
]

#: Dedicated SimRNG sub-stream key for ``random:SEED`` placement draws
#: (disjoint from workload keys, which are small positive integers, and
#: from the fault key 0xFA).
RNG_KEY = 0x9C


def _spread(n_vms: int, loads: list[int], cap: int) -> list[int]:
    """Least-loaded node first; ties resolve to the lowest index."""
    out: list[int] = []
    for _ in range(n_vms):
        best = min(range(len(loads)), key=lambda i: (loads[i], i))
        if loads[best] >= cap:
            raise _CapacityError()
        loads[best] += 1
        out.append(best)
    return out


def _pack(n_vms: int, loads: list[int], cap: int) -> list[int]:
    """Fill nodes in index order (anti-spread, for ablations)."""
    out: list[int] = []
    for _ in range(n_vms):
        placed = False
        for i in range(len(loads)):
            if loads[i] < cap:
                loads[i] += 1
                out.append(i)
                placed = True
                break
        if not placed:
            raise _CapacityError()
    return out


def _striped(n_vms: int, loads: list[int], cap: int) -> list[int]:
    """Cyclic walk over nodes with free capacity, starting at an offset
    derived from the total load already placed (so successive calls start
    on different nodes).  With equal loads the walk starts at node 0 and
    proceeds by index — the same deterministic tie-break as the others."""
    n_nodes = len(loads)
    start = sum(loads) % n_nodes if n_nodes else 0
    out: list[int] = []
    for k in range(n_vms):
        placed = False
        for step in range(n_nodes):
            i = (start + k + step) % n_nodes
            if loads[i] < cap:
                loads[i] += 1
                out.append(i)
                placed = True
                break
        if not placed:
            raise _CapacityError()
    return out


def _random(seed: int) -> Callable[[int, list[int], int], list[int]]:
    """Uniform draw among nodes with free capacity, from a dedicated
    seeded sub-stream.  The same spec string always produces the same
    assignment for the same inputs."""

    def placer(n_vms: int, loads: list[int], cap: int) -> list[int]:
        rng = SimRNG(seed).substream(RNG_KEY)
        out: list[int] = []
        for _ in range(n_vms):
            free = [i for i in range(len(loads)) if loads[i] < cap]
            if not free:
                raise _CapacityError()
            pick = free[int(rng.uniform_ns(0, len(free) - 1))]
            loads[pick] += 1
            out.append(pick)
        return out

    return placer


class _CapacityError(Exception):
    """Internal marker; :func:`place` converts it to a RuntimeError with
    the cluster name and shape attached."""


#: Policy registry: name -> placer(n_vms, loads, cap) -> assignment.
#: Placers mutate the ``loads`` list they are handed; :func:`place` gives
#: them a private copy, so the public API stays pure.
PLACEMENTS: dict[str, Callable[[int, list[int], int], list[int]]] = {
    "spread": _spread,
    "pack": _pack,
    "striped": _striped,
}


def placement_names() -> list[str]:
    """Registered policy names (plus the parametric ``random:SEED`` form)."""
    return [*PLACEMENTS, "random:SEED"]


def _resolve(policy: str) -> Callable[[int, list[int], int], list[int]]:
    if policy in PLACEMENTS:
        return PLACEMENTS[policy]
    if policy.startswith("random:"):
        try:
            seed = int(policy.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad random placement spec {policy!r}; want random:SEED") from None
        return _random(seed)
    raise ValueError(
        f"unknown placement policy {policy!r}; known: {', '.join(placement_names())}"
    )


def place(
    policy: str,
    n_vms: int,
    loads: Sequence[int],
    cap: int,
    cluster: str = "?",
) -> tuple[list[int], list[int]]:
    """Assign ``n_vms`` to nodes under ``policy``.

    ``loads`` is the current VM count per node (NOT mutated); ``cap`` the
    per-node VM capacity.  Returns ``(assignment, new_loads)``.  Raises
    ``RuntimeError`` naming ``cluster`` when capacity is exhausted and
    ``ValueError`` for an unknown policy name.
    """
    placer = _resolve(policy)
    new_loads = list(loads)
    try:
        assignment = placer(n_vms, new_loads, cap)
    except _CapacityError:
        raise RuntimeError(
            f"cluster {cluster!r} out of VM capacity ({cap} per node, {len(loads)} nodes)"
        ) from None
    return assignment, new_loads


# ----------------------------------------------------------------------
# Back-compat wrappers (historical mutating API)
# ----------------------------------------------------------------------
def spread_placement(n_vms: int, node_load: list[int], vms_per_node: int) -> list[int]:
    """Assign ``n_vms`` to the least-loaded nodes, round-robin.

    ``node_load`` is the current VM count per node (mutated in place).
    Raises if capacity is exhausted.
    """
    assignment, new_loads = place("spread", n_vms, node_load, vms_per_node)
    node_load[:] = new_loads
    return assignment


def pack_placement(n_vms: int, node_load: list[int], vms_per_node: int) -> list[int]:
    """Fill nodes in index order (anti-spread, for ablations)."""
    assignment, new_loads = place("pack", n_vms, node_load, vms_per_node)
    node_load[:] = new_loads
    return assignment
