"""VM placement policies for virtual clusters.

The paper's setups spread each virtual cluster across physical nodes
(e.g. "four identical virtual clusters ... and the four VMs on each
physical node belong to them separately"), which maximizes the cross-VM
network synchronization this work targets.  ``spread`` reproduces that;
``pack`` fills nodes one at a time (for contrast/ablations).
"""

from __future__ import annotations

__all__ = ["spread_placement", "pack_placement"]


def spread_placement(n_vms: int, node_load: list[int], vms_per_node: int) -> list[int]:
    """Assign ``n_vms`` to the least-loaded nodes, round-robin.

    ``node_load`` is the current VM count per node (mutated in place).
    Raises if capacity is exhausted.
    """
    out: list[int] = []
    for _ in range(n_vms):
        best = min(range(len(node_load)), key=lambda i: (node_load[i], i))
        if node_load[best] >= vms_per_node:
            raise RuntimeError(
                f"cluster out of VM capacity ({vms_per_node} per node, {len(node_load)} nodes)"
            )
        node_load[best] += 1
        out.append(best)
    return out


def pack_placement(n_vms: int, node_load: list[int], vms_per_node: int) -> list[int]:
    """Fill nodes in index order (anti-spread, for ablations)."""
    out: list[int] = []
    for _ in range(n_vms):
        placed = False
        for i in range(len(node_load)):
            if node_load[i] < vms_per_node:
                node_load[i] += 1
                out.append(i)
                placed = True
                break
        if not placed:
            raise RuntimeError(
                f"cluster out of VM capacity ({vms_per_node} per node, {len(node_load)} nodes)"
            )
    return out
