"""Virtual clusters: named groups of VMs hosting one parallel job."""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VM

__all__ = ["VirtualCluster"]


class VirtualCluster:
    """A set of VMs (usually spread over distinct physical nodes) acting
    as one parallel machine, as users rent them from the cloud."""

    __slots__ = ("name", "vms")

    def __init__(self, name: str, vms: Sequence["VM"]) -> None:
        if not vms:
            raise ValueError("a virtual cluster needs at least one VM")
        self.name = name
        self.vms = list(vms)

    @property
    def n_vms(self) -> int:
        return len(self.vms)

    @property
    def n_vcpus(self) -> int:
        return sum(len(vm.vcpus) for vm in self.vms)

    @property
    def nodes(self) -> list[int]:
        """Physical node indices hosting this cluster's VMs."""
        return sorted({vm.node.index for vm in self.vms})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<VirtualCluster {self.name} vms={self.n_vms} vcpus={self.n_vcpus}>"
