"""Virtual-cluster construction and placement policies."""

from repro.virtcluster.cluster import VirtualCluster
from repro.virtcluster.placement import (
    PLACEMENTS,
    pack_placement,
    place,
    placement_names,
    spread_placement,
)

__all__ = [
    "VirtualCluster",
    "PLACEMENTS",
    "place",
    "placement_names",
    "pack_placement",
    "spread_placement",
]
