"""Virtual-cluster construction and placement policies."""

from repro.virtcluster.cluster import VirtualCluster
from repro.virtcluster.placement import pack_placement, spread_placement

__all__ = ["VirtualCluster", "pack_placement", "spread_placement"]
