"""repro — reproduction of "Dynamic Acceleration of Parallel Applications
in Cloud Platforms by Adaptive Time-Slice Control" (IPDPS 2016).

Public API layers:

* :mod:`repro.sim` — discrete-event kernel.
* :mod:`repro.cluster` — physical nodes, caches, disk, network fabric.
* :mod:`repro.hypervisor` — VMs/VCPUs, per-node VMM, dom0 packet path.
* :mod:`repro.guest` — guest kernel, processes, spinlocks.
* :mod:`repro.schedulers` — CR, CS, BS, DSS, VS and ATC.
* :mod:`repro.core` — the ATC control algorithms (the paper's contribution).
* :mod:`repro.workloads` — NPB models, non-parallel apps, LLNL trace mix.
* :mod:`repro.virtcluster` — virtual-cluster construction and placement.
* :mod:`repro.migration` — pre-copy live migration + rebalancing policies.
* :mod:`repro.metrics` — collectors and normalized-performance summaries.
* :mod:`repro.experiments` — per-figure scenario builders and harness.

Most users start from :class:`repro.experiments.harness.CloudWorld` (or a
scenario builder in :mod:`repro.experiments.scenarios`) — see
``examples/quickstart.py``.
"""

__version__ = "1.0.0"
