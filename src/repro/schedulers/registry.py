"""Scheduler registry: the paper's approach names → factories.

``make_scheduler_factory("ATC")`` returns a callable suitable for
:class:`repro.hypervisor.vmm.VMM`'s ``scheduler_factory`` argument, so
experiment harnesses can be driven by the scheduler's short name exactly
as the figures label them (CR, CS, BS, DSS, VS, ATC).
"""

from __future__ import annotations

from typing import Callable, Type

from repro.schedulers.atc_sched import ATCParams, ATCScheduler
from repro.schedulers.balance import BalanceParams, BalanceScheduler
from repro.schedulers.base import Scheduler, SchedulerParams
from repro.schedulers.coschedule import CoScheduleParams, CoScheduler
from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.schedulers.dss import DSSParams, DSSScheduler
from repro.schedulers.vslicer import VSlicerParams, VSlicerScheduler

__all__ = ["SCHEDULERS", "DEFAULT_PARAMS", "make_scheduler_factory", "scheduler_names"]

SCHEDULERS: dict[str, Type[Scheduler]] = {
    "CR": CreditScheduler,
    "CS": CoScheduler,
    "BS": BalanceScheduler,
    "DSS": DSSScheduler,
    "VS": VSlicerScheduler,
    "ATC": ATCScheduler,
}

DEFAULT_PARAMS: dict[str, Type[SchedulerParams]] = {
    "CR": CreditParams,
    "CS": CoScheduleParams,
    "BS": BalanceParams,
    "DSS": DSSParams,
    "VS": VSlicerParams,
    "ATC": ATCParams,
}


def scheduler_names() -> list[str]:
    """All approach names, in the paper's presentation order.

    Derived from :data:`SCHEDULERS`, whose insertion order *is* the
    presentation order — a separately hardcoded list here once meant a
    newly registered approach could silently vanish from CLI listings."""
    return list(SCHEDULERS)


def make_scheduler_factory(
    name: str, params: SchedulerParams | None = None
) -> Callable[[object], Scheduler]:
    """Build a per-VMM scheduler factory for the named approach."""
    try:
        cls = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        ) from None
    if params is not None and not isinstance(params, DEFAULT_PARAMS[name]):
        raise TypeError(
            f"{name} expects {DEFAULT_PARAMS[name].__name__}, got {type(params).__name__}"
        )
    return lambda vmm: cls(vmm, params)
