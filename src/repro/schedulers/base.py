"""Scheduler protocol.

A scheduler instance is installed per node (as in Xen) and owns the node's
run queues.  The VMM calls into it at every scheduling decision point; the
scheduler calls back ``vmm.kick`` / ``vmm.preempt`` to effect placement
decisions.

Priorities follow Xen's credit scheduler convention: numerically lower
runs first (BOOST < UNDER < OVER).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU
    from repro.hypervisor.vm import VCPU, VM
    from repro.hypervisor.vmm import VMM

__all__ = ["PRIO_BOOST", "PRIO_UNDER", "PRIO_OVER", "SchedulerParams", "Scheduler"]

PRIO_BOOST = 0
PRIO_UNDER = 1
PRIO_OVER = 2


@dataclass(frozen=True)
class SchedulerParams:
    """Parameters common to every scheduler model."""

    #: Default time slice (Xen credit default: 30 ms).
    slice_ns: int = 30 * MSEC
    #: Enable wake-time BOOST priority (credit-family schedulers).
    boost: bool = True


class Scheduler(abc.ABC):
    """Abstract per-node scheduler."""

    def __init__(self, vmm: "VMM", params: SchedulerParams | None = None) -> None:
        self.vmm = vmm
        self.params = params or SchedulerParams()
        #: Cluster-scope allocation updates staged by ``set_vm_cap`` /
        #: ``set_vm_weight`` (insertion-ordered ``{VM: value}``); applied
        #: at the next accounting boundary by ``apply_pending_allocations``
        #: so a mid-period publish cannot skew in-flight credit accounting.
        self._pending_caps: dict["VM", Optional[float]] = {}
        self._pending_weights: dict["VM", float] = {}

    # -- queue events ----------------------------------------------------
    @abc.abstractmethod
    def on_wake(self, vcpu: "VCPU") -> None:
        """A blocked VCPU became runnable; place (and maybe preempt)."""

    @abc.abstractmethod
    def pick_next(self, pcpu: "PCPU") -> Optional[tuple["VCPU", int]]:
        """Choose the next VCPU and its slice for an idle PCPU."""

    @abc.abstractmethod
    def on_slice_expired(self, vcpu: "VCPU") -> None:
        """A VCPU consumed its full slice; requeue it."""

    @abc.abstractmethod
    def on_preempted(self, vcpu: "VCPU") -> None:
        """A VCPU was involuntarily descheduled mid-slice; requeue it."""

    def on_block(self, vcpu: "VCPU") -> None:
        """A running VCPU blocked voluntarily (default: nothing to do)."""

    def remove_queued(self, vcpu: "VCPU") -> None:
        """Withdraw a queued RUNNABLE VCPU from the run queues without
        dispatching it — the VMM's fault-injection pause path.  Schedulers
        with explicit queues must drop the VCPU from them; the default
        only clears the bookkeeping flag."""
        vcpu.queued = False

    # -- cluster-scope allocation hooks -----------------------------------
    def set_vm_cap(self, vm: "VM", cap: Optional[float]) -> None:
        """Stage a per-VM CPU cap (fraction of host capacity; ``None`` =
        uncapped) from a cluster-level controller (:mod:`repro.dfrs`).

        The cap is *not* applied immediately: it takes effect at the next
        accounting boundary (``apply_pending_allocations``), so the
        in-flight period's budgets stay consistent with the weights and
        caps its accounting started under."""
        self._pending_caps[vm] = cap

    def set_vm_weight(self, vm: "VM", weight: float) -> None:
        """Stage a per-VM proportional-share weight from a cluster-level
        controller; applied at the next accounting boundary, like
        :meth:`set_vm_cap`."""
        if weight <= 0:
            raise ValueError(f"{vm.name}: weight must be positive, got {weight}")
        self._pending_weights[vm] = weight

    def apply_pending_allocations(self) -> None:
        """Apply staged cap/weight updates.  Called by concrete schedulers
        at the *top* of their accounting boundary (before shares are
        computed), so the new weights govern the very period they open.
        No-op — and allocation-free — when nothing is staged, keeping
        worlds without a cluster controller bit-identical."""
        if self._pending_weights:
            for vm, weight in self._pending_weights.items():
                vm.weight = weight
            self._pending_weights.clear()
        if self._pending_caps:
            for vm, cap in self._pending_caps.items():
                vm.cap = cap
            self._pending_caps.clear()

    # -- periodic accounting ----------------------------------------------
    def on_period(self, now: int) -> None:
        """Called once per VMM scheduling period (default: nothing)."""

    def charge_ns(self, vcpu: "VCPU", start: int, end: int, voluntary: bool = False) -> int:
        """CPU time to *debit* for a dispatch that ran ``[start, end)``.

        The default is exact accounting (charged == ran).  The credit
        scheduler overrides this under ``CreditParams.tick_accounting`` to
        model Xen's tick-sampled debiting; ``voluntary`` marks a
        block/yield deschedule (the ``deboost_on_yield`` hardening knob
        charges those exactly)."""
        return end - start

    # -- policy ------------------------------------------------------------
    def slice_for(self, vcpu: "VCPU") -> int:
        """Time slice for a VCPU: per-VM override or scheduler default."""
        vm: "VM" = vcpu.vm
        if vm.slice_ns is not None:
            return vm.slice_ns
        return self.params.slice_ns
