"""Xen's Credit scheduler (CR) — the paper's baseline.

Behavioural model of the classic credit scheduler:

* per-PCPU run queues; a VCPU has a home queue (where it last ran);
* three priorities: BOOST (just woken, still in credit), UNDER (credit
  left), OVER (credit exhausted); lower runs first, FIFO within a class;
* wake placement prefers an idle PCPU, then the least-loaded queue, and a
  BOOST wake preempts a lower-priority running VCPU — this is what gives
  I/O-blocked domains (dom0, ping, web servers) low latency under CR;
* work stealing: a PCPU whose queue is empty pulls the best runnable VCPU
  from its busiest sibling queue;
* per-period proportional-share credit accounting by VM weight.

The default time slice is 30 ms, the value the paper identifies as the
root cause of parallel-application slowdown in over-committed clouds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs import trace as obstrace
from repro.sim.units import MSEC

from repro.schedulers.base import (
    PRIO_BOOST,
    PRIO_OVER,
    PRIO_UNDER,
    Scheduler,
    SchedulerParams,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU
    from repro.hypervisor.vm import VCPU
    from repro.hypervisor.vmm import VMM

__all__ = ["CreditParams", "CreditScheduler"]


@dataclass(frozen=True)
class CreditParams(SchedulerParams):
    """Credit-scheduler tunables."""

    #: Credit clamp, as a multiple of (period * n_pcpus).
    credit_cap_periods: float = 1.0
    #: Xen's ``sched_ratelimit_us`` (default 1000 us): a running VCPU may
    #: not be preempted by a wake until it has run at least this long.
    #: This is what makes wake latency depend on slice length for short
    #: slices (slice end arrives before the ratelimit allows preemption).
    ratelimit_ns: int = 1 * MSEC
    #: Xen's accounting tick (10 ms): BOOST priority only protects a
    #: running VCPU until the next tick; after that it is treated at its
    #: credit priority, so later boosted wakes can preempt it.
    tick_ns: int = 10 * MSEC


class CreditScheduler(Scheduler):
    """Xen Credit scheduler model."""

    name = "CR"

    def __init__(self, vmm: "VMM", params: CreditParams | None = None) -> None:
        super().__init__(vmm, params or CreditParams())
        self.runqs: list[deque] = [deque() for _ in vmm.node.pcpus]
        #: Pending deferred tickle per PCPU index:
        #: ``(running_vcpu, run_start_ns, fire_ns, event)``.  Lets repeated
        #: wakes against the same dispatch coalesce into one queued
        #: ``_ratelimit_fire`` instead of piling a dead tickle per wake.
        self._pending_tickles: dict[int, tuple] = {}
        # Introspection counters (analysis/debugging; no behavioural role).
        self.stat_wake_preemptions = 0
        self.stat_deferred_tickles = 0
        self.stat_steals = 0
        self.stat_boost_wakes = 0

    # ------------------------------------------------------------------
    # Placement / wake
    # ------------------------------------------------------------------
    def _effective_credit(self, vcpu: "VCPU") -> float:
        """Credit net of what the VCPU already consumed this period (Xen
        debits at every 10 ms tick; CPU-hungry VCPUs go OVER mid-period
        and lose BOOST eligibility — this is why spinning parallel VMs
        wait full run-queue rotations while idle-ish latency-sensitive
        VMs keep preempting promptly)."""
        return vcpu.credit - vcpu.period_run_ns

    def _wake_prio(self, vcpu: "VCPU") -> int:
        if self._effective_credit(vcpu) > 0:
            return PRIO_BOOST if self.params.boost else PRIO_UNDER
        return PRIO_OVER

    def choose_wake_queue(self, vcpu: "VCPU") -> int:
        """Queue index for a waking VCPU (overridden by Balance Scheduling)."""
        pcpus = self.vmm.node.pcpus
        for p in pcpus:
            if p.current is None:
                return p.index
        # least loaded; prefer the home queue on ties (cache affinity)
        home = vcpu.rq
        best = home
        best_load = len(self.runqs[home])
        for i, q in enumerate(self.runqs):
            if len(q) < best_load:
                best = i
                best_load = len(q)
        return best

    def on_wake(self, vcpu: "VCPU") -> None:
        vcpu.prio = self._wake_prio(vcpu)
        if vcpu.prio == PRIO_BOOST:
            self.stat_boost_wakes += 1
        qi = self.choose_wake_queue(vcpu)
        if obstrace.enabled:
            obstrace.emit(
                "sched.wake",
                self.vmm.sim.now,
                node=self.vmm.node.index,
                vcpu=vcpu.name,
                vm=vcpu.vm.name,
                rq=qi,
                prio=vcpu.prio,
            )
        vcpu.rq = qi
        self.runqs[qi].append(vcpu)
        vcpu.queued = True
        pcpu = self.vmm.node.pcpus[qi]
        if pcpu.current is None:
            self.vmm.kick(pcpu)
            return
        now = self.vmm.sim.now
        cur = pcpu.current
        start = pcpu.run_start_ns
        running_prio = self._running_prio(pcpu)
        if vcpu.prio < running_prio and self._may_preempt(vcpu, pcpu):
            if now - start >= self.params.ratelimit_ns:
                self.stat_wake_preemptions += 1
                self.vmm.preempt(pcpu)
            else:
                # Xen sched_ratelimit: defer the tickle until the current
                # VCPU has had its minimum run.
                self._defer_tickle(pcpu, cur, start, start + self.params.ratelimit_ns)
        elif (
            running_prio == PRIO_BOOST
            and vcpu.prio < self._credit_prio(cur)
            and self._may_preempt(vcpu, pcpu)
        ):
            # The current VCPU is protected (BOOST, or a co-scheduled gang
            # member) — but only until the next global tick: re-evaluate
            # the tickle then.  This is the second deferral path, counted
            # like the ratelimit one.
            tick = self.params.tick_ns
            next_tick = (now // tick + 1) * tick
            self._defer_tickle(
                pcpu, cur, start, max(next_tick, start + self.params.ratelimit_ns)
            )

    def _defer_tickle(
        self, pcpu: "PCPU", cur: "VCPU", start: int, fire_at: int
    ) -> None:
        """Schedule (or coalesce into) the pending deferred tickle for this
        dispatch.

        Only one ``_ratelimit_fire`` is kept queued per (PCPU, dispatch):
        a second deferred wake against the same running VCPU rides the
        already-scheduled tickle instead of adding a dead heap entry, and
        ``stat_deferred_tickles`` counts the deferral once.  If the new
        wake needs an *earlier* re-check (ratelimit expiry before a
        previously scheduled tick re-check), the pending tickle is
        cancelled and replaced — never delayed.
        """
        pend = self._pending_tickles.get(pcpu.index)
        if pend is not None and pend[0] is cur and pend[1] == start:
            if pend[2] <= fire_at:
                return  # already covered by an earlier (or equal) re-check
            pend[3].cancel()  # replace with the earlier fire time
            self._schedule_tickle(pcpu, cur, start, fire_at)
            return
        self.stat_deferred_tickles += 1
        self._schedule_tickle(pcpu, cur, start, fire_at)

    def _schedule_tickle(
        self, pcpu: "PCPU", cur: "VCPU", start: int, fire_at: int
    ) -> None:
        ev = self.vmm.sim.at(
            fire_at,
            lambda p=pcpu, c=cur, s=start: self._ratelimit_fire(p, c, s),
            cat="sched.tickle",
        )
        self._pending_tickles[pcpu.index] = (cur, start, fire_at, ev)

    def _may_preempt(self, vcpu: "VCPU", pcpu: "PCPU") -> bool:
        """Policy hook: may a waking ``vcpu`` preempt ``pcpu``'s current?
        (Co-scheduling denies this for ganged VCPUs.)"""
        return True

    def _running_prio(self, pcpu: "PCPU") -> int:
        """Effective priority of the running VCPU for preemption checks:
        BOOST protection lapses after one accounting tick (Xen deboosts
        at the next tick), so a long-running boosted VCPU is judged at
        its credit priority."""
        cur = pcpu.current
        prio = cur.prio
        if prio == PRIO_BOOST:
            # Deboost at the next *global* tick after dispatch (Xen's
            # periodic timer, not a per-dispatch countdown).
            tick = self.params.tick_ns
            if self.vmm.sim.now // tick > pcpu.run_start_ns // tick:
                prio = self._credit_prio(cur)
        return prio

    def _ratelimit_fire(self, pcpu: "PCPU", expected: "VCPU", run_start: int) -> None:
        """Deferred wake preemption: still valid only if the same dispatch
        is in place and a higher-priority VCPU is actually waiting."""
        pend = self._pending_tickles.get(pcpu.index)
        if pend is not None and pend[0] is expected and pend[1] == run_start:
            del self._pending_tickles[pcpu.index]
        cur = pcpu.current
        if cur is not expected or pcpu.run_start_ns != run_start:
            return
        best = min((v.prio for v in self.runqs[pcpu.index]), default=None)
        if best is None or not self._may_preempt_queued(pcpu):
            return
        running = self._running_prio(pcpu)
        if best < running:
            self.vmm.preempt(pcpu)
        elif running == PRIO_BOOST and best < self._credit_prio(cur):
            # Still inside the runner's transient BOOST protection: re-arm
            # at the deboost tick rather than dropping the wake on the
            # floor.  The re-armed fire sees the deboosted priority (the
            # tick boundary is strictly past the dispatch tick), so this
            # re-arms at most once per dispatch — no unbounded loop.
            tick = self.params.tick_ns
            next_tick = (self.vmm.sim.now // tick + 1) * tick
            self._schedule_tickle(pcpu, expected, run_start, next_tick)

    def _may_preempt_queued(self, pcpu: "PCPU") -> bool:
        return self._may_preempt(None, pcpu)

    # ------------------------------------------------------------------
    # Picking
    # ------------------------------------------------------------------
    def _pop_best(self, q: deque) -> Optional["VCPU"]:
        if not q:
            return None
        best_i = 0
        best_prio = q[0].prio
        if best_prio != PRIO_BOOST:
            for i in range(1, len(q)):
                p = q[i].prio
                if p < best_prio:
                    best_i, best_prio = i, p
                    if p == PRIO_BOOST:
                        break
        vcpu = q[best_i]
        del q[best_i]
        vcpu.queued = False
        return vcpu

    def _steal(self, pcpu: "PCPU") -> Optional["VCPU"]:
        """Pull the best candidate from the busiest sibling queue."""
        best_q = None
        best_len = 0
        for i, q in enumerate(self.runqs):
            if i != pcpu.index and len(q) > best_len:
                best_q, best_len = q, len(q)
        if best_q is None:
            return None
        vcpu = self._pop_best(best_q)
        if vcpu is not None:
            self.stat_steals += 1
            if obstrace.enabled:
                obstrace.emit(
                    "sched.steal",
                    self.vmm.sim.now,
                    node=self.vmm.node.index,
                    vcpu=vcpu.name,
                    vm=vcpu.vm.name,
                    from_rq=vcpu.rq,
                    to_rq=pcpu.index,
                )
            vcpu.rq = pcpu.index
        return vcpu

    def pick_next(self, pcpu: "PCPU") -> Optional[tuple["VCPU", int]]:
        vcpu = self._pop_best(self.runqs[pcpu.index])
        if vcpu is None:
            vcpu = self._steal(pcpu)
        if vcpu is None:
            return None
        return vcpu, self.slice_for(vcpu)

    def remove_queued(self, vcpu: "VCPU") -> None:
        """Remove a queued RUNNABLE VCPU from the run queues without
        dispatching it (fault-injection VM pause path)."""
        if not vcpu.queued:
            return
        try:
            self.runqs[vcpu.rq].remove(vcpu)
        except ValueError:
            # Defensive: home-queue bookkeeping went stale (steal race);
            # fall back to a scan so the VCPU cannot be picked while paused.
            for q in self.runqs:
                if vcpu in q:
                    q.remove(vcpu)
                    break
        vcpu.queued = False

    # ------------------------------------------------------------------
    # Requeue paths
    # ------------------------------------------------------------------
    def _credit_prio(self, vcpu: "VCPU") -> int:
        return PRIO_UNDER if self._effective_credit(vcpu) > 0 else PRIO_OVER

    def on_slice_expired(self, vcpu: "VCPU") -> None:
        vcpu.prio = self._credit_prio(vcpu)  # full slice used: boost expires
        self.runqs[vcpu.rq].append(vcpu)
        vcpu.queued = True

    def on_preempted(self, vcpu: "VCPU") -> None:
        # Preempted mid-slice: keep priority, go back near the front so the
        # remaining entitlement is honoured soon.
        self.runqs[vcpu.rq].appendleft(vcpu)
        vcpu.queued = True

    # ------------------------------------------------------------------
    # Periodic credit accounting
    # ------------------------------------------------------------------
    def on_period(self, now: int) -> None:
        vmm = self.vmm
        period = vmm.period_ns
        capacity = period * len(vmm.node.pcpus)
        vcpus = [v for vm in vmm.vms for v in vm.vcpus]
        active = [v.state.value != 0 or v.period_run_ns > 0 for v in vcpus]
        total_w = sum(v.vm.weight for v, act in zip(vcpus, active) if act) or 1.0
        cap = self.params.credit_cap_periods * capacity
        for v, act in zip(vcpus, active):
            share = capacity * (v.vm.weight / total_w) if act else 0.0
            v.credit = min(cap, max(-cap, v.credit + share - v.period_run_ns))
            v.period_run_ns = 0
            if v.queued and v.prio != PRIO_BOOST:
                v.prio = self._credit_prio(v)
