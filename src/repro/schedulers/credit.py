"""Xen's Credit scheduler (CR) — the paper's baseline.

Behavioural model of the classic credit scheduler:

* per-PCPU run queues; a VCPU has a home queue (where it last ran);
* three priorities: BOOST (just woken, still in credit), UNDER (credit
  left), OVER (credit exhausted); lower runs first, FIFO within a class;
* wake placement prefers an idle PCPU, then the least-loaded queue, and a
  BOOST wake preempts a lower-priority running VCPU — this is what gives
  I/O-blocked domains (dom0, ping, web servers) low latency under CR;
* work stealing: a PCPU whose queue is empty pulls the best runnable VCPU
  from its busiest sibling queue;
* per-period proportional-share credit accounting by VM weight.

The default time slice is 30 ms, the value the paper identifies as the
root cause of parallel-application slowdown in over-committed clouds.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs import trace as obstrace
from repro.sim.units import MSEC

from repro.schedulers.base import (
    PRIO_BOOST,
    PRIO_OVER,
    PRIO_UNDER,
    Scheduler,
    SchedulerParams,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU
    from repro.hypervisor.vm import VCPU
    from repro.hypervisor.vmm import VMM

__all__ = ["CreditParams", "CreditScheduler"]


@dataclass(frozen=True)
class CreditParams(SchedulerParams):
    """Credit-scheduler tunables."""

    #: Credit clamp, as a multiple of (period * n_pcpus).
    credit_cap_periods: float = 1.0
    #: Xen's ``sched_ratelimit_us`` (default 1000 us): a running VCPU may
    #: not be preempted by a wake until it has run at least this long.
    #: This is what makes wake latency depend on slice length for short
    #: slices (slice end arrives before the ratelimit allows preemption).
    ratelimit_ns: int = 1 * MSEC
    #: Xen's accounting tick (10 ms): BOOST priority only protects a
    #: running VCPU until the next tick; after that it is treated at its
    #: credit priority, so later boosted wakes can preempt it.
    tick_ns: int = 10 * MSEC
    #: Xen-faithful tick-*sampled* debiting: a dispatch is charged one
    #: full tick per accounting tick it spans instead of its exact run
    #: time (real Xen debits whoever is running when the tick fires).
    #: Off by default — the model's exact accounting is immune to the
    #: classic yield-before-tick theft, so the adversarial-tenancy
    #: experiments (repro.workloads.attacks) switch this on to expose the
    #: window the attack games.  Disabled, charged == ran exactly and
    #: every run is bit-identical to the pre-attack-layer model.
    tick_accounting: bool = False
    #: Hardening knob: charge a *voluntary* yield (block) its exact run
    #: time even under tick accounting, so a VCPU cannot burn CPU and
    #: dodge the debit by sleeping across each tick.  This is the
    #: "deboost on yield" mitigation of the Xen scheduler-attack
    #: literature: the yielder's effective credit drops as if it had been
    #: sampled, and its next wake is no longer BOOST-eligible for free.
    deboost_on_yield: bool = False
    #: Hardening knob: at most this many BOOST-priority wakes per VM per
    #: accounting tick (0 = unlimited).  Caps tickle-abuse wake storms:
    #: excess wakes in the same tick window enter at their credit
    #: priority instead of preempting the running victim.
    boost_rate_limit: int = 0
    #: Hardening knob: phase offset of the accounting-tick grid (ns,
    #: normally drawn uniformly from [0, tick_ns) off a dedicated RNG
    #: substream — see scenarios.run_attack).  An attacker that aligns
    #: its burn/yield cycle to the nominal grid no longer knows where the
    #: sampling instants fall.  0 keeps the historical grid.
    tick_phase_ns: int = 0


class CreditScheduler(Scheduler):
    """Xen Credit scheduler model."""

    name = "CR"

    def __init__(self, vmm: "VMM", params: CreditParams | None = None) -> None:
        super().__init__(vmm, params or CreditParams())
        self.runqs: list[deque] = [deque() for _ in vmm.node.pcpus]
        #: Pending deferred tickle per PCPU index:
        #: ``(running_vcpu, run_start_ns, fire_ns, event)``.  Lets repeated
        #: wakes against the same dispatch coalesce into one queued
        #: ``_ratelimit_fire`` instead of piling a dead tickle per wake.
        self._pending_tickles: dict[int, tuple] = {}
        #: Last (vcpu, run_start_ns) dispatch whose deferral was *counted*
        #: per PCPU index.  ``stat_deferred_tickles`` must count once per
        #: (PCPU, dispatch) even when the pending tickle fires as a no-op
        #: (waiter stolen to a sibling or withdrawn by a VM pause) and a
        #: later wake re-defers against the same dispatch — the pending
        #: entry is gone by then, so presence in ``_pending_tickles`` alone
        #: would double-count.
        self._tickle_counted: dict[int, tuple] = {}
        #: VCPUs of capped VMs parked for the rest of the period: their
        #: VM's cap budget is exhausted, so ``pick_next`` sidelines them
        #: here (Xen's CSCHED_PRI_IDLE parking) instead of running them
        #: work-conservingly.  Unparked — re-queued on their home queues —
        #: at the next accounting boundary, when budgets refresh.  Stays
        #: empty (and costs one falsy check per pick) while no VM is
        #: capped, keeping cap-free runs bit-identical.
        self._parked: list["VCPU"] = []
        # Introspection counters (analysis/debugging; no behavioural role).
        self.stat_wake_preemptions = 0
        self.stat_deferred_tickles = 0
        self.stat_steals = 0
        self.stat_boost_wakes = 0
        self.stat_cap_parks = 0

    # ------------------------------------------------------------------
    # Accounting-tick arithmetic (single source of truth)
    # ------------------------------------------------------------------
    def _tick_index(self, t: int) -> int:
        """Index of the accounting-tick window containing instant ``t``.
        Every tick-boundary decision — deboost, tickle re-arm, tick-
        sampled debiting, BOOST rate-limit windows — goes through this
        one helper so the phase offset and the boundary convention
        (a dispatch at exactly ``k * tick`` belongs to window ``k`` and
        deboosts at ``(k+1) * tick``, not ``(k+2) * tick``) cannot drift
        apart between call sites."""
        p = self.params
        return (t - p.tick_phase_ns) // p.tick_ns

    def _next_tick_after(self, t: int) -> int:
        """First tick boundary strictly after ``t`` (the deboost instant
        of a dispatch started at ``t``)."""
        p = self.params
        return (self._tick_index(t) + 1) * p.tick_ns + p.tick_phase_ns

    def charge_ns(self, vcpu: "VCPU", start: int, end: int, voluntary: bool = False) -> int:
        """Debit for a dispatch ``[start, end)``: exact by default;
        tick-sampled under ``tick_accounting`` (one full tick per
        boundary crossed — whoever runs when the tick fires pays it,
        as in real Xen).  ``deboost_on_yield`` closes the voluntary-
        yield escape by charging blocks exactly."""
        p = self.params
        if not p.tick_accounting or (voluntary and p.deboost_on_yield):
            return end - start
        return (self._tick_index(end) - self._tick_index(start)) * p.tick_ns

    # ------------------------------------------------------------------
    # Placement / wake
    # ------------------------------------------------------------------
    def _effective_credit(self, vcpu: "VCPU") -> float:
        """Credit net of what the VCPU was already *charged* this period
        (Xen debits at every 10 ms tick; CPU-hungry VCPUs go OVER
        mid-period and lose BOOST eligibility — this is why spinning
        parallel VMs wait full run-queue rotations while idle-ish
        latency-sensitive VMs keep preempting promptly).  Charged equals
        consumed under exact accounting; under ``tick_accounting`` the
        gap between them is exactly what a yield-theft attacker steals."""
        return vcpu.credit - vcpu.period_charged_ns

    def _boost_within_rate(self, vcpu: "VCPU") -> bool:
        """BOOST rate-limit hardening: allow at most ``boost_rate_limit``
        BOOST wakes per VM per accounting tick.  With the knob off (0)
        this touches no state, keeping default runs bit-identical."""
        limit = self.params.boost_rate_limit
        if limit <= 0:
            return True
        vm = vcpu.vm
        idx = self._tick_index(self.vmm.sim.now)
        if vm.boost_window_idx != idx:
            vm.boost_window_idx = idx
            vm.boost_window_wakes = 0
        if vm.boost_window_wakes >= limit:
            return False
        vm.boost_window_wakes += 1
        return True

    def _wake_prio(self, vcpu: "VCPU") -> int:
        if self._effective_credit(vcpu) > 0:
            if self.params.boost and self._boost_within_rate(vcpu):
                return PRIO_BOOST
            return PRIO_UNDER
        return PRIO_OVER

    def choose_wake_queue(self, vcpu: "VCPU") -> int:
        """Queue index for a waking VCPU (overridden by Balance Scheduling)."""
        pcpus = self.vmm.node.pcpus
        for p in pcpus:
            if p.current is None:
                return p.index
        # least loaded; prefer the home queue on ties (cache affinity)
        home = vcpu.rq
        best = home
        best_load = len(self.runqs[home])
        for i, q in enumerate(self.runqs):
            if len(q) < best_load:
                best = i
                best_load = len(q)
        return best

    def on_wake(self, vcpu: "VCPU") -> None:
        vcpu.prio = self._wake_prio(vcpu)
        if vcpu.prio == PRIO_BOOST:
            self.stat_boost_wakes += 1
        qi = self.choose_wake_queue(vcpu)
        if obstrace.enabled:
            obstrace.emit(
                "sched.wake",
                self.vmm.sim.now,
                node=self.vmm.node.index,
                vcpu=vcpu.name,
                vm=vcpu.vm.name,
                rq=qi,
                prio=vcpu.prio,
            )
        vcpu.rq = qi
        self.runqs[qi].append(vcpu)
        vcpu.queued = True
        pcpu = self.vmm.node.pcpus[qi]
        if pcpu.current is None:
            self.vmm.kick(pcpu)
            return
        now = self.vmm.sim.now
        cur = pcpu.current
        start = pcpu.run_start_ns
        running_prio = self._running_prio(pcpu)
        if vcpu.prio < running_prio and self._may_preempt(vcpu, pcpu):
            if now - start >= self.params.ratelimit_ns:
                self.stat_wake_preemptions += 1
                if vcpu.prio == PRIO_BOOST:
                    self._count_boost_preempt(vcpu, cur)
                self.vmm.preempt(pcpu)
            else:
                # Xen sched_ratelimit: defer the tickle until the current
                # VCPU has had its minimum run.
                self._defer_tickle(pcpu, cur, start, start + self.params.ratelimit_ns)
        elif (
            running_prio == PRIO_BOOST
            and vcpu.prio < self._credit_prio(cur)
            and self._may_preempt(vcpu, pcpu)
        ):
            # The current VCPU is protected (BOOST, or a co-scheduled gang
            # member) — but only until the next global tick: re-evaluate
            # the tickle then.  This is the second deferral path, counted
            # like the ratelimit one.
            self._defer_tickle(
                pcpu, cur, start,
                max(self._next_tick_after(now), start + self.params.ratelimit_ns),
            )

    def _defer_tickle(
        self, pcpu: "PCPU", cur: "VCPU", start: int, fire_at: int
    ) -> None:
        """Schedule (or coalesce into) the pending deferred tickle for this
        dispatch.

        Only one ``_ratelimit_fire`` is kept queued per (PCPU, dispatch):
        a second deferred wake against the same running VCPU rides the
        already-scheduled tickle instead of adding a dead heap entry, and
        ``stat_deferred_tickles`` counts the deferral once.  If the new
        wake needs an *earlier* re-check (ratelimit expiry before a
        previously scheduled tick re-check), the pending tickle is
        cancelled and replaced — never delayed.
        """
        pend = self._pending_tickles.get(pcpu.index)
        if pend is not None and pend[0] is cur and pend[1] == start:
            if pend[2] <= fire_at:
                return  # already covered by an earlier (or equal) re-check
            pend[3].cancel()  # replace with the earlier fire time
            self._schedule_tickle(pcpu, cur, start, fire_at)
            return
        # Count once per (PCPU, dispatch), not once per pending entry: a
        # tickle that fired as a no-op (its waiter was stolen or withdrawn
        # by a VM pause) clears the pending slot, and without this check a
        # later wake against the same dispatch would be counted again.
        counted = self._tickle_counted.get(pcpu.index)
        if counted is None or counted[0] is not cur or counted[1] != start:
            self.stat_deferred_tickles += 1
            self._tickle_counted[pcpu.index] = (cur, start)
        self._schedule_tickle(pcpu, cur, start, fire_at)

    def _schedule_tickle(
        self, pcpu: "PCPU", cur: "VCPU", start: int, fire_at: int
    ) -> None:
        ev = self.vmm.sim.at(
            fire_at,
            lambda p=pcpu, c=cur, s=start: self._ratelimit_fire(p, c, s),
            cat="sched.tickle",
        )
        self._pending_tickles[pcpu.index] = (cur, start, fire_at, ev)

    def _may_preempt(self, vcpu: "VCPU", pcpu: "PCPU") -> bool:
        """Policy hook: may a waking ``vcpu`` preempt ``pcpu``'s current?
        (Co-scheduling denies this for ganged VCPUs.)"""
        return True

    def _running_prio(self, pcpu: "PCPU") -> int:
        """Effective priority of the running VCPU for preemption checks:
        BOOST protection lapses after one accounting tick (Xen deboosts
        at the next tick), so a long-running boosted VCPU is judged at
        its credit priority."""
        cur = pcpu.current
        prio = cur.prio
        if prio == PRIO_BOOST:
            # Deboost at the next *global* tick after dispatch (Xen's
            # periodic timer, not a per-dispatch countdown): a dispatch
            # at exactly ``k * tick`` is deboosted at ``(k+1) * tick``.
            if self._tick_index(self.vmm.sim.now) > self._tick_index(pcpu.run_start_ns):
                prio = self._credit_prio(cur)
        return prio

    def _ratelimit_fire(self, pcpu: "PCPU", expected: "VCPU", run_start: int) -> None:
        """Deferred wake preemption: still valid only if the same dispatch
        is in place and a higher-priority VCPU is actually waiting."""
        pend = self._pending_tickles.get(pcpu.index)
        if pend is not None and pend[0] is expected and pend[1] == run_start:
            del self._pending_tickles[pcpu.index]
        cur = pcpu.current
        if cur is not expected or pcpu.run_start_ns != run_start:
            return
        best = min((v.prio for v in self.runqs[pcpu.index]), default=None)
        if best is None or not self._may_preempt_queued(pcpu):
            return
        running = self._running_prio(pcpu)
        if best < running:
            if best == PRIO_BOOST:
                by = next(v for v in self.runqs[pcpu.index] if v.prio == PRIO_BOOST)
                self._count_boost_preempt(by, cur)
            self.vmm.preempt(pcpu)
        elif running == PRIO_BOOST and best < self._credit_prio(cur):
            # Still inside the runner's transient BOOST protection: re-arm
            # at the deboost instant *of this dispatch* rather than drop
            # the wake on the floor.  Running == BOOST means the fire is
            # still in the dispatch's tick window, so this equals the
            # next boundary after now; computing it from ``run_start``
            # pins the per-dispatch semantics.  The re-armed fire sees
            # the deboosted priority (the boundary is strictly past the
            # dispatch tick), so this re-arms at most once per dispatch.
            self._schedule_tickle(
                pcpu, expected, run_start, self._next_tick_after(run_start)
            )

    def _count_boost_preempt(self, by: "VCPU", victim: "VCPU") -> None:
        """Theft accounting: a BOOST-priority wake evicted a running VCPU."""
        by.vm.boost_preempts_inflicted += 1
        victim.vm.boost_preempts_suffered += 1
        if obstrace.enabled:
            obstrace.emit(
                "sched.boost_preempt",
                self.vmm.sim.now,
                node=self.vmm.node.index,
                by_vm=by.vm.name,
                by_vcpu=by.name,
                victim_vm=victim.vm.name,
                victim_vcpu=victim.name,
            )

    def _may_preempt_queued(self, pcpu: "PCPU") -> bool:
        return self._may_preempt(None, pcpu)

    # ------------------------------------------------------------------
    # Picking
    # ------------------------------------------------------------------
    def _pop_best(self, q: deque) -> Optional["VCPU"]:
        if not q:
            return None
        best_i = 0
        best_prio = q[0].prio
        if best_prio != PRIO_BOOST:
            for i in range(1, len(q)):
                p = q[i].prio
                if p < best_prio:
                    best_i, best_prio = i, p
                    if p == PRIO_BOOST:
                        break
        vcpu = q[best_i]
        del q[best_i]
        vcpu.queued = False
        return vcpu

    def _steal(self, pcpu: "PCPU") -> Optional["VCPU"]:
        """Pull the best candidate from the busiest sibling queue."""
        best_q = None
        best_len = 0
        for i, q in enumerate(self.runqs):
            if i != pcpu.index and len(q) > best_len:
                best_q, best_len = q, len(q)
        if best_q is None:
            return None
        vcpu = self._pop_best(best_q)
        if vcpu is not None:
            self.stat_steals += 1
            if obstrace.enabled:
                obstrace.emit(
                    "sched.steal",
                    self.vmm.sim.now,
                    node=self.vmm.node.index,
                    vcpu=vcpu.name,
                    vm=vcpu.vm.name,
                    from_rq=vcpu.rq,
                    to_rq=pcpu.index,
                )
            vcpu.rq = pcpu.index
        return vcpu

    # ------------------------------------------------------------------
    # Xen-style per-VM cap enforcement (non-work-conserving)
    # ------------------------------------------------------------------
    def _cap_remaining_ns(self, vm) -> Optional[int]:
        """Unused CPU budget (ns) of ``vm``'s cap this period, or ``None``
        for an uncapped VM.  The budget is ``cap * period * n_pcpus``
        against the VM's aggregate ``period_run_ns`` — concurrent VCPUs
        of one VM draw from the same pool, as with Xen's per-domain cap."""
        cap = vm.cap
        if cap is None:
            return None
        budget = int(cap * self.vmm.period_ns * len(self.vmm.node.pcpus))
        return budget - sum(v.period_run_ns for v in vm.vcpus)

    def pick_next(self, pcpu: "PCPU") -> Optional[tuple["VCPU", int]]:
        while True:
            vcpu = self._pop_best(self.runqs[pcpu.index])
            if vcpu is None:
                vcpu = self._steal(pcpu)
            if vcpu is None:
                return None
            remaining = self._cap_remaining_ns(vcpu.vm)
            if remaining is None:
                return vcpu, self.slice_for(vcpu)
            if remaining <= 0:
                # Budget exhausted: park until the next accounting
                # boundary even though the PCPU may go idle — the cap is
                # non-work-conserving, which is what makes a fractional
                # allocation binding.
                self._parked.append(vcpu)
                self.stat_cap_parks += 1
                continue
            # Truncate the slice so the dispatch cannot overrun the
            # budget (floor 1 ns: a dispatched slice must be positive).
            return vcpu, max(1, min(self.slice_for(vcpu), remaining))

    def remove_queued(self, vcpu: "VCPU") -> None:
        """Remove a queued RUNNABLE VCPU from the run queues without
        dispatching it (fault-injection VM pause path)."""
        if not vcpu.queued:
            # A parked VCPU is RUNNABLE but not queued; a pause/teardown/
            # stop-and-copy freeze must still withdraw it, or the next
            # period would re-queue a frozen VCPU.
            if vcpu in self._parked:
                self._parked.remove(vcpu)
            return
        try:
            self.runqs[vcpu.rq].remove(vcpu)
        except ValueError:
            # Defensive: home-queue bookkeeping went stale (steal race);
            # fall back to a scan so the VCPU cannot be picked while paused.
            for q in self.runqs:
                if vcpu in q:
                    q.remove(vcpu)
                    break
        vcpu.queued = False

    # ------------------------------------------------------------------
    # Requeue paths
    # ------------------------------------------------------------------
    def _credit_prio(self, vcpu: "VCPU") -> int:
        return PRIO_UNDER if self._effective_credit(vcpu) > 0 else PRIO_OVER

    def on_slice_expired(self, vcpu: "VCPU") -> None:
        vcpu.prio = self._credit_prio(vcpu)  # full slice used: boost expires
        self.runqs[vcpu.rq].append(vcpu)
        vcpu.queued = True

    def on_preempted(self, vcpu: "VCPU") -> None:
        # Preempted mid-slice: keep priority, go back near the front so the
        # remaining entitlement is honoured soon.
        self.runqs[vcpu.rq].appendleft(vcpu)
        vcpu.queued = True

    # ------------------------------------------------------------------
    # Periodic credit accounting
    # ------------------------------------------------------------------
    def on_period(self, now: int) -> None:
        # Cluster-scope updates (repro.dfrs) land exactly here — before
        # shares are computed — so the weights that govern a period are
        # the ones every observer (SAN003 included) reads after it.
        self.apply_pending_allocations()
        vmm = self.vmm
        period = vmm.period_ns
        capacity = period * len(vmm.node.pcpus)
        vcpus = [v for vm in vmm.vms for v in vm.vcpus]
        active = [v.state.value != 0 or v.period_run_ns > 0 for v in vcpus]
        total_w = sum(v.vm.weight for v, act in zip(vcpus, active) if act) or 1.0
        cap = self.params.credit_cap_periods * capacity
        for v, act in zip(vcpus, active):
            share = capacity * (v.vm.weight / total_w) if act else 0.0
            # Debit what was *charged* (== consumed under exact
            # accounting; tick-sampled under ``tick_accounting``).
            v.credit = min(cap, max(-cap, v.credit + share - v.period_charged_ns))
            v.period_run_ns = 0
            v.period_charged_ns = 0
            if v.queued and v.prio != PRIO_BOOST:
                v.prio = self._credit_prio(v)
        # Cap budgets refreshed (period_run_ns reset above): re-queue the
        # VCPUs parked by cap exhaustion and restart any idled PCPUs.
        if self._parked:
            parked, self._parked = self._parked, []
            for v in parked:
                v.prio = self._credit_prio(v)
                self.runqs[v.rq].append(v)
                v.queued = True
            for pcpu in vmm.node.pcpus:
                if pcpu.current is None:
                    vmm.kick(pcpu)
