"""vSlicer (VS) — differentiated-frequency CPU micro-slicing.

Model of Xu et al. [15]: VMs classified as *latency-sensitive* (LS) are
scheduled with micro time slices at a proportionally higher frequency
(same aggregate CPU share, k× shorter slices, k× more often), while
latency-insensitive VMs keep the default slice.  Classification uses the
observed per-period behaviour: an LS VM wakes frequently and uses little
CPU (request-response patterns), a latency-insensitive VM burns its full
slices.

As in the paper's evaluation, VS accelerates latency-sensitive apps
(web server in Fig. 13) but does little for tightly-coupled parallel
applications — spinning VCPUs are not "latency-sensitive" to VS because
they never block; they look CPU-bound (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.obs import trace as obstrace
from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vmm import VMM

__all__ = ["VSlicerParams", "VSlicerScheduler"]


@dataclass(frozen=True)
class VSlicerParams(CreditParams):
    """vSlicer tunables."""

    #: Micro-slice for latency-sensitive VMs (vSlicer's differentiated
    #: frequency; the original uses default/k with k around 5-30).
    micro_slice_ns: int = 1 * MSEC
    #: A VM is LS when it woke at least this often in the last period...
    ls_min_wakes: int = 4
    #: ...while using at most this fraction of one PCPU.
    ls_max_util: float = 0.5


class VSlicerScheduler(CreditScheduler):
    """Credit + differentiated-frequency micro-slicing for LS VMs."""

    name = "VS"

    def __init__(self, vmm: "VMM", params: VSlicerParams | None = None) -> None:
        super().__init__(vmm, params or VSlicerParams())
        # Insertion-ordered membership (dict keys): `vmid in ls_vms` works
        # like a set, but any future iteration is deterministic.
        self.ls_vms: dict[int, None] = {}

    def on_period(self, now: int) -> None:
        p: VSlicerParams = self.params
        period = self.vmm.period_ns
        # Classify BEFORE credit accounting resets period_run_ns.
        for vm in self.vmm.guest_vms:
            wakes = sum(v.period_wakes for v in vm.vcpus)
            used = sum(v.period_run_ns for v in vm.vcpus)
            util = used / (period * max(1, len(vm.vcpus)))
            for v in vm.vcpus:
                v.period_wakes = 0
            if wakes >= p.ls_min_wakes and util <= p.ls_max_util:
                if vm.vmid not in self.ls_vms and obstrace.enabled:
                    obstrace.emit(
                        "slice.change",
                        now,
                        node=self.vmm.node.index,
                        policy="VS",
                        vm=vm.name,
                        ls=True,
                        applied_ns=p.micro_slice_ns,
                        wakes=wakes,
                        util=util,
                    )
                self.ls_vms[vm.vmid] = None
                vm.slice_ns = p.micro_slice_ns
            else:
                if vm.vmid in self.ls_vms and obstrace.enabled:
                    obstrace.emit(
                        "slice.change",
                        now,
                        node=self.vmm.node.index,
                        policy="VS",
                        vm=vm.name,
                        ls=False,
                        applied_ns=None,
                        wakes=wakes,
                        util=util,
                    )
                self.ls_vms.pop(vm.vmid, None)
                vm.slice_ns = None
        super().on_period(now)
