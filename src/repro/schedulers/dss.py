"""Dynamic Switching-frequency Scaling (DSS).

Model of Chen et al. [5]: the VMM sets each VM's time slice *individually*
according to its observed I/O behaviour — I/O-intensive VMs get short
slices (high switching frequency, low latency), CPU-bound VMs keep long
slices (low context-switch overhead).

The paper's critique, which this model reproduces, is that per-VM slices
do not help virtual clusters: one co-located VM that happens to keep a
*long* slice delays every spinning VCPU behind it in the run queue, so
parallel applications still see long spinlock latencies (Figs. 10-12).
DSS does, however, help genuinely latency-sensitive VMs (Fig. 13's web
server), because their slices shrink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.sim.units import MSEC, ns_from_ms

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vmm import VMM

__all__ = ["DSSParams", "DSSScheduler"]


@dataclass(frozen=True)
class DSSParams(CreditParams):
    """DSS tunables: I/O-rate tiers → slice lengths."""

    #: Smoothed I/O events per period above which a VM is I/O-intensive.
    io_hi_per_period: float = 4.0
    #: Smoothed I/O events per period above which a VM is I/O-active.
    io_lo_per_period: float = 0.3
    #: EWMA smoothing factor for the per-period I/O rate.
    ewma_alpha: float = 0.4
    #: Slice for I/O-intensive VMs.
    hi_slice_ns: int = ns_from_ms(0.5)
    #: Slice for moderately I/O-active VMs.
    mid_slice_ns: int = 5 * MSEC
    # CPU-bound VMs keep ``slice_ns`` (default 30 ms).


class DSSScheduler(CreditScheduler):
    """Credit + per-VM switching-frequency scaling from I/O behaviour."""

    name = "DSS"

    def __init__(self, vmm: "VMM", params: DSSParams | None = None) -> None:
        super().__init__(vmm, params or DSSParams())
        self._io_ewma: dict[int, float] = {}

    def on_period(self, now: int) -> None:
        super().on_period(now)
        p: DSSParams = self.params
        a = p.ewma_alpha
        for vm in self.vmm.guest_vms:
            io = vm.drain_period_io()
            ewma = (1 - a) * self._io_ewma.get(vm.vmid, 0.0) + a * io
            self._io_ewma[vm.vmid] = ewma
            if ewma >= p.io_hi_per_period:
                vm.slice_ns = p.hi_slice_ns
            elif ewma >= p.io_lo_per_period:
                vm.slice_ns = p.mid_slice_ns
            else:
                vm.slice_ns = None  # scheduler default
