"""Balance Scheduling (BS) — sibling VCPUs in distinct PCPU run queues.

Model of Sukwong & Kim's balance scheduling [4]: a probabilistic variant
of co-scheduling that never gangs explicitly; it only guarantees that no
two VCPUs of the same VM sit in the same PCPU run queue, which raises the
*probability* that siblings run concurrently.  As the paper observes, the
benefit shrinks as the virtual cluster spans more hosts (Fig. 10): the
placement constraint is per-host while the synchronization is global.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.schedulers.credit import CreditParams, CreditScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU
    from repro.hypervisor.vm import VCPU

__all__ = ["BalanceParams", "BalanceScheduler"]


@dataclass(frozen=True)
class BalanceParams(CreditParams):
    pass


class BalanceScheduler(CreditScheduler):
    """Credit + sibling-disjoint run-queue placement."""

    name = "BS"

    def _queue_has_sibling(self, qi: int, vcpu: "VCPU") -> bool:
        vm = vcpu.vm
        pcpu = self.vmm.node.pcpus[qi]
        if pcpu.current is not None and pcpu.current.vm is vm:
            return True
        return any(v.vm is vm for v in self.runqs[qi])

    def choose_wake_queue(self, vcpu: "VCPU") -> int:
        # Idle PCPU without a queued sibling is ideal.
        pcpus = self.vmm.node.pcpus
        for p in pcpus:
            if p.current is None and not any(v.vm is vcpu.vm for v in self.runqs[p.index]):
                return p.index
        # Otherwise the least-loaded sibling-free queue.
        candidates = [i for i in range(len(self.runqs)) if not self._queue_has_sibling(i, vcpu)]
        if candidates:
            return min(candidates, key=lambda i: len(self.runqs[i]))
        # No sibling-free queue exists (more VCPUs than PCPUs): fall back.
        return super().choose_wake_queue(vcpu)

    def _steal(self, pcpu: "PCPU") -> Optional["VCPU"]:
        """Steal only VCPUs whose VM has no sibling on this PCPU's queue."""
        best_q = None
        best_len = 0
        for i, q in enumerate(self.runqs):
            if i != pcpu.index and len(q) > best_len:
                best_q, best_len = q, len(q)
        if best_q is None:
            return None
        for i, v in enumerate(best_q):
            if not self._queue_has_sibling(pcpu.index, v):
                del best_q[i]
                v.queued = False
                v.rq = pcpu.index
                return v
        return None

    def on_slice_expired(self, vcpu: "VCPU") -> None:
        # Re-balance on requeue too: the home queue may have acquired a
        # sibling since the VCPU last ran.
        if self._queue_has_sibling(vcpu.rq, vcpu):
            candidates = [
                i for i in range(len(self.runqs)) if not self._queue_has_sibling(i, vcpu)
            ]
            if candidates:
                vcpu.rq = min(candidates, key=lambda i: len(self.runqs[i]))
        super().on_slice_expired(vcpu)
