"""Co-Scheduling (CS) — dynamic spinlock-driven gang scheduling.

Model of the dynamic adaptive co-scheduling approach the paper compares
against ([7], Weng et al.): the VMM watches each SMP VM's spinlock wait
time; when it exceeds a threshold within an observation window, the VM is
marked for co-scheduling and all its VCPUs are ganged onto distinct PCPUs
simultaneously for the next slice — preempting whatever else was running.

Two properties of CS matter for the paper's comparison and emerge here:

* VCPUs of one VM are synchronized, so intra-VM LHP drops — CS beats CR
  for parallel apps;
* but (a) VMs of the same *virtual cluster* on different hosts are still
  scheduled asynchronously (each host gangs independently), so cross-VM
  synchronization overhead remains and grows with cluster scale (Fig. 1),
  and (b) the gang preemptions hurt latency-sensitive and CPU-bound
  neighbours (Figs. 2, 13, 14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.sim.units import MSEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import PCPU
    from repro.hypervisor.vm import VCPU, VM
    from repro.hypervisor.vmm import VMM

__all__ = ["CoScheduleParams", "CoScheduler"]


@dataclass(frozen=True)
class CoScheduleParams(CreditParams):
    """CS tunables."""

    #: Minimum spinlock wait accumulated in one scheduling period that
    #: flags a VM as synchronization-bound and triggers co-scheduling.
    spin_threshold_ns: int = 1 * MSEC
    #: How long a co-schedule gang lease lasts (one default slice).
    gang_slice_ns: int = 30 * MSEC
    #: Fraction of slots that host a gang; the rest are gang-free so
    #: non-parallel VMs keep their proportional share (real dynamic
    #: co-scheduling gangs within the fair-share envelope rather than as
    #: a strict priority class).
    gang_duty: float = 0.75
    #: When True, gang members cannot be preempted by boosted guest wakes
    #: (strict gangs — ablation mode); the default allows ratelimited
    #: boost preemption, as Xen's credit scheduler would.
    deny_gang_preemption: bool = False


class CoScheduler(CreditScheduler):
    """Credit + dynamic co-scheduling of spin-heavy SMP VMs."""

    name = "CS"

    def __init__(self, vmm: "VMM", params: CoScheduleParams | None = None) -> None:
        super().__init__(vmm, params or CoScheduleParams())
        self._spin_seen: dict[int, int] = {}
        self._co_vm: Optional["VM"] = None
        self._co_until = -1
        self._flagged: list["VM"] = []  # spin-heavy VMs, domain-ID order
        self._boundary_armed = False
        self.gangs_triggered = 0

    # ------------------------------------------------------------------
    def _co_active(self) -> Optional["VM"]:
        if self._co_vm is not None and self.vmm.sim.now < self._co_until:
            return self._co_vm
        return None

    def _running_prio(self, pcpu: "PCPU") -> int:
        """Gang members hold a BOOST-equivalent shield until the next
        global tick: boosted latency-sensitive wakes get through, but one
        tick late on average — CS's moderate ping/web degradation."""
        from repro.schedulers.base import PRIO_BOOST

        rp = super()._running_prio(pcpu)
        cur = pcpu.current
        co = self._co_active()
        if co is not None and cur is not None and cur.vm is co:
            tick = self.params.tick_ns
            if self.vmm.sim.now // tick == pcpu.run_start_ns // tick:
                return PRIO_BOOST
        return rp

    def _may_preempt(self, vcpu, pcpu: "PCPU") -> bool:
        # dom0 may always interject (the gang would otherwise starve its
        # own netback path).  Other boosted wakes may also preempt a gang
        # member — but only through the base class's ratelimit, and the
        # gang re-asserts immediately afterwards (pick_next prefers ganged
        # VCPUs), so latency-sensitive neighbours see an extra ratelimit
        # of delay per wake plus gang-induced queueing: the moderate
        # ping/web degradation of Figs. 2 and 13.
        if vcpu is not None and vcpu.vm.is_dom0:
            return True
        if pcpu.current is not None and self.params.deny_gang_preemption:
            co_vm = self._co_active()
            return not (co_vm is not None and pcpu.current.vm is co_vm)
        return True

    def on_wake(self, vcpu: "VCPU") -> None:
        super().on_wake(vcpu)
        # A ganged VCPU that wakes mid-lease (e.g. its cross-VM message
        # arrived) rejoins the gang immediately.
        co_vm = self._co_active()
        if co_vm is not None and vcpu.vm is co_vm and vcpu.queued:
            pcpu = self.vmm.node.pcpus[vcpu.rq]
            if pcpu.current is not None and pcpu.current.vm is not co_vm:
                self.vmm.preempt(pcpu)

    def pick_next(self, pcpu: "PCPU") -> Optional[tuple["VCPU", int]]:
        co_vm = self._co_active()
        if co_vm is not None:
            # Boosted wakes outrank the gang (they preempted their way in;
            # handing the PCPU back to the gang would undo the tickle).
            from repro.schedulers.base import PRIO_BOOST

            if not any(v.prio == PRIO_BOOST for v in self.runqs[pcpu.index]):
                # Otherwise prefer a ganged VCPU wherever one is queued.
                for q in (self.runqs[pcpu.index], *self.runqs):
                    for i, v in enumerate(q):
                        if v.vm is co_vm:
                            del q[i]
                            v.queued = False
                            v.rq = pcpu.index
                            return v, self.slice_for(v)
        return super().pick_next(pcpu)

    # ------------------------------------------------------------------
    def on_period(self, now: int) -> None:
        super().on_period(now)
        flagged: list["VM"] = []
        for vm in self.vmm.guest_vms:
            if vm.kernel is None:
                continue
            seen = self._spin_seen.get(vm.vmid, 0)
            total = vm.kernel.total_spin_ns
            delta = total - seen
            self._spin_seen[vm.vmid] = total
            if delta >= self.params.spin_threshold_ns:
                flagged.append(vm)
        # Gang flagged VMs in wall-clock slots, ordered by domain ID.
        # Because the slot index derives from absolute time and domain IDs
        # of a virtual cluster's VMs are created together, hosts with the
        # *same* set of spin-heavy clusters gang the two halves of a
        # cluster simultaneously without any cross-host protocol; with
        # heterogeneous cluster mixes the orders diverge and the gangs
        # de-align — reproducing CS's scalability problem (Fig. 1).
        flagged.sort(key=lambda vm: vm.vmid)
        self._flagged = flagged
        if flagged and not self._boundary_armed:
            self._arm_boundary(now)

    def _arm_boundary(self, now: int) -> None:
        gang = self.params.gang_slice_ns
        nxt = (now // gang + 1) * gang
        self._boundary_armed = True
        self.vmm.sim.post_at(nxt, self._boundary, cat="sched.cosched")
        self._slot_gang(now)

    def _boundary(self) -> None:
        self._boundary_armed = False
        if self._flagged:
            self._arm_boundary(self.vmm.sim.now)
        else:
            self._co_vm = None

    def _slot_gang(self, now: int) -> None:
        """Gang the VM owning the current wall-clock slot (or none, on a
        fairness slot)."""
        flagged = self._flagged
        if not flagged:
            self._end_gang()
            return
        gang = self.params.gang_slice_ns
        slot = now // gang
        duty = min(1.0, max(0.1, self.params.gang_duty))
        cycle = max(2, round(1.0 / max(1e-9, 1.0 - duty))) if duty < 1.0 else 0
        if cycle and slot % cycle == cycle - 1:
            self._end_gang()  # gang-free slot: everyone competes normally
            return
        gang_slot = slot - (slot // cycle + 1 if cycle else 0)
        vm = flagged[gang_slot % len(flagged)]
        if self._co_vm is vm and now < self._co_until:
            return
        self._trigger_gang(vm, now)

    def _end_gang(self) -> None:
        """Close the current gang and release its PCPUs for fair dispatch."""
        old = self._co_vm
        self._co_vm = None
        if old is None:
            return
        for p in self.vmm.node.pcpus:
            if p.current is not None and p.current.vm is old:
                self.vmm.preempt(p)

    def _trigger_gang(self, vm: "VM", now: int) -> None:
        """Gang-schedule ``vm``: run its runnable VCPUs simultaneously on
        distinct PCPUs, preempting other VMs."""
        gang = self.params.gang_slice_ns
        self._co_vm = vm
        self._co_until = (now // gang + 1) * gang  # lease ends at the slot boundary
        self.gangs_triggered += 1
        runnable = [v for v in vm.vcpus if v.state.value == 1]  # RUNNABLE
        if not runnable:
            return
        need = len(runnable)
        # Free up PCPUs: idle ones first, then ones running other VMs.
        pcpus = self.vmm.node.pcpus
        freed = 0
        for p in pcpus:
            if freed >= need:
                break
            if p.current is None:
                self.vmm.kick(p)
                freed += 1
        for p in pcpus:
            if freed >= need:
                break
            if p.current is not None and p.current.vm is not vm:
                self.vmm.preempt(p)  # dispatch will pick a ganged VCPU
                freed += 1
