"""VMM scheduler models: CR (Credit), CS (Co-Scheduling), BS (Balance
Scheduling), DSS (Dynamic Switching-frequency Scaling), VS (vSlicer) and
ATC (the paper's Adaptive Time-slice Control)."""

from repro.schedulers.atc_sched import ATCParams, ATCScheduler
from repro.schedulers.balance import BalanceParams, BalanceScheduler
from repro.schedulers.base import (
    PRIO_BOOST,
    PRIO_OVER,
    PRIO_UNDER,
    Scheduler,
    SchedulerParams,
)
from repro.schedulers.coschedule import CoScheduleParams, CoScheduler
from repro.schedulers.credit import CreditParams, CreditScheduler
from repro.schedulers.dss import DSSParams, DSSScheduler
from repro.schedulers.registry import (
    DEFAULT_PARAMS,
    SCHEDULERS,
    make_scheduler_factory,
    scheduler_names,
)
from repro.schedulers.vslicer import VSlicerParams, VSlicerScheduler

__all__ = [
    "PRIO_BOOST",
    "PRIO_UNDER",
    "PRIO_OVER",
    "Scheduler",
    "SchedulerParams",
    "CreditParams",
    "CreditScheduler",
    "CoScheduleParams",
    "CoScheduler",
    "BalanceParams",
    "BalanceScheduler",
    "DSSParams",
    "DSSScheduler",
    "VSlicerParams",
    "VSlicerScheduler",
    "ATCParams",
    "ATCScheduler",
    "SCHEDULERS",
    "DEFAULT_PARAMS",
    "make_scheduler_factory",
    "scheduler_names",
]
