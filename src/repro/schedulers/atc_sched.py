"""ATC scheduler: Credit dispatching + the adaptive time-slice controller.

The paper implements ATC *on top of* Xen's credit scheduler: dispatching,
priorities, boosting and load balancing are unchanged; only the per-VM
time slice is recomputed at every scheduling period by Algorithms 1 and 2
(:mod:`repro.core`).  This class is therefore a thin composition: a
:class:`~repro.schedulers.credit.CreditScheduler` whose ``slice_for``
honours the per-VM ``slice_ns`` that the attached
:class:`~repro.core.controller.ATCController` maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.config import ATCConfig
from repro.core.controller import ATCController
from repro.schedulers.credit import CreditParams, CreditScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vmm import VMM

__all__ = ["ATCParams", "ATCScheduler"]


@dataclass(frozen=True)
class ATCParams(CreditParams):
    """Credit parameters + the ATC control-law configuration."""

    atc: ATCConfig = field(default_factory=ATCConfig)
    #: Record per-period monitor/slice series for experiment reporting.
    record_series: bool = False


class ATCScheduler(CreditScheduler):
    """Credit scheduler under adaptive time-slice control."""

    name = "ATC"

    def __init__(self, vmm: "VMM", params: ATCParams | None = None) -> None:
        p = params or ATCParams()
        super().__init__(vmm, p)
        self.controller = ATCController(vmm, p.atc, record_series=p.record_series)
