"""VMM-side spinlock-latency monitor (Fig. 6).

At the end of every scheduling period the monitor drains each guest
kernel's spin-wait accumulator (the paper's intrusive in-kernel tracing)
and computes the *average spinlock latency of the VM during that period*
— the input of Algorithm 1.  Histories are kept per VM with a
three-period window.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.atc import ATCVmState
from repro.core.config import ATCConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VM

__all__ = ["SpinLatencyMonitor"]


class SpinLatencyMonitor:
    """Per-node monitor: VM → rolling Algorithm-1 history."""

    __slots__ = ("cfg", "states", "series")

    def __init__(self, cfg: ATCConfig) -> None:
        self.cfg = cfg
        self.states: dict[int, ATCVmState] = {}
        #: Optional recorded (time, vm name, avg latency, slice) tuples for
        #: experiment reporting; populated when ``record_series`` is used.
        self.series: list[tuple[int, str, float, int]] = []

    def state_for(self, vm: "VM") -> ATCVmState:
        st = self.states.get(vm.vmid)
        if st is None:
            st = ATCVmState(self.cfg)
            self.states[vm.vmid] = st
        return st

    def end_period(self, vm: "VM", current_slice_ns: int, now: int = -1, record: bool = False) -> ATCVmState:
        """Drain the VM's period latency signal into its history.

        ``monitor_mode="guest"`` reads the in-kernel spinlock tracing (the
        paper's intrusive method); ``"queuewait"`` reads the VMM's own
        run-queue-wait accounting (the non-intrusive future-work variant).
        """
        if self.cfg.monitor_mode == "queuewait":
            total_ns, count = vm.drain_period_queue_wait()
        else:
            total_ns, count = vm.kernel.drain_period_spin() if vm.kernel else (0, 0)
        avg = (total_ns / count) if count else 0.0
        st = self.state_for(vm)
        st.observe(avg, current_slice_ns)
        if record:
            self.series.append((now, vm.name, avg, current_slice_ns))
        return st
