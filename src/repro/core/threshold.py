"""Minimum time-slice threshold exploration (Section III-B, Eq. 1).

The VMM cannot know which parallel application a VM runs, so the paper
derives one *uniform* minimum time-slice threshold: for each candidate
slice, measure every application's normalized execution time, and pick
the slice whose vector of normalized times is closest — in Euclidean
distance — to the per-application optima:

    D(O, P) = sqrt( sum_i (O_i - P_i)^2 )            (Eq. 1)

where ``O_i`` is application *i*'s minimal normalized execution time over
all candidate slices and ``P_i`` its normalized time under the candidate.
The paper's measured metrics for {0.5, 0.4, 0.3, 0.2, 0.1, 0.03} ms are
{0.034, 0.020, 0.018, 0.049, 0.039, 0.069}, giving 0.3 ms.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["euclidean_metric", "optimal_threshold", "ThresholdStudy"]


def euclidean_metric(optima: Sequence[float], perf: Sequence[float]) -> float:
    """Eq. 1: distance between a per-app optimum vector and a candidate's
    performance vector (both normalized execution times)."""
    if len(optima) != len(perf):
        raise ValueError(f"length mismatch: {len(optima)} vs {len(perf)}")
    return math.sqrt(sum((o - p) ** 2 for o, p in zip(optima, perf)))


def optimal_threshold(perf_by_slice: Mapping[int, Sequence[float]]) -> tuple[int, dict[int, float]]:
    """Pick the candidate slice minimizing Eq. 1.

    Parameters
    ----------
    perf_by_slice:
        Maps candidate slice (ns) to the vector of normalized execution
        times, one entry per application (same order for every slice).

    Returns
    -------
    (best_slice_ns, {slice_ns: metric})
    """
    if not perf_by_slice:
        raise ValueError("no candidate slices")
    # Sorted candidates: float summation order in Eq. 1 (and the argmin
    # scan) must not depend on the caller's dict insertion order.
    slices = sorted(perf_by_slice)
    n_apps = len(perf_by_slice[slices[0]])
    for s in slices:
        if len(perf_by_slice[s]) != n_apps:
            raise ValueError(f"slice {s}: expected {n_apps} apps")
    optima = [min(perf_by_slice[s][i] for s in slices) for i in range(n_apps)]
    metrics = {s: euclidean_metric(optima, perf_by_slice[s]) for s in slices}
    best = min(slices, key=lambda s: (metrics[s], -s))
    return best, metrics


class ThresholdStudy:
    """Incremental builder for a threshold exploration (one row per app)."""

    def __init__(self, slices_ns: Sequence[int], app_names: Sequence[str]) -> None:
        if not slices_ns or not app_names:
            raise ValueError("need at least one slice and one app")
        self.slices_ns = list(slices_ns)
        self.app_names = list(app_names)
        self._times: dict[str, dict[int, float]] = {a: {} for a in self.app_names}

    def record(self, app: str, slice_ns: int, exec_time_ns: float) -> None:
        if app not in self._times:
            raise KeyError(f"unknown app {app!r}")
        if slice_ns not in self.slices_ns:
            raise KeyError(f"slice {slice_ns} not in the study")
        self._times[app][slice_ns] = float(exec_time_ns)

    def normalized(self) -> dict[int, list[float]]:
        """Normalized execution times (per app, vs that app's worst case
        over the studied slices — consistent relative scaling)."""
        out: dict[int, list[float]] = {}
        ref = {}
        for a in self.app_names:
            row = self._times[a]
            if len(row) != len(self.slices_ns):
                missing = [s for s in self.slices_ns if s not in row]
                raise ValueError(f"app {a!r} missing slices {missing}")
            ref[a] = max(row.values()) or 1.0
        for s in self.slices_ns:
            out[s] = [self._times[a][s] / ref[a] for a in self.app_names]
        return out

    def solve(self) -> tuple[int, dict[int, float]]:
        """Run Eq. 1 over the recorded measurements."""
        return optimal_threshold(self.normalized())
