"""Configuration of the Adaptive Time-slice Control (ATC) model."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import MSEC, ns_from_ms

__all__ = ["ATCConfig"]


@dataclass(frozen=True)
class ATCConfig:
    """Inputs of Algorithms 1 and 2 (Section III).

    ``alpha`` and ``beta`` are the two time-slice adjustment granularities
    ("the former is larger than the latter"); ``min_threshold`` is the
    uniform minimum time-slice threshold derived in Section III-B via the
    Euclidean metric (0.3 ms); ``default`` is the VMM's default slice
    (Xen credit: 30 ms).
    """

    #: Coarse adjustment step (ns).  The paper's motivating experiments
    #: shorten the slice in 6 ms decrements; we adopt 6 ms.
    alpha_ns: int = 6 * MSEC
    #: Fine adjustment step (ns).  Chosen equal to the minimum threshold
    #: so the control law can converge exactly onto it.
    beta_ns: int = ns_from_ms(0.3)
    #: Minimum time-slice threshold (ns): 0.3 ms per Section III-B.
    min_threshold_ns: int = ns_from_ms(0.3)
    #: VMM default time slice (ns): Xen credit default, 30 ms.
    default_ns: int = 30 * MSEC
    #: Which reading of Algorithm 1 to use for the "sustained decrease
    #: caused by a slice decrease" case:
    #:   "paper": the printed pseudo-code — keep shortening (it is working);
    #:   "prose": the Section III-A text — gently lengthen the slice.
    trend_policy: str = "paper"
    #: Where the per-period latency signal comes from:
    #:   "guest": the paper's intrusive in-kernel spinlock tracing;
    #:   "queuewait": the non-intrusive VMM-side run-queue-wait proxy
    #:   (the paper's stated future work — no guest modification needed).
    monitor_mode: str = "guest"
    #: Hardening clamp (ns): never apply a host slice below this floor,
    #: even when the control law asks for one.  An adversarial co-tenant
    #: can inflate observed wake/spin latency (tickle storms) to steer
    #: Algorithm 2 toward ``min_threshold_ns``, taxing every parallel VM
    #: with context-switch overhead; the floor bounds that steering.
    #: 0 (default) disables the clamp — the historical behaviour.
    slice_floor_ns: int = 0

    def __post_init__(self) -> None:
        if self.alpha_ns <= self.beta_ns:
            raise ValueError(
                f"alpha ({self.alpha_ns}) must exceed beta ({self.beta_ns}) "
                "(paper: 'the former is larger than the latter')"
            )
        if self.min_threshold_ns <= 0:
            raise ValueError("min_threshold_ns must be positive")
        if self.default_ns < self.min_threshold_ns:
            raise ValueError("default slice below the minimum threshold")
        if self.trend_policy not in ("paper", "prose"):
            raise ValueError(f"unknown trend_policy {self.trend_policy!r}")
        if self.monitor_mode not in ("guest", "queuewait"):
            raise ValueError(f"unknown monitor_mode {self.monitor_mode!r}")
        if self.slice_floor_ns < 0:
            raise ValueError("slice_floor_ns must be >= 0")
        if self.slice_floor_ns > self.default_ns:
            raise ValueError("slice_floor_ns above the default slice")
