"""Diagnostics for the ATC control loop.

The paper's controller has two interesting dynamic properties worth
measuring in any deployment: how fast it converges from the 30 ms default
onto its operating slice when a parallel phase starts, and how quickly it
restores the default when the phase ends.  These helpers analyse the
``(time, slice)`` histories the controller records with
``ATCParams(record_series=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["ConvergenceReport", "analyze_slice_trace", "settling_time"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of one controller slice trace."""

    #: Number of control periods observed.
    periods: int
    #: First slice value in the trace (ns).
    initial_ns: int
    #: Final slice value (ns).
    final_ns: int
    #: Smallest slice ever applied (ns).
    min_ns: int
    #: Time of first arrival at the final value, staying there (ns), or
    #: None if the trace never settles.
    settled_at_ns: Optional[int]
    #: Number of direction changes (shorten <-> lengthen) — a rough
    #: oscillation measure; 0 or 1 for a clean ramp.
    reversals: int


def settling_time(trace: Sequence[tuple[int, int]], tolerance_ns: int = 0) -> Optional[int]:
    """Earliest time from which the slice never again deviates from its
    final value by more than ``tolerance_ns``.  None for an empty trace."""
    if not trace:
        return None
    final = trace[-1][1]
    settled = None
    for t, s in trace:
        if abs(s - final) <= tolerance_ns:
            if settled is None:
                settled = t
        else:
            settled = None
    return settled


def analyze_slice_trace(trace: Sequence[tuple[int, int]]) -> ConvergenceReport:
    """Analyse a controller ``slice_history`` (list of (time, slice_ns))."""
    if not trace:
        raise ValueError("empty slice trace")
    slices = [s for _, s in trace]
    reversals = 0
    last_dir = 0
    for a, b in zip(slices, slices[1:]):
        d = (b > a) - (b < a)
        if d != 0:
            if last_dir != 0 and d != last_dir:
                reversals += 1
            last_dir = d
    return ConvergenceReport(
        periods=len(trace),
        initial_ns=slices[0],
        final_ns=slices[-1],
        min_ns=min(slices),
        settled_at_ns=settling_time(trace),
        reversals=reversals,
    )
