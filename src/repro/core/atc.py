"""Algorithm 1: computing the time slice of a VM running a parallel
application from its spinlock-latency history.

This is a *pure function* of the last three scheduling periods' history —
``(sLatency_{i-3}, sLatency_{i-2}, sLatency_{i-1})`` and
``(timeSlice_{i-3}, timeSlice_{i-2}, timeSlice_{i-1})`` — exactly as the
paper's Algorithm 1 specifies.  Keeping it pure makes the control law
directly unit- and property-testable independent of the simulator.

Fidelity notes
--------------
* The printed pseudo-code's *shorten* branch triggers when the latency
  rose in the last period, **or** when it fell consistently across three
  periods *while the slice was also being shortened* (i.e. the shortening
  is working — keep going).  The prose of Section III-A instead describes
  lengthening the slice in the second case.  Both readings are
  implemented, selected by :attr:`repro.core.config.ATCConfig.trend_policy`
  (default ``"paper"`` = pseudo-code).
* Printed lines 2 and 4 both guard with ``timeSlice - alpha >=
  minThreshold``; the second is an evident typo for ``beta`` (otherwise
  the beta branch could never fire) and is implemented with ``beta``.
* Printed line 15's ``timeSlice_{i-1} - alpha >= minThreshold`` in the
  latency-zero *restore* branch is likewise a typo; the evident intent —
  step the slice back up toward DEFAULT by ``alpha`` while a full coarse
  step still fits, then by ``beta``, landing exactly on DEFAULT once the
  slice is within a fine step of it — is implemented.  This mirrors the
  shorten ladder: every arm is reachable and no single restore step
  exceeds ``alpha``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.config import ATCConfig

__all__ = ["compute_time_slice", "ATCVmState"]


def compute_time_slice(
    s_latency: Sequence[float],
    time_slice: Sequence[int],
    cfg: ATCConfig,
) -> int:
    """Return the time slice (ns) for the coming scheduling period.

    Parameters
    ----------
    s_latency:
        Average spinlock latency (ns) of the VM in the last three
        scheduling periods, oldest first: ``[lat_{i-3}, lat_{i-2},
        lat_{i-1}]``.
    time_slice:
        Time slice (ns) of the VM in the same periods, oldest first.
    cfg:
        The ATC configuration (alpha, beta, minimum threshold, default).
    """
    if len(s_latency) != 3 or len(time_slice) != 3:
        raise ValueError("Algorithm 1 needs exactly three periods of history")
    lat3, lat2, lat1 = s_latency
    ts3, ts2, ts1 = time_slice
    alpha = cfg.alpha_ns
    beta = cfg.beta_ns
    thr = cfg.min_threshold_ns
    default = cfg.default_ns

    rising = lat2 < lat1
    falling_by_shortening = (lat3 > lat2 > lat1) and (ts2 > ts1)

    if cfg.trend_policy == "paper":
        shorten = rising or falling_by_shortening
        lengthen_gently = False
    else:  # "prose"
        shorten = rising
        lengthen_gently = falling_by_shortening

    if shorten:
        # Lines 1-8: shorten by the coarse step while it stays above the
        # threshold, else by the fine step, else hold.
        if ts1 > alpha and ts1 - alpha >= thr:
            ts_i = ts1 - alpha
        elif ts1 > beta and ts1 - beta >= thr:
            ts_i = ts1 - beta
        else:
            ts_i = ts1
    elif lengthen_gently:
        ts_i = min(default, ts1 + beta)
    else:
        # Lines 9-11: no clear rising trend — hold.
        ts_i = ts1

    # Lines 12-20: the VM showed no spinlock latency for three consecutive
    # periods — the parallel phase ended; restore toward the default so
    # the VM does not keep paying context-switch overhead.
    if lat3 == 0 and lat2 == 0 and lat1 == 0:
        # Mirror of the shorten ladder: coarse step while a full alpha
        # still fits under DEFAULT, fine step while a beta fits, exact
        # DEFAULT once within a fine step (also clamps a slice that
        # somehow exceeds DEFAULT back down to it).
        if ts1 + alpha <= default:
            ts_i = ts1 + alpha
        elif ts1 + beta <= default:
            ts_i = ts1 + beta
        else:
            ts_i = default

    return ts_i


class ATCVmState:
    """Rolling three-period history for one VM (Fig. 6).

    ``observe(avg_latency, slice_used)`` is called at the end of each
    scheduling period; :meth:`next_slice` evaluates Algorithm 1 once at
    least three periods have been observed (before that, the default
    slice is kept — the algorithm is defined over a full history window).
    """

    __slots__ = ("cfg", "latencies", "slices")

    def __init__(self, cfg: ATCConfig) -> None:
        self.cfg = cfg
        self.latencies: list[float] = []
        self.slices: list[int] = []

    def observe(self, avg_latency_ns: float, slice_ns: int) -> None:
        self.latencies.append(avg_latency_ns)
        self.slices.append(slice_ns)
        if len(self.latencies) > 3:
            del self.latencies[0]
            del self.slices[0]

    def next_slice(self) -> int:
        if len(self.latencies) < 3:
            return self.slices[-1] if self.slices else self.cfg.default_ns
        return compute_time_slice(self.latencies, self.slices, self.cfg)
