"""Algorithm 2: per-host adaptive time-slice control.

At the beginning of each VMM scheduling period:

1. For every VM running a parallel application, compute its candidate
   time slice with Algorithm 1 (``compute_timeSlice``).
2. Take the **minimum** of the candidates (``min_timeSlice``) and assign
   it to *all* parallel VMs on the host — one uniform slice keeps the
   computational complexity low and is fair, and a single long-slice VM
   would otherwise inflate every other VM's run-queue wait (the
   cross-VM overhead sources of Fig. 4).
3. VMs running non-parallel applications keep the VMM default slice, or
   the value the system administrator specified through the on-demand
   interface (``VM.admin_slice_ns``).

The whole pass is O(N) in the number of VMs, as the paper notes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.config import ATCConfig
from repro.core.monitor import SpinLatencyMonitor
from repro.obs import trace as obstrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vmm import VMM

__all__ = ["ATCController"]


class ATCController:
    """Host-level ATC controller, hooked into the VMM's period tick."""

    __slots__ = ("vmm", "cfg", "monitor", "record_series", "slice_history")

    def __init__(self, vmm: "VMM", cfg: ATCConfig | None = None, record_series: bool = False) -> None:
        self.vmm = vmm
        self.cfg = cfg or ATCConfig()
        self.monitor = SpinLatencyMonitor(self.cfg)
        self.record_series = record_series
        #: (time, host-min slice) applied each period, for reporting.
        self.slice_history: list[tuple[int, int]] = []
        vmm.period_hooks.append(self.on_period)

    # ------------------------------------------------------------------
    def current_slice(self, vm) -> int:
        return vm.slice_ns if vm.slice_ns is not None else self.cfg.default_ns

    def on_period(self, now: int) -> None:
        vmm = self.vmm
        cfg = self.cfg
        trace_on = obstrace.enabled
        parallel = []
        candidates = []
        spin_inputs = []  # Algorithm-1 input per parallel VM (trace only)
        for vm in vmm.vms:
            if vm.is_dom0:
                continue
            if vm.is_parallel:
                st = self.monitor.end_period(
                    vm, self.current_slice(vm), now, self.record_series
                )
                candidates.append(st.next_slice())
                parallel.append(vm)
                if trace_on:
                    spin_inputs.append(st.latencies[-1] if st.latencies else 0.0)
            else:
                # Algorithm 2 lines 17-20: admin-specified or VMM default.
                vm.slice_ns = vm.admin_slice_ns  # None means default
        if parallel:
            min_slice = min(candidates)
            if cfg.slice_floor_ns > 0:
                # Hardening clamp: adversarial latency spikes cannot steer
                # the host slice below the configured floor.
                min_slice = max(min_slice, cfg.slice_floor_ns)
            for vm in parallel:
                vm.slice_ns = min_slice
            if self.record_series:
                self.slice_history.append((now, min_slice))
            if trace_on:
                obstrace.emit(
                    "slice.change",
                    now,
                    node=vmm.node.index,
                    policy="ATC",
                    vms=[vm.name for vm in parallel],
                    spin_avg_ns=spin_inputs,
                    candidates_ns=candidates,
                    applied_ns=min_slice,
                )
        else:
            # Algorithm 2 lines 9-11: no parallel VMs — defaults everywhere.
            for vm in vmm.vms:
                if not vm.is_dom0:
                    vm.slice_ns = vm.admin_slice_ns
