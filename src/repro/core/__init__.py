"""The paper's contribution: Adaptive Time-slice Control (ATC).

* :func:`~repro.core.atc.compute_time_slice` — Algorithm 1 (pure).
* :class:`~repro.core.controller.ATCController` — Algorithm 2 (host level).
* :class:`~repro.core.monitor.SpinLatencyMonitor` — the per-period
  spinlock-latency signal (Fig. 6).
* :mod:`~repro.core.threshold` — the Eq. 1 minimum-threshold exploration.
"""

from repro.core.atc import ATCVmState, compute_time_slice
from repro.core.config import ATCConfig
from repro.core.controller import ATCController
from repro.core.diagnostics import ConvergenceReport, analyze_slice_trace, settling_time
from repro.core.monitor import SpinLatencyMonitor
from repro.core.threshold import ThresholdStudy, euclidean_metric, optimal_threshold

__all__ = [
    "ATCConfig",
    "ATCVmState",
    "compute_time_slice",
    "ATCController",
    "ConvergenceReport",
    "analyze_slice_trace",
    "settling_time",
    "SpinLatencyMonitor",
    "ThresholdStudy",
    "euclidean_metric",
    "optimal_threshold",
]
