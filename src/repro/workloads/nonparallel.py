"""Non-parallel applications of the paper's mixed-tenancy experiments.

* ``sphinx3``, ``gcc``, ``bzip2`` — CPU-intensive SPEC CPU 2006 apps:
  long compute with app-specific cache sensitivity; metric = execution
  time per run (Figs. 2, 9, 14).
* ``stream`` — memory-bandwidth benchmark: compute with very high cache
  sensitivity; metric = sustained bandwidth (Figs. 2, 9, 13).
* ``bonnie++`` — disk/filesystem benchmark: synchronous block I/O via the
  dom0 blkback path; metric = throughput (Figs. 2, 13).
* ``ping`` — latency-sensitive request/response between two VMs through
  the full Fig. 4 network path; metric = round-trip time (Figs. 2, 9).
* web server + ``httperf`` — blocking-receive server VM driven by a
  closed-loop client (the paper drives Apache with httperf from separate
  machines, so the client VM should live on an otherwise idle node);
  metric = mean response time (Fig. 13).

All apps run forever (background load, like the paper's batch setup);
their metrics are read after the simulation horizon.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

from repro.guest.process import Segment, call, compute, disk, recv_block, send, sleep
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC, USEC, s_from_ns

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VM
    from repro.sim.engine import Simulator

__all__ = [
    "CpuAppSpec",
    "CPU_APP_SPECS",
    "CpuApp",
    "StreamApp",
    "BonnieApp",
    "PingApp",
    "WebServerApp",
]


# ----------------------------------------------------------------------
# CPU-intensive apps (SPEC CPU 2006)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CpuAppSpec:
    """Shape of a CPU-bound benchmark run."""

    name: str
    #: Total compute per run (ns) — scaled down from the real benchmarks.
    run_ns: int
    #: Chunk size (ns); runs are chains of chunks (no synchronization).
    chunk_ns: int
    #: LLC-footprint multiplier.
    cache_sensitivity: float


CPU_APP_SPECS: dict[str, CpuAppSpec] = {
    "sphinx3": CpuAppSpec("sphinx3", run_ns=80 * MSEC, chunk_ns=5 * MSEC, cache_sensitivity=1.5),
    "gcc": CpuAppSpec("gcc", run_ns=60 * MSEC, chunk_ns=5 * MSEC, cache_sensitivity=1.0),
    "bzip2": CpuAppSpec("bzip2", run_ns=60 * MSEC, chunk_ns=5 * MSEC, cache_sensitivity=0.8),
    # Additional SPEC CPU 2006 members (the paper runs "SPEC CPU 2006"
    # broadly; these cover the cache-sensitivity extremes).
    "mcf": CpuAppSpec("mcf", run_ns=90 * MSEC, chunk_ns=5 * MSEC, cache_sensitivity=2.2),
    "gobmk": CpuAppSpec("gobmk", run_ns=50 * MSEC, chunk_ns=5 * MSEC, cache_sensitivity=0.5),
}


class CpuApp:
    """A CPU-intensive app run repeatedly on one VM; records run times."""

    kind = "cpu"

    def __init__(self, sim: "Simulator", vm: "VM", spec: CpuAppSpec, rng: SimRNG) -> None:
        self.sim = sim
        self.vm = vm
        self.spec = spec
        self.name = f"{spec.name}@{vm.name}"
        self.run_times: list[int] = []
        self._t0 = 0
        self.proc = vm.kernel.add_process(cache_sensitivity=spec.cache_sensitivity)
        self.proc.load_program(self._program())

    def _program(self) -> Iterator[Segment]:
        spec = self.spec
        nchunks = max(1, spec.run_ns // spec.chunk_ns)
        while True:
            yield call(self._mark_start)
            for _ in range(nchunks):
                yield compute(spec.chunk_ns)
            yield call(self._mark_end)

    def _mark_start(self, now: int) -> None:
        self._t0 = now

    def _mark_end(self, now: int) -> None:
        self.run_times.append(now - self._t0)

    def start(self) -> None:
        self.proc.start()

    @property
    def mean_run_ns(self) -> float:
        if not self.run_times:
            return float("nan")
        return sum(self.run_times) / len(self.run_times)

    def results(self) -> dict:
        return {"app": self.spec.name, "mean_run_ns": self.mean_run_ns, "runs": len(self.run_times)}


# ----------------------------------------------------------------------
class StreamApp(CpuApp):
    """STREAM: memory-bandwidth bound — extreme cache sensitivity.

    Bandwidth is reported relative to the run time of a fixed-size pass:
    more cache flushes (context switches) → longer pass → lower bandwidth.
    """

    kind = "stream"
    #: Bytes one pass would move at full speed (for bandwidth reporting).
    PASS_BYTES = 4 * 1024**3

    def __init__(self, sim: "Simulator", vm: "VM", rng: SimRNG) -> None:
        spec = CpuAppSpec("stream", run_ns=40 * MSEC, chunk_ns=2 * MSEC, cache_sensitivity=4.0)
        super().__init__(sim, vm, spec, rng)
        self.name = f"stream@{vm.name}"

    @property
    def bandwidth_Bps(self) -> float:
        m = self.mean_run_ns
        if m != m:  # NaN
            return float("nan")
        return self.PASS_BYTES / s_from_ns(m)

    def results(self) -> dict:
        return {"app": "stream", "bandwidth_Bps": self.bandwidth_Bps, "runs": len(self.run_times)}


# ----------------------------------------------------------------------
class BonnieApp:
    """bonnie++: synchronous disk I/O through dom0's blkback."""

    kind = "disk"
    REQ_BYTES = 1024 * 1024
    REQS_PER_PASS = 8

    def __init__(self, sim: "Simulator", vm: "VM", rng: SimRNG) -> None:
        self.sim = sim
        self.vm = vm
        self.name = f"bonnie@{vm.name}"
        self.pass_times: list[int] = []
        self._t0 = 0
        self.proc = vm.kernel.add_process(cache_sensitivity=0.5)
        self.proc.load_program(self._program())

    def _program(self) -> Iterator[Segment]:
        while True:
            yield call(lambda now: setattr(self, "_t0", now))
            for _ in range(self.REQS_PER_PASS):
                yield compute(200 * USEC)  # buffer prep
                yield disk(self.REQ_BYTES)
            yield call(self._mark_end)

    def _mark_end(self, now: int) -> None:
        self.pass_times.append(now - self._t0)

    def start(self) -> None:
        self.proc.start()

    @property
    def throughput_Bps(self) -> float:
        if not self.pass_times:
            return float("nan")
        mean = sum(self.pass_times) / len(self.pass_times)
        return self.REQ_BYTES * self.REQS_PER_PASS / s_from_ns(mean)

    def results(self) -> dict:
        return {"app": "bonnie++", "throughput_Bps": self.throughput_Bps, "passes": len(self.pass_times)}


# ----------------------------------------------------------------------
class PingApp:
    """ICMP-style echo between two VMs through the full dom0/wire path."""

    kind = "latency"

    def __init__(
        self,
        sim: "Simulator",
        vm: "VM",
        peer_vm: "VM",
        rng: SimRNG,
        interval_ns: int = 10 * MSEC,
        payload: int = 64,
    ) -> None:
        self.sim = sim
        self.vm = vm
        self.peer_vm = peer_vm
        self.name = f"ping@{vm.name}"
        self.interval_ns = interval_ns
        self.payload = payload
        self.rtts: list[int] = []
        self._t0 = 0
        self.proc = vm.kernel.add_process(cache_sensitivity=0.2)
        self.responder = peer_vm.kernel.add_process(cache_sensitivity=0.2)
        self._responder_idx = self.responder.index
        self._proc_idx = self.proc.index
        self.proc.load_program(self._pinger())
        self.responder.load_program(self._echo())

    def _pinger(self) -> Iterator[Segment]:
        while True:
            yield call(lambda now: setattr(self, "_t0", now))
            yield send(self.peer_vm, self._responder_idx, self.payload)
            yield recv_block(1)
            yield call(lambda now: self.rtts.append(now - self._t0))
            yield sleep(self.interval_ns)

    def _echo(self) -> Iterator[Segment]:
        while True:
            yield recv_block(1)
            yield send(self.vm, self._proc_idx, self.payload)

    def start(self) -> None:
        self.responder.start()
        self.proc.start()

    @property
    def mean_rtt_ns(self) -> float:
        if not self.rtts:
            return float("nan")
        return sum(self.rtts) / len(self.rtts)

    def results(self) -> dict:
        return {"app": "ping", "mean_rtt_ns": self.mean_rtt_ns, "samples": len(self.rtts)}


# ----------------------------------------------------------------------
class WebServerApp:
    """Apache-style server + closed-loop httperf client.

    The client VM should be placed on an otherwise idle node (the paper
    drives httperf from separate physical machines), so measured response
    times reflect the *server-side* scheduling behaviour.
    """

    kind = "web"

    def __init__(
        self,
        sim: "Simulator",
        server_vm: "VM",
        client_vm: "VM",
        rng: SimRNG,
        service_ns: int = 1 * MSEC,
        think_ns: int = 5 * MSEC,
        req_bytes: int = 512,
        resp_bytes: int = 8 * 1024,
    ) -> None:
        self.sim = sim
        self.server_vm = server_vm
        self.client_vm = client_vm
        self.rng = rng
        self.name = f"web@{server_vm.name}"
        self.service_ns = service_ns
        self.think_ns = think_ns
        self.req_bytes = req_bytes
        self.resp_bytes = resp_bytes
        self.response_times: list[int] = []
        self._t0 = 0
        self.server = server_vm.kernel.add_process(cache_sensitivity=0.6)
        self.client = client_vm.kernel.add_process(cache_sensitivity=0.1)
        self.server.load_program(self._serve())
        self.client.load_program(self._drive())

    def _serve(self) -> Iterator[Segment]:
        while True:
            yield recv_block(1)
            yield compute(self.service_ns)
            yield send(self.client_vm, self.client.index, self.resp_bytes)

    def _drive(self) -> Iterator[Segment]:
        while True:
            yield call(lambda now: setattr(self, "_t0", now))
            yield send(self.server_vm, self.server.index, self.req_bytes)
            yield recv_block(1)
            yield call(lambda now: self.response_times.append(now - self._t0))
            yield sleep(self.rng.exponential_ns(self.think_ns))

    def start(self) -> None:
        self.server.start()
        self.client.start()

    @property
    def mean_response_ns(self) -> float:
        if not self.response_times:
            return float("nan")
        return sum(self.response_times) / len(self.response_times)

    def results(self) -> dict:
        return {
            "app": "webserver",
            "mean_response_ns": self.mean_response_ns,
            "requests": len(self.response_times),
        }
