"""Workload models: NPB kernels (BSP), non-parallel apps, LLNL trace mix."""

from repro.workloads.attacks import ATTACK_RNG_KEY, TickleAbuseApp, YieldTheftApp
from repro.workloads.base import BSPSpec, ParallelApp, bsp_rank_program
from repro.workloads.nonparallel import (
    BonnieApp,
    CPU_APP_SPECS,
    CpuApp,
    CpuAppSpec,
    PingApp,
    StreamApp,
    WebServerApp,
)
from repro.workloads.npb import CLASS_SCALES, NPB_EXTENDED, NPB_NAMES, NPB_SPECS, npb_spec
from repro.workloads.traces import (
    ATLAS_TABLE1,
    VCMix,
    paper_vc_mix,
    synthesize_vc_mix,
)

__all__ = [
    "ATTACK_RNG_KEY",
    "TickleAbuseApp",
    "YieldTheftApp",
    "BSPSpec",
    "ParallelApp",
    "bsp_rank_program",
    "BonnieApp",
    "CPU_APP_SPECS",
    "CpuApp",
    "CpuAppSpec",
    "PingApp",
    "StreamApp",
    "WebServerApp",
    "CLASS_SCALES",
    "NPB_EXTENDED",
    "NPB_NAMES",
    "NPB_SPECS",
    "npb_spec",
    "ATLAS_TABLE1",
    "VCMix",
    "paper_vc_mix",
    "synthesize_vc_mix",
]
