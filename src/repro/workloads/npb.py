"""Models of the NAS Parallel Benchmarks used throughout the paper.

The evaluation runs ``lu``, ``is``, ``sp``, ``bt``, ``mg`` and ``cg``
(classes A/B/C).  What matters for scheduler studies is each kernel's
*synchronization structure*, not its numerics, so each is modelled as a
:class:`~repro.workloads.base.BSPSpec` whose parameters reflect the
kernel's published behaviour:

========  ==========================================================
kernel    character captured
========  ==========================================================
``lu``    pipelined wavefront (SSOR): very fine compute grain, very
          frequent small nearest-neighbour messages — the most
          synchronization-sensitive kernel (paper sees ~10x gains)
``cg``    conjugate gradient: fine grain, frequent irregular (modelled
          all-to-all) small messages, cache-unfriendly sparse access
``mg``    multigrid V-cycles: medium grain, nearest-neighbour messages
          of varying size (every other step)
``sp``    scalar pentadiagonal ADI sweeps: medium grain, regular
          nearest-neighbour exchanges
``bt``    block tridiagonal: coarser grain, larger exchanges
``is``    integer sort: coarse compute then bucket all-to-all of large
          messages — bandwidth-bound, least scheduler-sensitive
========  ==========================================================

Problem classes scale the compute grain and superstep count (A < B < C);
class C is long enough to expose the cache-miss inflection of Fig. 8.

The absolute grains are calibrated for the simulator's scaled-down rounds
(tens of ms of ideal compute per round) — normalized execution time, the
paper's metric, is insensitive to this scaling.
"""

from __future__ import annotations

from repro.sim.units import ns_from_ms, ns_from_us
from repro.workloads.base import BSPSpec

__all__ = ["NPB_SPECS", "NPB_NAMES", "NPB_EXTENDED", "npb_spec", "CLASS_SCALES"]

#: Class multipliers: (compute-grain multiplier, superstep multiplier).
CLASS_SCALES: dict[str, tuple[float, float]] = {
    "A": (0.5, 0.7),
    "B": (1.0, 1.0),
    "C": (2.0, 1.4),
}

#: Class-B reference shapes.  ``grain_ns`` is the compute between
#: synchronization phases: the finer it is relative to the 30 ms default
#: slice, the harder over-commitment hurts — grains are ordered to give
#: the sensitivity ranking the paper reports (lu/cg most affected,
#: is least, gains spanning roughly 1.5-10x).
NPB_SPECS: dict[str, BSPSpec] = {
    "lu": BSPSpec(
        name="lu",
        grain_ns=ns_from_ms(3.0),
        grain_cv=0.05,
        supersteps=30,
        pattern="ring",
        msg_bytes=4 * 1024,
        msgs_per_peer=1,
        comm_every=3,
        cache_sensitivity=1.0,
    ),
    "cg": BSPSpec(
        name="cg",
        grain_ns=ns_from_ms(4.0),
        grain_cv=0.08,
        supersteps=25,
        pattern="alltoall",
        msg_bytes=8 * 1024,
        msgs_per_peer=1,
        comm_every=2,
        hard_comm_sync=True,
        cache_sensitivity=1.6,
    ),
    "mg": BSPSpec(
        name="mg",
        grain_ns=ns_from_ms(11.0),
        grain_cv=0.10,
        supersteps=10,
        pattern="ring",
        msg_bytes=32 * 1024,
        msgs_per_peer=1,
        comm_every=2,
        cache_sensitivity=1.3,
    ),
    "sp": BSPSpec(
        name="sp",
        grain_ns=ns_from_ms(8.0),
        grain_cv=0.06,
        supersteps=14,
        pattern="ring",
        msg_bytes=24 * 1024,
        msgs_per_peer=1,
        comm_every=2,
        cache_sensitivity=1.1,
    ),
    "bt": BSPSpec(
        name="bt",
        grain_ns=ns_from_ms(10.0),
        grain_cv=0.06,
        supersteps=12,
        pattern="ring",
        msg_bytes=40 * 1024,
        msgs_per_peer=1,
        comm_every=2,
        cache_sensitivity=1.1,
    ),
    "is": BSPSpec(
        name="is",
        grain_ns=ns_from_ms(12.0),
        grain_cv=0.04,
        supersteps=6,
        pattern="alltoall",
        msg_bytes=1024 * 1024,
        msgs_per_peer=1,
        comm_every=1,
        hard_comm_sync=True,
        cache_sensitivity=0.9,
    ),
}

#: Paper presentation order (the six kernels the evaluation uses).
NPB_NAMES = ["lu", "is", "sp", "bt", "mg", "cg"]

#: Extension kernels beyond the paper's six, for completeness of the NPB
#: suite: ``ep`` (embarrassingly parallel — no communication at all, the
#: control case every scheduler should leave roughly alone) and ``ft``
#: (3-D FFT — repeated all-to-all transposes, the most
#: communication-bound kernel).
NPB_EXTENDED = NPB_NAMES + ["ep", "ft"]

NPB_SPECS["ep"] = BSPSpec(
    name="ep",
    grain_ns=ns_from_ms(25.0),
    grain_cv=0.03,
    supersteps=4,
    pattern="none",
    msg_bytes=0,
    msgs_per_peer=0,
    comm_every=1,
    cache_sensitivity=0.6,
)
NPB_SPECS["ft"] = BSPSpec(
    name="ft",
    grain_ns=ns_from_ms(6.0),
    grain_cv=0.06,
    supersteps=10,
    pattern="alltoall",
    msg_bytes=512 * 1024,
    msgs_per_peer=1,
    comm_every=1,
    hard_comm_sync=True,
    cache_sensitivity=1.4,
)


def npb_spec(name: str, npb_class: str = "B") -> BSPSpec:
    """The spec of ``name`` at problem class ``npb_class`` (A/B/C)."""
    try:
        base = NPB_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown NPB kernel {name!r}; choose from {NPB_NAMES}") from None
    try:
        gm, sm = CLASS_SCALES[npb_class.upper()]
    except KeyError:
        raise KeyError(f"unknown NPB class {npb_class!r}; choose from A/B/C") from None
    return base.scaled(grain_mult=gm, steps_mult=sm)
