"""Adversarial tenant workloads (scheduler-attack models).

Models of the classic Xen credit-scheduler attacks of Zhou et al.,
*Scheduler Vulnerabilities and Attacks in Cloud Computing* (PAPERS.md),
re-targeted at this repo's credit/ATC models:

* :class:`YieldTheftApp` — the **yield-before-tick theft** attack: burn
  CPU for most of each 10 ms accounting window, then block just before
  the sampling instant so the tick never lands on the attacker.  Under
  Xen-faithful tick-*sampled* debiting (``CreditParams.tick_accounting``)
  the attacker's credits are never debited (``cpu_debited_ns`` stays near
  zero while ``cpu_consumed_ns`` grows), it stays UNDER/BOOST-eligible
  forever, and co-located victims are left paying for the stolen time.
  The repo's default *exact* accounting is immune; the attack scenario
  switches tick sampling on to open the historical window.
* :class:`TickleAbuseApp` — the **BOOST / tickle-storm** attack: a
  near-idle process that sleeps in sub-tick bursts so every wake enters
  at BOOST priority and preempts the running victim through the tickle
  path.  The attacker burns almost no CPU (so it never goes OVER), yet
  each wake costs the victim a context switch, an LLC refill, and —
  under ATC — a latency spike that steers Algorithm 2 toward shorter
  host slices for *all* parallel VMs.

Determinism discipline: attackers draw **only** from the dedicated
:data:`ATTACK_RNG_KEY` substream handed to them by the scenario.  Clean
runs never construct these objects, so they draw zero attack entropy and
are bit-identical to pre-attack-layer runs (regression-tested).

Both attackers are pure guests: they use only the public segment API
(``compute``/``sleep``/``call``) and observe time the way a real guest
would (its own clock reads), never scheduler internals.  In particular
:class:`YieldTheftApp` aims at the *nominal* tick grid — the
``tick_phase_ns`` hardening knob works precisely because a guest cannot
see the randomized phase.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.guest.process import Segment, call, compute, sleep
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.vm import VM
    from repro.sim.engine import Simulator

__all__ = ["ATTACK_RNG_KEY", "YieldTheftApp", "TickleAbuseApp"]

#: SimRNG spawn key of the attack layer (cf. faults 0xFA, service 0x5E).
#: Everything adversarial — attacker jitter *and* the randomized tick
#: phase the hardened scheduler draws — comes off this substream, so the
#: clean configuration consumes no entropy from it.
ATTACK_RNG_KEY = 0xA7


class YieldTheftApp:
    """Yield-before-tick theft attacker on one VCPU.

    Each cycle: read the clock, burn CPU up to ``guard_ns`` before the
    next *nominal* tick boundary, then sleep until just past it.  If the
    VCPU is descheduled mid-burn the cycle overshoots, but the next
    clock read realigns it — exactly how the real attack self-corrects.
    """

    kind = "yield_theft"

    def __init__(
        self,
        sim: "Simulator",
        vm: "VM",
        rng: SimRNG,
        proc_index: int = 0,
        tick_ns: int = 10 * MSEC,
        guard_ns: int = 1 * MSEC,
        min_burn_ns: int = 2 * MSEC,
    ) -> None:
        self.sim = sim
        self.vm = vm
        self.rng = rng
        self.name = f"yield_theft@{vm.name}"
        #: The attacker's *belief* about the accounting grid (nominal
        #: 10 ms, phase 0) — it cannot observe ``tick_phase_ns``.
        self.tick_ns = tick_ns
        self.guard_ns = guard_ns
        self.min_burn_ns = min_burn_ns
        self.cycles = 0
        self._now = 0
        self._next_tick = 0
        self.proc = vm.kernel.add_process(cache_sensitivity=0.3)
        self.proc.load_program(self._program())

    def _note_now(self, now: int) -> None:
        self._now = now

    def _program(self) -> Iterator[Segment]:
        tick = self.tick_ns
        while True:
            yield call(self._note_now)
            now = self._now
            # Burn until guard_ns before the next nominal tick; if that
            # window is too short to be worth stealing, target the one
            # after (the sleep below skips the near boundary).
            nxt = (now // tick + 1) * tick
            burn = nxt - self.guard_ns - now
            if burn < self.min_burn_ns:
                nxt += tick
                burn = nxt - self.guard_ns - now
            self._next_tick = nxt
            # De-synchronize the yield instants: a fleet of thieves aiming
            # at the same nominal grid would otherwise all block on the
            # same nanosecond, a degenerate synchrony no real guest clock
            # achieves (and a same-timestamp tie storm for the engine).
            yield compute(burn - self.rng.uniform_ns(0, 150 * USEC))
            yield call(self._note_now)
            # Sleep past the sampling instant; jitter the wake so a fleet
            # of attackers does not collapse onto one deterministic comb.
            wake_at = self._next_tick + self.rng.uniform_ns(50 * USEC, 300 * USEC)
            yield sleep(max(1, wake_at - self._now))
            yield call(self._count_cycle)

    def _count_cycle(self, now: int) -> None:
        self.cycles += 1

    def start(self) -> None:
        self.proc.start()

    def results(self) -> dict:
        vm = self.vm
        debited = vm.cpu_debited_ns
        return {
            "app": self.kind,
            "cycles": self.cycles,
            "cpu_consumed_ns": vm.cpu_consumed_ns,
            "cpu_debited_ns": debited,
            "gain": vm.cpu_consumed_ns / debited if debited > 0 else float("inf"),
        }


class TickleAbuseApp:
    """BOOST/tickle wake-storm attacker on one VCPU.

    Each cycle: a tiny compute burst, then a short sub-tick sleep.  The
    wake at the end of every sleep is a fresh BOOST wake (the attacker
    never spends enough CPU to go OVER), preempting whatever victim is
    running via the wake-time tickle path.
    """

    kind = "tickle_abuse"

    def __init__(
        self,
        sim: "Simulator",
        vm: "VM",
        rng: SimRNG,
        proc_index: int = 0,
        burst_ns: int = 100 * USEC,
        sleep_lo_ns: int = 500 * USEC,
        sleep_hi_ns: int = 2 * MSEC,
    ) -> None:
        self.sim = sim
        self.vm = vm
        self.rng = rng
        self.name = f"tickle_abuse@{vm.name}"
        self.burst_ns = burst_ns
        self.sleep_lo_ns = sleep_lo_ns
        self.sleep_hi_ns = sleep_hi_ns
        self.wakes = 0
        self.proc = vm.kernel.add_process(cache_sensitivity=0.2)
        self.proc.load_program(self._program())

    def _program(self) -> Iterator[Segment]:
        while True:
            yield compute(self.rng.jittered_ns(self.burst_ns, 0.3))
            yield sleep(self.rng.uniform_ns(self.sleep_lo_ns, self.sleep_hi_ns))
            yield call(self._count_wake)

    def _count_wake(self, now: int) -> None:
        self.wakes += 1

    def start(self) -> None:
        self.proc.start()

    def results(self) -> dict:
        vm = self.vm
        return {
            "app": self.kind,
            "wakes": self.wakes,
            "boost_preempts_inflicted": vm.boost_preempts_inflicted,
            "boost_preempts_suffered": vm.boost_preempts_suffered,
            "cpu_consumed_ns": vm.cpu_consumed_ns,
            "cpu_debited_ns": vm.cpu_debited_ns,
        }
