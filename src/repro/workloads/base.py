"""Workload foundations: BSP rank programs and multi-VM parallel jobs.

The paper's parallel applications follow the Bulk Synchronous Parallel
model (Section II-B): compute phases alternating with synchronization
phases, where synchronization happens through shared-memory spinlocks
inside a VM and through network messages across the VMs of a virtual
cluster.  :class:`ParallelApp` coordinates one such job:

* one process per VCPU on every member VM (the paper's NPB deployment),
* one spin barrier per VM for the intra-VM synchronization phase,
* rank 0 of each VM exchanging messages with peer VMs per the
  application's communication pattern for the cross-VM phase,
* batch-mode repetition: like the paper's evaluation, applications run
  repeatedly and per-round execution times are recorded (with warm-up
  rounds excluded so adaptive schedulers are measured at steady state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Sequence

from repro.guest.process import Segment, barrier, compute, recv, send
from repro.guest.spinlock import SpinBarrier
from repro.sim.rng import SimRNG

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.process import GuestProcess
    from repro.hypervisor.vm import VM
    from repro.sim.engine import Simulator

__all__ = ["CommPattern", "BSPSpec", "bsp_rank_program", "ParallelApp"]


CommPattern = str  # "none" | "ring" | "alltoall"


@dataclass(frozen=True)
class BSPSpec:
    """Shape of a BSP application (one NPB kernel, parameterised)."""

    name: str
    #: Mean compute per rank per superstep (ns).
    grain_ns: int
    #: Coefficient of variation of the compute grain (stragglers!).
    grain_cv: float
    #: Supersteps per round (one "execution" of the application).
    supersteps: int
    #: Cross-VM communication pattern of rank 0.
    pattern: CommPattern
    #: Message payload (bytes) for the cross-VM exchange.
    msg_bytes: int
    #: Messages per peer per superstep.
    msgs_per_peer: int = 1
    #: Cross-VM exchange every k-th superstep (1 = every superstep).
    comm_every: int = 1
    #: Whether siblings barrier *behind* the exchange (hard global sync,
    #: e.g. an all-to-all transpose) or keep computing while rank 0
    #: completes it (pipelined nearest-neighbour kernels like lu's
    #: wavefront, where communication overlaps computation).
    hard_comm_sync: bool = False
    #: LLC-footprint multiplier (see repro.cluster.cache).
    cache_sensitivity: float = 1.0

    def scaled(self, grain_mult: float = 1.0, steps_mult: float = 1.0) -> "BSPSpec":
        """Derive a problem-class variant (NPB classes A/B/C)."""
        return BSPSpec(
            name=self.name,
            grain_ns=max(1, int(self.grain_ns * grain_mult)),
            grain_cv=self.grain_cv,
            supersteps=max(1, int(self.supersteps * steps_mult)),
            pattern=self.pattern,
            msg_bytes=self.msg_bytes,
            msgs_per_peer=self.msgs_per_peer,
            comm_every=self.comm_every,
            hard_comm_sync=self.hard_comm_sync,
            cache_sensitivity=self.cache_sensitivity,
        )


def _peer_indices(pattern: CommPattern, vm_idx: int, n_vms: int) -> list[int]:
    """Peer VM indices rank 0 of ``vm_idx`` exchanges with."""
    if n_vms <= 1 or pattern == "none":
        return []
    if pattern == "ring":
        left = (vm_idx - 1) % n_vms
        right = (vm_idx + 1) % n_vms
        return [left] if left == right else [left, right]
    if pattern == "alltoall":
        return [i for i in range(n_vms) if i != vm_idx]
    raise ValueError(f"unknown communication pattern {pattern!r}")


def bsp_rank_program(
    spec: BSPSpec,
    vms: Sequence["VM"],
    vm_idx: int,
    local_idx: int,
    bar: SpinBarrier,
    rng: SimRNG,
) -> Iterator[Segment]:
    """Program of one rank of a BSP job.

    Every rank computes then enters the VM-local spin barrier; rank 0 of
    each VM additionally performs the cross-VM message exchange, with a
    second barrier so siblings wait for the exchange (the communication
    step of the superstep), exactly the structure whose overheads
    Sections II-B1/II-B2 dissect.
    """
    peers = _peer_indices(spec.pattern, vm_idx, len(vms))
    do_comm = local_idx == 0 and peers
    for step in range(spec.supersteps):
        yield compute(rng.jittered_ns(spec.grain_ns, spec.grain_cv))
        yield barrier(bar)
        if spec.comm_every <= 1 or (step % spec.comm_every) == 0:
            if do_comm:
                nmsg = 0
                for p in peers:
                    for _ in range(spec.msgs_per_peer):
                        yield send(vms[p], 0, spec.msg_bytes, tag=step)
                        nmsg += 1
                yield recv(nmsg)
            if peers and spec.hard_comm_sync:
                # Hard global sync (all-to-all transposes): every rank
                # waits for the exchange.  Pipelined kernels skip this —
                # rank 0 rejoins at the next superstep's barrier.
                yield barrier(bar)


class ParallelApp:
    """A parallel job across the VMs of one virtual cluster, run in
    batch mode (repeated rounds) with per-round timing."""

    def __init__(
        self,
        sim: "Simulator",
        spec: BSPSpec,
        vms: Sequence["VM"],
        rng: SimRNG,
        procs_per_vm: Optional[int] = None,
        rounds: Optional[int] = None,
        warmup_rounds: int = 0,
        name: Optional[str] = None,
        program_factory: Optional[Callable[..., Iterator[Segment]]] = None,
    ) -> None:
        """``rounds=None`` repeats forever (background load); otherwise the
        app stops after ``rounds`` *measured* rounds (warm-up excluded)."""
        self.sim = sim
        self.spec = spec
        self.vms = list(vms)
        self.name = name or f"{spec.name}@" + "+".join(v.name for v in self.vms[:2])
        self.rng = rng
        self.rounds = rounds
        self.warmup_rounds = warmup_rounds
        self.round_times: list[int] = []
        self.rounds_completed = 0
        self.finished = False
        self.on_complete: Optional[Callable[["ParallelApp"], None]] = None
        self._program_factory = program_factory or bsp_rank_program
        self._round_start = 0
        self._pending_ranks = 0
        self._procs: list["GuestProcess"] = []
        self._bars: list[SpinBarrier] = []
        self._locations: list[tuple[int, int]] = []  # (vm_idx, local_idx)

        for vm_idx, vm in enumerate(self.vms):
            if vm.kernel is None:
                raise ValueError(f"{vm.name} has no guest kernel")
            n = procs_per_vm if procs_per_vm is not None else len(vm.vcpus)
            bar = SpinBarrier(n, name=f"{self.name}.bar{vm_idx}")
            self._bars.append(bar)
            for local in range(n):
                proc = vm.kernel.add_process(cache_sensitivity=spec.cache_sensitivity)
                proc.on_done = self._rank_done
                self._procs.append(proc)
                self._locations.append((vm_idx, local))

    # ------------------------------------------------------------------
    @property
    def n_ranks(self) -> int:
        return len(self._procs)

    def start(self) -> None:
        self._load_round()
        for p in self._procs:
            p.start()

    def _load_round(self) -> None:
        self._round_start = self.sim.now
        self._pending_ranks = len(self._procs)
        for proc, (vm_idx, local) in zip(self._procs, self._locations):
            rng = self.rng.substream(vm_idx, local, self.rounds_completed)
            prog = self._program_factory(
                self.spec, self.vms, vm_idx, local, self._bars[vm_idx], rng
            )
            proc.load_program(prog)

    def _rank_done(self, proc: "GuestProcess") -> None:
        self._pending_ranks -= 1
        if self._pending_ranks > 0:
            return
        took = self.sim.now - self._round_start
        self.rounds_completed += 1
        if self.rounds_completed > self.warmup_rounds:
            self.round_times.append(took)
        if self.rounds is not None and len(self.round_times) >= self.rounds:
            self.finished = True
            if self.on_complete is not None:
                self.on_complete(self)
            return
        # Batch mode: restart in a fresh event to decouple from the last
        # rank's completion path.
        self.sim.after(0, self._restart, cat="app")

    def _restart(self) -> None:
        if self.finished:  # pragma: no cover - defensive
            return
        self._load_round()
        for p in self._procs:
            p.start()

    # ------------------------------------------------------------------
    @property
    def mean_round_ns(self) -> float:
        """Mean measured round time (the paper's 'execution time')."""
        if not self.round_times:
            return float("nan")
        return sum(self.round_times) / len(self.round_times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ParallelApp {self.name} ranks={self.n_ranks} rounds={self.rounds_completed}>"
