"""Virtual-cluster size synthesis from the LLNL Atlas job trace (Table I).

The paper's evaluation type B sizes its virtual clusters "consistent with
the trace" of the Atlas Linux cluster at LLNL, whose job-size distribution
is printed as Table I:

=========  =====  =====  ====  =====  =====  ====  ======
size (P)     8     16     32    64     128   256   others
fraction   31.4%  12.6%  4.5%  12.6%  6.1%  4.5%  28.3%
=========  =====  =====  ====  =====  =====  ====  ======

On their 128-VM platform this yields one 256-VCPU cluster, two 128-VCPU,
three 64-VCPU, one 32-VCPU and three 16-VCPU clusters (90 VMs) plus 30
independent 8-VCPU VMs.  :func:`paper_vc_mix` returns exactly that
configuration; :func:`synthesize_vc_mix` samples arbitrary platform sizes
from the Table I distribution for scaled-down experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import SimRNG

__all__ = ["ATLAS_TABLE1", "VCMix", "paper_vc_mix", "synthesize_vc_mix"]

#: Table I: job size in processors → fraction of jobs.
ATLAS_TABLE1: dict[int, float] = {
    8: 0.314,
    16: 0.126,
    32: 0.045,
    64: 0.126,
    128: 0.061,
    256: 0.045,
    # "others" (28.3%) are sizes the paper folds into the nearest classes.
}


@dataclass(frozen=True)
class VCMix:
    """A virtual-cluster composition for a platform.

    ``cluster_sizes_vms`` lists each virtual cluster's size in VMs;
    ``independent_vms`` is the count of stand-alone VMs.
    """

    vcpus_per_vm: int
    cluster_sizes_vms: tuple[int, ...]
    independent_vms: int

    @property
    def total_vms(self) -> int:
        return sum(self.cluster_sizes_vms) + self.independent_vms

    @property
    def cluster_sizes_vcpus(self) -> tuple[int, ...]:
        return tuple(s * self.vcpus_per_vm for s in self.cluster_sizes_vms)


def paper_vc_mix() -> VCMix:
    """The exact evaluation-type-B configuration of Section IV-B2:
    128 8-VCPU VMs → ten virtual clusters (VC1..VC10) + 30 independents."""
    sizes_vcpus = [256, 128, 128, 64, 64, 64, 32, 16, 16, 16]
    sizes_vms = tuple(s // 8 for s in sizes_vcpus)
    return VCMix(vcpus_per_vm=8, cluster_sizes_vms=sizes_vms, independent_vms=30)


def synthesize_vc_mix(
    total_vms: int,
    vcpus_per_vm: int,
    rng: SimRNG,
    min_vcpus: int = 16,
    max_vcpus: int = 256,
    independent_fraction: float = 0.25,
) -> VCMix:
    """Sample a VC mix from Table I for a platform of ``total_vms`` VMs.

    Sizes are drawn from the Table I distribution restricted to
    ``[min_vcpus, max_vcpus]`` (renormalized), largest-first packed until
    the VM budget (minus the independent share) is exhausted.  Matches the
    paper's methodology of keeping the size *distribution* consistent with
    the trace while fitting the platform.
    """
    if total_vms < 2:
        raise ValueError(f"total_vms must be >= 2, got {total_vms}")
    budget = int(total_vms * (1.0 - independent_fraction))
    candidates = {
        s: p for s, p in ATLAS_TABLE1.items() if min_vcpus <= s <= max_vcpus
    }
    if not candidates:
        raise ValueError("no Table I sizes within the requested range")
    total_p = sum(candidates.values())
    sizes = sorted(candidates)
    probs = [candidates[s] / total_p for s in sizes]

    clusters: list[int] = []
    used = 0
    # Draw until the budget can no longer fit the smallest cluster.
    smallest_vms = max(2, min(sizes) // vcpus_per_vm)
    for _ in range(10 * total_vms):
        if budget - used < smallest_vms:
            break
        size_vcpus = rng.choice(sizes, p=probs)
        size_vms = max(2, size_vcpus // vcpus_per_vm)
        if used + size_vms <= budget:
            clusters.append(size_vms)
            used += size_vms
    clusters.sort(reverse=True)
    independent = total_vms - used
    return VCMix(
        vcpus_per_vm=vcpus_per_vm,
        cluster_sizes_vms=tuple(clusters),
        independent_vms=independent,
    )
