"""Self-profiler: wall-clock performance of the simulator *itself*.

The simulated figures in ``BENCH_*.json`` say nothing about how fast the
simulator runs on the host — CI could not tell if a PR made the event
loop 3× slower.  :class:`SimProfiler` attaches to a
:class:`~repro.sim.engine.Simulator` and measures:

* **events/sec** — callbacks executed per host wall-clock second;
* **per-category attribution** — wall time and call counts keyed by the
  ``cat`` tag passed to ``Simulator.at``/``after`` (``"guest"``,
  ``"dom0"``, ``"vmm.slice"``, ...), so a regression points at the
  subsystem that caused it;
* **max heap depth** — peak pending-event queue length;
* **cancelled-event waste** — fraction of heap pops that were lazily
  cancelled events (the cost of the O(1)-cancel design).

The profiler is host-side observation only: it never touches simulation
state, so a profiled run is bit-identical to an unprofiled one (its
wall-clock numbers are of course not deterministic — which is why the
sweep cache folds the ``profile`` flag into the key only when set).

``clock`` is injectable for deterministic tests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import TYPE_CHECKING, Callable, Iterator, Optional

from repro.sim import engine as _engine

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["SimProfiler", "profile_new_simulators"]

#: Category used for events scheduled without a ``cat`` tag.
UNCATEGORIZED = "uncat"


class SimProfiler:
    """Attach to a simulator and attribute callback wall time by category."""

    __slots__ = (
        "sim",
        "_clock",
        "_t0",
        "categories",
        "max_heap_depth",
        "_base_processed",
        "_base_cancelled",
    )

    def __init__(self, sim: "Simulator", clock: Optional[Callable[[], float]] = None) -> None:
        self.sim = sim
        # Host wall-clock; never feeds simulation state (lint-exempt).
        self._clock = clock if clock is not None else time.perf_counter  # repro: ignore[RPR001]
        self._t0 = self._clock()
        #: category -> [calls, wall seconds]
        self.categories: dict[str, list] = {}
        self.max_heap_depth = 0
        self._base_processed = sim.events_processed
        self._base_cancelled = sim.cancelled_popped
        sim.profiler = self

    # ------------------------------------------------------------------
    def run_event(self, cat: Optional[str], fn: Callable[[], None], depth: int) -> None:
        """Execute one event callback under timing (called by the engine).

        ``depth`` is the queue depth *including* the event being run (the
        engine passes ``len(queue) + 1`` before the callback schedules
        successors).  Sampling after the pop — as an earlier version did —
        systematically under-reported the true peak by one plus however
        many successors the deepest event scheduled.
        """
        if depth > self.max_heap_depth:
            self.max_heap_depth = depth
        t0 = self._clock()
        fn()
        dt = self._clock() - t0
        bucket = self.categories.get(cat or UNCATEGORIZED)
        if bucket is None:
            self.categories[cat or UNCATEGORIZED] = [1, dt]
        else:
            bucket[0] += 1
            bucket[1] += dt

    def detach(self) -> None:
        """Stop profiling (the simulator reverts to the plain loop)."""
        if self.sim.profiler is self:
            self.sim.profiler = None

    # ------------------------------------------------------------------
    def report(self) -> dict:
        """Rollup of everything measured since attachment."""
        wall_s = self._clock() - self._t0
        events = self.sim.events_processed - self._base_processed
        cancelled = self.sim.cancelled_popped - self._base_cancelled
        callback_s = sum(b[1] for b in self.categories.values())
        pops = events + cancelled
        return {
            "wall_s": wall_s,
            "events": events,
            "events_per_sec": (events / wall_s) if wall_s > 0 else 0.0,
            "callback_s": callback_s,
            "categories": {
                cat: {"calls": b[0], "wall_s": b[1]}
                for cat, b in sorted(self.categories.items())
            },
            "max_heap_depth": self.max_heap_depth,
            "cancelled_popped": cancelled,
            "cancel_waste_ratio": (cancelled / pops) if pops else 0.0,
        }


@contextmanager
def profile_new_simulators(
    clock: Optional[Callable[[], float]] = None,
) -> Iterator[list[SimProfiler]]:
    """Attach a :class:`SimProfiler` to every simulator constructed inside
    the context (via :data:`repro.sim.engine.on_simulator_created`).

    Yields the list of attached profilers, in construction order — this is
    how the perf micro-suite profiles simulators created deep inside
    scenario builders it does not control.
    """
    profilers: list[SimProfiler] = []
    prev = _engine.on_simulator_created

    def attach(sim: "Simulator") -> None:
        if prev is not None:
            prev(sim)
        profilers.append(SimProfiler(sim, clock=clock))

    _engine.on_simulator_created = attach
    try:
        yield profilers
    finally:
        _engine.on_simulator_created = prev
