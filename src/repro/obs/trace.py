"""Structured tracing: a bounded ring buffer of typed simulation records.

The paper's methodology rests on seeing *when* things happened inside the
stack — the in-guest spinlock monitor of Fig. 3 and the 11-step
packet-path timing of Fig. 4, read through Xenoprof-style counters.  This
module is the reproduction's equivalent: the scheduling and I/O layers
carry ``emit()`` hooks at their existing decision points, each guarded by
the module-level :data:`enabled` flag so a disabled run pays exactly one
attribute load + branch per site.

Record kinds (``TraceLog.KINDS``):

``sched.dispatch``
    A scheduling decision: VCPU picked for a PCPU, with the granted slice
    and how long the VCPU sat runnable (Fig. 4 overhead sources 1-4 all
    manifest as this wait).
``sched.wake``
    A blocked VCPU became runnable and was placed on a run queue
    (priority after Credit's boost rules).
``sched.steal``
    Work stealing / balancing moved a VCPU between run queues.
``slice.change``
    A time-slice recomputation: ATC's Algorithm 1/2 per-period pass
    (inputs: per-VM average spin latency; outputs: candidate and applied
    host-min slices) or a vSlicer latency-sensitivity reclassification.
``vcpu.state``
    A RUNNING VCPU was descheduled (slice end, preemption, or block),
    with the time it ran.
``spin.episode``
    A completed guest spin wait (lock / barrier-generation / receive
    busy-wait) — one point of the Fig. 3 spinlock-latency signal.
``pkt.hop``
    One timestamped hop of the Fig. 4 dom0 packet path (``send``,
    ``netback_tx``, ``arrive``, ``delivered``).
``fault.inject``
    A :mod:`repro.faults` plan event fired: node crash, dom0 stall, NIC
    degradation, PCPU straggler, or VM pause (with its target and
    duration).
``fault.heal``
    The matching recovery: restart, resume, or link restoration.
``fault.skip``
    A pause fault found no target — its named VM departed (service
    teardown) or never arrived; the event was counted and dropped.
``migrate.start``
    A live migration began: VM, source/destination nodes, and the memory
    image size the pre-copy phase must move.
``migrate.round``
    One pre-copy round finished: bytes sent, bytes the running guest
    dirtied meanwhile (the residue for the next round), and elapsed time.
``migrate.downtime``
    The stop-and-copy window closed: the VM's blackout duration (the
    pause-to-resume interval, conserved against the engine's accounting).
``migrate.done``
    The migration completed (or aborted, with the reason in ``status``):
    total rounds, bytes, and end-to-end duration.
``service.admit``
    A :mod:`repro.service` tenant was admitted: its app, VM count, node
    assignment, and how long it waited in the queue since submission.
``service.reject``
    A tenant was turned away by the admission policy (no capacity).
``service.depart``
    A tenant finished its rounds and its cluster was torn down: time in
    system and slowdown (time in system over the app's compute bound).
``dfrs.solve``
    A :mod:`repro.dfrs` control round re-solved the cluster's fractional
    allocations: VM count and the per-host minimum yields.
``dfrs.apply``
    One VM's solved (cap, weight) pair was published to its host
    scheduler (applied at the host's next accounting boundary).

Activation is scoped: ``with log.activate(): world.run(...)``.  Only one
log is active at a time per process (sweep workers are separate
processes, so parallel sweeps trace independently).

Exporters: :func:`write_jsonl` (one JSON object per record) and
:func:`write_chrome_trace` (Chrome ``trace_event`` JSON — open in
Perfetto or ``chrome://tracing``; one track per PCPU, plus per-VM guest
tracks and a dom0 packet track per node).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

__all__ = [
    "TraceRecord",
    "TraceLog",
    "enabled",
    "emit",
    "records_from_dicts",
    "write_jsonl",
    "chrome_events",
    "write_chrome_trace",
]

#: Fast-path guard read by every emit site: ``if trace.enabled: ...``.
#: Kept in lockstep with :data:`_active` by :meth:`TraceLog.activate`.
enabled: bool = False

_active: Optional["TraceLog"] = None


class TraceRecord:
    """One typed trace record: a kind, a simulation timestamp, and fields."""

    __slots__ = ("kind", "t", "args")

    def __init__(self, kind: str, t: int, args: dict) -> None:
        self.kind = kind
        self.t = t
        self.args = args

    def to_dict(self) -> dict:
        return {"kind": self.kind, "t": self.t, **self.args}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceRecord {self.kind} t={self.t} {self.args}>"


class TraceLog:
    """Bounded ring buffer of :class:`TraceRecord`.

    When full, the *oldest* record is overwritten (the tail of a run is
    usually what matters when a ring fills).  ``total`` counts every
    emitted record and ``by_kind`` every kind, regardless of eviction, so
    summaries stay exact even after wrap-around.
    """

    KINDS = (
        "sched.dispatch",
        "sched.wake",
        "sched.steal",
        "slice.change",
        "vcpu.state",
        "spin.episode",
        "pkt.hop",
        "fault.inject",
        "fault.heal",
        "fault.skip",
        "migrate.start",
        "migrate.round",
        "migrate.downtime",
        "migrate.done",
        "service.admit",
        "service.reject",
        "service.depart",
        "sched.theft",
        "sched.boost_preempt",
        "dfrs.solve",
        "dfrs.apply",
    )

    __slots__ = ("capacity", "_buf", "_next", "total", "dropped", "by_kind")

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._buf: list[TraceRecord] = []
        self._next = 0  # overwrite cursor once the ring is full
        self.total = 0
        self.dropped = 0
        self.by_kind: dict[str, int] = {}

    # ------------------------------------------------------------------
    def append(self, kind: str, t: int, args: dict) -> None:
        self.total += 1
        self.by_kind[kind] = self.by_kind.get(kind, 0) + 1
        rec = TraceRecord(kind, t, args)
        if len(self._buf) < self.capacity:
            self._buf.append(rec)
        else:
            self._buf[self._next] = rec
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._buf)

    def records(self) -> list[TraceRecord]:
        """Retained records in emission (chronological) order."""
        return self._buf[self._next:] + self._buf[: self._next]

    def summary(self, include_records: bool = False) -> dict:
        """Deterministic rollup (sorted kinds; no wall-clock anywhere)."""
        out = {
            "total": self.total,
            "retained": len(self._buf),
            "dropped": self.dropped,
            "capacity": self.capacity,
            "by_kind": {k: self.by_kind[k] for k in sorted(self.by_kind)},
        }
        if include_records:
            out["records"] = [r.to_dict() for r in self.records()]
        return out

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["TraceLog"]:
        """Route module-level :func:`emit` calls into this log while the
        context is active.  Nesting restores the previous log on exit."""
        global _active, enabled
        prev = _active
        _active = self
        enabled = True
        try:
            yield self
        finally:
            _active = prev
            enabled = prev is not None

    # Convenience wrappers ---------------------------------------------
    def export_jsonl(self, path) -> Path:
        return write_jsonl(self.records(), path)

    def export_chrome(self, path) -> Path:
        return write_chrome_trace(self.records(), path)


def active_log() -> Optional[TraceLog]:
    """The currently activated log, if any (introspection/tests)."""
    return _active


def records_from_dicts(dicts: Iterable[dict]) -> list[TraceRecord]:
    """Rebuild :class:`TraceRecord` objects from ``to_dict()`` output
    (scenario results carry traces as plain dicts through the sweep
    cache; the exporters want records back)."""
    return [
        TraceRecord(d["kind"], d["t"], {k: v for k, v in d.items() if k not in ("kind", "t")})
        for d in dicts
    ]


def emit(kind: str, t: int, **args) -> None:
    """Append a record to the active log; no-op when tracing is off.

    Hot emit sites guard with ``if trace.enabled:`` *before* building the
    kwargs dict, so the disabled cost is one branch.
    """
    log = _active
    if log is not None:
        log.append(kind, t, args)


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def write_jsonl(records: Iterable[TraceRecord], path) -> Path:
    """One JSON object per line: ``{"kind", "t", ...fields}``."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec.to_dict(), sort_keys=True))
            fh.write("\n")
    return path


#: Synthetic Chrome thread ids for records that are not bound to a PCPU.
_TID_SCHED = 90  # wake/steal/slice decisions without a PCPU binding
_TID_DOM0 = 91  # packet-path hops
_TID_GUEST_BASE = 100  # per-VM guest tracks (spin episodes), first-seen order


def chrome_events(records: Sequence[TraceRecord]) -> list[dict]:
    """Map trace records onto Chrome ``trace_event`` dicts.

    * ``sched.dispatch`` opens a duration slice (``ph: "B"``) named after
      the VCPU on the (node, PCPU) track; the matching ``vcpu.state``
      deschedule record closes it (``ph: "E"``).
    * Everything else becomes a thread-scoped instant (``ph: "i"``).
    * Metadata events name each process ``node<i>`` and each track.

    Timestamps are microseconds (Chrome's unit); simulation time is
    integer nanoseconds, so ``ts = t / 1000`` is exact to the ns.
    """
    events: list[dict] = []
    tracks: dict[tuple[int, int], str] = {}  # (pid, tid) -> name
    guest_tids: dict[str, int] = {}  # vm name -> synthetic tid

    def track(pid: int, tid: int, name: str) -> None:
        tracks.setdefault((pid, tid), name)

    for rec in records:
        a = rec.args
        pid = a.get("node", 0)
        ts = rec.t / 1000
        if rec.kind == "sched.dispatch":
            tid = a["pcpu"]
            track(pid, tid, f"pcpu{tid}")
            events.append(
                {
                    "name": a["vcpu"],
                    "cat": "sched",
                    "ph": "B",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {"slice_ns": a.get("slice_ns"), "wait_ns": a.get("wait_ns")},
                }
            )
        elif rec.kind == "vcpu.state":
            tid = a["pcpu"]
            track(pid, tid, f"pcpu{tid}")
            events.append(
                {
                    "name": a["vcpu"],
                    "cat": "sched",
                    "ph": "E",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {"to": a.get("to_state"), "ran_ns": a.get("ran_ns")},
                }
            )
        elif rec.kind == "spin.episode":
            vm = a.get("vm", "?")
            tid = guest_tids.setdefault(vm, _TID_GUEST_BASE + len(guest_tids))
            track(pid, tid, f"guest {vm}")
            events.append(
                {
                    "name": f"spin.{a.get('spin_kind', '?')}",
                    "cat": "guest",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {"wait_ns": a.get("wait_ns")},
                }
            )
        elif rec.kind == "pkt.hop":
            track(pid, _TID_DOM0, "dom0 pkt")
            events.append(
                {
                    "name": f"pkt.{a.get('hop', '?')}",
                    "cat": "net",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": _TID_DOM0,
                    "args": {k: v for k, v in a.items() if k not in ("node", "hop")},
                }
            )
        else:  # sched.wake / sched.steal / slice.change / future kinds
            tid = a.get("pcpu", _TID_SCHED)
            track(pid, tid, f"pcpu{tid}" if "pcpu" in a else "sched")
            events.append(
                {
                    "name": rec.kind,
                    "cat": "sched",
                    "ph": "i",
                    "s": "t",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "args": {k: v for k, v in a.items() if k != "node"},
                }
            )

    meta: list[dict] = []
    for (pid, tid), name in sorted(tracks.items()):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"node{pid}"},
            }
        )
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )
    return meta + events


def write_chrome_trace(records: Sequence[TraceRecord], path) -> Path:
    """Write a Chrome ``trace_event`` file (Perfetto / chrome://tracing)."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {"traceEvents": chrome_events(records), "displayTimeUnit": "ms"}
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    return path
