"""Metrics registry: named counters, gauges and deterministic histograms.

Subsystems register metrics under dotted names (``sched.steals``,
``vm.lu0.spin_total_ns``); a :meth:`MetricsRegistry.snapshot` walks them
in *registration order* and returns a plain JSON-serializable dict, so
two same-seed runs produce byte-identical snapshots.

Two registration styles:

* **owned instruments** — :meth:`counter` / :meth:`gauge` /
  :meth:`histogram` return get-or-create objects the subsystem updates
  in place (``reg.counter("sched.steals").inc()``);
* **callback gauges** — :meth:`register` binds a name to a zero-argument
  callable evaluated at snapshot time, which is how the existing
  object-held counters (VCPU run time, PCPU context switches, guest spin
  accumulators) are exposed without duplicating state.

Histograms use *fixed* bucket bounds supplied at creation — never
computed from observed data — so bucket counts are deterministic and
comparable across runs.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"{self.name}: counters only increase (got {n})")
        self.value += n

    def read(self):
        return self.value


class Gauge:
    """Last-value metric (set at will)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def read(self):
        return self.value


class Histogram:
    """Fixed-bucket histogram: deterministic counts, no rebinning.

    ``bounds`` are the inclusive upper edges of each bucket; one overflow
    bucket catches everything above the last edge.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"{name}: bucket bounds must be non-empty and sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, v) -> None:
        self.count += 1
        self.sum += v
        for i, edge in enumerate(self.bounds):
            if v <= edge:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def read(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """Insertion-ordered name → metric map with get-or-create semantics."""

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, kind: type, factory: Callable[[], object]):
        m = self._metrics.get(name)
        if m is None:
            m = factory()
            self._metrics[name] = m
        elif not isinstance(m, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(m).__name__}, "
                f"not {kind.__name__}"
            )
        return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        if name not in self._metrics and bounds is None:
            raise ValueError(f"histogram {name!r} needs bucket bounds on first use")
        return self._get_or_create(name, Histogram, lambda: Histogram(name, bounds))

    def register(self, name: str, fn: Callable[[], object]) -> None:
        """Bind ``name`` to a callable evaluated at snapshot time."""
        if name in self._metrics:
            raise ValueError(f"metric {name!r} already registered")
        self._metrics[name] = fn

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return list(self._metrics)

    def snapshot(self, prefix: str = "") -> dict:
        """Evaluate every metric (optionally filtered by dotted-name
        ``prefix``) into a plain dict, in registration order."""
        out: dict = {}
        for name, m in self._metrics.items():
            if prefix and not name.startswith(prefix):
                continue
            out[name] = m.read() if hasattr(m, "read") else m()
        return out

    def merge(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Re-register every metric of ``other`` under ``prefix + name``
        (snapshot indirection: values stay live, not copied)."""
        for name, m in other._metrics.items():
            full = prefix + name
            if full in self._metrics:
                raise ValueError(f"metric {full!r} already registered")
            self._metrics[full] = m
