"""Wall-clock perf micro-suite: ``BENCH_perf_*.json`` baselines for CI.

Each case runs a fixed, deterministic simulation workload twice:

1. a *throughput* repetition with **no profiler attached**, timed with a
   bare ``time.perf_counter`` pair around the run — this is the
   events/sec number the CI gate compares against the baseline, and it
   measures the engine's real hot path (the self-profiler's two clock
   reads per event would roughly halve it);
2. a *detail* repetition under :class:`repro.obs.profiler.SimProfiler`
   for the attribution axes — per-category callback time, max queue
   depth, and cancelled-event waste.

The simulated work is bit-reproducible, so both repetitions execute the
identical event sequence; only the wall-clock axis varies with the host.

Cases:

``engine``
    The bare event loop: self-rescheduling timer chains (via the
    fire-and-forget ``post_after`` fast path) plus a cancel-heavy chain,
    no cluster on top.  Measures raw queue throughput and the
    lazy-cancellation waste path.
``engine_bucket``
    The identical workload on the calendar-bucket event queue
    (``Simulator(queue="bucket")``), so a bucket-queue regression is
    caught independently of the default heap.
``type_a_cr``
    A scaled-down evaluation-type-A world under Credit — the dominant CI
    workload shape (schedulers + guests + dom0 + network all live).
``type_a_atc``
    The same world under ATC, adding the Algorithm 1/2 control path.
``table1_cell``
    A short-horizon slice of one full-scale Table-I cell (32 nodes,
    128 VMs / 1024 VCPUs under ATC) — the configuration the paper's
    testbed evaluation uses, exercising queue depths two orders of
    magnitude beyond the type-A cases.

``python -m repro perf`` runs the suite, prints the report, writes one
``BENCH_perf_<case>.json`` per case, and (in CI) fails if any case's
events/sec regresses more than ``tolerance`` below the checked-in
``benchmarks/perf/baseline.json``.  Baselines are refreshed with
``python -m repro perf --write-baseline benchmarks/perf/baseline.json``
and are deliberately set *below* typical developer-machine throughput so
only real regressions (not runner jitter) trip the gate.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.obs.profiler import SimProfiler
from repro.sim.engine import Simulator

__all__ = [
    "CASES",
    "run_case",
    "run_suite",
    "write_results",
    "write_baseline",
    "check_baseline",
    "append_history",
    "default_tolerance",
]

#: Baseline-file schema version.
BASELINE_VERSION = 1


def default_tolerance() -> float:
    """Allowed fractional events/sec drop vs baseline (CI gate)."""
    return float(os.environ.get("REPRO_PERF_TOLERANCE", "0.15"))


def _merge(throughput: dict, detail: dict) -> dict:
    """Combine the raw-timed run (wall axis) with the profiled run (all
    attribution axes).  Both runs execute the same deterministic event
    sequence, so the detail rep's counts describe the throughput rep too.
    """
    return {
        "sim_time_ns": throughput["sim_time_ns"],
        "wall_s": throughput["wall_s"],
        "events": throughput["events"],
        "events_per_sec": (
            throughput["events"] / throughput["wall_s"]
            if throughput["wall_s"] > 0
            else 0.0
        ),
        "callback_s": detail["callback_s"],
        "categories": detail["categories"],
        "max_heap_depth": detail["max_heap_depth"],
        "cancelled_popped": detail["cancelled_popped"],
        "cancel_waste_ratio": detail["cancel_waste_ratio"],
    }


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def _seed_engine_workload(sim: Simulator, hops: int) -> None:
    """Timer chains + a cancel-heavy chain, seeded onto ``sim``.

    Each chain reschedules one prebuilt closure (no per-hop lambda
    allocation) so the measurement is dominated by queue churn — the
    thing the case exists to gate — not by callback-side allocation.
    """
    n_chains = 50
    post = sim.post_after

    def make_chain(i: int) -> Callable[[], None]:
        delay = (i % 7 + 1) * 10
        n = hops

        def hop() -> None:
            nonlocal n
            n -= 1
            if n > 0:
                post(delay, hop, cat="chain")

        return hop

    for i in range(n_chains):
        post(i, make_chain(i), cat="chain")

    # Cancel-heavy pattern: every step schedules a timeout and cancels it,
    # exercising the lazy-deletion path the waste ratio measures.  These
    # stay on the cancellable ``after`` path by necessity.
    cancels = [hops]
    pending: list = [None]

    def noop() -> None:
        return None

    def cancelling() -> None:
        if pending[0] is not None:
            pending[0].cancel()
            pending[0] = None
        cancels[0] -= 1
        if cancels[0] > 0:
            pending[0] = sim.after(500, noop, cat="timeout")
            post(25, cancelling, cat="canceller")

    post(0, cancelling, cat="canceller")


def _case_engine(quick: bool, queue: str = "heap") -> dict:
    """Raw event-loop churn on the selected queue backend."""
    hops = 400 if quick else 4000

    sim = Simulator(queue=queue)
    _seed_engine_workload(sim, hops)
    t0 = time.perf_counter()  # repro: ignore[RPR001]  (host wall-clock only)
    sim.run()
    wall_s = time.perf_counter() - t0  # repro: ignore[RPR001]  (host wall-clock only)
    throughput = {
        "sim_time_ns": sim.now,
        "wall_s": wall_s,
        "events": sim.events_processed,
    }

    sim2 = Simulator(queue=queue)
    prof = SimProfiler(sim2)
    _seed_engine_workload(sim2, hops)
    sim2.run()
    return _merge(throughput, prof.report())


def _run_type_a(scheduler: str, quick: bool) -> dict:
    from repro.experiments.scenarios import run_type_a

    kwargs = dict(
        rounds=1 if quick else 6,
        warmup_rounds=0,
        horizon_s=6.0 if quick else 60.0,
        seed=0,
    )
    t0 = time.perf_counter()  # repro: ignore[RPR001]  (host wall-clock only)
    value = run_type_a("is", scheduler, 2, **kwargs)
    wall_s = time.perf_counter() - t0  # repro: ignore[RPR001]  (host wall-clock only)
    throughput = {
        "sim_time_ns": value["sim_time_ns"],
        "wall_s": wall_s,
        "events": value["events"],
    }
    detail = run_type_a("is", scheduler, 2, profile=True, **kwargs)
    return _merge(throughput, detail["profile"])


def _case_table1_cell(quick: bool) -> dict:
    from repro.experiments.scenarios import run_table1_cell

    kwargs = dict(scheduler="ATC", seed=0, horizon_s=0.25 if quick else 1.0)
    t0 = time.perf_counter()  # repro: ignore[RPR001]  (host wall-clock only)
    value = run_table1_cell(**kwargs)
    wall_s = time.perf_counter() - t0  # repro: ignore[RPR001]  (host wall-clock only)
    throughput = {
        "sim_time_ns": value["sim_time_ns"],
        "wall_s": wall_s,
        "events": value["events"],
    }
    detail = run_table1_cell(profile=True, **kwargs)
    return _merge(throughput, detail["profile"])


#: name -> (case fn, repetitions).  The simulated work is deterministic, so
#: repeating only re-samples the wall-clock axis; ``run_case`` keeps the
#: fastest repetition (standard best-of-N noise rejection for short cases).
CASES: dict[str, tuple[Callable[[bool], dict], int]] = {
    "engine": (_case_engine, 5),
    "engine_bucket": (lambda quick: _case_engine(quick, queue="bucket"), 5),
    "type_a_cr": (lambda quick: _run_type_a("CR", quick), 3),
    "type_a_atc": (lambda quick: _run_type_a("ATC", quick), 3),
    "table1_cell": (_case_table1_cell, 1),
}


def run_case(name: str, quick: bool = False) -> dict:
    """Execute one case (best of its configured repetitions)."""
    fn, repeats = CASES[name]
    best = None
    for _ in range(repeats):
        rec = fn(quick)
        if best is None or rec["events_per_sec"] > best["events_per_sec"]:
            best = rec
    return {"name": name, "quick": quick, **best}


def run_suite(names: Optional[Sequence[str]] = None, quick: bool = False) -> list[dict]:
    """Execute the selected cases (default: all, in catalogue order)."""
    if names is None:
        names = list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise KeyError(f"unknown perf case(s): {', '.join(unknown)}; known: {sorted(CASES)}")
    return [run_case(n, quick=quick) for n in names]


# ----------------------------------------------------------------------
# Emission + baseline gate
# ----------------------------------------------------------------------
def write_results(results: Sequence[dict], out_dir) -> list[Path]:
    """Write one ``BENCH_perf_<case>.json`` per case; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for rec in results:
        path = out / f"BENCH_perf_{rec['name']}.json"
        with path.open("w", encoding="utf-8") as fh:
            json.dump(rec, fh, indent=2, default=str)
        paths.append(path)
    return paths


def write_baseline(results: Sequence[dict], path) -> Path:
    """Record each case's measured events/sec as the new baseline."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "events/sec floors for the repro perf micro-suite; CI fails when a "
            "case drops more than the tolerance below its baseline.  Refresh "
            "with: python -m repro perf --write-baseline benchmarks/perf/baseline.json"
        ),
        "cases": {r["name"]: {"events_per_sec": r["events_per_sec"]} for r in results},
    }
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def append_history(results: Sequence[dict], path, label: Optional[str] = None) -> Path:
    """Append one JSON line of events/sec per case to the trend file.

    ``benchmarks/perf/history.jsonl`` accumulates one record per CI run,
    giving a greppable throughput trend alongside the hard baseline gate.
    ``label`` identifies the run (a commit SHA in CI; defaults to the
    ``GITHUB_SHA`` environment variable or ``"local"``).
    """
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "label": label or os.environ.get("GITHUB_SHA", "local"),
        "quick": bool(results and results[0].get("quick", False)),
        "events_per_sec": {
            r["name"]: round(r["events_per_sec"], 1) for r in results
        },
    }
    with path.open("a", encoding="utf-8") as fh:
        json.dump(record, fh, sort_keys=True)
        fh.write("\n")
    return path


def check_baseline(
    results: Sequence[dict], baseline_path, tolerance: Optional[float] = None
) -> list[str]:
    """Compare measured events/sec to the baseline; returns failure messages.

    A case regresses when ``measured < baseline * (1 - tolerance)``.  Cases
    missing from the baseline are reported (the baseline must be refreshed
    when the suite grows); baseline cases not measured are ignored.
    """
    tol = default_tolerance() if tolerance is None else tolerance
    with Path(baseline_path).open("r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("version") != BASELINE_VERSION:
        return [f"baseline {baseline_path}: unsupported version {baseline.get('version')!r}"]
    cases = baseline.get("cases", {})
    failures = []
    for rec in results:
        ref = cases.get(rec["name"], {}).get("events_per_sec")
        if ref is None:
            failures.append(
                f"{rec['name']}: no baseline entry — refresh benchmarks/perf/baseline.json"
            )
            continue
        floor = ref * (1.0 - tol)
        if rec["events_per_sec"] < floor:
            failures.append(
                f"{rec['name']}: {rec['events_per_sec']:.0f} events/sec is below "
                f"{floor:.0f} (baseline {ref:.0f} - {tol:.0%} tolerance)"
            )
    return failures
