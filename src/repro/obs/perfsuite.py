"""Wall-clock perf micro-suite: ``BENCH_perf_*.json`` baselines for CI.

Each case runs a fixed, deterministic simulation workload under the
self-profiler (:mod:`repro.obs.profiler`) and reports host wall-clock
throughput — events/sec, per-category attribution, heap depth, and
cancelled-event waste.  The *simulated* results of every case are
bit-reproducible; only the wall-clock axis varies with the host.

Cases:

``engine``
    The bare event loop: self-rescheduling timer chains plus a
    cancel-heavy chain, no cluster on top.  Measures raw heap throughput
    and the lazy-cancellation waste path.
``type_a_cr``
    A scaled-down evaluation-type-A world under Credit — the dominant CI
    workload shape (schedulers + guests + dom0 + network all live).
``type_a_atc``
    The same world under ATC, adding the Algorithm 1/2 control path.

``python -m repro perf`` runs the suite, prints the report, writes one
``BENCH_perf_<case>.json`` per case, and (in CI) fails if any case's
events/sec regresses more than ``tolerance`` below the checked-in
``benchmarks/perf/baseline.json``.  Baselines are refreshed with
``python -m repro perf --write-baseline benchmarks/perf/baseline.json``
and are deliberately set *below* typical developer-machine throughput so
only real regressions (not runner jitter) trip the gate.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.obs.profiler import SimProfiler
from repro.sim.engine import Simulator

__all__ = [
    "CASES",
    "run_case",
    "run_suite",
    "write_results",
    "write_baseline",
    "check_baseline",
    "default_tolerance",
]

#: Baseline-file schema version.
BASELINE_VERSION = 1


def default_tolerance() -> float:
    """Allowed fractional events/sec drop vs baseline (CI gate)."""
    return float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30"))


# ----------------------------------------------------------------------
# Cases
# ----------------------------------------------------------------------
def _case_engine(quick: bool) -> dict:
    """Raw event-loop churn: timer chains + a cancel-heavy chain."""
    n_chains = 50
    hops = 400 if quick else 4000
    sim = Simulator()
    prof = SimProfiler(sim)

    remaining = [hops] * n_chains

    def hop(i: int) -> None:
        remaining[i] -= 1
        if remaining[i] > 0:
            sim.after((i % 7 + 1) * 10, lambda i=i: hop(i), cat="chain")

    for i in range(n_chains):
        sim.after(i, lambda i=i: hop(i), cat="chain")

    # Cancel-heavy pattern: every step schedules a timeout and cancels it,
    # exercising the lazy-deletion path the waste ratio measures.
    cancels = [hops]
    pending: list = [None]

    def cancelling() -> None:
        if pending[0] is not None:
            pending[0].cancel()
            pending[0] = None
        cancels[0] -= 1
        if cancels[0] > 0:
            pending[0] = sim.after(500, lambda: None, cat="timeout")
            sim.after(25, cancelling, cat="canceller")

    sim.after(0, cancelling, cat="canceller")
    sim.run()
    report = prof.report()
    return {"sim_time_ns": sim.now, **report}


def _run_type_a(scheduler: str, quick: bool) -> dict:
    from repro.experiments.scenarios import run_type_a

    value = run_type_a(
        "is",
        scheduler,
        2,
        rounds=1 if quick else 6,
        warmup_rounds=0,
        horizon_s=6.0 if quick else 60.0,
        seed=0,
        profile=True,
    )
    report = value["profile"]
    return {"sim_time_ns": value["sim_time_ns"], **report}


#: name -> (case fn, repetitions).  The simulated work is deterministic, so
#: repeating only re-samples the wall-clock axis; ``run_case`` keeps the
#: fastest repetition (standard best-of-N noise rejection for short cases).
CASES: dict[str, tuple[Callable[[bool], dict], int]] = {
    "engine": (_case_engine, 1),
    "type_a_cr": (lambda quick: _run_type_a("CR", quick), 3),
    "type_a_atc": (lambda quick: _run_type_a("ATC", quick), 3),
}


def run_case(name: str, quick: bool = False) -> dict:
    """Execute one case (best of its configured repetitions)."""
    fn, repeats = CASES[name]
    best = None
    for _ in range(1 if quick else repeats):
        rec = fn(quick)
        if best is None or rec["events_per_sec"] > best["events_per_sec"]:
            best = rec
    return {"name": name, "quick": quick, **best}


def run_suite(names: Optional[Sequence[str]] = None, quick: bool = False) -> list[dict]:
    """Execute the selected cases (default: all, in catalogue order)."""
    if names is None:
        names = list(CASES)
    unknown = [n for n in names if n not in CASES]
    if unknown:
        raise KeyError(f"unknown perf case(s): {', '.join(unknown)}; known: {sorted(CASES)}")
    return [run_case(n, quick=quick) for n in names]


# ----------------------------------------------------------------------
# Emission + baseline gate
# ----------------------------------------------------------------------
def write_results(results: Sequence[dict], out_dir) -> list[Path]:
    """Write one ``BENCH_perf_<case>.json`` per case; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for rec in results:
        path = out / f"BENCH_perf_{rec['name']}.json"
        with path.open("w", encoding="utf-8") as fh:
            json.dump(rec, fh, indent=2, default=str)
        paths.append(path)
    return paths


def write_baseline(results: Sequence[dict], path) -> Path:
    """Record each case's measured events/sec as the new baseline."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "events/sec floors for the repro perf micro-suite; CI fails when a "
            "case drops more than the tolerance below its baseline.  Refresh "
            "with: python -m repro perf --write-baseline benchmarks/perf/baseline.json"
        ),
        "cases": {r["name"]: {"events_per_sec": r["events_per_sec"]} for r in results},
    }
    with path.open("w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return path


def check_baseline(
    results: Sequence[dict], baseline_path, tolerance: Optional[float] = None
) -> list[str]:
    """Compare measured events/sec to the baseline; returns failure messages.

    A case regresses when ``measured < baseline * (1 - tolerance)``.  Cases
    missing from the baseline are reported (the baseline must be refreshed
    when the suite grows); baseline cases not measured are ignored.
    """
    tol = default_tolerance() if tolerance is None else tolerance
    with Path(baseline_path).open("r", encoding="utf-8") as fh:
        baseline = json.load(fh)
    if baseline.get("version") != BASELINE_VERSION:
        return [f"baseline {baseline_path}: unsupported version {baseline.get('version')!r}"]
    cases = baseline.get("cases", {})
    failures = []
    for rec in results:
        ref = cases.get(rec["name"], {}).get("events_per_sec")
        if ref is None:
            failures.append(
                f"{rec['name']}: no baseline entry — refresh benchmarks/perf/baseline.json"
            )
            continue
        floor = ref * (1.0 - tol)
        if rec["events_per_sec"] < floor:
            failures.append(
                f"{rec['name']}: {rec['events_per_sec']:.0f} events/sec is below "
                f"{floor:.0f} (baseline {ref:.0f} - {tol:.0%} tolerance)"
            )
    return failures
