"""Observability layer (Xenoprof analog): tracing, metrics, self-profiling.

Three independent sub-layers, all read-only with respect to simulation
state (an observed run is bit-identical to an unobserved one):

* :mod:`repro.obs.trace` — a bounded ring buffer of typed trace records
  (scheduling decisions, slice recomputations, VCPU state transitions,
  spin episodes, dom0 packet-path hops, steals) emitted from lightweight
  hooks at the existing decision points, with JSON-lines and Chrome
  ``trace_event`` exporters (open a run in Perfetto / ``chrome://tracing``).
* :mod:`repro.obs.registry` — named counters / gauges / histograms that
  subsystems register into; :mod:`repro.metrics.collectors` reads its
  per-VM / per-node / cluster rollups from registry snapshots.
* :mod:`repro.obs.profiler` — a wall-clock profiler for the simulator
  itself: events/sec, per-category callback time (keyed off the ``cat``
  tag of :meth:`repro.sim.engine.Simulator.at`), heap depth, and
  cancelled-event waste.  :mod:`repro.obs.perfsuite` turns it into the
  ``BENCH_perf_*.json`` micro-suite that CI tracks.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import TraceLog, TraceRecord
from repro.obs.profiler import SimProfiler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceLog",
    "TraceRecord",
    "SimProfiler",
]
