"""The always-on service engine: tenant lifecycles on a CloudWorld.

:class:`CloudService` attaches to a wired
:class:`~repro.experiments.harness.CloudWorld` (``WorldConfig.service``)
and drives an open stream of tenants, each through the full lifecycle::

    submit ──► admit ──► run ──► complete ──► depart (teardown)
       │         ▲
       ├──► queue┘   (FCFS wait; re-decided on departures and periods)
       └──► reject

*Submit* draws the tenant's shape (Table-I size → VMs, NPB kernel) and
asks the configured admission policy (:mod:`repro.service.admission`).
*Admit* places a fresh virtual cluster on the policy's node assignment
and starts a finite-round :class:`~repro.workloads.base.ParallelApp`.
*Depart* tears the whole cluster down through
``CloudWorld.teardown_cluster`` — node slots, VMM rosters, scheduler
state and the world's VM/cluster lists are all reclaimed — then gives
the wait queue a drain pass.  Queued tenants are also re-decided once
per scheduling period (inside the existing VMM period tick, PR-5
leader-election style, so the wait queue adds **zero** events).

Determinism: the tenant timeline is a pure function of the seed.  All
service randomness comes from the dedicated :data:`~repro.service.
arrivals.SERVICE_RNG_KEY` substream; admitted tenants' workloads take
the world's ordinary sequential workload substreams in admission order.
An idle service layer (no arrivals) draws no RNG and schedules no
events, so enabling it leaves a run bit-identical — event count
included — to one without it (regression-tested in
``tests/test_service.py``).

Service-level telemetry (``CloudService.stats``, also composed into
``world_registry`` under the ``service.`` prefix): admit/reject/queue
counts, per-tenant wait and slowdown, a time-in-system histogram, and a
cluster-utilization timeline sampled at every admit/depart.  Slowdown is
the tenant's time in system normalized by its app's pure-compute lower
bound (rounds x supersteps x grain), so both queueing delay and
scheduling interference show up in one number.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.obs import trace as obstrace
from repro.service.admission import ADMISSIONS, admission_names
from repro.service.arrivals import (
    SERVICE_RNG_KEY,
    PoissonArrivals,
    TraceArrivals,
    draw_tenant_shape,
)
from repro.sim.units import MSEC
from repro.workloads.base import ParallelApp
from repro.workloads.npb import npb_spec

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld

__all__ = ["ServiceConfig", "Tenant", "CloudService"]


@dataclass(frozen=True)
class ServiceConfig:
    """Shape of the always-on service layer (``WorldConfig.service``)."""

    #: Arrival process: ``"poisson"`` (open-loop, ``rate_per_s``) or
    #: ``"trace"`` (replay the ``trace`` entries).
    arrival: str = "poisson"
    #: Admission policy name (:data:`repro.service.admission.ADMISSIONS`).
    admission: str = "fcfs-queue"
    #: Offered load: tenant submissions per virtual second (poisson).
    rate_per_s: float = 2.0
    #: Total tenants the poisson process submits; 0 = idle layer (no
    #: arrivals, no events, no RNG draws — the bit-identity baseline).
    max_tenants: int = 0
    #: Trace-replay entries: ``{"at_ms", "n_vms"?, "app"?, "rounds"?}``.
    trace: tuple = ()
    #: Table-I size window for tenant shape draws (VCPUs).
    min_vcpus: int = 8
    max_vcpus: int = 16
    #: Measured rounds each tenant runs before departing.
    rounds: int = 1
    #: Warm-up rounds per tenant (excluded from round timing).
    warmup_rounds: int = 0
    #: NPB kernels tenants draw from, uniformly.
    apps: tuple = ("lu", "is")
    #: NPB problem class of every tenant app.
    npb_class: str = "A"

    def to_dict(self) -> dict:
        return {
            "arrival": self.arrival,
            "admission": self.admission,
            "rate_per_s": self.rate_per_s,
            "max_tenants": self.max_tenants,
            "trace": [dict(e) for e in self.trace],
            "min_vcpus": self.min_vcpus,
            "max_vcpus": self.max_vcpus,
            "rounds": self.rounds,
            "warmup_rounds": self.warmup_rounds,
            "apps": list(self.apps),
            "npb_class": self.npb_class,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ServiceConfig":
        d = dict(d)
        d["trace"] = tuple(dict(e) for e in d.get("trace", ()))
        d["apps"] = tuple(d.get("apps", ("lu", "is")))
        return cls(**d)


class Tenant:
    """One tenant's lifecycle record."""

    __slots__ = (
        "tid",
        "name",
        "n_vms",
        "app_name",
        "rounds",
        "submit_ns",
        "admit_ns",
        "depart_ns",
        "state",
        "nodes",
        "vc",
        "app",
        "ideal_ns",
    )

    def __init__(
        self, tid: int, name: str, n_vms: int, app_name: str, rounds: int, submit_ns: int
    ) -> None:
        self.tid = tid
        self.name = name
        self.n_vms = n_vms
        self.app_name = app_name
        self.rounds = rounds
        self.submit_ns = submit_ns
        self.admit_ns: Optional[int] = None
        self.depart_ns: Optional[int] = None
        self.state = "submitted"  # -> queued | running | rejected | departed
        self.nodes: Optional[list[int]] = None
        self.vc = None
        self.app: Optional[ParallelApp] = None
        self.ideal_ns = 1

    @property
    def wait_ns(self) -> Optional[int]:
        """Submission-to-admission delay (None until admitted)."""
        if self.admit_ns is None:
            return None
        return self.admit_ns - self.submit_ns

    @property
    def slowdown(self) -> Optional[float]:
        """Time in system over the app's pure-compute lower bound —
        queueing wait *and* scheduling interference both inflate it."""
        if self.depart_ns is None:
            return None
        return (self.depart_ns - self.submit_ns) / max(1, self.ideal_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tenant {self.name} {self.app_name}x{self.n_vms} {self.state}>"


class CloudService:
    """Streams tenants through a :class:`CloudWorld` under admission control."""

    def __init__(self, world: "CloudWorld", config: ServiceConfig) -> None:
        if config.admission not in ADMISSIONS:
            raise ValueError(
                f"unknown admission policy {config.admission!r}; known: "
                f"{', '.join(admission_names())}"
            )
        if config.arrival not in ("poisson", "trace"):
            raise ValueError(
                f"unknown arrival process {config.arrival!r}; known: poisson, trace"
            )
        self.world = world
        self.sim = world.sim
        self.cfg = config
        self.policy = ADMISSIONS[config.admission]
        # Substream derivation consumes no parent draws, so building the
        # service RNG never perturbs workload streams.
        self.rng = world.rng.substream(SERVICE_RNG_KEY)
        self.arrivals = (
            TraceArrivals(config)
            if config.arrival == "trace"
            else PoissonArrivals(config, self.rng)
        )
        self.tenants: list[Tenant] = []  # every submission, in order
        self.queue: deque[Tenant] = deque()  # FCFS wait queue
        self.running: dict[int, Tenant] = {}  # tid -> tenant
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.departed = 0
        self.queue_peak = 0
        self.rebalancer_kicks = 0
        #: ``[t_ns, running_vms, running_tenants]`` sampled at every
        #: admit / depart edge (lists, so cached JSON round-trips equal).
        self.util_timeline: list[list[int]] = []
        self._hist: dict[int, int] = {}  # time-in-system, pow-2 ms buckets
        self._next_entry: Optional[dict] = None
        self._tick_seen_ns = -1
        self._started = False
        # Queue re-decision rides the existing period ticks (leader
        # election, PR-5 style): zero events added by an idle queue.
        for vmm in world.vmms:
            vmm.period_hooks.append(self._on_period)

    # ------------------------------------------------------------------
    # Arrival machinery
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first arrival (if any).  Idempotent."""
        if self._started:
            return
        self._started = True
        self._schedule_next()

    def _schedule_next(self) -> None:
        nxt = self.arrivals.next_arrival(self.sim.now)
        if nxt is None:
            return  # exhausted (or idle: zero events ever scheduled)
        at_ns, entry = nxt
        self._next_entry = entry
        self.sim.at(at_ns, self._arrive, cat="service")

    def _arrive(self) -> None:
        entry = self._next_entry
        self._next_entry = None
        n_vms, app_name, rounds = draw_tenant_shape(
            self.cfg, self.world.config.vcpus_per_vm, self.rng, entry
        )
        t = Tenant(self.submitted, f"t{self.submitted}", n_vms, app_name, rounds, self.sim.now)
        spec = npb_spec(app_name, self.cfg.npb_class)
        t.ideal_ns = max(
            1, (rounds + self.cfg.warmup_rounds) * spec.supersteps * spec.grain_ns
        )
        self.submitted += 1
        self.tenants.append(t)
        self._decide(t)
        self._schedule_next()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _decide(self, t: Tenant) -> None:
        verdict, assignment = self.policy(self, t)
        if verdict == "admit":
            self._admit(t, assignment)
        elif verdict == "queue":
            t.state = "queued"
            self.queue.append(t)
            self.queue_peak = max(self.queue_peak, len(self.queue))
        else:
            self._reject(t)

    def _admit(self, t: Tenant, assignment: list[int]) -> None:
        now = self.sim.now
        t.state = "running"
        t.admit_ns = now
        t.nodes = list(assignment)
        self.admitted += 1
        t.vc = self.world.virtual_cluster(t.n_vms, name=t.name, node_indices=assignment)
        # Built directly (NOT world.add_npb): tenant apps must not join
        # the batch completion countdown, whose last app stops the sim.
        t.app = ParallelApp(
            self.sim,
            npb_spec(t.app_name, self.cfg.npb_class),
            t.vc.vms,
            self.world._next_rng(),
            rounds=t.rounds,
            warmup_rounds=self.cfg.warmup_rounds,
            name=t.name,
        )
        t.app.on_complete = lambda _app, t=t: self._complete(t)
        self.running[t.tid] = t
        t.app.start()
        if obstrace.enabled:
            obstrace.emit(
                "service.admit",
                now,
                tenant=t.name,
                app=t.app_name,
                n_vms=t.n_vms,
                nodes=list(assignment),
                wait_ns=t.wait_ns,
            )
        self._sample_util(now)

    def _reject(self, t: Tenant) -> None:
        t.state = "rejected"
        self.rejected += 1
        if obstrace.enabled:
            obstrace.emit(
                "service.reject",
                self.sim.now,
                tenant=t.name,
                app=t.app_name,
                n_vms=t.n_vms,
                reason="capacity",
            )

    # ------------------------------------------------------------------
    # Completion / departure
    # ------------------------------------------------------------------
    def _complete(self, t: Tenant) -> None:
        # Defer teardown to a fresh event, decoupled from the last rank's
        # completion path (same pattern as ParallelApp's batch restart).
        self.sim.after(0, lambda t=t: self._depart(t), cat="service")

    def _depart(self, t: Tenant) -> None:
        now = self.sim.now
        t.state = "departed"
        t.depart_ns = now
        self.departed += 1
        self.running.pop(t.tid, None)
        self.world.teardown_cluster(t.vc)
        ms = (now - t.submit_ns) // MSEC
        bucket = 1
        while bucket <= ms:
            bucket <<= 1
        self._hist[bucket] = self._hist.get(bucket, 0) + 1
        if obstrace.enabled:
            obstrace.emit(
                "service.depart",
                now,
                tenant=t.name,
                app=t.app_name,
                n_vms=t.n_vms,
                time_in_system_ns=now - t.submit_ns,
                slowdown=t.slowdown,
            )
        self._sample_util(now)
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Re-decide the wait queue strictly in FIFO order (head-of-line)."""
        while self.queue:
            head = self.queue[0]
            verdict, assignment = self.policy(self, head)
            if verdict == "admit":
                self.queue.popleft()
                self._admit(head, assignment)
            elif verdict == "reject":
                self.queue.popleft()
                self._reject(head)
            else:
                break

    def _on_period(self, now: int) -> None:
        if now == self._tick_seen_ns:
            return  # a lower-indexed live node already led this round
        self._tick_seen_ns = now
        if self.queue:
            self._drain_queue()

    # ------------------------------------------------------------------
    # Control-plane coupling
    # ------------------------------------------------------------------
    def kick_rebalancer(self) -> None:
        """Report admission pressure to the PR-5 rebalancer (if any):
        an off-cycle control round may demix hosts and make room."""
        rb = self.world.rebalancer
        if rb is not None:
            self.rebalancer_kicks += 1
            rb.kick(self.sim.now)

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _sample_util(self, now: int) -> None:
        vms = sum(t.n_vms for t in self.running.values())
        self.util_timeline.append([now, vms, len(self.running)])

    @property
    def stats(self) -> dict:
        """Deterministic, JSON-stable rollup for scenario results."""
        waits = [t.wait_ns for t in self.tenants if t.wait_ns is not None]
        slowdowns = [t.slowdown for t in self.tenants if t.slowdown is not None]
        in_system = [
            t.depart_ns - t.submit_ns for t in self.tenants if t.depart_ns is not None
        ]
        return {
            "arrival": self.cfg.arrival,
            "admission": self.cfg.admission,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "departed": self.departed,
            "queued_now": len(self.queue),
            "queue_peak": self.queue_peak,
            "running_now": len(self.running),
            "rebalancer_kicks": self.rebalancer_kicks,
            "wait_mean_ns": sum(waits) // len(waits) if waits else 0,
            "wait_max_ns": max(waits) if waits else 0,
            "slowdown_mean": sum(slowdowns) / len(slowdowns) if slowdowns else 0.0,
            "slowdown_max": max(slowdowns) if slowdowns else 0.0,
            # Tenants admitted but still in flight at snapshot time are
            # censored observations — excluded from the mean/max above, so
            # those read as conditional-on-completion, not run-wide.
            "slowdown_censored": sum(
                1
                for t in self.tenants
                if t.admit_ns is not None and t.depart_ns is None
            ),
            "time_in_system_mean_ns": sum(in_system) // len(in_system) if in_system else 0,
            "time_in_system_hist_ms": {
                str(b): self._hist[b] for b in sorted(self._hist)
            },
            "util_timeline": [list(row) for row in self.util_timeline],
            "tenants": [
                {
                    "name": t.name,
                    "app": t.app_name,
                    "n_vms": t.n_vms,
                    "state": t.state,
                    "submit_ns": t.submit_ns,
                    "admit_ns": t.admit_ns,
                    "depart_ns": t.depart_ns,
                    "nodes": t.nodes,
                    "wait_ns": t.wait_ns,
                    "slowdown": t.slowdown,
                }
                for t in self.tenants
            ],
        }
