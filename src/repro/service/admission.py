"""Online admission-control policies for :mod:`repro.service`.

A policy is a pure function ``policy(service, tenant) -> (verdict,
assignment)`` consulted at submission time and again whenever the head
of the wait queue gets another chance (a departure freed capacity, or a
scheduling period passed).  ``verdict`` is one of:

* ``"admit"``  — place the tenant now; ``assignment`` lists the node
  index for each of its VMs (validated and applied by
  ``CloudWorld.virtual_cluster``).
* ``"queue"``  — hold the tenant in the FCFS wait queue.
* ``"reject"`` — turn the tenant away for good.

Policies must be deterministic: no RNG, no set iteration, ties broken
by node index.  They read only what the cloud control plane can see —
per-node VM loads, the placement registry
(:mod:`repro.virtcluster.placement`) and the per-host parallel-cluster
census (:func:`repro.migration.policies.parallel_census`).

Registry:

* ``reject-on-full``   — admit whenever the world's placement policy
  finds room, else reject immediately (loss system, M/G/c/c-style).
* ``fcfs-queue``       — same placement test, but hold tenants that do
  not fit in a strict FIFO queue (head-of-line blocking included: the
  queue drains in order or not at all).
* ``migration-aware``  — prefer placements that will not later need
  demixing: every VM goes to a node hosting no *other* parallel
  cluster.  When no such placement exists the policy reports admission
  pressure by kicking the PR-5 rebalancer (an off-cycle demix round can
  make room) and queues the tenant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.migration.policies import parallel_census
from repro.virtcluster.placement import place

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.harness import CloudWorld
    from repro.service.service import CloudService, Tenant

__all__ = [
    "ADMISSIONS",
    "admission_names",
    "reject_on_full",
    "fcfs_queue",
    "migration_aware",
    "antimix_assignment",
]

Decision = tuple[str, Optional[list[int]]]


def _world_placement(service: "CloudService", tenant: "Tenant") -> Optional[list[int]]:
    """Assignment under the world's configured placement policy, or
    ``None`` when capacity is exhausted."""
    world = service.world
    try:
        assignment, _ = place(
            world.config.placement,
            tenant.n_vms,
            world._node_vm_load,
            world.config.vms_per_node,
            cluster=tenant.name,
        )
    except RuntimeError:
        return None
    return assignment


def reject_on_full(service: "CloudService", tenant: "Tenant") -> Decision:
    """Admit if the world placement finds room, else reject (no queue)."""
    assignment = _world_placement(service, tenant)
    if assignment is None:
        return "reject", None
    return "admit", assignment


def fcfs_queue(service: "CloudService", tenant: "Tenant") -> Decision:
    """Admit if the world placement finds room, else wait in FIFO order."""
    assignment = _world_placement(service, tenant)
    if assignment is None:
        return "queue", None
    return "admit", assignment


def antimix_assignment(world: "CloudWorld", n_vms: int) -> Optional[list[int]]:
    """A placement in which no VM shares a node with a *foreign* parallel
    cluster (the tenant's own VMs may co-locate), or ``None`` if none
    exists.  Candidate nodes are ranked least-loaded first, lowest index
    on ties — the same tie-break as the ``spread`` placer."""
    census = parallel_census(world)
    nodes = world.cluster.nodes
    cap = world.config.vms_per_node
    loads = list(world._node_vm_load)
    out: list[int] = []
    for _ in range(n_vms):
        best: Optional[tuple[tuple[int, int], int]] = None
        for i in range(len(loads)):
            if i in census or nodes[i].crashed or loads[i] >= cap:
                continue
            key = (loads[i], i)
            if best is None or key < best[0]:
                best = (key, i)
        if best is None:
            return None
        loads[best[1]] += 1
        out.append(best[1])
    return out


def migration_aware(service: "CloudService", tenant: "Tenant") -> Decision:
    """Admit only onto nodes free of foreign parallel clusters; under
    admission pressure, kick the rebalancer and queue the tenant."""
    assignment = antimix_assignment(service.world, tenant.n_vms)
    if assignment is not None:
        return "admit", assignment
    service.kick_rebalancer()
    return "queue", None


#: Admission registry: name -> policy(service, tenant) -> (verdict, assignment).
ADMISSIONS: dict[str, Callable[["CloudService", "Tenant"], Decision]] = {
    "fcfs-queue": fcfs_queue,
    "reject-on-full": reject_on_full,
    "migration-aware": migration_aware,
}


def admission_names() -> list[str]:
    return sorted(ADMISSIONS)
