"""Open-loop tenant arrival processes for :mod:`repro.service`.

Both generators are *open loop* (Multiverse-style): arrival times do not
depend on how the platform is coping, so offered load is an experiment
input that admission policies can be compared under at equal terms.

Determinism and RNG isolation
-----------------------------
All service-layer randomness — inter-arrival gaps and tenant shape
draws — comes from one dedicated substream of the world RNG, keyed by
:data:`SERVICE_RNG_KEY`.  The key is disjoint from every other reserved
substream (workload streams use small sequential integers, faults
``0xFA``, random placement ``0x9C``, scenario mixes ``999``), and
deriving a substream consumes no draws from the parent, so:

* the same seed always produces the same tenant timeline, and
* a service layer configured for **zero** arrivals draws no RNG and
  schedules no events — a world with such a layer is bit-identical
  (event count included) to a world without one.

Draw order is fixed per arrival: the shape of tenant *k* is drawn when
its submission event fires, then the inter-arrival gap to tenant *k+1*.

Tenant shapes come from the Table-I job-size distribution
(:data:`repro.workloads.traces.ATLAS_TABLE1`) restricted to the
configured ``[min_vcpus, max_vcpus]`` window and renormalized, exactly
like the batch synthesizer — the streaming mix stays consistent with
the trace the paper models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.sim.units import SEC, ns_from_ms
from repro.workloads.traces import ATLAS_TABLE1

if TYPE_CHECKING:  # pragma: no cover
    from repro.service.service import ServiceConfig
    from repro.sim.rng import SimRNG

__all__ = ["SERVICE_RNG_KEY", "PoissonArrivals", "TraceArrivals", "draw_tenant_shape"]

#: Dedicated SimRNG substream key for the service layer (disjoint from
#: workload keys 1..N, fault key 0xFA, placement key 0x9C, mix key 999).
SERVICE_RNG_KEY = 0x5E


class PoissonArrivals:
    """Poisson process: exponential inter-arrival gaps at ``rate_per_s``,
    stopping after ``max_tenants`` submissions.

    ``max_tenants=0`` (or a non-positive rate) is the *idle* process:
    :meth:`next_arrival` returns ``None`` before touching the RNG.
    """

    def __init__(self, cfg: "ServiceConfig", rng: "SimRNG") -> None:
        self.cfg = cfg
        self.rng = rng
        self.emitted = 0

    def next_arrival(self, now_ns: int) -> Optional[tuple[int, Optional[dict]]]:
        """``(submit_ns, entry)`` of the next tenant, or ``None`` when the
        process is exhausted.  Draws exactly one exponential per call."""
        cfg = self.cfg
        if cfg.rate_per_s <= 0 or self.emitted >= cfg.max_tenants:
            return None
        self.emitted += 1
        mean_ns = max(1, int(SEC / cfg.rate_per_s))
        return now_ns + self.rng.exponential_ns(mean_ns), None


class TraceArrivals:
    """Replay a fixed arrival trace: ``ServiceConfig.trace`` entries of
    the form ``{"at_ms": float, "n_vms": int?, "app": str?, "rounds": int?}``.

    Entries are replayed in ``(at_ms, original index)`` order; fields a
    trace entry omits are drawn from the service RNG like a Poisson
    tenant's.  An empty trace schedules nothing and draws nothing.
    """

    def __init__(self, cfg: "ServiceConfig") -> None:
        entries = [dict(e) for e in cfg.trace]
        self._entries = sorted(
            enumerate(entries), key=lambda kv: (float(kv[1].get("at_ms", 0.0)), kv[0])
        )
        self._i = 0

    def next_arrival(self, now_ns: int) -> Optional[tuple[int, Optional[dict]]]:
        if self._i >= len(self._entries):
            return None
        _, entry = self._entries[self._i]
        self._i += 1
        at_ns = ns_from_ms(float(entry.get("at_ms", 0.0)))
        return max(now_ns, at_ns), entry


def draw_tenant_shape(
    cfg: "ServiceConfig",
    vcpus_per_vm: int,
    rng: "SimRNG",
    entry: Optional[dict] = None,
) -> tuple[int, str, int]:
    """``(n_vms, app_name, rounds)`` for one tenant.

    The VC size is drawn from Table I restricted to ``[min_vcpus,
    max_vcpus]`` (renormalized) and converted to whole VMs; the kernel is
    drawn uniformly from ``cfg.apps``.  A trace ``entry`` may pin any of
    the fields, in which case the corresponding draw is skipped — the
    draw order for what remains stays fixed (size, then app).
    """
    e = entry or {}
    n_vms = e.get("n_vms")
    if n_vms is None:
        candidates = {
            s: p for s, p in ATLAS_TABLE1.items() if cfg.min_vcpus <= s <= cfg.max_vcpus
        }
        if not candidates:
            raise ValueError(
                f"no Table I sizes within [{cfg.min_vcpus}, {cfg.max_vcpus}] VCPUs"
            )
        total_p = sum(candidates.values())
        sizes = sorted(candidates)
        probs = [candidates[s] / total_p for s in sizes]
        size_vcpus = int(rng.choice(sizes, p=probs))
        n_vms = max(1, size_vcpus // vcpus_per_vm)
    app = e.get("app")
    if app is None:
        app = str(rng.choice(list(cfg.apps)))
    rounds = int(e.get("rounds", cfg.rounds))
    return int(n_vms), app, rounds
