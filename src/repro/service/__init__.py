"""Always-on cloud service: streaming tenant arrivals and departures.

Turns the batch-mode :class:`~repro.experiments.harness.CloudWorld` into
the paper's actual setting — a cloud platform where virtual clusters
come and go continuously and the scheduler must adapt online:

* :mod:`repro.service.arrivals` — open-loop Poisson and trace-replay
  arrival processes, seeded from a dedicated :class:`~repro.sim.rng.
  SimRNG` substream, drawing tenant shapes from the Table-I synthesizer
  distribution.
* :mod:`repro.service.admission` — the online admission-control policy
  registry (``fcfs-queue`` / ``reject-on-full`` / ``migration-aware``).
* :mod:`repro.service.service` — :class:`CloudService`, the engine that
  drives each tenant through its full lifecycle (submit → admit / queue
  / reject → run → complete → teardown with every resource reclaimed)
  and the :class:`ServiceConfig` carried by ``WorldConfig.service``.
"""

from repro.service.admission import ADMISSIONS, admission_names
from repro.service.arrivals import SERVICE_RNG_KEY, PoissonArrivals, TraceArrivals
from repro.service.service import CloudService, ServiceConfig, Tenant

__all__ = [
    "ADMISSIONS",
    "admission_names",
    "SERVICE_RNG_KEY",
    "PoissonArrivals",
    "TraceArrivals",
    "CloudService",
    "ServiceConfig",
    "Tenant",
]
