"""Physical machines: PCPUs and the per-node disk.

A :class:`PhysicalNode` owns a set of :class:`PCPU` execution resources and
one :class:`Disk`.  The hypervisor layer (:mod:`repro.hypervisor`) attaches
a VMM to each node and multiplexes VCPUs onto the PCPUs; this module only
holds the hardware state (who is running, cache warmth, counters).

The paper's testbed nodes have two quad-core Xeon E5620s (8 cores); that is
the default ``n_pcpus``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.cluster.cache import CacheParams, PCPUCache
from repro.sim.units import MSEC, USEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.hypervisor.vm import VCPU

__all__ = ["NodeParams", "DiskParams", "Disk", "PCPU", "PhysicalNode"]


@dataclass(frozen=True)
class DiskParams:
    """Per-request disk service model (2010s-era SATA drive)."""

    #: Fixed per-request positioning latency (ns).
    seek_ns: int = 2 * MSEC
    #: Sequential transfer bandwidth, bytes per second.
    bandwidth_Bps: float = 120e6

    def service_ns(self, nbytes: int) -> int:
        return self.seek_ns + int(nbytes / self.bandwidth_Bps * 1e9)


@dataclass(frozen=True)
class NodeParams:
    """Hardware description of one physical machine."""

    #: Number of physical cores (paper: 2x quad-core Xeon E5620).
    n_pcpus: int = 8
    #: Direct cost of a VMM context switch (register/VMCS swap, ns).
    ctx_switch_ns: int = 2 * USEC
    #: LLC model parameters.
    cache: CacheParams = field(default_factory=CacheParams)
    #: Disk model parameters.
    disk: DiskParams = field(default_factory=DiskParams)


class Disk:
    """FIFO disk: requests are served one at a time at ``DiskParams`` speed.

    The dom0 block backend submits requests; completion callbacks fire in
    submission order.  Keeps utilization counters for throughput metrics.
    """

    __slots__ = ("sim", "params", "_free_at", "requests", "bytes_moved")

    def __init__(self, sim, params: DiskParams) -> None:
        self.sim = sim
        self.params = params
        self._free_at = 0
        self.requests = 0
        self.bytes_moved = 0

    def submit(self, nbytes: int, done_fn) -> int:
        """Queue a request; ``done_fn`` fires at completion.  Returns the
        absolute completion time."""
        now = self.sim.now
        start = max(now, self._free_at)
        finish = start + self.params.service_ns(nbytes)
        self._free_at = finish
        self.requests += 1
        self.bytes_moved += nbytes
        # Disk completions are never cancelled: fire-and-forget.
        self.sim.post_at(finish, done_fn, cat="disk")
        return finish


class PCPU:
    """One physical core.

    The VMM mutates ``current``/``slice_end_ev``; this class only tracks
    hardware-side state and counters.
    """

    __slots__ = (
        "index",
        "node",
        "cache",
        "current",
        "slice_end_ev",
        "run_start_ns",
        "context_switches",
        "busy_ns",
        "idle_since_ns",
    )

    def __init__(self, index: int, node: "PhysicalNode", cache_params: CacheParams) -> None:
        self.index = index
        self.node = node
        self.cache = PCPUCache(cache_params)
        self.current: Optional["VCPU"] = None
        self.slice_end_ev = None
        self.run_start_ns = 0
        self.context_switches = 0
        self.busy_ns = 0
        self.idle_since_ns = 0

    @property
    def is_idle(self) -> bool:
        return self.current is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cur = getattr(self.current, "name", None)
        return f"<PCPU {self.node.index}.{self.index} current={cur}>"


class PhysicalNode:
    """A physical machine: PCPUs + disk.  The VMM is attached by the
    hypervisor layer after construction."""

    __slots__ = ("index", "params", "pcpus", "disk", "vmm", "sim", "crashed")

    def __init__(self, sim, index: int, params: NodeParams | None = None) -> None:
        self.sim = sim
        self.index = index
        self.params = params or NodeParams()
        self.pcpus = [PCPU(i, self, self.params.cache) for i in range(self.params.n_pcpus)]
        self.disk = Disk(sim, self.params.disk)
        self.vmm = None  # set by repro.hypervisor.vmm.VMM
        #: Fault-injection crash flag (VMM.crash / restart): while set, no
        #: VM on this node runs and the fabric drops deliveries to it.
        self.crashed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PhysicalNode {self.index} pcpus={len(self.pcpus)}>"
