"""Physical substrate: nodes, PCPUs, LLC cache model, disk, network fabric."""

from repro.cluster.cache import CacheParams, PCPUCache
from repro.cluster.network import Fabric, NetworkParams
from repro.cluster.node import Disk, DiskParams, NodeParams, PCPU, PhysicalNode
from repro.cluster.topology import Cluster, build_cluster

__all__ = [
    "CacheParams",
    "PCPUCache",
    "Fabric",
    "NetworkParams",
    "Disk",
    "DiskParams",
    "NodeParams",
    "PCPU",
    "PhysicalNode",
    "Cluster",
    "build_cluster",
]
