"""Physical network fabric: a switched 1 Gbps Ethernet model.

The paper's testbed connects 32 nodes with 1 Gbps Ethernet.  We model the
fabric as a full-crossbar switch with:

* a fixed one-way wire+switch latency per packet,
* per-node egress (NIC) serialization at the link bandwidth, and
* a per-packet framing overhead.

Only dom0 driver domains talk to the fabric (guests reach it through the
netfront/netback path in :mod:`repro.hypervisor.dom0`), mirroring Xen's
split-driver architecture in Figure 4 of the paper.

Fault hooks (:mod:`repro.faults`)
---------------------------------
The fault injector may *arm* two optional hooks:

* :attr:`Fabric.drop_rng` — a dedicated seeded RNG sub-stream consumed
  only when a degraded link has a non-zero drop probability, so a run
  without NIC faults draws nothing and stays bit-identical to a fabric
  without these hooks at all;
* :attr:`Fabric.crashed_of` — a ``node_index -> bool`` predicate; when
  set, deliveries are routed through a check that drops packets whose
  destination node is down.

A dropped message (probabilistic loss on a degraded link, or a crashed
endpoint) is retransmitted by the sending guest's transport after an
exponential-backoff timeout, up to ``NetworkParams.max_retransmits``
attempts, after which it is counted as lost.  When neither hook is armed
``transmit`` takes exactly the pre-fault fast path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.rng import SimRNG
from repro.sim.units import MSEC, SEC, USEC

__all__ = ["NetworkParams", "Fabric"]


@dataclass(frozen=True)
class NetworkParams:
    """Fabric tunables (defaults approximate the paper's 1 GbE testbed)."""

    #: One-way wire + switch latency (ns).
    latency_ns: int = 30 * USEC
    #: Link bandwidth in bits per second.
    bandwidth_bps: float = 1e9
    #: Per-packet framing overhead (preamble + Ethernet/IP/UDP headers), bytes.
    framing_bytes: int = 66
    #: Maximum payload carried by one packet (MTU minus headers), bytes.
    mtu_payload_bytes: int = 1448
    #: Guest-transport retransmission timeout base (ns); doubles per attempt.
    retransmit_timeout_ns: int = 200 * USEC
    #: Upper bound on the backed-off retransmission timeout (ns).
    retransmit_cap_ns: int = 100 * MSEC
    #: Retransmission attempts before a message is declared lost.
    max_retransmits: int = 16

    def tx_ns(self, nbytes: int) -> int:
        """Serialization time on the wire for a message of ``nbytes`` payload,
        accounting for per-MTU framing overhead.

        Computed in pure integer nanoseconds with explicit ceiling
        rounding (never under-charge the wire), so non-default
        ``bandwidth_bps`` values cannot lose fractional nanoseconds to
        float truncation.
        """
        npackets = max(1, -(-nbytes // self.mtu_payload_bytes))
        wire_bits = (nbytes + npackets * self.framing_bytes) * 8
        bw = max(1, round(self.bandwidth_bps))
        return -(-wire_bits * SEC // bw)  # ceil(bits * ns_per_s / bps)


class Fabric:
    """Crossbar switch with per-source-node egress serialization.

    ``transmit`` models: wait for the source NIC to drain its queue,
    serialize the message at link speed, then deliver ``deliver_fn`` at the
    destination after the wire latency.  Delivery order per (src, dst) pair
    is FIFO, as on a real switched LAN.
    """

    __slots__ = (
        "sim",
        "params",
        "_nic_free_at",
        "messages_sent",
        "bytes_sent",
        "bytes_retransmitted",
        "drop_rng",
        "crashed_of",
        "_degraded",
        "messages_dropped",
        "retransmits",
        "messages_lost",
    )

    def __init__(self, sim: Simulator, params: NetworkParams | None = None) -> None:
        self.sim = sim
        self.params = params or NetworkParams()
        self._nic_free_at: dict[int, int] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Payload bytes re-serialized on NICs by retransmission attempts.
        #: Every attempt charges ``_nic_free_at`` (the NIC really sends the
        #: bytes again), so actual egress is ``wire_bytes_total``, not
        #: ``bytes_sent`` — the latter counts each message once.
        self.bytes_retransmitted = 0
        #: Seeded RNG for probabilistic drops; armed by the fault injector.
        #: ``None`` (default) = no drop draws ever happen.
        self.drop_rng: Optional[SimRNG] = None
        #: ``node_index -> crashed?`` predicate; armed by the fault injector
        #: when the plan contains node crashes.  ``None`` = fast path.
        self.crashed_of: Optional[Callable[[int], bool]] = None
        #: Per-node link degradation: node -> (bw_factor, drop_prob).
        self._degraded: dict[int, tuple[float, float]] = {}
        self.messages_dropped = 0
        self.retransmits = 0
        self.messages_lost = 0

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def degrade_link(self, node: int, bw_factor: float = 1.0, drop_prob: float = 0.0) -> None:
        """Degrade ``node``'s NIC: scale its egress bandwidth by
        ``bw_factor`` and drop messages touching it with ``drop_prob``."""
        if not (0.0 < bw_factor <= 1.0):
            raise ValueError(f"bw_factor must be in (0, 1], got {bw_factor}")
        if not (0.0 <= drop_prob < 1.0):
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        self._degraded[node] = (bw_factor, drop_prob)

    def restore_link(self, node: int) -> None:
        """Heal a degraded link.  Idempotent."""
        self._degraded.pop(node, None)

    @property
    def degraded_nodes(self) -> list[int]:
        """Node indices with a currently degraded NIC, ascending (the
        migration rebalancer's ``evacuate`` policy reads this)."""
        return sorted(self._degraded)

    @property
    def wire_bytes_total(self) -> int:
        """Total payload bytes actually serialized on NICs, including
        every retransmission attempt (consistent with the egress time the
        fabric charged via ``_nic_free_at``)."""
        return self.bytes_sent + self.bytes_retransmitted

    # ------------------------------------------------------------------
    def transmit(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        deliver_fn: Callable[[], None],
    ) -> int:
        """Send ``nbytes`` from ``src_node`` to ``dst_node``.

        ``deliver_fn`` fires at the destination when the last bit arrives.
        Returns the absolute (first-attempt) delivery time (ns).
        """
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return self._attempt(src_node, dst_node, nbytes, deliver_fn, 1)

    def _attempt(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        deliver_fn: Callable[[], None],
        attempt: int,
    ) -> int:
        p = self.params
        tx = p.tx_ns(nbytes)
        if attempt > 1:
            # This attempt re-serializes the full message on the source
            # NIC (charged below via _nic_free_at): account for it, or
            # wire-byte totals diverge from actual egress under faults.
            self.bytes_retransmitted += nbytes
        drop_prob = 0.0
        if self._degraded:
            src_deg = self._degraded.get(src_node)
            if src_deg is not None:
                bw_factor, drop_prob = src_deg
                if bw_factor < 1.0:
                    # Fixed-point ceil(tx / bw_factor): stays in integers.
                    denom = max(1, round(bw_factor * 1_000_000))
                    tx = -(-tx * 1_000_000 // denom)
            dst_deg = self._degraded.get(dst_node)
            if dst_deg is not None:
                drop_prob = 1.0 - (1.0 - drop_prob) * (1.0 - dst_deg[1])
        start = max(self.sim.now, self._nic_free_at.get(src_node, 0))
        self._nic_free_at[src_node] = start + tx
        arrival = start + tx + p.latency_ns
        if drop_prob > 0.0 and self.drop_rng is not None and self.drop_rng.random() < drop_prob:
            # Lost on the degraded link; the sender's transport notices by
            # timeout and retransmits with backoff.
            self.messages_dropped += 1
            self._schedule_retry(src_node, dst_node, nbytes, deliver_fn, attempt, arrival)
            return arrival
        if self.crashed_of is not None:
            self.sim.post_at(
                arrival,
                lambda: self._deliver_checked(src_node, dst_node, nbytes, deliver_fn, attempt),
                cat="net",
            )
        else:
            # Fire-and-forget: deliveries are never cancelled, so skip the
            # Event handle allocation on the per-message hot path.
            self.sim.post_at(arrival, deliver_fn, cat="net")
        return arrival

    def _deliver_checked(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        deliver_fn: Callable[[], None],
        attempt: int,
    ) -> None:
        """Delivery gate used while node crashes are armed: a packet whose
        destination died in flight is dropped and retried (the destination
        may restart before the retransmit budget runs out)."""
        if self.crashed_of is not None and self.crashed_of(dst_node):
            self.messages_dropped += 1
            self._schedule_retry(src_node, dst_node, nbytes, deliver_fn, attempt, self.sim.now)
            return
        deliver_fn()

    def _schedule_retry(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        deliver_fn: Callable[[], None],
        attempt: int,
        from_ns: int,
    ) -> None:
        p = self.params
        if attempt > p.max_retransmits or (
            self.crashed_of is not None and self.crashed_of(src_node)
        ):
            # Retransmit budget exhausted, or the sending host itself is
            # down: the message is gone.
            self.messages_lost += 1
            return
        rto = min(p.retransmit_timeout_ns << (attempt - 1), p.retransmit_cap_ns)
        self.retransmits += 1
        self.sim.post_at(
            from_ns + rto,
            lambda: self._attempt(src_node, dst_node, nbytes, deliver_fn, attempt + 1),
            cat="net",
        )
