"""Physical network fabric: a switched 1 Gbps Ethernet model.

The paper's testbed connects 32 nodes with 1 Gbps Ethernet.  We model the
fabric as a full-crossbar switch with:

* a fixed one-way wire+switch latency per packet,
* per-node egress (NIC) serialization at the link bandwidth, and
* a per-packet framing overhead.

Only dom0 driver domains talk to the fabric (guests reach it through the
netfront/netback path in :mod:`repro.hypervisor.dom0`), mirroring Xen's
split-driver architecture in Figure 4 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.units import USEC

__all__ = ["NetworkParams", "Fabric"]


@dataclass(frozen=True)
class NetworkParams:
    """Fabric tunables (defaults approximate the paper's 1 GbE testbed)."""

    #: One-way wire + switch latency (ns).
    latency_ns: int = 30 * USEC
    #: Link bandwidth in bits per second.
    bandwidth_bps: float = 1e9
    #: Per-packet framing overhead (preamble + Ethernet/IP/UDP headers), bytes.
    framing_bytes: int = 66
    #: Maximum payload carried by one packet (MTU minus headers), bytes.
    mtu_payload_bytes: int = 1448

    def tx_ns(self, nbytes: int) -> int:
        """Serialization time on the wire for a message of ``nbytes`` payload,
        accounting for per-MTU framing overhead."""
        npackets = max(1, -(-nbytes // self.mtu_payload_bytes))
        wire_bytes = nbytes + npackets * self.framing_bytes
        return int(wire_bytes * 8 / self.bandwidth_bps * 1e9)


class Fabric:
    """Crossbar switch with per-source-node egress serialization.

    ``transmit`` models: wait for the source NIC to drain its queue,
    serialize the message at link speed, then deliver ``deliver_fn`` at the
    destination after the wire latency.  Delivery order per (src, dst) pair
    is FIFO, as on a real switched LAN.
    """

    __slots__ = ("sim", "params", "_nic_free_at", "messages_sent", "bytes_sent")

    def __init__(self, sim: Simulator, params: NetworkParams | None = None) -> None:
        self.sim = sim
        self.params = params or NetworkParams()
        self._nic_free_at: dict[int, int] = {}
        self.messages_sent = 0
        self.bytes_sent = 0

    def transmit(
        self,
        src_node: int,
        dst_node: int,
        nbytes: int,
        deliver_fn: Callable[[], None],
    ) -> int:
        """Send ``nbytes`` from ``src_node`` to ``dst_node``.

        ``deliver_fn`` fires at the destination when the last bit arrives.
        Returns the absolute delivery time (ns).
        """
        now = self.sim.now
        p = self.params
        tx = p.tx_ns(nbytes)
        start = max(now, self._nic_free_at.get(src_node, 0))
        self._nic_free_at[src_node] = start + tx
        arrival = start + tx + p.latency_ns
        self.sim.at(arrival, deliver_fn, cat="net")
        self.messages_sent += 1
        self.bytes_sent += nbytes
        return arrival
