"""Cluster assembly: nodes + fabric.

:class:`Cluster` is a plain container; the hypervisor layer attaches VMMs
and VMs to it.  Builders here mirror the paper's testbed shapes (N nodes of
8 cores on one switched segment).
"""

from __future__ import annotations

from repro.cluster.network import Fabric, NetworkParams
from repro.cluster.node import NodeParams, PhysicalNode
from repro.sim.engine import Simulator

__all__ = ["Cluster", "build_cluster"]


class Cluster:
    """A set of physical nodes connected by one fabric."""

    __slots__ = ("sim", "nodes", "fabric")

    def __init__(self, sim: Simulator, nodes: list[PhysicalNode], fabric: Fabric) -> None:
        self.sim = sim
        self.nodes = nodes
        self.fabric = fabric

    @property
    def n_pcpus(self) -> int:
        """Total physical cores in the cluster."""
        return sum(len(n.pcpus) for n in self.nodes)

    def node(self, index: int) -> PhysicalNode:
        return self.nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster nodes={len(self.nodes)} pcpus={self.n_pcpus}>"


def build_cluster(
    sim: Simulator,
    n_nodes: int,
    node_params: NodeParams | None = None,
    net_params: NetworkParams | None = None,
) -> Cluster:
    """Create ``n_nodes`` identical nodes on one switched Ethernet segment."""
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    node_params = node_params or NodeParams()
    nodes = [PhysicalNode(sim, i, node_params) for i in range(n_nodes)]
    fabric = Fabric(sim, net_params or NetworkParams())
    return Cluster(sim, nodes, fabric)
