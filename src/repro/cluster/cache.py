"""Last-level-cache (LLC) warmth model.

The paper's Section III-B measures, with Xenoprof, how *shorter* time slices
increase LLC misses: every context switch between VCPUs evicts part of the
previous VCPU's working set, so the next time that VCPU runs it pays a
refill penalty.  This is the mechanism behind the performance inflection
point in Figure 8 (e.g. ~0.2 ms for ``lu.C``): below the inflection the
per-dispatch refill + context-switch cost grows faster than the spinlock
latency shrinks.

Model
-----
For each PCPU we remember, per VCPU, when it last ran there.  When a VCPU
is dispatched after being away for ``away_ns``, its cache warmth has
decayed as ``exp(-away_ns / decay_tau_ns)`` (other VCPUs have been evicting
its lines), so it pays::

    penalty_ns = refill_ns * sensitivity * (1 - exp(-away_ns / decay_tau_ns))

as extra guest-visible compute time, and ``penalty_ns / miss_cost_ns`` LLC
misses are charged to the counters.  A VCPU re-dispatched onto the same
PCPU it just left (nothing ran in between) pays nothing.  ``sensitivity``
is a per-workload multiplier (``stream`` is far more cache-sensitive than
``ping``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.units import MSEC, USEC

__all__ = ["CacheParams", "PCPUCache"]


@dataclass(frozen=True)
class CacheParams:
    """Tunables of the LLC warmth model.

    Defaults are calibrated so that with 4x CPU over-commitment the
    per-dispatch overhead is negligible at the 30 ms default slice, a few
    percent around the paper's 0.3 ms threshold, and dominant below
    ~0.1 ms — reproducing the Figure 8 inflection.
    """

    #: Full working-set refill penalty after a long absence (ns).
    refill_ns: int = 30 * USEC
    #: Warmth decay time constant while the VCPU is off this PCPU (ns).
    decay_tau_ns: int = 2 * MSEC
    #: Approximate cost of one LLC miss (ns); used to convert penalty time
    #: into a miss count for the Xenoprof-style counters.
    miss_cost_ns: int = 100


class PCPUCache:
    """Per-PCPU cache state: who ran last, and when each VCPU last ran here.

    Keys are opaque hashables identifying VCPUs (identity is fine).
    """

    __slots__ = ("params", "last_key", "_last_seen", "total_miss_count", "total_penalty_ns")

    def __init__(self, params: CacheParams | None = None) -> None:
        self.params = params or CacheParams()
        self.last_key: object | None = None
        self._last_seen: dict[object, int] = {}
        self.total_miss_count: int = 0
        self.total_penalty_ns: int = 0

    def on_dispatch(self, now: int, key: object, sensitivity: float = 1.0) -> tuple[int, int]:
        """Record that ``key`` starts running at ``now``.

        Returns ``(penalty_ns, miss_count)`` the dispatched VCPU must pay.
        """
        p = self.params
        if key is self.last_key:
            # Back-to-back slices of the same VCPU: the cache is still hot.
            return 0, 0
        last = self._last_seen.get(key)
        if last is None:
            warm = 0.0  # never ran here: fully cold
        else:
            away = now - last
            warm = math.exp(-away / p.decay_tau_ns) if away < 64 * p.decay_tau_ns else 0.0
        penalty = int(p.refill_ns * sensitivity * (1.0 - warm))
        misses = penalty // p.miss_cost_ns
        self.last_key = key
        self.total_penalty_ns += penalty
        self.total_miss_count += misses
        return penalty, misses

    def on_undispatch(self, now: int, key: object) -> None:
        """Record that ``key`` stops running at ``now`` (slice end/block)."""
        self._last_seen[key] = now

    def reset_counters(self) -> None:
        """Zero the cumulative miss/penalty counters (per-experiment)."""
        self.total_miss_count = 0
        self.total_penalty_ns = 0
