#!/usr/bin/env python3
"""Trace-driven cloud: the LLNL Atlas virtual-cluster mix (Table I).

Synthesizes a cloud whose virtual-cluster size distribution follows the
paper's Table I (evaluation type B), runs a random NPB kernel on every
cluster in batch mode under each scheduling approach, and reports
per-cluster normalized round times — a scaled-down Figure 11.

Run:  python examples/trace_driven_cloud.py [n_nodes]
"""

import math
import sys

from repro.experiments import format_table, run_type_b


def main() -> None:
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    scheds = ["CR", "BS", "CS", "DSS", "ATC"]
    results = {s: run_type_b(s, n_nodes=n_nodes, horizon_s=8.0, seed=11) for s in scheds}

    base = results["CR"]["vcs"]
    rows = []
    for i, vc in enumerate(base):
        row = [f"{vc['vc']} ({vc['app']}, {vc['n_vms']} VMs)"]
        for s in scheds:
            cell = results[s]["vcs"][i]["mean_round_ns"]
            ref = vc["mean_round_ns"]
            row.append(round(cell / ref, 2) if math.isfinite(cell) and math.isfinite(ref) else "n/a")
        rows.append(tuple(row))
    print(
        format_table(
            ["virtual cluster", *scheds],
            rows,
            title=f"Type B mix on {n_nodes} nodes — normalized round time (CR = 1.0)",
        )
    )
    atc = [r[-1] for r in rows if isinstance(r[-1], float)]
    if atc:
        print(f"\nATC mean over clusters: {sum(atc) / len(atc):.2f} (paper Fig. 11: ~0.25-0.6)")


if __name__ == "__main__":
    main()
