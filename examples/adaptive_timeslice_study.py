#!/usr/bin/env python3
"""Why does the time slice matter? — the paper's Section II-B study.

Sweeps a static time slice under the Credit scheduler for one NPB kernel
(Fig. 5's setup), printing execution time, average spinlock latency and
context switches per slice, then shows the ATC controller *discovering*
the short slice on its own: its per-period host-minimum slice trace
converges from Xen's 30 ms default onto the 0.3 ms threshold.

Run:  python examples/adaptive_timeslice_study.py [app]
"""

import sys

from repro.experiments import CloudWorld, WorldConfig, format_table, run_slice_sweep
from repro.metrics.summary import pearson
from repro.schedulers.atc_sched import ATCParams
from repro.sim.units import SEC, ms_from_ns


def static_sweep(app: str) -> None:
    result = run_slice_sweep(app, [30, 12, 6, 1, 0.3], rounds=2, warmup_rounds=1)
    rows = [
        (
            row["slice_ms"],
            round(row["mean_round_ns"] / 1e6, 1),
            round(row["avg_spin_ns"] / 1e6, 3),
            row["context_switches"],
        )
        for row in result["rows"]
    ]
    print(
        format_table(
            ["slice (ms)", "round (ms)", "spin latency (ms)", "ctx switches"],
            rows,
            title=f"Static slice sweep — {app} (CR)",
        )
    )
    times = [r[1] for r in rows]
    spins = [r[2] for r in rows]
    print(f"pearson(spin latency, execution time) = {pearson(spins, times):.3f}\n")


def atc_convergence(app: str) -> None:
    world = CloudWorld(
        WorldConfig(n_nodes=2, scheduler="ATC", seed=7, sched_params=ATCParams(record_series=True))
    )
    for k in range(4):
        vc = world.virtual_cluster(2, name=f"vc{k}")
        world.add_npb(app, vc.vms, rounds=None, warmup_rounds=0)
    world.run(horizon_ns=2 * SEC)
    ctrl = world.vmms[0].scheduler.controller
    print("ATC host-minimum slice trace (node 0):")
    trace = ctrl.slice_history
    shown = trace[:6] + [("...", "...")] + trace[-3:] if len(trace) > 9 else trace
    for t, s in shown:
        if t == "...":
            print("   ...")
        else:
            print(f"   t={t / 1e6:7.0f} ms   slice={ms_from_ns(s):6.2f} ms")
    final = trace[-1][1]
    print(f"converged to {ms_from_ns(final):.2f} ms (min threshold: "
          f"{ms_from_ns(ctrl.cfg.min_threshold_ns):.2f} ms)")


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "lu"
    static_sweep(app)
    atc_convergence(app)


if __name__ == "__main__":
    main()
