#!/usr/bin/env python3
"""Quickstart: accelerate a parallel application with ATC.

Builds a 2-node virtualized cloud (4 VMs of 8 VCPUs per 8-core node — the
paper's 4x over-commitment), runs the NPB ``lu`` kernel on four identical
virtual clusters under Xen's Credit scheduler and under the paper's
Adaptive Time-slice Control, and prints the speedup.

Run:  python examples/quickstart.py
"""

from repro.experiments import CloudWorld, WorldConfig
from repro.sim.units import SEC, ms_from_ns


def run(scheduler: str) -> float:
    world = CloudWorld(WorldConfig(n_nodes=2, scheduler=scheduler, seed=42))
    apps = []
    for k in range(4):
        vc = world.virtual_cluster(n_vms=2, name=f"vc{k}")
        apps.append(world.add_npb("lu", vc.vms, rounds=3, warmup_rounds=1))
    world.run(horizon_ns=120 * SEC)
    assert world.all_apps_done
    mean = sum(a.mean_round_ns for a in apps) / len(apps)
    spin = sum(vm.kernel.avg_spin_ns for vm in world.vms) / len(world.vms)
    print(
        f"  {scheduler:>3}: mean round {ms_from_ns(mean):8.1f} ms"
        f"   avg spinlock latency {ms_from_ns(spin):6.3f} ms"
    )
    return mean


def main() -> None:
    print("lu on four 2-VM virtual clusters, 4x CPU over-commitment:")
    cr = run("CR")
    atc = run("ATC")
    print(f"  -> ATC speedup over Credit: {cr / atc:.1f}x (paper band: 1.5-10x)")


if __name__ == "__main__":
    main()
