#!/usr/bin/env python3
"""Mixed tenancy: accelerating parallel jobs without hurting neighbours.

The paper's Section IV-C scenario: parallel virtual clusters share hosts
with a web server, SPEC CPU apps, stream, bonnie++ and ping.  This example
compares CR, CS and both ATC variants — ATC(30ms) keeps the VMM default
slice for non-parallel VMs (Algorithm 2's default), ATC(6ms) uses the
administrator interface to give them 6 ms slices.

Run:  python examples/mixed_tenancy.py
"""

from repro.experiments import format_table, run_small_mix


def main() -> None:
    cases = [
        ("CR", dict(scheduler="CR")),
        ("CS", dict(scheduler="CS")),
        ("ATC(30ms)", dict(scheduler="ATC")),
        ("ATC(6ms)", dict(scheduler="ATC", atc_np_slice_ms=6.0)),
    ]
    results = {}
    for label, kw in cases:
        sched = kw.pop("scheduler")
        results[label] = run_small_mix(sched, horizon_s=6.0, **kw)

    cr = results["CR"]
    rows = []
    for label in results:
        r = results[label]
        rows.append(
            (
                label,
                round(r["parallel_mean_round_ns"] / cr["parallel_mean_round_ns"], 2),
                round(r["ping_mean_rtt_ns"] / cr["ping_mean_rtt_ns"], 2),
                round(r["sphinx3_mean_run_ns"] / cr["sphinx3_mean_run_ns"], 2),
                round(r["stream_bandwidth_Bps"] / cr["stream_bandwidth_Bps"], 2),
                round(r["bonnie_throughput_Bps"] / cr["bonnie_throughput_Bps"], 2),
            )
        )
    print(
        format_table(
            ["approach", "parallel time", "ping RTT", "sphinx3 time", "stream bw", "bonnie tput"],
            rows,
            title="Mixed tenancy, all metrics normalized to CR (time: lower=better; bw/tput: higher=better)",
        )
    )
    print(
        "\nExpected shapes (paper Figs. 12-14): ATC accelerates the parallel jobs\n"
        "several-fold while leaving the non-parallel apps near CR; CS helps the\n"
        "parallel jobs less and visibly hurts ping/sphinx3; ATC(6ms) trades some\n"
        "CPU-app performance for even better parallel and latency behaviour."
    )


if __name__ == "__main__":
    main()
