"""Figure 10: evaluation type A — identical virtual clusters running the
same NPB kernel, all approaches, across cluster scales.

Paper: ATC achieves the best normalized execution time and the best
scalability; CS sits between ATC and BS; BS's small advantage over CR
erodes with scale; DSS lands between CR and ATC.

The (app x approach x scale) grid is declared as ``RunSpec`` cells and
executed through the shared sweep runner (``REPRO_JOBS=N`` parallelizes
it).

Regenerates: normalized execution time per (app, approach, scale).
"""

from repro.experiments.runner import RunSpec

from _common import emit, fig_nodes, full_scale, run_grid, run_once

APPS = ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "is"]
SCHEDS = ["CR", "BS", "CS", "DSS", "ATC"]

SPECS = [
    RunSpec(
        "type_a",
        dict(app_name=app, scheduler=sched, n_nodes=n, rounds=2, warmup_rounds=1),
        label=f"fig10:{app}/{sched}/{n}",
    )
    for app in APPS
    for sched in SCHEDS
    for n in fig_nodes()
]

RESULTS: dict[tuple, float] = {}


def test_fig10_grid(benchmark):
    for r in run_grid(benchmark, SPECS):
        p = r.spec.params
        assert r.value["all_done"], f"{p['app_name']}/{p['scheduler']}/{p['n_nodes']} incomplete"
        RESULTS[(p["app_name"], p["scheduler"], p["n_nodes"])] = r.value["mean_round_ns"]


def test_fig10_report(benchmark):
    def report():
        norm = {}
        for (app, sched, n), t in RESULTS.items():
            norm[(app, sched, n)] = t / RESULTS[(app, "CR", n)]
        for app in APPS:
            rows = []
            for n in fig_nodes():
                rows.append((n, *(round(norm[(app, s, n)], 3) for s in SCHEDS)))
            emit(
                f"Figure 10 — {app}: normalized execution time",
                ["nodes", *SCHEDS],
                rows,
                name=f"fig10_{app}",
            )
        return norm

    norm = run_once(benchmark, report)
    for app in APPS:
        for n in fig_nodes():
            # ATC is the best approach at every cell
            others = [norm[(app, s, n)] for s in SCHEDS if s != "ATC"]
            assert norm[(app, "ATC", n)] <= min(others) + 1e-9, (app, n)
            # and beats CR by at least the paper's minimum factor band
            assert norm[(app, "ATC", n)] < 0.75, (app, n)
