"""Figure 10: evaluation type A — identical virtual clusters running the
same NPB kernel, all approaches, across cluster scales.

Paper: ATC achieves the best normalized execution time and the best
scalability; CS sits between ATC and BS; BS's small advantage over CR
erodes with scale; DSS lands between CR and ATC.

Regenerates: normalized execution time per (app, approach, scale).
"""

import pytest

from repro.experiments.scenarios import run_type_a

from _common import emit, fig_nodes, full_scale, run_once

APPS = ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "is"]
SCHEDS = ["CR", "BS", "CS", "DSS", "ATC"]
RESULTS: dict[tuple, float] = {}


@pytest.mark.parametrize("n_nodes", fig_nodes())
@pytest.mark.parametrize("sched", SCHEDS)
@pytest.mark.parametrize("app", APPS)
def test_fig10_cell(benchmark, app, sched, n_nodes):
    r = run_once(
        benchmark, run_type_a, app, sched, n_nodes, rounds=2, warmup_rounds=1
    )
    assert r["all_done"], f"{app}/{sched}/{n_nodes} incomplete"
    RESULTS[(app, sched, n_nodes)] = r["mean_round_ns"]


def test_fig10_report(benchmark):
    def report():
        norm = {}
        for (app, sched, n), t in RESULTS.items():
            norm[(app, sched, n)] = t / RESULTS[(app, "CR", n)]
        for app in APPS:
            rows = []
            for n in fig_nodes():
                rows.append((n, *(round(norm[(app, s, n)], 3) for s in SCHEDS)))
            emit(f"Figure 10 — {app}: normalized execution time", ["nodes", *SCHEDS], rows)
        return norm

    norm = run_once(benchmark, report)
    for app in APPS:
        for n in fig_nodes():
            # ATC is the best approach at every cell
            others = [norm[(app, s, n)] for s in SCHEDS if s != "ATC"]
            assert norm[(app, "ATC", n)] <= min(others) + 1e-9, (app, n)
            # and beats CR by at least the paper's minimum factor band
            assert norm[(app, "ATC", n)] < 0.75, (app, n)
