"""Migration rebalancing: does the demix policy beat static placement?

Extension benchmark (no paper figure): two parallel clusters land packed
on a shared host — the worst case for Algorithm 2's per-host slice
minimum, which drags *both* clusters down — plus one non-parallel
tenant.  Cells:

* ``pack/static``   — the mixed placement, never revisited (baseline);
* ``spread/static`` — the paper's placement, as the static upper bound;
* ``pack/demix``    — the bad placement *repaired online* by the
  live-migration control plane (repro.migration).

Regenerates: normalized parallel round time per cell (pack/static = 1),
with migration counts and total stop-and-copy downtime.  The rebalanced
cell must beat its own static baseline.
"""

import pytest

from repro.experiments.scenarios import run_migration_rebalance

from _common import emit, full_scale, run_once

CELLS = [("pack", "static"), ("spread", "static"), ("pack", "demix")]
HORIZON = 30.0 if full_scale() else 10.0
N_CLUSTERS = 2
RESULTS: dict[tuple[str, str], dict] = {}


@pytest.mark.parametrize("placement,policy", CELLS)
def test_migration_cell(benchmark, placement, policy):
    RESULTS[(placement, policy)] = run_once(
        benchmark,
        run_migration_rebalance,
        policy=policy,
        placement=placement,
        n_clusters=N_CLUSTERS,
        horizon_s=HORIZON,
        seed=0,
    )


def test_migration_rebalance_report(benchmark):
    def report():
        base = RESULTS[("pack", "static")]["parallel_mean_round_ns"]
        rows = []
        for cell in CELLS:
            r = RESULTS[cell]
            mig = r.get("migration", {})
            rows.append((
                "/".join(cell),
                r["parallel_mean_round_ns"] / base,
                mig.get("completed", 0),
                mig.get("downtime_total_ns", 0) / 1e6,
            ))
        emit(
            "Migration rebalance — normalized parallel round time",
            ["placement/policy", "normalized round", "migrations", "downtime ms"],
            rows,
            name="migration_rebalance",
        )
        return {r[0]: r for r in rows}

    rows = run_once(benchmark, report)
    # Online demixing must repair the packed placement...
    assert rows["pack/demix"][1] < rows["pack/static"][1]
    # ...by actually migrating (with a finite blackout), not by accident.
    assert rows["pack/demix"][2] >= 1
    assert rows["pack/demix"][3] > 0
