"""Service admission: does migration-aware admission beat reject-on-full?

Extension benchmark (no paper figure): the always-on service layer
(repro.service) streams Poisson tenant arrivals into a packed 3-node
cloud at an offered load well above what the capacity can absorb
instantaneously.  Every cell sees the *same* arrival stream (same seed,
same rate); only the admission policy differs:

* ``reject-on-full``   — admit via the packed placement or turn the
  tenant away; never queues, so completed tenants ran in whatever mixed
  placement ``pack`` produced (the worst case for Algorithm 2's
  per-host slice minimum);
* ``fcfs-queue``       — admit via the packed placement or hold the
  tenant in FIFO order until departures free capacity;
* ``migration-aware``  — admit only onto nodes free of foreign
  clusters, otherwise queue and kick the demix rebalancer
  (repro.migration) to make room.

Regenerates: completed tenants, rejections, queue peak and
completed-tenant slowdown (time in system over the app's pure-compute
bound) per policy.  Migration-aware admission must complete at least as
many tenants as reject-on-full at strictly lower mean slowdown — i.e.
placement-aware queueing beats shedding load and living with the mix.
"""

import pytest

from repro.experiments.scenarios import run_service

from _common import emit, full_scale, run_once

POLICIES = ["reject-on-full", "fcfs-queue", "migration-aware"]
MAX_TENANTS = 24 if full_scale() else 12
HORIZON = 120.0 if full_scale() else 60.0
RATE_PER_S = 10.0
RESULTS: dict[str, dict] = {}


@pytest.mark.parametrize("admission", POLICIES)
def test_service_cell(benchmark, admission):
    RESULTS[admission] = run_once(
        benchmark,
        run_service,
        admission=admission,
        placement="pack",
        n_nodes=3,
        rate_per_s=RATE_PER_S,
        max_tenants=MAX_TENANTS,
        rounds=3,
        horizon_s=HORIZON,
        seed=0,
    )


def test_service_arrivals_report(benchmark):
    def report():
        rows = []
        for admission in POLICIES:
            s = RESULTS[admission]["service"]
            rows.append((
                admission,
                s["departed"],
                s["rejected"],
                s["queue_peak"],
                s["wait_mean_ns"] / 1e6,
                s["slowdown_mean"],
                s["rebalancer_kicks"],
            ))
        emit(
            "Service arrivals — admission policies at equal offered load "
            f"({RATE_PER_S}/s, {MAX_TENANTS} tenants)",
            ["admission", "completed", "rejected", "queue peak",
             "mean wait ms", "mean slowdown", "kicks"],
            rows,
            name="service_arrivals",
        )
        return {r[0]: r for r in rows}

    rows = run_once(benchmark, report)
    # Every policy must complete work under pressure...
    assert all(rows[p][1] >= 1 for p in POLICIES)
    # ...reject-on-full must actually shed load at this offered rate...
    assert rows["reject-on-full"][2] >= 1
    # ...and migration-aware admission must beat it on completed-tenant
    # slowdown without completing fewer tenants.
    assert rows["migration-aware"][1] >= rows["reject-on-full"][1]
    assert rows["migration-aware"][5] < rows["reject-on-full"][5]
