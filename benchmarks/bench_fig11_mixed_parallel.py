"""Figure 11: evaluation type B — LLNL-trace virtual-cluster mix, all
approaches, parallel applications only.

Paper: ATC best (e.g. sp in VC1: ATC 0.25, DSS 0.45, CS 0.49, BS 0.9 vs
CR 1.0); trends mirror Fig. 10.

The per-approach cells are declared as ``RunSpec``\\ s and executed
through the shared sweep runner (``REPRO_JOBS=N`` parallelizes them).

Regenerates: per-VC normalized mean round times under every approach
(normalized against CR on the *same* VC/app assignment — the seed fixes
the trace draw across approaches).
"""

import math

from repro.experiments.runner import RunSpec

from _common import emit, full_scale, run_grid, run_once

SCHEDS = ["CR", "BS", "CS", "DSS", "ATC"]
N_NODES = 32 if full_scale() else 6
HORIZON = 30.0 if full_scale() else 8.0

SPECS = [
    RunSpec(
        "type_b",
        dict(scheduler=sched, n_nodes=N_NODES, horizon_s=HORIZON, seed=11),
        label=f"fig11:{sched}",
    )
    for sched in SCHEDS
]

RESULTS: dict[str, dict] = {}


def test_fig11_grid(benchmark):
    for r in run_grid(benchmark, SPECS):
        RESULTS[r.spec.params["scheduler"]] = r.value


def test_fig11_report(benchmark):
    def report():
        vcs = [vc["vc"] for vc in RESULTS["CR"]["vcs"]]
        rows = []
        norms = {}
        for i, vc in enumerate(vcs):
            base = RESULTS["CR"]["vcs"][i]["mean_round_ns"]
            row = [f"{vc} ({RESULTS['CR']['vcs'][i]['app']}, {RESULTS['CR']['vcs'][i]['n_vms']} VMs)"]
            for s in SCHEDS:
                cell = RESULTS[s]["vcs"][i]["mean_round_ns"]
                val = cell / base if base == base and cell == cell else float("nan")
                norms[(vc, s)] = val
                row.append(round(val, 3) if val == val else "n/a")
            rows.append(tuple(row))
        emit(
            "Figure 11 — type B mix: normalized execution time per VC",
            ["VC", *SCHEDS],
            rows,
            name="fig11",
        )
        return norms

    norms = run_once(benchmark, report)
    atc_cells = [v for (vc, s), v in norms.items() if s == "ATC" and math.isfinite(v)]
    cr_cells = [v for (vc, s), v in norms.items() if s == "CR" and math.isfinite(v)]
    assert atc_cells, "no measurable VCs"
    # ATC accelerates the mix overall
    assert sum(atc_cells) / len(atc_cells) < 0.6
    # every approach's assignment matches CR's (same seed -> same trace)
    assert all(abs(v - 1.0) < 1e-9 for v in cr_cells)
