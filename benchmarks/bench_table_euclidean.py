"""Section III-B's Euclidean-metric table (Eq. 1): the uniform minimum
time-slice threshold.

Paper: over slices {0.5, 0.4, 0.3, 0.2, 0.1, 0.03} ms the metric values
are {0.034, 0.020, 0.018, 0.049, 0.039, 0.069}, picking 0.3 ms.

Regenerates: the same table from our own class-C sweeps (we add 1.0 and
2.0 ms so the optimum is interior at our resolution).  Known deviation:
our optimum lands at ~0.4-0.5 ms (see bench_fig08 / EXPERIMENTS.md); the
performance difference between 0.3 and 0.5 ms is under 1%, so ATC's
0.3 ms threshold is effectively equivalent.
"""

import pytest

from repro.core.threshold import ThresholdStudy
from repro.experiments.scenarios import run_slice_sweep
from repro.sim.units import ns_from_ms

from _common import emit, full_scale, run_once

SLICES_MS = [2.0, 1.0, 0.5, 0.4, 0.3, 0.2, 0.1, 0.03]
APPS = ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "is", "cg"]
MEASURED: dict[str, dict] = {}


@pytest.mark.parametrize("app", APPS)
def test_euclidean_sweep(benchmark, app):
    MEASURED[app] = run_once(
        benchmark,
        run_slice_sweep,
        app,
        SLICES_MS,
        rounds=2,
        warmup_rounds=1,
        npb_class="C",
    )


def test_euclidean_report(benchmark):
    def solve():
        study = ThresholdStudy([ns_from_ms(s) for s in SLICES_MS], list(MEASURED))
        for app, r in MEASURED.items():
            for row in r["rows"]:
                study.record(app, ns_from_ms(row["slice_ms"]), row["mean_round_ns"])
        best, metrics = study.solve()
        rows = [(s, metrics[ns_from_ms(s)]) for s in SLICES_MS]
        emit(
            "Eq. 1 — Euclidean metric by candidate minimum time-slice threshold",
            ["slice (ms)", "D(O, P)"],
            rows,
        )
        print(f"  chosen threshold: {best / 1e6:.2f} ms (paper: 0.30 ms)")
        return best, metrics

    best, metrics = run_once(benchmark, solve)
    # the optimum is a sub-millisecond slice in the paper's ballpark
    assert ns_from_ms(0.2) <= best <= ns_from_ms(1.0)
    # and 0.3 ms (the paper's choice) is within a whisker of optimal
    near = metrics[ns_from_ms(0.3)] - metrics[best]
    assert near < 0.05
