"""Ablations of the ATC design choices DESIGN.md calls out.

1. ``trend_policy``: the printed pseudo-code ("paper") vs the prose
   reading of Algorithm 1's falling-latency case.
2. ``min_threshold``: the Section III-B floor (0.3 ms) vs no floor
   (0.03 ms) vs a conservative floor (1 ms).
3. Host-min uniformity (Algorithm 2) vs per-VM slices: approximated by
   comparing ATC against DSS-style per-VM adaptation on the same
   workload (the paper's stated reason ATC beats DSS).
"""

import dataclasses

import pytest

from repro.core.config import ATCConfig
from repro.experiments.scenarios import run_type_a
from repro.schedulers.atc_sched import ATCParams
from repro.sim.units import ns_from_ms

from _common import emit, run_once

RESULTS: dict[str, float] = {}

VARIANTS = {
    "paper(0.3ms)": ATCConfig(),
    "prose(0.3ms)": ATCConfig(trend_policy="prose"),
    "no-floor(0.03ms)": ATCConfig(min_threshold_ns=ns_from_ms(0.03), beta_ns=ns_from_ms(0.03)),
    "floor(1ms)": ATCConfig(min_threshold_ns=ns_from_ms(1.0), beta_ns=ns_from_ms(0.5)),
    # The paper's future work: no guest instrumentation — the VMM's own
    # run-queue-wait accounting drives Algorithm 1.
    "non-intrusive": ATCConfig(monitor_mode="queuewait"),
}


@pytest.mark.parametrize("name", list(VARIANTS))
def test_ablation_variant(benchmark, name):
    params = ATCParams(atc=VARIANTS[name])
    r = run_once(
        benchmark,
        run_type_a,
        "lu",
        "ATC",
        2,
        rounds=2,
        warmup_rounds=1,
        sched_params=params,
    )
    assert r["all_done"]
    RESULTS[name] = r["mean_round_ns"]


def test_ablation_baselines(benchmark):
    def run_baselines():
        for sched in ("CR", "DSS"):
            r = run_type_a("lu", sched, 2, rounds=2, warmup_rounds=1)
            RESULTS[sched] = r["mean_round_ns"]

    run_once(benchmark, run_baselines)


def test_ablation_report(benchmark):
    def report():
        base = RESULTS["CR"]
        rows = [(k, v / base) for k, v in RESULTS.items()]
        emit("ATC ablations — lu, normalized vs CR", ["variant", "normalized time"], rows)
        return dict(rows)

    rows = run_once(benchmark, report)
    # every ATC variant still beats CR decisively
    for name in VARIANTS:
        assert rows[name] < 0.6, name
    # the adaptive controller (host-uniform min slice) beats per-VM DSS
    assert rows["paper(0.3ms)"] < rows["DSS"]
    # a conservative 1 ms floor gives up some of the gain
    assert rows["floor(1ms)"] >= rows["paper(0.3ms)"] - 0.02
    # the non-intrusive monitor performs on par with guest tracing
    assert abs(rows["non-intrusive"] - rows["paper(0.3ms)"]) < 0.1
