"""Ablation: virtual-cluster placement (spread / pack / striped / random).

The paper's setups spread every virtual cluster across physical nodes, so
cross-VM synchronization rides the Fig. 4 network path with its four
scheduling-wait overhead sources.  Packing a cluster onto one node keeps
the synchronization on the dom0 loopback (still scheduled, but no wire
and a single host's queues) — quantifying how much of CR's degradation
is the *cross-host* component, and how much ATC still helps intra-host.

The full placement registry is exercised: ``striped`` round-robins VMs
over nodes by global index (clusters interleave instead of aligning) and
``random:SEED`` draws placements from a seeded RNG — both land between
the spread/pack extremes, and the seed makes the "random" cell exactly
reproducible.
"""

import pytest

from repro.experiments.harness import CloudWorld, WorldConfig
from repro.metrics.summary import mean
from repro.sim.units import SEC

from _common import emit, run_once

PLACEMENTS = ("spread", "pack", "striped", "random:11")

RESULTS: dict[tuple, float] = {}


def run_placement(scheduler: str, placement: str) -> float:
    world = CloudWorld(WorldConfig(n_nodes=2, scheduler=scheduler, seed=5))
    apps = []
    for k in range(4):
        vc = world.virtual_cluster(2, name=f"vc{k}", placement=placement)
        apps.append(world.add_npb("lu", vc.vms, rounds=2, warmup_rounds=1))
    world.run(horizon_ns=300 * SEC)
    assert world.all_apps_done
    return mean([t for a in apps for t in a.round_times])


@pytest.mark.parametrize("placement", PLACEMENTS)
@pytest.mark.parametrize("sched", ["CR", "ATC"])
def test_placement_cell(benchmark, sched, placement):
    RESULTS[(sched, placement)] = run_once(benchmark, run_placement, sched, placement)


def test_placement_report(benchmark):
    def report():
        base = RESULTS[("CR", "spread")]
        rows = [
            (f"{s} / {p}", RESULTS[(s, p)] / base)
            for s in ("CR", "ATC")
            for p in PLACEMENTS
        ]
        emit(
            "Ablation — lu round time by scheduler x placement (vs CR/spread)",
            ["config", "normalized time"],
            rows,
        )
        return {r[0]: r[1] for r in rows}

    rows = run_once(benchmark, report)
    # ATC helps under every placement in the registry
    for p in PLACEMENTS:
        assert rows[f"ATC / {p}"] < rows[f"CR / {p}"]
