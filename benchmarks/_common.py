"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Default configurations are scaled down — fewer nodes,
shorter horizons — but preserve the paper's over-commitment ratio
(4 VMs x 8 VCPUs per 8-core node) and communication structure, so the
normalized-execution-time *shapes* match.  Set ``REPRO_FULL=1`` for
paper-scale sweeps (slow: hours).

Benchmarks run each simulation exactly once through
``benchmark.pedantic`` (a cloud-scale discrete-event run is seconds long
and deterministic; statistical repetition adds nothing) and print the
regenerated table rows so `pytest benchmarks/ --benchmark-only -s`
reproduces the paper's figures as text.
"""

from __future__ import annotations

import os

from repro.experiments.reporting import format_table

__all__ = ["full_scale", "fig_nodes", "fig_apps", "fig_slices_ms", "run_once", "emit"]


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def fig_nodes() -> list[int]:
    """Physical-node scales for the Fig. 1/10 sweeps."""
    return [2, 4, 8, 16, 32] if full_scale() else [2, 4]


def fig_apps() -> list[str]:
    """NPB kernels to sweep (all six at full scale)."""
    return ["lu", "is", "sp", "bt", "mg", "cg"] if full_scale() else ["lu", "is", "cg"]


def fig_slices_ms() -> list[float]:
    """Fig. 5 slice ladder (paper: 30 down to 0.1 ms)."""
    if full_scale():
        return [30, 24, 18, 12, 6, 1, 0.6, 0.3, 0.15, 0.1]
    return [30, 12, 6, 1, 0.3]


def run_once(benchmark, fn, *args, **kwargs):
    """Run a whole-simulation benchmark exactly once, deterministically."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, headers, rows) -> None:
    """Print a regenerated paper table."""
    print()
    print(format_table(headers, rows, title=title))
